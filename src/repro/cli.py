"""Command-line interface: a LASTZ-style front end over the library.

Four subcommands:

``align``
    Align two FASTA files (target, query) with the gapped pipeline —
    sequential LASTZ semantics by default, ``--engine fastz`` for the
    inspector-executor pipeline, ``--engine ungapped`` for the
    ungapped-filter variant.  Output is LASTZ ``--format=general``-style
    tab-separated rows.

``synth``
    Synthesise a related chromosome pair with planted homology and write
    it to FASTA (handy for trying ``align`` without real genomes).

``bench``
    Build (or load) one registry benchmark's work profile and print the
    modelled speedup report for it.

``serve``
    Run the concurrent alignment service (:mod:`repro.service`) behind a
    versioned JSON/HTTP endpoint: ``POST /v1/align``, ``GET /v1/stats``,
    ``GET /v1/metrics``, ``GET /v1/healthz`` (legacy unversioned paths
    307-redirect).  ``--workers N`` shards fused batches across N
    persistent worker processes with bit-identical results.

``trace``
    Align one FASTA pair with observability enabled (:mod:`repro.obs`)
    and print the span tree of the run — seeding, inspector, per-bin
    executor dispatches, traceback — plus the paper-relevant ratios
    (eager fraction, per-bin task counts, memory traffic elided).

``wga``
    Durable whole-genome alignment job (:mod:`repro.jobs`): the pair is
    segmented into overlapping chunks, chunk tasks run on a fault-tolerant
    worker pool, and every completed chunk is journaled under ``--job-dir``
    — re-running the same command resumes where the last run stopped.
    Output is byte-identical to ``align --engine fastz`` at any worker
    count.

``refs``
    Manage a reference store (:mod:`repro.store`): ``refs add`` packs
    FASTA records into content-addressed 2-bit files, ``refs ls`` lists
    them, ``refs rm`` evicts one.  Everywhere ``align``, ``trace`` and
    ``wga`` take a FASTA path they also take ``ref:<digest-or-prefix>``,
    resolved against the store (``--store`` / ``$REPRO_STORE_DIR`` /
    ``.repro_store``).

Run ``python -m repro.cli <subcommand> --help`` for the options.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence as Seq

from .align.engines import registered_engines
from .core import run_fastz, time_fastz, time_feng_baseline
from .genome import SegmentClass, build_pair, read_fasta, write_fasta
from .gpusim import ALL_DEVICES
from .lastz import (
    LastzConfig,
    multicore_seconds,
    run_gapped_lastz,
    run_ungapped_lastz,
    sequential_seconds,
)
from .scoring import default_scheme

__all__ = ["main", "build_parser"]


def _add_scoring_args(parser: argparse.ArgumentParser) -> None:
    """Scoring/seeding options shared by ``align``, ``serve`` and ``trace``."""
    parser.add_argument("--gap-open", type=int, default=400)
    parser.add_argument("--gap-extend", type=int, default=30)
    parser.add_argument("--ydrop", type=int, default=None)
    parser.add_argument("--hsp-threshold", type=int, default=3000)
    parser.add_argument("--gapped-threshold", type=int, default=3000)
    parser.add_argument("--seed-length", type=int, default=19)
    parser.add_argument("--collapse-window", type=int, default=500)
    parser.add_argument("--diag-band", type=int, default=150)


def _config_from_args(args: argparse.Namespace, **extra) -> LastzConfig:
    scheme = default_scheme(
        gap_open=args.gap_open,
        gap_extend=args.gap_extend,
        ydrop=args.ydrop,
        hsp_threshold=args.hsp_threshold,
        gapped_threshold=args.gapped_threshold,
    )
    return LastzConfig(
        scheme=scheme,
        seed_length=args.seed_length,
        collapse_window=args.collapse_window,
        diag_band=args.diag_band,
        **extra,
    )


def _store_root(args: argparse.Namespace) -> str:
    """Resolve the store directory: flag, then env, then ``.repro_store``."""
    return (
        getattr(args, "store", None)
        or os.environ.get("REPRO_STORE_DIR")
        or ".repro_store"
    )


def _add_store_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        help="reference store directory (default: $REPRO_STORE_DIR or "
        ".repro_store)",
    )


def _load_side(spec: str, args: argparse.Namespace):
    """Resolve one sequence argument: FASTA path or ``ref:<digest-prefix>``.

    Returns ``(sequence, stored_or_none)`` — the stored handle lets
    callers reach the digest and the persistent seed-table cache.
    """
    if spec.startswith("ref:"):
        from .store import ReferenceStore

        store = ReferenceStore(_store_root(args))
        stored = store.get(store.resolve(spec[len("ref:"):]))
        return stored.sequence(), stored
    return read_fasta(spec)[0], None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fastz-repro",
        description="FastZ reproduction: gapped whole-genome alignment.",
    )
    from . import __version__

    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    align = sub.add_parser("align", help="align two FASTA files")
    align.add_argument(
        "target", help="target FASTA (first record used) or ref:<digest>"
    )
    align.add_argument(
        "query", help="query FASTA (first record used) or ref:<digest>"
    )
    _add_store_arg(align)
    fastz_variants = tuple(f"fastz-{name}" for name in registered_engines())
    align.add_argument(
        "--engine",
        choices=("lastz", "fastz", "ungapped") + fastz_variants,
        default="lastz",
        help="pipeline variant (default: sequential gapped LASTZ; "
        "fastz-<engine> picks a registered extension engine, e.g. "
        "fastz-batched for lockstep chunks, fastz-wholebin for "
        "single-block bin sweeps)",
    )
    align.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="extensions per lockstep batch (fastz-batched only; "
        "fastz-wholebin sweeps each bin as one block)",
    )
    align.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard anchors across a multiprocessing pool (fastz engines)",
    )
    align.add_argument(
        "--stream",
        action="store_true",
        help="overlap seeding with extension (fastz engines); prints a "
        "progress line per extension batch on stderr, output unchanged",
    )
    align.add_argument(
        "--stream-chunk-bp",
        type=int,
        default=None,
        help="seeding-chunk size for --stream, in target bases "
        "(granularity only; results are identical at any value)",
    )
    _add_scoring_args(align)
    align.add_argument("--no-cigar", action="store_true", help="skip tracebacks")
    align.add_argument(
        "--format",
        choices=("general", "maf"),
        default="general",
        help="output format (maf requires tracebacks)",
    )
    align.add_argument("--output", default=None, help="write to a file instead of stdout")

    synth = sub.add_parser("synth", help="synthesise a related genome pair")
    synth.add_argument("--target-out", required=True)
    synth.add_argument("--query-out", required=True)
    synth.add_argument("--length", type=int, default=100_000)
    synth.add_argument("--segments", type=int, default=150)
    synth.add_argument("--segment-min", type=int, default=19)
    synth.add_argument("--segment-max", type=int, default=400)
    synth.add_argument("--divergence", type=float, default=0.05)
    synth.add_argument("--indel-rate", type=float, default=0.003)
    synth.add_argument("--rng-seed", type=int, default=0)

    bench = sub.add_parser("bench", help="modelled speedup report for a benchmark")
    bench.add_argument("--benchmark", default="C1_1,1")
    bench.add_argument("--scale", type=float, default=0.25)
    bench.add_argument(
        "--workers",
        type=int,
        default=0,
        help="multiprocessing pool size for uncached profile builds",
    )

    serve = sub.add_parser(
        "serve", help="JSON/HTTP alignment service with micro-batching"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="requests fused into one lockstep dispatch (1 = no batching)",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="how long an under-full batch waits for stragglers",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="queued-request bound; beyond it submissions get HTTP 503",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=128,
        help="LRU result-cache capacity (0 disables caching)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="multiprocess backend size; fused batches are sharded across "
        "N persistent worker processes (0 = in-process extension)",
    )
    serve.add_argument(
        "--max-inflight-mb",
        type=int,
        default=256,
        help="admission-control bound on queued sequence megabytes; "
        "beyond it submissions get HTTP 503 + Retry-After (0 = unbounded)",
    )
    serve.add_argument(
        "--store",
        default=None,
        help="serve a reference store: enables POST /v1/references and "
        "align-by-digest (target_ref/query_ref)",
    )
    serve.add_argument(
        "--max-body-mb",
        type=int,
        default=64,
        help="largest raw /v1/align body accepted before HTTP 413 points "
        "the caller at POST /v1/references",
    )
    serve.add_argument(
        "--stream-chunk-bp",
        type=int,
        default=None,
        help="seeding-chunk size for POST /v1/align?stream=1, in target "
        "bases (partial-record granularity only; results are identical)",
    )
    serve.add_argument(
        "--grace-s",
        type=float,
        default=5.0,
        help="graceful-drain bound on SIGTERM/SIGINT: seconds to wait for "
        "in-flight requests before force-closing their connections",
    )
    serve.add_argument(
        "--fleet",
        action="store_true",
        help="serve through the asyncio front door and fleet scheduler: "
        "extension batches are placed across named backend queues "
        "(in-process + simulated GPUs + the worker pool when --workers>0) "
        "with least-loaded placement and hedged re-dispatch",
    )
    serve.add_argument(
        "--fleet-gpus",
        type=int,
        default=2,
        help="simulated-GPU backends in the fleet (--fleet only)",
    )
    serve.add_argument(
        "--fleet-gpu-device",
        default="qv100",
        help="device spec for simulated-GPU backends, e.g. qv100, "
        "titanx, rtx3080 (--fleet only)",
    )
    serve.add_argument(
        "--fleet-hedge-ms",
        type=float,
        default=500.0,
        help="straggler threshold before a unit is hedged onto an idle "
        "backend; 0 disables hedging (--fleet only)",
    )
    serve.add_argument(
        "--quota",
        default=None,
        help="per-tenant admission quotas as tenant=rate/burst pairs, "
        "e.g. 'default=10/20,alice=100/200'; tenants come from the "
        "X-API-Key header (--fleet only)",
    )
    _add_scoring_args(serve)
    serve.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )

    trace = sub.add_parser(
        "trace",
        help="align one FASTA pair and print the instrumented span tree",
    )
    trace.add_argument(
        "target", help="target FASTA (first record used) or ref:<digest>"
    )
    trace.add_argument(
        "query", help="query FASTA (first record used) or ref:<digest>"
    )
    _add_store_arg(trace)
    trace.add_argument(
        "--engine",
        choices=registered_engines(),
        default="batched",
        help="extension engine to trace (default: batched)",
    )
    trace.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="extensions per lockstep batch (batched engine)",
    )
    trace.add_argument(
        "--metrics",
        action="store_true",
        help="also print the Prometheus text rendering of the run's counters",
    )
    trace.add_argument(
        "--stream",
        action="store_true",
        help="trace the streaming pipeline instead: the span tree shows "
        "seeding chunks and extension batches overlapping in time",
    )
    trace.add_argument(
        "--stream-chunk-bp",
        type=int,
        default=None,
        help="seeding-chunk size for --stream, in target bases",
    )
    _add_scoring_args(trace)

    wga = sub.add_parser(
        "wga",
        help="segmented, checkpointed whole-genome alignment job",
    )
    wga.add_argument(
        "target", help="target FASTA (first record used) or ref:<digest>"
    )
    wga.add_argument(
        "query", help="query FASTA (first record used) or ref:<digest>"
    )
    _add_store_arg(wga)
    wga.add_argument(
        "--job-dir",
        required=True,
        help="durable state directory (journal lives here; rerun to resume)",
    )
    wga.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = run chunks inline in this process)",
    )
    wga.add_argument(
        "--chunk-size",
        type=int,
        default=32_768,
        help="core tile size per sequence, in bases",
    )
    wga.add_argument(
        "--overlap",
        type=int,
        default=4_096,
        help="window slack past each core (covers the y-drop horizon; "
        "the seam guard keeps results exact regardless)",
    )
    wga.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per chunk task before it is quarantined",
    )
    wga.add_argument(
        "--engine",
        choices=registered_engines(),
        default="scalar",
        help="extension engine inside each chunk task",
    )
    wga.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="extensions per lockstep batch (batched engine)",
    )
    wga.add_argument(
        "--fresh",
        action="store_true",
        help="discard any existing journal instead of resuming from it",
    )
    wga.add_argument(
        "--quiet", action="store_true", help="suppress per-chunk progress lines"
    )
    wga.add_argument(
        "--follow",
        action="store_true",
        help="print each alignment on stderr the moment the incremental "
        "merge finalizes it (mid-run, in anchor order); output unchanged",
    )
    wga.add_argument(
        "--strict",
        action="store_true",
        help="exit 3 when any chunk was quarantined (output has alignment "
        "gaps); default exits 0 and reports the gaps on stderr",
    )
    _add_scoring_args(wga)
    wga.add_argument(
        "--format",
        choices=("general", "maf"),
        default="general",
        help="output format",
    )
    wga.add_argument("--output", default=None, help="write to a file instead of stdout")

    refs = sub.add_parser("refs", help="manage the reference store")
    refs_sub = refs.add_subparsers(dest="refs_command", required=True)
    refs_add = refs_sub.add_parser(
        "add", help="register FASTA records (gzip ok) in the store"
    )
    refs_add.add_argument(
        "fasta", nargs="+", help="FASTA files (.fa or .fa.gz); every record "
        "in each file is registered"
    )
    _add_store_arg(refs_add)
    refs_add.add_argument(
        "--precompute-seeds",
        action="store_true",
        help="also build and cache the seed table for each reference",
    )
    refs_add.add_argument(
        "--seed-length", type=int, default=19,
        help="seed length for --precompute-seeds",
    )
    refs_ls = refs_sub.add_parser("ls", help="list registered references")
    _add_store_arg(refs_ls)
    refs_rm = refs_sub.add_parser(
        "rm", help="remove one reference (and its cached seed tables)"
    )
    refs_rm.add_argument("digest", help="digest or unique prefix")
    _add_store_arg(refs_rm)
    return parser


def _align_command(args: argparse.Namespace) -> int:
    target, _ = _load_side(args.target, args)
    query, _ = _load_side(args.query, args)
    config = _config_from_args(args, traceback=not args.no_cigar)

    fastz_like = args.engine == "fastz" or args.engine.startswith("fastz-")
    if args.stream and not fastz_like:
        print(
            "error: --stream requires a fastz engine (--engine fastz[-<name>])",
            file=sys.stderr,
        )
        return 2
    if fastz_like:
        from . import api

        on_partial = None
        if args.stream:
            def on_partial(partial):
                print(
                    f"# stream batch {partial.seq}: {partial.n_anchors} anchors "
                    f"({partial.done_anchors} done), "
                    f"{len(partial.alignments)} alignments, "
                    f"{partial.wall_s:.3f}s",
                    file=sys.stderr,
                )

        result = api.align(
            target,
            query,
            config,
            {
                "engine": args.engine[6:] if args.engine.startswith("fastz-") else "scalar",
                "batch_size": args.batch_size,
            },
            workers=args.workers or None,
            streaming=args.stream,
            on_partial=on_partial,
            stream_chunk_bp=args.stream_chunk_bp,
        )
        alignments = result.unique_alignments()
    elif args.engine == "ungapped":
        alignments = run_ungapped_lastz(target, query, config).alignments
    else:
        alignments = run_gapped_lastz(target, query, config).alignments

    from .lastz.output import write_general, write_maf

    if args.format == "maf" and args.no_cigar:
        print("error: --format maf requires tracebacks (drop --no-cigar)",
              file=sys.stderr)
        return 2
    sink = open(args.output, "w", encoding="ascii") if args.output else sys.stdout
    try:
        if args.format == "maf":
            write_maf(sink, alignments, target, query)
        else:
            write_general(sink, alignments, target, query)
    finally:
        if args.output:
            sink.close()
    print(f"# {len(alignments)} alignments ({args.engine})", file=sys.stderr)
    return 0


def _synth_command(args: argparse.Namespace) -> int:
    pair = build_pair(
        "synth",
        target_length=args.length,
        query_length=args.length,
        classes=[
            SegmentClass(
                "planted",
                args.segments,
                args.segment_min,
                args.segment_max,
                divergence=args.divergence,
                indel_rate=args.indel_rate,
            )
        ],
        rng=args.rng_seed,
    )
    write_fasta(args.target_out, [pair.target])
    write_fasta(args.query_out, [pair.query])
    print(
        f"wrote {args.target_out} ({len(pair.target):,} bp) and "
        f"{args.query_out} ({len(pair.query):,} bp), "
        f"{len(pair.segments)} planted homologies",
        file=sys.stderr,
    )
    return 0


def _bench_command(args: argparse.Namespace) -> int:
    from .workloads import build_profile, get_benchmark
    from .workloads.profiles import BENCH_OPTIONS, bench_calibration

    profile = build_profile(
        get_benchmark(args.benchmark),
        scale=args.scale,
        workers=args.workers or None,
    )
    calib = bench_calibration()
    cpu = sequential_seconds(profile.cpu_cells)
    print(f"{args.benchmark} @ scale {args.scale}: {profile.n_anchors} anchors")
    print(f"  bins [eager,1-4]: {profile.fastz.bin_counts().tolist()}")
    print(f"  sequential LASTZ (modelled): {cpu * 1e3:.2f} ms")
    print(f"  multicore x32:   {cpu / multicore_seconds(profile.cpu_cells):6.1f}x")
    for dev in ALL_DEVICES:
        feng = cpu / time_feng_baseline(profile.arrays, dev, calib)
        t = time_fastz(
            profile.arrays,
            dev,
            BENCH_OPTIONS,
            calib,
            transfer_bytes=profile.transfer_bytes,
        )
        print(
            f"  {dev.name:<10} GPU-baseline {feng:5.2f}x   "
            f"FastZ {cpu / t.total_seconds:6.1f}x"
        )
    return 0


def _build_fleet(args: argparse.Namespace):
    """Assemble the backend roster + scheduler for ``serve --fleet``."""
    from .fleet import FleetScheduler, InProcessBackend, PoolBackend, SimGpuBackend
    from .gpusim import device_by_name

    backends = [InProcessBackend("cpu0")]
    if args.workers > 0:
        backends.append(PoolBackend("pool0", workers=args.workers))
    device = device_by_name(args.fleet_gpu_device)
    for i in range(max(0, args.fleet_gpus)):
        backends.append(SimGpuBackend(f"gpu{i}", device=device))
    hedge_s = args.fleet_hedge_ms / 1000.0 if args.fleet_hedge_ms > 0 else None
    return FleetScheduler(backends, hedge_after_s=hedge_s)


def _serve_command(args: argparse.Namespace) -> int:
    from . import obs
    from .service import AlignmentService, make_server

    # Process-wide observability: /v1/metrics appends the global registry,
    # which is where the pipeline and lockstep-engine families (batch
    # occupancy, arena reuse) land.  The tracer bounds itself to the last
    # 32 root spans, so a long-lived server cannot grow without limit.
    obs.enable()
    config = _config_from_args(args)
    fleet = _build_fleet(args) if args.fleet else None
    service = AlignmentService(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        max_inflight_bytes=(args.max_inflight_mb * 1024 * 1024) or None,
        cache_entries=args.cache_entries,
        pool_workers=0 if args.fleet else args.workers,
        config=config,
        store=args.store,
        stream_chunk_bp=args.stream_chunk_bp,
        fleet=fleet,
    )
    if args.fleet:
        return _serve_fleet_front_door(args, service, fleet)
    server = make_server(
        service,
        args.host,
        args.port,
        quiet=not args.verbose,
        max_align_body=args.max_body_mb * 1024 * 1024,
        grace_s=args.grace_s,
    )
    host, port = server.server_address[:2]
    print(
        f"serving alignments on http://{host}:{port}/v1 "
        f"(max_batch={args.max_batch}, max_wait={args.max_wait_ms}ms, "
        f"queue={args.max_queue}, cache={args.cache_entries}, "
        f"workers={args.workers}, store={args.store or 'none'})",
        file=sys.stderr,
    )

    # SIGTERM/SIGINT begin a *bounded graceful drain*: stop accepting,
    # let in-flight requests finish (streams close with a terminal error
    # record), then server_close force-closes stragglers after --grace-s.
    import signal

    def _drain(signum, frame):
        print(
            f"draining and shutting down (grace {args.grace_s:g}s)...",
            file=sys.stderr,
        )
        server.initiate_shutdown()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.shutdown(drain=True)
    return 0


def _serve_fleet_front_door(args: argparse.Namespace, service, fleet) -> int:
    """``serve --fleet``: asyncio front door over the fleet scheduler."""
    from .fleet import TenantQuotas, serve_fleet

    quotas = TenantQuotas.from_spec(args.quota) if args.quota else None

    def _on_ready(host: str, port: int) -> None:
        roster = ",".join(fleet.backend_names())
        print(
            f"serving alignments on http://{host}:{port}/v1 "
            f"(fleet=[{roster}], hedge={args.fleet_hedge_ms:g}ms, "
            f"quota={args.quota or 'off'}, max_batch={args.max_batch}, "
            f"store={args.store or 'none'})",
            file=sys.stderr,
        )

    try:
        serve_fleet(
            service,
            args.host,
            args.port,
            quotas=quotas,
            max_align_body=args.max_body_mb * 1024 * 1024,
            grace_s=args.grace_s,
            on_ready=_on_ready,
        )
    finally:
        service.shutdown(drain=True)
    return 0


def _trace_command(args: argparse.Namespace) -> int:
    from . import obs
    from .analysis.traffic import traffic_report
    from .core import FastzOptions
    from .obs.tracing import render_span_tree

    target, stored = _load_side(args.target, args)
    query, _ = _load_side(args.query, args)
    config = _config_from_args(args)
    options = FastzOptions(engine=args.engine, batch_size=args.batch_size)

    # A store-backed target consults the persistent seed-table cache: on
    # a warm run the table loads here and the fastz.seed_table span never
    # appears in the trace; on a cold run the pipeline builds it inline
    # (the span shows up) and we persist it afterwards for next time.
    seed_table = None
    if stored is not None:
        seed_table = stored.store.load_seed_table(
            stored.digest,
            k=config.seed_length,
            spaced_pattern=config.spaced_pattern,
        )

    registry, tracer = obs.enable()
    try:
        result = run_fastz(
            target,
            query,
            config,
            options,
            seed_table=seed_table,
            streaming=args.stream,
            stream_chunk_bp=args.stream_chunk_bp,
        )
        root = tracer.last_root("fastz.run")
        if stored is not None and seed_table is None:
            stored.store.seed_table(
                stored.digest,
                k=config.seed_length,
                spaced_pattern=config.spaced_pattern,
            )
    finally:
        obs.disable()

    if root is None:  # pragma: no cover - instrumentation always spans run
        print("error: no trace captured for the run", file=sys.stderr)
        return 1
    print(render_span_tree(root))

    if args.stream:
        # Stage-overlap proof straight from the span attributes: the
        # producer's seeding interval vs the consumer's extension batches.
        seed_spans = root.find("fastz.stream.seed")
        extend_spans = root.find("fastz.stream.extend")
        if seed_spans and extend_spans:
            seed_end = max(
                float(s.attributes.get("end_s", 0.0)) for s in seed_spans
            )
            first_extend = min(
                float(s.attributes.get("start_s", 0.0)) for s in extend_spans
            )
            overlapped = first_extend < seed_end
            print(
                f"stream overlap:     seeding ended {seed_end:.3f}s, first "
                f"extension began {first_extend:.3f}s — "
                + ("stages overlapped" if overlapped else "no overlap "
                   "(input too small for more than one batch)")
            )

    bins = result.bin_counts().tolist()
    report = traffic_report(result.arrays)
    print(f"anchors:            {len(result.tasks)}")
    print(f"alignments:         {len(result.unique_alignments())}")
    print(
        f"eager fraction:     {result.eager_fraction:.4f} "
        f"({result.eager_count}/{len(result.tasks)} anchor tasks)"
    )
    print(f"bins [eager,1-4]:   {bins}")
    print(
        f"traffic elided:     score {100 * report.score_traffic_reduction:.1f}%, "
        f"overall {100 * report.overall_access_reduction:.1f}% "
        "(paper: >96% / ~97%)"
    )
    occupancy = registry.histogram("repro_batch_occupancy")
    if occupancy.count():
        acquires = registry.counter("repro_batch_arena_acquires_total").value()
        allocs = registry.counter("repro_batch_arena_allocs_total").value()
        print(
            f"batch occupancy:    {occupancy.sum() / occupancy.count():.3f} "
            f"mean live/slab cells over {occupancy.count()} lockstep sweeps; "
            f"arena: {int(allocs)} allocs / {int(acquires)} slab checkouts"
        )
    steps = registry.counter("repro_batch_sweep_steps_total").value()
    if steps:
        tiles = registry.counter("repro_batch_sweep_tiles_total").value()
        slab = registry.counter("repro_batch_sweep_slab_cells_total").value()
        alive = registry.counter("repro_batch_sweep_live_cells_total").value()
        masked = (1.0 - alive / slab) if slab else 0.0
        print(
            f"lockstep sweeps:    {int(steps)} anti-diagonal steps / "
            f"{int(tiles)} row-tile sweeps; masked dead-lane fraction "
            f"{100 * masked:.1f}% of {int(slab)} slab cells"
        )
    # Per-bin executor sweep ledger (the whole-bin tiling/masking tradeoff,
    # visible without a profiler): sweeps per bin and the dead-work share.
    bin_sweeps = {
        dict(key).get("bin", "?"): child.value
        for key, child in registry.counter("repro_batch_bin_sweeps_total").samples()
    }
    if bin_sweeps:
        bin_slab = {
            dict(key).get("bin", "?"): child.value
            for key, child in registry.counter(
                "repro_batch_bin_slab_cells_total"
            ).samples()
        }
        bin_masked = {
            dict(key).get("bin", "?"): child.value
            for key, child in registry.counter(
                "repro_batch_bin_masked_cells_total"
            ).samples()
        }
        parts = []
        for bin_id in sorted(bin_sweeps, key=str):
            slab = bin_slab.get(bin_id, 0.0)
            frac = (bin_masked.get(bin_id, 0.0) / slab) if slab else 0.0
            parts.append(
                f"bin {bin_id}: {int(bin_sweeps[bin_id])} sweeps, "
                f"{100 * frac:.1f}% masked"
            )
        print(f"executor bins:      {'; '.join(parts)}")
    if args.metrics:
        print()
        print(registry.render(), end="")
    return 0


def _wga_command(args: argparse.Namespace) -> int:
    from . import api
    from .jobs import JobOptions
    from .lastz.output import write_general, write_maf

    target, t_stored = _load_side(args.target, args)
    query, q_stored = _load_side(args.query, args)
    config = _config_from_args(args)
    say = (lambda _msg: None) if args.quiet else (
        lambda msg: print(f"# {msg}", file=sys.stderr)
    )

    on_alignment = None
    if args.follow:
        def on_alignment(a):
            print(
                f"# >> t {a.target_start}-{a.target_end} "
                f"q {a.query_start}-{a.query_end} score {a.score}",
                file=sys.stderr,
            )

    # Store-backed sides go in as StoredReference handles: worker shards
    # then carry (store root, digest) instead of pickled code arrays.
    report = api.align_chunked(
        t_stored or target,
        q_stored or query,
        config,
        {"engine": args.engine, "batch_size": args.batch_size},
        job=JobOptions(
            chunk_size=args.chunk_size,
            overlap=args.overlap,
            workers=args.workers,
            max_attempts=args.max_attempts,
        ),
        job_dir=args.job_dir,
        fresh=args.fresh,
        log=say,
        on_alignment=on_alignment,
    )

    sink = open(args.output, "w", encoding="ascii") if args.output else sys.stdout
    try:
        if args.format == "maf":
            write_maf(sink, report.alignments, target, query)
        else:
            write_general(sink, report.alignments, target, query)
    finally:
        if args.output:
            sink.close()

    status = "complete" if report.complete else (
        f"complete with {len(report.quarantined)} quarantined chunk(s)"
    )
    print(
        f"# wga {status}: {len(report.alignments)} alignments, "
        f"{report.n_anchors} anchors, {report.retries} retries, "
        f"{report.worker_deaths} worker deaths, {report.elapsed_s:.2f}s"
        + (" (resumed)" if report.resumed else ""),
        file=sys.stderr,
    )
    for gap in report.quarantined:
        print(
            f"# wga gap: {gap.phase} task {gap.task_id} failed "
            f"{gap.attempts} attempts ({gap.error})",
            file=sys.stderr,
        )
    # Quarantined chunks are a *reported* gap, not a failure: the journal
    # keeps their tasks pending, so a rerun retries exactly those chunks.
    # --strict surfaces the gap in the exit status for scripted callers
    # that would otherwise mistake a gapped file for a complete run.
    if args.strict and not report.complete:
        return 3
    return 0


def _refs_command(args: argparse.Namespace) -> int:
    from .genome.alphabet import encode_with_mask
    from .store import ReferenceStore, StoreError

    store = ReferenceStore(_store_root(args))
    if args.refs_command == "add":
        from .genome.fasta import iter_fasta_records

        for path in args.fasta:
            for name, text in iter_fasta_records(path):
                codes, mask = encode_with_mask(text)
                digest = store.add(codes, name=name, mask=mask)
                if args.precompute_seeds:
                    store.seed_table(digest, k=args.seed_length)
                print(f"{digest}  {name}  {codes.size:,} bp")
        return 0
    if args.refs_command == "ls":
        rows = store.list()
        for row in rows:
            flag = "" if row.get("valid", True) else "  [corrupt]"
            print(f"{row['digest']}  {row['length']:>12,}  {row['name']}{flag}")
        if not rows:
            print(f"# empty store at {store.root}", file=sys.stderr)
        return 0
    # rm
    try:
        digest = store.resolve(args.digest)
        store.remove(digest)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"removed {digest}")
    return 0


def main(argv: Seq[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from .store import StoreError

    try:
        if args.command == "align":
            return _align_command(args)
        if args.command == "synth":
            return _synth_command(args)
        if args.command == "serve":
            return _serve_command(args)
        if args.command == "trace":
            return _trace_command(args)
        if args.command == "wga":
            return _wga_command(args)
        if args.command == "refs":
            return _refs_command(args)
        return _bench_command(args)
    except StoreError as exc:
        # Unknown digests and corrupt store entries are user-facing
        # conditions, not crashes: print the actionable message cleanly.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
