"""Workload profiles: run each benchmark's pipelines once, reuse everywhere.

Every figure/table of the evaluation consumes the same underlying data: the
per-task work profiles of the reference LASTZ run (CPU timing) and of the
FastZ run (GPU timing), plus the resulting alignments.  Building a profile
means running the actual DP engines over the synthetic pair, which is the
expensive part — so profiles are cached both in-process and on disk
(``REPRO_CACHE_DIR``, default ``.repro_cache/`` under the working
directory; set ``REPRO_NO_CACHE=1`` to disable).

The on-disk cache is self-limiting: ``REPRO_CACHE_MAX_MB`` caps its total
size (unset = unlimited), evicting oldest-first after each write, and a
``CACHE_VERSION`` stamp file records which ``_CACHE_VERSION``/
``_CACHE_FORMAT`` wrote the directory — when a version bump changes the
stamp, every cached pickle is purged eagerly instead of lingering forever
under now-unreachable keys.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.options import SCALED_BIN_EDGES, FastzOptions
from ..core.pipeline import FastzResult, run_fastz
from ..core.task import TaskArrays
from ..genome.evolve import GenomePair
from ..lastz.config import LastzConfig
from ..lastz.pipeline import LastzResult, run_gapped_lastz
from ..scoring import default_scheme
from .registry import BenchmarkSpec, build_benchmark_pair

__all__ = [
    "WorkloadProfile",
    "BENCH_OPTIONS",
    "bench_calibration",
    "bench_config",
    "build_profile",
    "build_sensitivity_run",
    "clear_cache",
]

#: Bump when profile-affecting code changes, to invalidate stale caches.
_CACHE_VERSION = 7

#: Bump when the *pickle schema* of cached objects changes (new/renamed
#: fields on profiles, tasks, options, results...).  Old pickles then miss
#: the key and are rebuilt instead of being unpickled into garbage — or
#: crashing tier-1 with ``AttributeError`` mid-load.
_CACHE_FORMAT = 2

#: FastZ options used by the scaled benchmark suite: full FastZ with the
#: suite's scaled bin edges, extended by the lockstep batched engine (the
#: results are bit-identical to the scalar engine; profile builds are just
#: several times faster).
BENCH_OPTIONS = FastzOptions(bin_edges=SCALED_BIN_EDGES, engine="batched")

#: Calibration for the scaled suite.  The only override is the modeled
#: device-memory budget for per-task DP allocations: the suite's search
#: depths (and task count) are scaled ~40x down from the paper's, so the
#: allocation pressure that makes untrimmed executors collapse occupancy is
#: reproduced by scaling the budget with the workload (see EXPERIMENTS.md).
def bench_calibration():
    from ..gpusim.calibration import Calibration

    return Calibration(modeled_memory_bytes=16e6)

_MEMORY_CACHE: dict[str, "WorkloadProfile"] = {}


def bench_config() -> LastzConfig:
    """The standard configuration all benchmarks run under.

    ``ydrop``/``gap_extend`` are scaled from the LASTZ defaults (9400/30)
    to 2400/60: the search space stays much larger than the typical
    alignment — the property FastZ's inspector exploits — while per-task
    DP cell counts stay tractable for pure-Python engines (EXPERIMENTS.md
    discusses this scaling).  ``hsp_threshold`` keeps the ungapped
    filter's selectivity equivalent to LASTZ's: LASTZ's 3000 sits ~2-2.7x
    above its 12-of-19 spaced-seed word score, and our contiguous 19-mer
    word scores 19 x 91 = 1729, so the matching multiple is ~4500.
    ``diag_band`` merges indel-shifted seeds of one homology into a single
    anchor, as LASTZ's chaining stage does.
    """
    return LastzConfig(
        scheme=default_scheme(gap_extend=60, ydrop=2400, hsp_threshold=4500),
        collapse_window=3000,
        diag_band=150,
        traceback=False,
    )


@dataclass
class WorkloadProfile:
    """Everything the evaluation needs about one benchmark run."""

    name: str
    pair_name: str
    lastz: LastzResult
    fastz: FastzResult
    #: Host<->device transfer volume for the 'other' component (sequences
    #: in, anchors in, alignments out).
    transfer_bytes: int
    scale: float

    @property
    def arrays(self) -> TaskArrays:
        return self.fastz.arrays

    @property
    def cpu_cells(self) -> np.ndarray:
        return self.lastz.cells_per_task

    @property
    def n_anchors(self) -> int:
        return len(self.fastz.tasks)


#: Glob patterns of every cached-object family under the cache dir.
_CACHE_PATTERNS = ("profile-*.pkl", "sens-*.pkl")

#: Name of the version stamp file inside the cache directory.
_STAMP_NAME = "CACHE_VERSION"

#: Cache directories already stale-checked this process.
_STALE_CHECKED: set[Path] = set()


def _expected_stamp() -> str:
    return f"{_CACHE_VERSION}.{_CACHE_FORMAT}"


def _cache_files(directory: Path) -> list[Path]:
    return [p for pattern in _CACHE_PATTERNS for p in directory.glob(pattern)]


def _evict_stale(directory: Path) -> None:
    """Purge cache files written under an older version stamp.

    A missing stamp is treated as current (pre-stamp caches shipped with
    the repo are valid); it is then written so the *next* version bump
    purges eagerly rather than leaving unreachable pickles behind.
    """
    stamp = directory / _STAMP_NAME
    try:
        recorded = stamp.read_text().strip()
    except OSError:
        recorded = None
    if recorded == _expected_stamp():
        return
    if recorded is not None:
        for path in _cache_files(directory):
            try:
                path.unlink()
            except OSError:
                pass
    try:
        stamp.write_text(_expected_stamp() + "\n")
    except OSError:
        pass


def _cache_max_bytes() -> int | None:
    """The ``REPRO_CACHE_MAX_MB`` budget in bytes (None = unlimited)."""
    raw = os.environ.get("REPRO_CACHE_MAX_MB")
    if not raw:
        return None
    try:
        megabytes = float(raw)
    except ValueError:
        return None
    return int(megabytes * 2**20) if megabytes > 0 else None


def _enforce_cache_cap(directory: Path) -> None:
    """Evict oldest-first until the cache fits ``REPRO_CACHE_MAX_MB``."""
    limit = _cache_max_bytes()
    if limit is None:
        return
    entries = []
    for path in _cache_files(directory):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, stat.st_size, path))
    total = sum(size for _, size, _ in entries)
    for _, size, path in sorted(entries):
        if total <= limit:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size


def _write_cache(path: Path, obj) -> None:
    """Persist one cache entry, then re-apply the size cap."""
    path.parent.mkdir(parents=True, exist_ok=True)
    stamp = path.parent / _STAMP_NAME
    if not stamp.exists():
        _evict_stale(path.parent)
    with open(path, "wb") as handle:
        pickle.dump(obj, handle)
    _enforce_cache_cap(path.parent)


def _cache_dir() -> Path | None:
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    directory = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
    if directory not in _STALE_CHECKED and directory.is_dir():
        _STALE_CHECKED.add(directory)
        _evict_stale(directory)
    return directory


def _cache_key(spec: BenchmarkSpec, scale: float) -> str:
    payload = repr(
        (_CACHE_VERSION, _CACHE_FORMAT, spec, scale, bench_config(), BENCH_OPTIONS)
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:24]


def _load_cached(path: Path):
    """Unpickle a cache file, or return ``None`` after deleting it if corrupt.

    Truncated writes, stale schemas and plain disk corruption all surface
    here (``UnpicklingError``/``EOFError``/``AttributeError``); a corrupt
    cache entry must degrade to a recompute-and-rewrite, never crash the
    caller.
    """
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError, ImportError) as exc:
        import warnings

        warnings.warn(
            f"discarding corrupt profile cache {path.name}: {exc!r}", stacklevel=2
        )
        try:
            path.unlink()
        except OSError:
            pass
        return None


def clear_cache() -> None:
    """Drop in-process and on-disk profile caches (stamp included)."""
    _MEMORY_CACHE.clear()
    directory = _cache_dir()
    if directory and directory.exists():
        for path in _cache_files(directory):
            path.unlink()
        (directory / _STAMP_NAME).unlink(missing_ok=True)
        _STALE_CHECKED.discard(directory)


def _pool_workers() -> int | None:
    """Pool size for uncached profile builds (``REPRO_POOL_WORKERS``)."""
    raw = os.environ.get("REPRO_POOL_WORKERS")
    if not raw:
        return None
    value = int(raw)
    return value if value > 1 else None


def _profile_from_pair(
    spec: BenchmarkSpec, pair: GenomePair, scale: float, workers: int | None = None
) -> WorkloadProfile:
    config = bench_config()
    lastz = run_gapped_lastz(pair.target, pair.query, config)
    fastz = run_fastz(
        pair.target,
        pair.query,
        config,
        BENCH_OPTIONS,
        anchors=lastz.anchors,
        workers=workers if workers is not None else _pool_workers(),
    )
    transfer = (
        len(pair.target)
        + len(pair.query)
        + 16 * len(fastz.tasks)
        + 64 * len(fastz.alignments)
    )
    return WorkloadProfile(
        name=spec.name,
        pair_name=pair.name,
        lastz=lastz,
        fastz=fastz,
        transfer_bytes=transfer,
        scale=scale,
    )


def build_sensitivity_run(
    spec: BenchmarkSpec,
    *,
    scale: float = 1.0,
    use_cache: bool = True,
):
    """Run gapped AND ungapped pipelines on one pair (Figure 2).

    Returns ``(gapped: LastzResult, ungapped: UngappedLastzResult)``.
    Cached like profiles.
    """
    from ..lastz.ungapped import run_ungapped_lastz

    key = _cache_key(spec, scale) + "-sens"
    if use_cache and key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]
    directory = _cache_dir() if use_cache else None
    path = (
        directory / f"sens-{spec.name.replace('/', '_')}-{key}.pkl"
        if directory
        else None
    )
    if path is not None and path.exists():
        pairres = _load_cached(path)
        if pairres is not None:
            _MEMORY_CACHE[key] = pairres
            return pairres

    pair = build_benchmark_pair(spec, scale)
    config = bench_config()
    gapped = run_gapped_lastz(pair.target, pair.query, config)
    ungapped = run_ungapped_lastz(
        pair.target, pair.query, config, anchors=gapped.anchors
    )
    pairres = (gapped, ungapped)
    if use_cache:
        _MEMORY_CACHE[key] = pairres
        if path is not None:
            _write_cache(path, pairres)
    return pairres


def build_profile(
    spec: BenchmarkSpec,
    *,
    scale: float = 1.0,
    use_cache: bool = True,
    workers: int | None = None,
) -> WorkloadProfile:
    """Build (or fetch) the work profile of one benchmark.

    Corrupt or stale cache entries are deleted and transparently rebuilt
    (then rewritten).  ``workers`` shards the FastZ extension pass across a
    multiprocessing pool for uncached builds (default: the
    ``REPRO_POOL_WORKERS`` environment variable, else single-process).
    """
    key = _cache_key(spec, scale)
    if use_cache and key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]

    directory = _cache_dir() if use_cache else None
    path = directory / f"profile-{spec.name.replace('/', '_')}-{key}.pkl" if directory else None
    if path is not None and path.exists():
        profile = _load_cached(path)
        if profile is not None:
            _MEMORY_CACHE[key] = profile
            return profile

    pair = build_benchmark_pair(spec, scale)
    profile = _profile_from_pair(spec, pair, scale, workers)
    if use_cache:
        _MEMORY_CACHE[key] = profile
        if path is not None:
            _write_cache(path, profile)
    return profile
