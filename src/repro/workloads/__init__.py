"""Benchmark workloads: registry of genome pairs and cached work profiles."""

from .profiles import WorkloadProfile, bench_config, build_profile, clear_cache
from .registry import (
    ALL_BENCHMARKS,
    CROSS_GENUS_BENCHMARKS,
    GENOMES,
    SAME_GENUS_BENCHMARKS,
    SENSITIVITY_BENCHMARK,
    BenchmarkSpec,
    Genome,
    bench_scale,
    build_benchmark_pair,
    get_benchmark,
)

__all__ = [
    "ALL_BENCHMARKS",
    "BenchmarkSpec",
    "CROSS_GENUS_BENCHMARKS",
    "GENOMES",
    "Genome",
    "SAME_GENUS_BENCHMARKS",
    "SENSITIVITY_BENCHMARK",
    "WorkloadProfile",
    "bench_config",
    "bench_scale",
    "build_benchmark_pair",
    "build_profile",
    "clear_cache",
]
