"""Benchmark registry: the paper's genome pairs, synthesised.

Table 1 lists seven species' chromosomes; Figure 6 defines nine same-genus
pairwise alignments (C1_{1..5}, D1_{2R,2}, A1/A2/A3_{X,X}) and Figure 10
six cross-genus (dissimilar) pairs.  We cannot download genomes here, so
each pair is synthesised by :func:`repro.genome.build_pair` with per-pair
homology-segment classes whose *proportions* follow the paper's Table 2
alignment-length distribution:

* ~78% of seeds resolve within the eager-traceback tile,
* ~21% fall in bin 1 (<= 512 bp), skewed short,
* a thin tail populates bins 2-4, ordered across benchmarks exactly as
  Table 2 orders them (C1_55 has the most bin-4 alignments, D1_2R,2 none).

Scaling: the paper extends 1M seeds per pair over 12-31 Mbp chromosomes.
Default scale here is ~1000 anchors over chromosomes shrunk 50x, and the
bins 2-4 tail is *overrepresented* relative to 1M-seed proportions so the
load-imbalance phenomena those bins cause remain visible at small scale
(documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..genome.evolve import GenomePair, SegmentClass, build_pair

__all__ = [
    "Genome",
    "GENOMES",
    "BenchmarkSpec",
    "SAME_GENUS_BENCHMARKS",
    "CROSS_GENUS_BENCHMARKS",
    "SENSITIVITY_BENCHMARK",
    "ALL_BENCHMARKS",
    "get_benchmark",
    "build_benchmark_pair",
    "bench_scale",
]


@dataclass(frozen=True)
class Genome:
    """One Table-1 chromosome (real size) and its synthetic stand-in size."""

    label: str
    species: str
    chromosome: str
    real_basepairs: int

    @property
    def scaled_basepairs(self) -> int:
        """Synthetic chromosome length (50x shrink, see module docstring)."""
        return self.real_basepairs // 50


#: Table 1 of the paper.
GENOMES: dict[str, Genome] = {
    g.label: g
    for g in [
        Genome("Ce1", "C. elegans", "chr1", 15_072_434),
        Genome("Cb1", "C. briggsae", "chr1", 15_455_979),
        Genome("Ce2", "C. elegans", "chr2", 15_279_421),
        Genome("Cb2", "C. briggsae", "chr2", 16_627_154),
        Genome("Ce3", "C. elegans", "chr3", 13_783_801),
        Genome("Cb3", "C. briggsae", "chr3", 14_578_851),
        Genome("Ce4", "C. elegans", "chr4", 17_493_829),
        Genome("Cb4", "C. briggsae", "chr4", 17_485_439),
        Genome("Ce5", "C. elegans", "chr5", 20_924_180),
        Genome("Cb5", "C. briggsae", "chr5", 19_495_157),
        Genome("Dm2R", "D. melanogaster", "chr2R", 25_286_936),
        Genome("Dp2", "D. pseudoobscura", "chr2", 30_794_189),
        Genome("AalX", "A. albimanus", "chrX", 12_318_379),
        Genome("AatX", "A. atroparvus", "chrX", 17_503_697),
        Genome("AgaX", "A. gambiae", "chrX", 24_393_108),
    ]
}


@dataclass(frozen=True)
class BenchmarkSpec:
    """One pairwise-alignment benchmark (an edge of Figure 6 or 10)."""

    name: str
    target: str  # Genome label
    query: str
    seed: int
    #: Segment class counts at scale 1.0 (about 1000 anchors).  The eager
    #: class dominates; ~23% of its extensions overshoot the 16x16 tile by
    #: lucky background matches and land in bin 1 (real genomes leak the
    #: same way — the paper's eager rate is 75-80%, not 100%), so the
    #: planted bin-1 class only tops up the tail of longer alignments.
    eager_count: int = 900
    bin1_count: int = 48
    bin2_count: int = 3
    bin3_lengths: tuple[int, ...] = ()
    bin4_lengths: tuple[int, ...] = ()
    #: Divergence of the short/homologous classes (higher for cross-genus).
    bin1_divergence: float = 0.07
    cross_genus: bool = False
    #: Extra gap-rich segments for the sensitivity study (Figure 2).
    gappy_count: int = 0

    def classes(self, scale: float = 1.0) -> list[SegmentClass]:
        def scaled(count: int) -> int:
            return max(1, round(count * scale)) if count > 0 else 0

        classes = [
            SegmentClass("eager", scaled(self.eager_count), 19, 21, divergence=0.01),
            # bin1 (scaled edge 64) skews short, like the paper's 16-512 bin.
            SegmentClass(
                "bin1",
                scaled(self.bin1_count),
                30,
                55,
                divergence=self.bin1_divergence,
                indel_rate=0.003,
            ),
        ]
        if self.bin2_count:
            classes.append(
                SegmentClass(
                    "bin2",
                    scaled(self.bin2_count),
                    90,
                    230,
                    divergence=0.08,
                    indel_rate=0.002,
                )
            )
        for idx, length in enumerate(self.bin3_lengths):
            classes.append(
                SegmentClass(
                    f"bin3-{idx}", 1, length, length, divergence=0.07, indel_rate=0.002
                )
            )
        for idx, length in enumerate(self.bin4_lengths):
            classes.append(
                SegmentClass(
                    f"bin4-{idx}", 1, length, length, divergence=0.06, indel_rate=0.002
                )
            )
        if self.gappy_count:
            # Gap-interrupted homology: conserved ~30 bp blocks separated by
            # ~8 bp indels. Ungapped filtering cannot see past the gaps, so
            # these are the alignments only the gapped pipeline finds (Fig 2).
            # Short enough that indel drift keeps one anchor per segment;
            # gap-dense enough that the anchor's clean block rarely clears
            # the ungapped HSP threshold.
            classes.append(
                SegmentClass(
                    "gappy",
                    scaled(self.gappy_count),
                    300,
                    700,
                    divergence=0.15,
                    indel_rate=0.050,
                    mean_indel_len=8.0,
                )
            )
        return classes


def _c1(j: int, seed: int, bin2: int, bin3: tuple[int, ...], bin4: tuple[int, ...]) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=f"C1_{j},{j}",
        target=f"Ce{j}",
        query=f"Cb{j}",
        seed=seed,
        bin2_count=bin2,
        bin3_lengths=bin3,
        bin4_lengths=bin4,
    )


#: Figure 6: the nine same-genus benchmarks, with bins 2-4 tails ordered
#: as in Table 2 (C1_55 heaviest, D1_2R,2 lightest).
SAME_GENUS_BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    _c1(5, 105, 3, (420, 660), (1750, 1250)),
    _c1(2, 102, 3, (400, 620), (1550,)),
    _c1(1, 101, 4, (380, 600), (1450,)),
    _c1(3, 103, 4, (370, 580), (1350,)),
    _c1(4, 104, 3, (350,), (1200,)),
    BenchmarkSpec(
        name="A1_X,X",
        target="AalX",
        query="AatX",
        seed=111,
        eager_count=950,
        bin1_count=35,
        bin2_count=2,
        bin3_lengths=(430,),
        bin4_lengths=(1150,),
    ),
    BenchmarkSpec(
        name="A2_X,X",
        target="AalX",
        query="AgaX",
        seed=112,
        eager_count=948,
        bin1_count=36,
        bin2_count=2,
        bin3_lengths=(410,),
        bin4_lengths=(1120,),
    ),
    BenchmarkSpec(
        name="A3_X,X",
        target="AatX",
        query="AgaX",
        seed=113,
        eager_count=952,
        bin1_count=34,
        bin2_count=2,
        bin3_lengths=(390,),
        bin4_lengths=(1100,),
    ),
    BenchmarkSpec(
        name="D1_2R,2",
        target="Dm2R",
        query="Dp2",
        seed=121,
        eager_count=945,
        bin1_count=40,
        bin2_count=1,
        bin3_lengths=(),
        bin4_lengths=(),
    ),
)


def _cross(name: str, target: str, query: str, seed: int) -> BenchmarkSpec:
    """Cross-genus pairs: no bins 3/4, higher divergence, more eager."""
    return BenchmarkSpec(
        name=name,
        target=target,
        query=query,
        seed=seed,
        eager_count=960,
        bin1_count=26,
        bin2_count=1,
        bin3_lengths=(),
        bin4_lengths=(),
        bin1_divergence=0.11,
        cross_genus=True,
    )


#: Figure 10: cross-genus (dissimilar) pairs.
CROSS_GENUS_BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    _cross("CD1_1,2R", "Ce1", "Dm2R", 201),
    _cross("CD2_2,2", "Ce2", "Dp2", 202),
    _cross("CA1_1,X", "Ce1", "AalX", 203),
    _cross("CA2_3,X", "Ce3", "AgaX", 204),
    _cross("DA1_2R,X", "Dm2R", "AatX", 205),
    _cross("DA2_2,X", "Dp2", "AgaX", 206),
)

#: Figure 2's pair: a nematode chr1 alignment with gap-rich homology, so the
#: gapped/ungapped sensitivity difference is visible.
SENSITIVITY_BENCHMARK = BenchmarkSpec(
    name="FIG2_1,1",
    target="Ce1",
    query="Cb1",
    seed=301,
    eager_count=820,
    bin1_count=60,
    bin2_count=4,
    bin3_lengths=(380, 560),
    bin4_lengths=(1400,),
    gappy_count=42,
)

ALL_BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    *SAME_GENUS_BENCHMARKS,
    *CROSS_GENUS_BENCHMARKS,
    SENSITIVITY_BENCHMARK,
)

_BY_NAME = {b.name: b for b in ALL_BENCHMARKS}


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark by its paper label (e.g. ``"C1_1,1"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def bench_scale(default: float = 1.0) -> float:
    """Benchmark scale factor, overridable via ``REPRO_BENCH_SCALE``."""
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if raw is None:
        return default
    value = float(raw)
    if value <= 0:
        raise ValueError("REPRO_BENCH_SCALE must be positive")
    return value


def build_benchmark_pair(spec: BenchmarkSpec, scale: float = 1.0) -> GenomePair:
    """Synthesise the genome pair for a benchmark at the given scale."""
    target = GENOMES[spec.target]
    query = GENOMES[spec.query]
    # Chromosome length scales with sqrt of anchor scale so densities stay
    # reasonable at both small and large scales.
    stretch = max(scale, 0.25) ** 0.5
    return build_pair(
        spec.name,
        target_length=int(target.scaled_basepairs * stretch),
        query_length=int(query.scaled_basepairs * stretch),
        classes=spec.classes(scale),
        rng=spec.seed,
    )
