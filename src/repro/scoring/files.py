"""LASTZ score-file I/O.

LASTZ accepts substitution matrices from text files of the form::

    # comments and parameters
    gap_open_penalty = 400
    gap_extend_penalty = 30

         A     C     G     T
    A   91  -114   -31  -123
    C -114   100  -125   -31
    G  -31  -125   100  -114
    T -123   -31  -114    91

This module reads and writes that dialect so users can carry their tuned
LASTZ matrices straight into this library.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from .matrix import ScoringScheme, default_scheme

__all__ = ["read_score_file", "write_score_file"]

_ROW_ORDER = "ACGT"
_PARAM_KEYS = {
    "gap_open_penalty": "gap_open",
    "gap_extend_penalty": "gap_extend",
    "y_drop": "ydrop",
    "x_drop": "xdrop",
    "hsp_threshold": "hsp_threshold",
    "gapped_threshold": "gapped_threshold",
}


def read_score_file(path: str | Path | TextIO) -> ScoringScheme:
    """Parse a LASTZ-style score file into a :class:`ScoringScheme`.

    Unspecified parameters fall back to the LASTZ defaults
    (:func:`repro.scoring.default_scheme`).
    """
    own = not isinstance(path, io.TextIOBase)
    handle: TextIO = open(path, "r", encoding="ascii") if own else path  # type: ignore[arg-type]
    try:
        params: dict[str, int] = {}
        header: list[str] | None = None
        rows: dict[str, list[int]] = {}
        for raw in handle:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "=" in line:
                key, _, value = line.partition("=")
                key = key.strip().lower()
                if key in _PARAM_KEYS:
                    params[_PARAM_KEYS[key]] = int(value.strip())
                continue
            fields = line.split()
            if header is None:
                if [f.upper() for f in fields] != list(_ROW_ORDER):
                    raise ValueError(
                        f"expected column header 'A C G T', got {line!r}"
                    )
                header = fields
                continue
            base = fields[0].upper()
            if base not in _ROW_ORDER or len(fields) != 5:
                raise ValueError(f"malformed matrix row: {line!r}")
            rows[base] = [int(v) for v in fields[1:]]
        if header is None or set(rows) != set(_ROW_ORDER):
            raise ValueError("score file is missing a complete 4x4 matrix")
    finally:
        if own:
            handle.close()

    matrix = np.array([rows[b] for b in _ROW_ORDER], dtype=np.int32)
    base = default_scheme(**params)
    full = np.array(base.substitution, copy=True)
    full[:4, :4] = matrix
    return ScoringScheme(
        substitution=full,
        gap_open=base.gap_open,
        gap_extend=base.gap_extend,
        ydrop=base.ydrop,
        xdrop=base.xdrop,
        hsp_threshold=base.hsp_threshold,
        gapped_threshold=base.gapped_threshold,
    )


def write_score_file(path: str | Path | TextIO, scheme: ScoringScheme) -> None:
    """Write a scheme in the LASTZ score-file dialect."""
    own = not isinstance(path, io.TextIOBase)
    handle: TextIO = open(path, "w", encoding="ascii") if own else path  # type: ignore[arg-type]
    try:
        handle.write("# written by fastz-repro\n")
        handle.write(f"gap_open_penalty = {scheme.gap_open}\n")
        handle.write(f"gap_extend_penalty = {scheme.gap_extend}\n")
        handle.write(f"y_drop = {scheme.ydrop}\n")
        handle.write(f"x_drop = {scheme.xdrop}\n")
        handle.write(f"hsp_threshold = {scheme.hsp_threshold}\n")
        handle.write(f"gapped_threshold = {scheme.gapped_threshold}\n\n")
        handle.write("      " + "  ".join(f"{b:>5}" for b in _ROW_ORDER) + "\n")
        for i, b in enumerate(_ROW_ORDER):
            values = "  ".join(f"{int(scheme.substitution[i, j]):>5}" for j in range(4))
            handle.write(f"{b}  {values}\n")
    finally:
        if own:
            handle.close()
