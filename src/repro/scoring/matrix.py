"""Substitution matrices and the scoring scheme used by every aligner.

LASTZ's default substitution matrix is HOXD70 (Chiaromonte/Yap/Miller) with
affine gap penalties of 400 (open) + 30 (extend) and a default y-drop of
``open + 300 * extend``.  All of those defaults are reproduced here; see
:func:`default_scheme`.

Scores are kept as ``int32``: the DP kernels rely on integer arithmetic so
the cyclic-buffer wavefront is bit-exact against the reference matrix
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "HOXD70",
    "ScoringScheme",
    "default_scheme",
    "unit_scheme",
    "NEG_INF",
]

#: A safely-additive "minus infinity" for int32 DP cells.
NEG_INF = np.int32(-(2**30))

#: HOXD70 substitution scores, rows/cols in A, C, G, T order.
HOXD70 = np.array(
    [
        [91, -114, -31, -123],
        [-114, 100, -125, -31],
        [-31, -125, 100, -114],
        [-123, -31, -114, 91],
    ],
    dtype=np.int32,
)

#: Penalty applied to any comparison involving an N base.
_N_SCORE = np.int32(-100)


def _expand_with_n(matrix: np.ndarray, n_score: int) -> np.ndarray:
    """Return a 5x5 matrix with an N row/column appended."""
    matrix = np.asarray(matrix, dtype=np.int32)
    if matrix.shape != (4, 4):
        raise ValueError("substitution matrix must be 4x4 (ACGT)")
    full = np.full((5, 5), np.int32(n_score), dtype=np.int32)
    full[:4, :4] = matrix
    return full


@dataclass(frozen=True)
class ScoringScheme:
    """Complete parameterisation of gapped/ungapped extension.

    Attributes
    ----------
    substitution:
        5x5 ``int32`` matrix indexed by 2-bit codes (row: target base,
        column: query base); index 4 is N.
    gap_open:
        Penalty charged when a gap is *opened* (positive number; the first
        gap base costs ``gap_open + gap_extend``, as in Gotoh/LASTZ).
    gap_extend:
        Penalty per gap base (positive number).
    ydrop:
        Gapped-extension termination threshold: cells scoring more than
        ``ydrop`` below the best score seen so far are pruned.
    xdrop:
        Ungapped-extension termination threshold (used by the ungapped
        filtering stage only).
    hsp_threshold:
        Minimum ungapped-segment score for a seed to survive ungapped
        filtering.
    gapped_threshold:
        Minimum final alignment score for an alignment to be reported.
    """

    substitution: np.ndarray = field(repr=False)
    gap_open: int
    gap_extend: int
    ydrop: int
    xdrop: int
    hsp_threshold: int
    gapped_threshold: int

    def __post_init__(self) -> None:
        sub = np.ascontiguousarray(self.substitution, dtype=np.int32)
        if sub.shape != (5, 5):
            raise ValueError("substitution matrix must be 5x5 (ACGTN)")
        sub.setflags(write=False)
        object.__setattr__(self, "substitution", sub)
        for name in ("gap_open", "gap_extend", "ydrop", "xdrop"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.gap_extend == 0:
            raise ValueError("gap_extend must be positive (y-drop relies on it)")

    # -- convenience -------------------------------------------------------
    def score_pair(self, a: int, b: int) -> int:
        """Substitution score of one base pair (codes)."""
        return int(self.substitution[a, b])

    def match_score(self) -> int:
        """Best possible per-base score (used for bounds in tests)."""
        return int(self.substitution[:4, :4].max())

    def worst_mismatch(self) -> int:
        """Worst substitution score among real bases."""
        return int(self.substitution[:4, :4].min())

    def gap_first(self) -> int:
        """Cost of the first base of a gap (open + extend)."""
        return self.gap_open + self.gap_extend

    def profile_row(self, code: int) -> np.ndarray:
        """Substitution row for a fixed target base against any query base."""
        return self.substitution[code]


def default_scheme(
    *,
    gap_open: int = 400,
    gap_extend: int = 30,
    ydrop: int | None = None,
    xdrop: int | None = None,
    hsp_threshold: int = 3000,
    gapped_threshold: int = 3000,
    n_score: int = int(_N_SCORE),
) -> ScoringScheme:
    """LASTZ's default HOXD70 scheme.

    ``ydrop`` defaults to ``gap_open + 300 * gap_extend`` (= 9400) and
    ``xdrop`` to ten times the A/A match score (= 910), matching LASTZ.
    """
    if ydrop is None:
        ydrop = gap_open + 300 * gap_extend
    if xdrop is None:
        xdrop = 10 * int(HOXD70[0, 0])
    return ScoringScheme(
        substitution=_expand_with_n(HOXD70, n_score),
        gap_open=gap_open,
        gap_extend=gap_extend,
        ydrop=ydrop,
        xdrop=xdrop,
        hsp_threshold=hsp_threshold,
        gapped_threshold=gapped_threshold,
    )


def unit_scheme(
    *,
    match: int = 1,
    mismatch: int = -1,
    gap_open: int = 2,
    gap_extend: int = 1,
    ydrop: int = 10,
    xdrop: int = 5,
    hsp_threshold: int = 5,
    gapped_threshold: int = 5,
) -> ScoringScheme:
    """A tiny scheme for unit tests where scores are easy to hand-verify."""
    base = np.full((4, 4), np.int32(mismatch), dtype=np.int32)
    np.fill_diagonal(base, np.int32(match))
    return ScoringScheme(
        substitution=_expand_with_n(base, mismatch),
        gap_open=gap_open,
        gap_extend=gap_extend,
        ydrop=ydrop,
        xdrop=xdrop,
        hsp_threshold=hsp_threshold,
        gapped_threshold=gapped_threshold,
    )
