"""Scoring schemes: substitution matrices, affine gaps, drop thresholds."""

from .files import read_score_file, write_score_file
from .matrix import HOXD70, NEG_INF, ScoringScheme, default_scheme, unit_scheme

__all__ = [
    "HOXD70",
    "NEG_INF",
    "ScoringScheme",
    "default_scheme",
    "read_score_file",
    "unit_scheme",
    "write_score_file",
]
