"""Random genome generation.

The paper aligns real chromosomes (Table 1).  We have no genome downloads
here, so benchmarks run on synthetic chromosomes: an i.i.d. background (with
controllable GC content) into which :mod:`repro.genome.evolve` plants
homologous segments.  Random DNA is a good stand-in for the *non-homologous*
bulk because 19-mer exact matches between two independent random sequences
are vanishingly rare (|T|*|Q| / 4^19), exactly as between diverged regions of
real genomes.
"""

from __future__ import annotations

import numpy as np

from .sequence import Sequence

__all__ = ["random_codes", "random_sequence", "tandem_repeat"]


def _base_probabilities(gc: float) -> np.ndarray:
    if not 0.0 <= gc <= 1.0:
        raise ValueError("gc must be in [0, 1]")
    at = (1.0 - gc) / 2.0
    return np.array([at, gc / 2.0, gc / 2.0, at])


def random_codes(rng: np.random.Generator, length: int, *, gc: float = 0.5) -> np.ndarray:
    """An i.i.d. random 2-bit code array of ``length`` bases."""
    if length < 0:
        raise ValueError("length must be non-negative")
    return rng.choice(4, size=length, p=_base_probabilities(gc)).astype(np.uint8)


def random_sequence(
    rng: np.random.Generator,
    name: str,
    length: int,
    *,
    gc: float = 0.5,
) -> Sequence:
    """A named random sequence (see :func:`random_codes`)."""
    return Sequence(name, random_codes(rng, length, gc=gc))


def tandem_repeat(
    rng: np.random.Generator,
    unit_length: int,
    copies: int,
    *,
    gc: float = 0.5,
) -> np.ndarray:
    """A tandem repeat: ``copies`` concatenations of one random unit.

    Used by tests to exercise the seeder's behaviour on repetitive DNA
    (many seeds on shifted diagonals).
    """
    if unit_length <= 0 or copies <= 0:
        raise ValueError("unit_length and copies must be positive")
    unit = random_codes(rng, unit_length, gc=gc)
    return np.tile(unit, copies)
