"""The :class:`Sequence` container used by every pipeline stage.

A sequence is a named, immutable view over a 2-bit code array (see
:mod:`repro.genome.alphabet`).  Slicing returns light-weight views so the
seed extender can address arbitrary anchor offsets without copying whole
chromosomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .alphabet import decode, encode, is_valid_codes, reverse_complement

__all__ = ["Sequence"]


@dataclass(frozen=True)
class Sequence:
    """A named DNA sequence stored as 2-bit codes.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"C.elegans.chr1"``.
    codes:
        ``uint8`` array of 2-bit codes. The constructor makes the array
        read-only so that views handed to the aligner cannot be mutated
        behind its back.
    """

    name: str
    codes: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        codes = np.ascontiguousarray(self.codes, dtype=np.uint8)
        if not is_valid_codes(codes):
            raise ValueError(f"sequence {self.name!r} contains invalid codes")
        codes.setflags(write=False)
        object.__setattr__(self, "codes", codes)

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_text(cls, name: str, text: str) -> "Sequence":
        """Build a sequence from an ASCII string (case-insensitive)."""
        return cls(name, encode(text))

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return int(self.codes.shape[0])

    def __getitem__(self, item: slice) -> np.ndarray:
        """Slice access returns the underlying code view (read-only)."""
        return self.codes[item]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sequence):
            return NotImplemented
        return self.name == other.name and np.array_equal(self.codes, other.codes)

    def __hash__(self) -> int:
        return hash((self.name, self.codes.tobytes()))

    # -- conversions -------------------------------------------------------
    def text(self) -> str:
        """ASCII rendering of the whole sequence."""
        return decode(self.codes)

    def subsequence(self, start: int, stop: int, name: str | None = None) -> "Sequence":
        """A named subsequence over ``[start, stop)`` (zero-copy view)."""
        if not (0 <= start <= stop <= len(self)):
            raise IndexError(
                f"subsequence [{start}, {stop}) out of range for length {len(self)}"
            )
        sub = self.codes[start:stop]
        return Sequence(name or f"{self.name}[{start}:{stop}]", sub)

    def reverse_complement(self, name: str | None = None) -> "Sequence":
        """The reverse-complement strand."""
        return Sequence(name or f"{self.name}(-)", reverse_complement(self.codes))

    # -- stats -------------------------------------------------------------
    def gc_fraction(self) -> float:
        """Fraction of G/C among non-N bases (0.0 for empty/all-N)."""
        real = self.codes[self.codes < 4]
        if real.size == 0:
            return 0.0
        gc = np.count_nonzero((real == 1) | (real == 2))
        return gc / real.size

    def n_fraction(self) -> float:
        """Fraction of unknown (N) bases."""
        if len(self) == 0:
            return 0.0
        return float(np.count_nonzero(self.codes == 4) / len(self))
