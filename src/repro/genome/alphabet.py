"""DNA alphabet and 2-bit nucleotide codes.

Sequences throughout the library are stored as ``numpy.uint8`` arrays of
2-bit codes (``A=0, C=1, G=2, T=3``).  An ``N`` (unknown base) is mapped to
the sentinel :data:`N_CODE`; scoring treats it as mismatching everything.

The 2-bit convention mirrors what LASTZ and FastZ do on real hardware: the
packed representation is what makes 19-mer seed words fit in a single
64-bit integer (see :mod:`repro.seeding.seeds`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BASES",
    "N_CODE",
    "ALPHABET_SIZE",
    "encode",
    "encode_with_mask",
    "decode",
    "complement_codes",
    "reverse_complement",
    "is_valid_codes",
]

#: The four nucleotides in code order.
BASES = "ACGT"

#: Number of real (non-N) symbols.
ALPHABET_SIZE = 4

#: Code used for an unknown/ambiguous base.
N_CODE = np.uint8(4)

# Build the 256-entry ASCII -> code lookup table once.
_ENCODE_LUT = np.full(256, N_CODE, dtype=np.uint8)
for _i, _b in enumerate(BASES):
    _ENCODE_LUT[ord(_b)] = _i
    _ENCODE_LUT[ord(_b.lower())] = _i

_DECODE_LUT = np.frombuffer((BASES + "N").encode("ascii"), dtype=np.uint8)

# complement: A<->T (0<->3), C<->G (1<->2), N->N
_COMPLEMENT_LUT = np.array([3, 2, 1, 0, 4], dtype=np.uint8)

# Bytes legal under strict encoding: ACGT/acgt plus the explicit unknowns
# N/n.  Everything else (digits, punctuation, IUPAC ambiguity codes...) is
# rejected rather than silently collapsed to N.
_STRICT_OK = np.zeros(256, dtype=bool)
for _c in "ACGTNacgtn":
    _STRICT_OK[ord(_c)] = True


def encode(text: str | bytes, *, strict: bool = False) -> np.ndarray:
    """Encode an ASCII nucleotide string into a 2-bit code array.

    Unknown characters (anything outside ``ACGTacgt``) become :data:`N_CODE`.
    With ``strict=True``, any character outside ``ACGTNacgtn`` (including
    non-ASCII input) raises :class:`ValueError` instead — the LUT never
    fails on its own, so callers that must not align junk-as-N (e.g. the
    HTTP front end) opt into validation here.

    >>> encode("ACGTn").tolist()
    [0, 1, 2, 3, 4]
    """
    if isinstance(text, str):
        if strict:
            try:
                text = text.encode("ascii")
            except UnicodeEncodeError as exc:
                raise ValueError(
                    f"sequence contains non-ASCII character at position {exc.start}"
                ) from None
        else:
            text = text.encode("ascii", errors="replace")
    raw = np.frombuffer(text, dtype=np.uint8)
    if strict:
        bad = np.flatnonzero(~_STRICT_OK[raw])
        if bad.size:
            pos = int(bad[0])
            raise ValueError(
                f"sequence contains invalid character {chr(raw[pos])!r} "
                f"at position {pos} (expected ACGTN)"
            )
    return _ENCODE_LUT[raw]


def encode_with_mask(text: str | bytes) -> tuple[np.ndarray, np.ndarray]:
    """Encode, additionally reporting the soft-mask (lowercase) positions.

    FASTA files mark repeats by lower-casing them; LASTZ excludes such
    positions from *seeding* while still aligning through them.  Returns
    ``(codes, mask)`` with ``mask[i]`` True where the input was lowercase.

    >>> codes, mask = encode_with_mask("ACgtA")
    >>> mask.tolist()
    [False, False, True, True, False]
    """
    if isinstance(text, str):
        text = text.encode("ascii", errors="replace")
    raw = np.frombuffer(text, dtype=np.uint8)
    mask = (raw >= ord("a")) & (raw <= ord("z"))
    return _ENCODE_LUT[raw], mask


def decode(codes: np.ndarray) -> str:
    """Decode a 2-bit code array back into an ASCII string.

    >>> decode(np.array([0, 1, 2, 3, 4], dtype=np.uint8))
    'ACGTN'
    """
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max() > N_CODE:
        raise ValueError("code array contains values outside [0, 4]")
    return _DECODE_LUT[codes].tobytes().decode("ascii")


def complement_codes(codes: np.ndarray) -> np.ndarray:
    """Return the complement of each code (A<->T, C<->G, N->N)."""
    return _COMPLEMENT_LUT[np.asarray(codes, dtype=np.uint8)]


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Return the reverse complement of a code array."""
    return complement_codes(codes)[::-1].copy()


def is_valid_codes(codes: np.ndarray) -> bool:
    """True iff every element is a legal code (0..4)."""
    codes = np.asarray(codes)
    if codes.size == 0:
        return True
    return bool(codes.dtype == np.uint8 and codes.min() >= 0 and codes.max() <= N_CODE)
