"""Neutral-evolution divergence model and homology planting.

This module synthesises *pairs* of chromosomes with a known homology map,
replacing the real genome pairs of the paper's Table 1.  The construction:

1. generate a random target chromosome;
2. generate a random query backbone (independent of the target — so the
   background produces essentially no 19-mer seeds);
3. plant ``count`` homologous segments per :class:`SegmentClass`: each copies
   a random target interval, pushes it through a substitution+indel channel
   (:func:`mutate`), and splices it into the query.

The per-class segment-length ranges are what shape the alignment-length
distribution of Table 2: short classes (< ~35 bp) produce seed extensions
that resolve inside FastZ's 16x16 eager-traceback tile, mid classes populate
bin 1, and a long tail populates bins 2-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .generator import random_codes
from .sequence import Sequence

__all__ = [
    "SegmentClass",
    "PlantedSegment",
    "GenomePair",
    "mutate",
    "build_pair",
]


@dataclass(frozen=True)
class SegmentClass:
    """One class of homologous segments to plant.

    Parameters
    ----------
    name:
        Label used in the homology map (e.g. ``"eager"``, ``"bin1"``).
    count:
        Number of segments of this class to plant.
    min_len, max_len:
        Uniform range of segment lengths (in target bases).
    divergence:
        Per-base substitution probability applied when copying.
    indel_rate:
        Per-base probability of *starting* an insertion or deletion.
    mean_indel_len:
        Mean geometric indel length.
    """

    name: str
    count: int
    min_len: int
    max_len: int
    divergence: float = 0.05
    indel_rate: float = 0.0
    mean_indel_len: float = 1.5

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if not 0 < self.min_len <= self.max_len:
            raise ValueError("need 0 < min_len <= max_len")
        if not 0.0 <= self.divergence < 1.0:
            raise ValueError("divergence must be in [0, 1)")
        if not 0.0 <= self.indel_rate < 0.5:
            raise ValueError("indel_rate must be in [0, 0.5)")
        if self.mean_indel_len < 1.0:
            raise ValueError("mean_indel_len must be >= 1")


@dataclass(frozen=True)
class PlantedSegment:
    """Ground-truth record of one planted homology segment."""

    class_name: str
    target_start: int
    target_end: int
    query_start: int
    query_end: int

    @property
    def target_length(self) -> int:
        return self.target_end - self.target_start

    @property
    def query_length(self) -> int:
        return self.query_end - self.query_start


@dataclass(frozen=True)
class GenomePair:
    """A synthetic chromosome pair plus its ground-truth homology map."""

    name: str
    target: Sequence
    query: Sequence
    segments: tuple[PlantedSegment, ...] = field(default=())

    def segments_of(self, class_name: str) -> list[PlantedSegment]:
        return [s for s in self.segments if s.class_name == class_name]


def mutate(
    codes: np.ndarray,
    rng: np.random.Generator,
    *,
    divergence: float = 0.05,
    indel_rate: float = 0.0,
    mean_indel_len: float = 1.5,
) -> np.ndarray:
    """Push a code array through a substitution+indel channel.

    Substitutions replace a base with one of the three *other* bases.
    Indels are geometric-length insertions (random bases) or deletions,
    chosen with equal probability, started independently at each position.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.shape[0]
    if n == 0:
        return codes.copy()

    # Substitution pass (vectorised): add 1..3 mod 4 at chosen sites.
    out = codes.copy()
    if divergence > 0.0:
        hits = rng.random(n) < divergence
        shifts = rng.integers(1, 4, size=int(hits.sum()), dtype=np.uint8)
        out[hits] = (out[hits] + shifts) % 4

    if indel_rate <= 0.0:
        return out

    # Indel pass: walk the sequence splicing pieces. Indels are rare, so the
    # Python-level loop touches only the indel sites.
    starts = np.flatnonzero(rng.random(n) < indel_rate)
    if starts.size == 0:
        return out
    p = 1.0 / mean_indel_len
    pieces: list[np.ndarray] = []
    cursor = 0
    for pos in starts:
        if pos < cursor:  # swallowed by a previous deletion
            continue
        pieces.append(out[cursor:pos])
        length = int(rng.geometric(p))
        if rng.random() < 0.5:  # insertion
            pieces.append(random_codes(rng, length))
            cursor = pos
        else:  # deletion
            cursor = min(pos + length, n)
    pieces.append(out[cursor:])
    return np.concatenate(pieces) if pieces else out


def build_pair(
    name: str,
    *,
    target_length: int,
    query_length: int,
    classes: list[SegmentClass] | tuple[SegmentClass, ...],
    rng: np.random.Generator | int = 0,
    gc: float = 0.5,
) -> GenomePair:
    """Assemble a :class:`GenomePair` with the requested planted classes.

    The query is built left-to-right out of random backbone stretches
    interleaved with mutated copies of random target intervals, so segments
    never overlap in the query and coordinates in the homology map are exact.
    """
    rng = np.random.default_rng(rng) if isinstance(rng, int) else rng
    if target_length <= 0 or query_length <= 0:
        raise ValueError("chromosome lengths must be positive")

    target_codes = random_codes(rng, target_length, gc=gc)

    # Expand class list into concrete (class, length) draws.
    draws: list[tuple[SegmentClass, int]] = []
    for cls in classes:
        lengths = rng.integers(cls.min_len, cls.max_len + 1, size=cls.count)
        draws.extend((cls, int(length)) for length in lengths)
    rng.shuffle(draws)  # type: ignore[arg-type]

    total_planted = sum(length for _, length in draws)
    backbone_total = query_length - total_planted
    if backbone_total < len(draws) + 1:
        raise ValueError(
            f"query_length={query_length} too small for {total_planted} planted "
            f"bases across {len(draws)} segments"
        )

    # Random gap sizes between segments (at least 1 base so seeds cannot
    # straddle two segments).
    gap_weights = rng.random(len(draws) + 1) + 0.05
    gaps = np.maximum(
        1, np.floor(gap_weights / gap_weights.sum() * backbone_total).astype(int)
    )

    pieces: list[np.ndarray] = []
    segments: list[PlantedSegment] = []
    qpos = 0
    for k, (cls, length) in enumerate(draws):
        gap = int(gaps[k])
        pieces.append(random_codes(rng, gap, gc=gc))
        qpos += gap

        if length > target_length:
            raise ValueError(f"segment length {length} exceeds target length")
        tstart = int(rng.integers(0, target_length - length + 1))
        copied = mutate(
            target_codes[tstart : tstart + length],
            rng,
            divergence=cls.divergence,
            indel_rate=cls.indel_rate,
            mean_indel_len=cls.mean_indel_len,
        )
        pieces.append(copied)
        segments.append(
            PlantedSegment(
                class_name=cls.name,
                target_start=tstart,
                target_end=tstart + length,
                query_start=qpos,
                query_end=qpos + len(copied),
            )
        )
        qpos += len(copied)

    pieces.append(random_codes(rng, int(gaps[-1]), gc=gc))
    query_codes = np.concatenate(pieces) if pieces else np.zeros(0, dtype=np.uint8)

    return GenomePair(
        name=name,
        target=Sequence(f"{name}.target", target_codes),
        query=Sequence(f"{name}.query", query_codes),
        segments=tuple(segments),
    )
