"""Genome substrate: sequences, FASTA I/O, and synthetic genome evolution."""

from .alphabet import (
    ALPHABET_SIZE,
    BASES,
    N_CODE,
    complement_codes,
    decode,
    encode,
    encode_with_mask,
    reverse_complement,
)
from .evolve import GenomePair, PlantedSegment, SegmentClass, build_pair, mutate
from .fasta import iter_fasta, iter_fasta_records, read_fasta, write_fasta
from .generator import random_codes, random_sequence, tandem_repeat
from .sequence import Sequence

__all__ = [
    "ALPHABET_SIZE",
    "BASES",
    "N_CODE",
    "GenomePair",
    "PlantedSegment",
    "SegmentClass",
    "Sequence",
    "build_pair",
    "complement_codes",
    "decode",
    "encode",
    "encode_with_mask",
    "iter_fasta",
    "iter_fasta_records",
    "mutate",
    "random_codes",
    "random_sequence",
    "read_fasta",
    "reverse_complement",
    "tandem_repeat",
    "write_fasta",
]
