"""Minimal FASTA reader/writer.

LASTZ consumes chromosome FASTA files; the benchmark registry can persist
synthetic genomes to disk in the same format so runs are reproducible and
inspectable with standard tools.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from .sequence import Sequence

__all__ = ["read_fasta", "write_fasta", "parse_fasta"]


def parse_fasta(handle: TextIO) -> Iterator[Sequence]:
    """Yield :class:`Sequence` records from an open FASTA text stream."""
    name: str | None = None
    chunks: list[str] = []
    for raw in handle:
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                yield Sequence.from_text(name, "".join(chunks))
            name = line[1:].split()[0] if len(line) > 1 else ""
            if not name:
                raise ValueError("FASTA record with empty name")
            chunks = []
        else:
            if name is None:
                raise ValueError("FASTA data before first header line")
            chunks.append(line)
    if name is not None:
        yield Sequence.from_text(name, "".join(chunks))


def read_fasta(path: str | Path) -> list[Sequence]:
    """Read every record of a FASTA file."""
    with open(path, "r", encoding="ascii") as handle:
        return list(parse_fasta(handle))


def write_fasta(
    path: str | Path | TextIO,
    sequences: Iterable[Sequence],
    *,
    width: int = 70,
) -> None:
    """Write records in FASTA format with ``width``-column wrapping."""
    if width <= 0:
        raise ValueError("line width must be positive")

    own = not isinstance(path, io.TextIOBase)
    handle: TextIO = open(path, "w", encoding="ascii") if own else path  # type: ignore[arg-type]
    try:
        for seq in sequences:
            handle.write(f">{seq.name}\n")
            text = seq.text()
            for off in range(0, len(text), width):
                handle.write(text[off : off + width])
                handle.write("\n")
    finally:
        if own:
            handle.close()
