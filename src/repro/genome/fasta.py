"""Minimal FASTA reader/writer.

LASTZ consumes chromosome FASTA files; the benchmark registry can persist
synthetic genomes to disk in the same format so runs are reproducible and
inspectable with standard tools.

Reading is streaming at record granularity: :func:`iter_fasta` yields one
:class:`Sequence` at a time and never holds more than the current record
in memory, so ``repro refs add`` can register a multi-chromosome genome
file without slurping it whole.  Gzipped files (``.fa.gz``/``.fasta.gz``
— anything ending in ``.gz``) are decompressed transparently, matching
how real genome distributions ship.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from .sequence import Sequence

__all__ = [
    "iter_fasta",
    "iter_fasta_records",
    "parse_fasta",
    "parse_fasta_records",
    "read_fasta",
    "write_fasta",
]


def _open_text(path: str | Path) -> TextIO:
    """Open a FASTA path for text reading, decompressing ``.gz`` files."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="ascii")
    return open(path, "r", encoding="ascii")


def parse_fasta_records(handle: TextIO) -> Iterator[tuple[str, str]]:
    """Yield raw ``(name, text)`` records from an open FASTA text stream.

    The text keeps its original case, so callers that care about
    soft-masking (lowercase repeat annotation) can recover it with
    :func:`repro.genome.alphabet.encode_with_mask`.
    """
    name: str | None = None
    chunks: list[str] = []
    for raw in handle:
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if name is not None:
                yield name, "".join(chunks)
            name = line[1:].split()[0] if len(line) > 1 else ""
            if not name:
                raise ValueError("FASTA record with empty name")
            chunks = []
        else:
            if name is None:
                raise ValueError("FASTA data before first header line")
            chunks.append(line)
    if name is not None:
        yield name, "".join(chunks)


def parse_fasta(handle: TextIO) -> Iterator[Sequence]:
    """Yield :class:`Sequence` records from an open FASTA text stream."""
    for name, text in parse_fasta_records(handle):
        yield Sequence.from_text(name, text)


def iter_fasta_records(path: str | Path) -> Iterator[tuple[str, str]]:
    """Stream raw ``(name, text)`` records from a FASTA path (``.gz`` ok)."""
    with _open_text(path) as handle:
        yield from parse_fasta_records(handle)


def iter_fasta(path: str | Path) -> Iterator[Sequence]:
    """Stream :class:`Sequence` records from a FASTA path (``.gz`` ok)."""
    with _open_text(path) as handle:
        yield from parse_fasta(handle)


def read_fasta(path: str | Path) -> list[Sequence]:
    """Read every record of a FASTA file (plain or gzipped)."""
    return list(iter_fasta(path))


def write_fasta(
    path: str | Path | TextIO,
    sequences: Iterable[Sequence],
    *,
    width: int = 70,
) -> None:
    """Write records in FASTA format with ``width``-column wrapping."""
    if width <= 0:
        raise ValueError("line width must be positive")

    own = not isinstance(path, io.TextIOBase)
    handle: TextIO = open(path, "w", encoding="ascii") if own else path  # type: ignore[arg-type]
    try:
        for seq in sequences:
            handle.write(f">{seq.name}\n")
            text = seq.text()
            for off in range(0, len(text), width):
                handle.write(text[off : off + width])
                handle.write("\n")
    finally:
        if own:
            handle.close()
