"""Asyncio HTTP/1.1 server: one event loop, many connections (stdlib only).

The transport half of the fleet front door.  :class:`FleetHTTPServer`
parses HTTP/1.1 off :mod:`asyncio` streams and drives an ASGI-style app
(:class:`~repro.fleet.asgi.FleetApp`): requests on one connection are
handled in sequence (keep-alive), connections are multiplexed by the
loop — no thread per connection, so concurrency is bounded by sockets,
not by a thread pool.

Framing rules, chosen to match the threaded server's observable
behaviour:

* responses that declare ``Content-Length`` keep the connection alive
  (HTTP/1.1 default) unless either side asked ``Connection: close``;
* responses without a length (the NDJSON streams) are sent
  ``Transfer-Encoding: chunked`` and close the connection afterwards,
  exactly like the threaded server's streams;
* a request refused *before* its body was read (413 and friends) closes
  the connection — the unread bytes must not be parsed as a next request.

Shutdown is the same bounded graceful drain as the threaded server:
:meth:`FleetHTTPServer.initiate_shutdown` (thread- and signal-safe)
flips the shared draining flag — new requests get 503
``shutting_down``, in-flight streams end with a terminal error record —
waits up to ``grace_s`` for active requests (the listener keeps
accepting so latecomers get the immediate 503 instead of hanging in the
accept backlog), then stops the listener and force-closes surviving
connections.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from http.client import responses as _status_phrases
from urllib.parse import parse_qs, urlsplit

from ..service.service import AlignmentService
from .asgi import FleetApp
from .quota import TenantQuotas

__all__ = ["FleetHTTPServer", "serve_fleet"]

#: Largest request head (request line + headers) the parser accepts.
_MAX_HEAD_BYTES = 64 * 1024

#: Hard ceiling on request bodies the transport will buffer; the app's
#: route-specific limits (413) are checked before the body is read.
_MAX_BODY_BYTES = 2 * 1024 * 1024 * 1024


class _ConnectionState:
    """Per-request send-side bookkeeping for one connection."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.started = False
        self.chunked = False
        self.finished = False
        self.close_after = False


class FleetHTTPServer:
    """The asyncio front door: HTTP/1.1 transport over an ASGI-style app."""

    def __init__(
        self,
        app,
        host: str = "127.0.0.1",
        port: int = 8642,
        *,
        draining: threading.Event,
        grace_s: float = 5.0,
    ) -> None:
        if grace_s < 0:
            raise ValueError("grace_s must be non-negative")
        self.app = app
        self.host = host
        self.port = port
        self.grace_s = float(grace_s)
        self._draining = draining
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._active_requests = 0
        self._done = asyncio.Event()
        self._shutdown_started = False

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — authoritative once started."""
        return self.host, self.port

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=_MAX_HEAD_BYTES
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]

    async def serve_forever(self) -> None:
        """Block until a shutdown drains the server."""
        if self._server is None:
            await self.start()
        await self._done.wait()

    def initiate_shutdown(self) -> None:
        """Begin the graceful drain; safe from signal handlers and threads."""
        loop = self._loop
        if loop is None:
            self._draining.set()
            return
        loop.call_soon_threadsafe(self._begin_shutdown)

    def _begin_shutdown(self) -> None:
        if self._shutdown_started:
            return
        self._shutdown_started = True
        self._draining.set()
        asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        # The listener stays open through the grace window — matching the
        # threaded server's drain: latecomers get an immediate 503 from
        # the draining app instead of hanging in the kernel's accept
        # backlog against a closed socket.
        deadline = asyncio.get_running_loop().time() + self.grace_s
        while self._active_requests > 0:
            if asyncio.get_running_loop().time() >= deadline:
                break
            await asyncio.sleep(0.05)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        self._done.set()

    # -- connection handling -------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(self, reader) -> tuple[str, str, str, dict] | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _BadRequest("malformed request line")
        method, target, version = parts
        headers: dict[str, str] = {}
        total = len(line)
        while True:
            hline = await reader.readline()
            total += len(hline)
            if total > _MAX_HEAD_BYTES:
                raise _BadRequest("request head too large")
            if hline in (b"\r\n", b"\n", b""):
                break
            name, sep, value = hline.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest("malformed header line")
            headers[name.strip().lower()] = value.strip()
        return method, target, version, headers

    async def _handle_one(self, reader, writer) -> bool:
        """Serve one request; returns True to keep the connection open."""
        try:
            head = await self._read_head(reader)
        except _BadRequest as exc:
            await self._transport_error(writer, 400, "bad_request", str(exc))
            return False
        if head is None:
            return False
        method, target, version, headers = head

        if "chunked" in headers.get("transfer-encoding", "").lower():
            await self._transport_error(
                writer, 411, "bad_request", "chunked request bodies not supported"
            )
            return False
        try:
            content_length = int(headers.get("content-length", 0) or 0)
        except ValueError:
            await self._transport_error(writer, 400, "bad_request", "bad Content-Length")
            return False
        if content_length < 0 or content_length > _MAX_BODY_BYTES:
            await self._transport_error(
                writer, 413, "payload_too_large", "request body too large"
            )
            return False
        if headers.get("expect", "").lower() == "100-continue":
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
            await writer.drain()

        parts = urlsplit(target)
        scope = {
            "type": "http",
            "method": method.upper(),
            "path": parts.path,
            "query": parse_qs(parts.query),
            "raw_query": parts.query,
            "headers": headers,
            "content_length": content_length,
        }

        body_consumed = content_length == 0

        async def receive() -> bytes:
            nonlocal body_consumed
            if body_consumed:
                return b""
            body_consumed = True
            return await reader.readexactly(content_length)

        state = _ConnectionState(writer)
        client_wants_close = headers.get("connection", "").lower() == "close"
        http11 = version.upper() == "HTTP/1.1"

        async def send(event: dict) -> None:
            if event["type"] == "http.response.start" and not body_consumed:
                # Refused before the body was read: the connection must
                # close (the unread bytes cannot be skipped), so say so —
                # clients then reconnect instead of reusing a dead socket.
                headers = list(event.get("headers") or [])
                headers.append(("Connection", "close"))
                event = {**event, "headers": headers}
            await self._send_event(state, event)

        self._active_requests += 1
        try:
            await self.app(scope, receive, send)
            if not state.finished and state.started and state.chunked:
                # App ended a stream without the explicit final event.
                writer.write(b"0\r\n\r\n")
                await writer.drain()
                state.finished = True
            if not state.started:
                await self._transport_error(
                    writer, 500, "internal", "application produced no response"
                )
                return False
        except (ConnectionError, asyncio.IncompleteReadError):
            return False
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            if not state.started:
                await self._transport_error(
                    writer, 500, "internal", f"{type(exc).__name__}: {exc}"
                )
            return False
        finally:
            self._active_requests -= 1

        if (
            state.close_after
            or state.chunked
            or client_wants_close
            or not http11
            or not body_consumed
        ):
            return False
        return True

    # -- send side -----------------------------------------------------------

    async def _send_event(self, state: _ConnectionState, event: dict) -> None:
        writer = state.writer
        if event["type"] == "http.response.start":
            status = event["status"]
            headers = list(event.get("headers") or [])
            names = {name.lower() for name, _ in headers}
            if "content-length" not in names:
                state.chunked = True
                headers.append(("Transfer-Encoding", "chunked"))
                headers.append(("Connection", "close"))
            if any(
                name.lower() == "connection" and value.lower() == "close"
                for name, value in headers
            ):
                state.close_after = True
            phrase = _status_phrases.get(status, "Unknown")
            head = [f"HTTP/1.1 {status} {phrase}"]
            head.extend(f"{name}: {value}" for name, value in headers)
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
            state.started = True
            await writer.drain()
            return
        if event["type"] == "http.response.body":
            body = event.get("body", b"")
            more = bool(event.get("more_body", False))
            if state.chunked:
                if body:
                    writer.write(b"%x\r\n" % len(body) + body + b"\r\n")
                if not more:
                    writer.write(b"0\r\n\r\n")
                    state.finished = True
            else:
                if body:
                    writer.write(body)
                if not more:
                    state.finished = True
            await writer.drain()
            return
        raise ValueError(f"unknown send event {event['type']!r}")

    async def _transport_error(
        self, writer, status: int, code: str, message: str
    ) -> None:
        """A parse-level refusal, enveloped like every other error."""
        body = json.dumps({"error": {"code": code, "message": message}}).encode()
        phrase = _status_phrases.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {phrase}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass


class _BadRequest(Exception):
    """The request head could not be parsed."""


def serve_fleet(
    service: AlignmentService,
    host: str = "127.0.0.1",
    port: int = 8642,
    *,
    quotas: TenantQuotas | None = None,
    max_align_body: int | None = None,
    grace_s: float = 5.0,
    install_signal_handlers: bool = True,
    on_ready=None,
) -> None:
    """Run the fleet front door until SIGTERM/SIGINT drains it (blocking).

    Builds the :class:`~repro.fleet.asgi.FleetApp` over ``service``,
    binds, reports the bound address through ``on_ready(host, port)``,
    then serves until :meth:`FleetHTTPServer.initiate_shutdown` — wired
    to SIGTERM/SIGINT when ``install_signal_handlers`` — completes the
    drain.  The service itself is *not* shut down here; the caller owns
    its lifecycle (the CLI drains it after this returns).
    """

    async def _amain() -> None:
        draining = threading.Event()
        app = FleetApp(
            service,
            draining=draining,
            quotas=quotas,
            max_align_body=max_align_body,
        )
        server = FleetHTTPServer(
            app, host, port, draining=draining, grace_s=grace_s
        )
        await server.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, server.initiate_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass
        if on_ready is not None:
            on_ready(*server.address)
        await server.serve_forever()

    asyncio.run(_amain())
