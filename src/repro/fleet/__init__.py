"""Heterogeneous fleet serving: device queues, placement, async front door.

``repro.fleet`` turns the single in-process alignment service into a
fleet: named backend queues (in-process engine, worker pools, simulated
GPUs) behind a placement/hedging scheduler, fronted by an asyncio HTTP
server that multiplexes thousands of connections on one event loop while
preserving the ``/v1`` contract byte for byte.
"""

from .asgi import FleetApp
from .backends import (
    BackendUnavailable,
    FleetBackend,
    InProcessBackend,
    PoolBackend,
    SimGpuBackend,
)
from .quota import QuotaExceeded, TenantQuotas, TokenBucket
from .scheduler import (
    FleetError,
    FleetScheduler,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    PRIORITY_NAMES,
)
from .server import FleetHTTPServer, serve_fleet

__all__ = [
    "BackendUnavailable",
    "FleetApp",
    "FleetBackend",
    "FleetError",
    "FleetHTTPServer",
    "FleetScheduler",
    "InProcessBackend",
    "PRIORITY_BATCH",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_NAMES",
    "PoolBackend",
    "QuotaExceeded",
    "SimGpuBackend",
    "TenantQuotas",
    "TokenBucket",
    "serve_fleet",
]
