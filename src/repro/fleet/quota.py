"""Per-tenant token-bucket quotas for the asyncio front door.

One bucket per tenant (the ``X-API-Key`` header; requests without a key
share the ``anonymous`` tenant).  A bucket holds at most ``burst``
tokens and refills at ``rate`` tokens/second; each admitted request
spends one token, and an empty bucket answers with the seconds until the
next token — the front door surfaces that as ``429 quota_exceeded`` plus
``Retry-After``.

Buckets are lazily created and mutate under one lock: the front door is
a single event loop, but quotas are also consulted from tests and must
not care which thread asks.
"""

from __future__ import annotations

import threading
import time

__all__ = ["QuotaExceeded", "TenantQuotas", "TokenBucket"]

#: Tenant requests without an ``X-API-Key`` header are accounted under.
ANONYMOUS_TENANT = "anonymous"


class QuotaExceeded(Exception):
    """Tenant is out of tokens; retry after ``retry_after_s`` seconds."""

    def __init__(self, tenant: str, retry_after_s: float) -> None:
        super().__init__(
            f"tenant {tenant!r} exceeded its request quota; "
            f"retry in {retry_after_s:.2f}s"
        )
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class TokenBucket:
    """The classic token bucket: ``burst`` capacity, ``rate``/s refill."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()

    def try_acquire(self, now: float | None = None) -> float:
        """Spend one token; returns 0.0, or the seconds until one exists.

        Not thread-safe on its own — :class:`TenantQuotas` serialises.
        """
        if now is None:
            now = time.monotonic()
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


class TenantQuotas:
    """Admission ledger: one :class:`TokenBucket` per tenant.

    ``tenants`` maps tenant name to ``(rate, burst)``; ``default`` is the
    policy for tenants not named (``None`` = unnamed tenants are
    unlimited).  An instance with no default and no tenants admits
    everything — the front door treats that as quotas-off.
    """

    def __init__(
        self,
        default: tuple[float, float] | None = None,
        tenants: dict[str, tuple[float, float]] | None = None,
    ) -> None:
        self.default = default
        self.policies = dict(tenants or {})
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.default is not None or bool(self.policies)

    def check(self, tenant: str | None) -> None:
        """Spend one token for ``tenant``; raises :class:`QuotaExceeded`."""
        tenant = tenant or ANONYMOUS_TENANT
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                policy = self.policies.get(tenant, self.default)
                if policy is None:
                    return
                bucket = TokenBucket(*policy)
                self._buckets[tenant] = bucket
            wait = bucket.try_acquire()
        if wait > 0.0:
            raise QuotaExceeded(tenant, wait)

    @classmethod
    def from_spec(cls, spec: str) -> "TenantQuotas":
        """Parse the CLI form: ``default=10/20,alice=100/200``.

        Each entry is ``tenant=rate/burst`` (requests per second / burst
        capacity); ``default`` names the policy for unnamed tenants.
        """
        default = None
        tenants: dict[str, tuple[float, float]] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, eq, policy = part.partition("=")
            name = name.strip()
            if not eq or not name:
                raise ValueError(
                    f"bad quota entry {part!r} (want tenant=rate/burst)"
                )
            rate_s, slash, burst_s = policy.partition("/")
            try:
                rate = float(rate_s)
                burst = float(burst_s) if slash else rate
            except ValueError:
                raise ValueError(
                    f"bad quota policy {policy!r} for tenant {name!r} "
                    "(want rate/burst numbers)"
                ) from None
            if rate <= 0 or burst <= 0:
                raise ValueError(
                    f"quota for tenant {name!r} must be positive, got {policy!r}"
                )
            if name == "default":
                default = (rate, burst)
            else:
                tenants[name] = (rate, burst)
        return cls(default=default, tenants=tenants)
