"""Fleet execution backends: one named device behind one ``run`` call.

A backend is the unit the :class:`~repro.fleet.scheduler.FleetScheduler`
routes work to: it executes one fused extension batch — the interleaved
right/left suffix list of one or more alignment requests — and returns
per-anchor extension records.  Every backend ultimately calls
:func:`repro.core.pipeline.extend_suffixes_shard` on the same inputs, so
**records are bit-identical whichever backend ran them**; backends differ
only in *where* the arithmetic happens and what it costs:

* :class:`InProcessBackend` — the lockstep NumPy engine on a scheduler
  worker thread (the pre-fleet in-process path, kept warm via the
  thread-local arenas);
* :class:`PoolBackend` — a :class:`~repro.service.pool.WorkerPool` of
  persistent worker processes; the batch is LPT-sharded across them
  (multiple cores, same bytes);
* :class:`SimGpuBackend` — one simulated GPU: the arithmetic still runs
  on the host (there is no real device), but the backend *accounts* the
  batch at the device's modelled rate
  (:func:`repro.core.perfmodel.estimate_extension_seconds` over a
  :class:`~repro.gpusim.DeviceSpec`) and can optionally pace execution to
  that rate, so N of them behave like N independent devices with
  realistic relative speeds for the placement policy to balance.

Failure contract: a backend whose *substrate* is gone (closed, killed,
worker pool unrecoverable) raises :class:`BackendUnavailable` — the
scheduler re-dispatches the unit elsewhere and retires the backend.  Any
other exception is the work's own (poisoned batch) and propagates to the
submitter.

Test hook (inert unless set): ``REPRO_FLEET_TEST_SLOW_BACKEND`` is
``name:seconds`` (comma-separated pairs) — the named backend sleeps that
long per unit before computing, deterministically creating the straggler
the hedging policy exists for.  The sleep polls the unit's cancel event,
so a hedge winner releases the loser immediately.
"""

from __future__ import annotations

import os
import threading
import time

from ..align.arena import release_thread_arenas
from ..core.perfmodel import estimate_extension_seconds, extension_weight
from ..gpusim.device import DeviceSpec, QV100_VOLTA
from ..service.pool import PoolError, WorkerPool

__all__ = [
    "BackendUnavailable",
    "FleetBackend",
    "InProcessBackend",
    "PoolBackend",
    "SimGpuBackend",
]

#: Test hook: ``backend:seconds`` pairs injecting a per-run straggler delay.
_SLOW_ENV = "REPRO_FLEET_TEST_SLOW_BACKEND"


class BackendUnavailable(RuntimeError):
    """This backend cannot run work any more; re-dispatch elsewhere."""


def _injected_delay(name: str) -> float:
    raw = os.environ.get(_SLOW_ENV, "")
    for part in raw.split(","):
        part = part.strip()
        if not part or ":" not in part:
            continue
        backend, _, seconds = part.partition(":")
        if backend.strip() == name:
            try:
                return max(0.0, float(seconds))
            except ValueError:
                return 0.0
    return 0.0


def _interruptible_sleep(seconds: float, cancelled: threading.Event | None) -> None:
    """Sleep ``seconds`` unless ``cancelled`` fires first."""
    if seconds <= 0:
        return
    if cancelled is None:
        time.sleep(seconds)
    else:
        cancelled.wait(seconds)


class FleetBackend:
    """One named execution target with a capacity and a cost model.

    Subclasses implement :meth:`_execute`; the base class owns the shared
    bookkeeping — liveness, busy-seconds accounting and the injected
    straggler delay of the test hook.

    Parameters
    ----------
    name:
        The queue name the scheduler addresses this backend by.
    max_inflight:
        How many units may run on this backend concurrently (its number
        of scheduler worker threads).
    """

    #: Human-readable backend family for stats (``inprocess``/``pool``/...).
    kind = "backend"

    def __init__(self, name: str, *, max_inflight: int = 1) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.name = name
        self.max_inflight = max_inflight
        self._closed = threading.Event()
        self._lock = threading.Lock()
        self.busy_seconds = 0.0
        self.completed = 0

    # -- cost model ----------------------------------------------------------

    def estimate_seconds(self, weight: float) -> float:
        """Modelled seconds this backend needs for ``weight`` units."""
        return estimate_extension_seconds(weight)

    # -- execution -----------------------------------------------------------

    def run(self, suffixes, scheme, options, tile: int, *, key: str,
            cancelled: threading.Event | None = None):
        """Execute one fused batch; returns per-anchor extension records.

        Raises :class:`BackendUnavailable` once :meth:`close` ran.
        ``cancelled`` (set when another dispatch of the same unit already
        won) lets slow paths bail out early — results after cancellation
        are discarded by the scheduler either way.
        """
        if self._closed.is_set():
            raise BackendUnavailable(f"backend {self.name!r} is closed")
        delay = _injected_delay(self.name)
        if delay:
            _interruptible_sleep(delay, cancelled)
            if self._closed.is_set():
                raise BackendUnavailable(f"backend {self.name!r} is closed")
        start = time.perf_counter()
        records = self._execute(suffixes, scheme, options, tile, key=key,
                                cancelled=cancelled)
        with self._lock:
            self.busy_seconds += time.perf_counter() - start
            self.completed += 1
        return records

    def _execute(self, suffixes, scheme, options, tile, *, key, cancelled):
        raise NotImplementedError

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self) -> None:
        """Stop accepting work; in-flight runs finish (or fail) on their own.

        Idempotent, callable from any thread — this is also the
        kill-a-backend-mid-batch admin/test entry point.
        """
        self._closed.set()

    def describe(self) -> dict:
        """JSON-ready identity + health for fleet stats."""
        return {
            "name": self.name,
            "kind": self.kind,
            "max_inflight": self.max_inflight,
            "closed": self.closed,
            "completed": self.completed,
            "busy_seconds": round(self.busy_seconds, 4),
        }


class InProcessBackend(FleetBackend):
    """The lockstep engine on the scheduler's own worker threads."""

    kind = "inprocess"

    def __init__(self, name: str = "cpu0", *, max_inflight: int = 1) -> None:
        super().__init__(name, max_inflight=max_inflight)

    def _execute(self, suffixes, scheme, options, tile, *, key, cancelled):
        from ..core.pipeline import extend_suffixes_shard

        return extend_suffixes_shard(suffixes, scheme, options, tile)


class PoolBackend(FleetBackend):
    """A persistent multiprocess worker pool behind one fleet queue.

    Owns its :class:`~repro.service.pool.WorkerPool` (or adopts one);
    each run LPT-shards the batch across the pool's workers.  A
    :class:`~repro.service.pool.PoolError` — workers dying faster than
    they can be respawned, or the pool closed under us — becomes
    :class:`BackendUnavailable` so the scheduler re-routes the unit
    instead of failing it.
    """

    kind = "pool"

    def __init__(
        self,
        name: str = "pool0",
        *,
        workers: int = 2,
        pool: WorkerPool | None = None,
        max_inflight: int = 1,
        registry=None,
    ) -> None:
        super().__init__(name, max_inflight=max_inflight)
        self._own_pool = pool is None
        self.pool = pool if pool is not None else WorkerPool(
            workers, registry=registry
        )

    def _execute(self, suffixes, scheme, options, tile, *, key, cancelled):
        try:
            return self.pool.extend(suffixes, scheme, options, tile, key=key)
        except PoolError as exc:
            raise BackendUnavailable(
                f"backend {self.name!r}: {exc}"
            ) from exc

    def close(self) -> None:
        super().close()
        if self._own_pool:
            self.pool.close()


class SimGpuBackend(FleetBackend):
    """One simulated GPU: host arithmetic, device-rate accounting.

    The records are computed by the same lockstep engine as everywhere
    else (there is no real device to ship to), so results stay
    bit-identical; what the simulation adds is the *schedule*: the
    backend books each batch at the device's modelled execution rate and,
    when ``pace=True``, actually holds the unit for the modelled seconds
    (minus the host compute it already spent) — giving the fleet N
    queues whose relative speeds follow the device specs, exactly what
    the placement policy and the hedging monitor need exercised against.
    """

    kind = "gpusim"

    def __init__(
        self,
        name: str,
        *,
        device: DeviceSpec = QV100_VOLTA,
        max_inflight: int = 1,
        pace: bool = False,
    ) -> None:
        super().__init__(name, max_inflight=max_inflight)
        self.device = device
        self.pace = pace
        self.sim_seconds = 0.0

    def estimate_seconds(self, weight: float) -> float:
        return estimate_extension_seconds(weight, self.device)

    def _execute(self, suffixes, scheme, options, tile, *, key, cancelled):
        from ..core.pipeline import extend_suffixes_shard

        modelled = estimate_extension_seconds(
            extension_weight(suffixes), self.device
        )
        start = time.perf_counter()
        records = extend_suffixes_shard(suffixes, scheme, options, tile)
        host_spent = time.perf_counter() - start
        with self._lock:
            self.sim_seconds += modelled
        if self.pace:
            _interruptible_sleep(modelled - host_spent, cancelled)
        return records

    def describe(self) -> dict:
        out = super().describe()
        out["device"] = self.device.name
        out["sim_seconds"] = round(self.sim_seconds, 6)
        return out


def release_backend_thread_state() -> None:
    """Drop per-thread engine state a scheduler worker accumulated.

    Scheduler worker threads run lockstep batches in-process (the
    in-process and simulated-GPU backends), which warms thread-local
    arenas; call this when a worker retires so the slabs die with it.
    """
    release_thread_arenas()
