"""The fleet scheduler: named device queues under one placement policy.

KegAlign's MIG runner and SaLoBa's load-balance argument meet here: the
pipeline's kernel-sized unit of work — one fused extension batch — is
routed across a heterogeneous set of :class:`~repro.fleet.backends
.FleetBackend`\\ s (in-process engine, multiprocess pool, N simulated
GPUs), each behind its own **named queue** with a bounded number of
concurrently running units (``max_inflight``) and full completion
tracking.  Three policies, one scheduler:

* **placement** — least-loaded-first: a new unit goes to the open lane
  minimising ``backlog_seconds + estimate_seconds(unit)``, where both
  terms come from the :mod:`repro.core.perfmodel` closed-form cost
  estimate evaluated at that backend's modelled rate.  A fast device
  with a deep queue loses to an idle slow one exactly when the model
  says it should.
* **priority** — each lane's queue is priority-ordered: ``interactive``
  units (0) overtake ``batch`` units (1); FIFO within a class.
* **hedging** — a monitor thread watches running units; one that has
  been in flight longer than ``max(hedge_after_s, hedge_cost_factor x
  modelled cost)`` while another lane sits idle is *re-dispatched* onto
  the idle lane.  First completion wins the future; the loser's result
  is discarded (and its sleep-paced backends bail out early via the
  unit's cancel event).

Failure handling completes the story: a backend that raises
:class:`~repro.fleet.backends.BackendUnavailable` (killed mid-batch,
pool unrecoverable) is **retired** — its queue drains by re-dispatching
every unit to the surviving lanes — so requests complete as long as any
backend lives.  ``repro_fleet_redispatched_total`` counts both hedges
and failure re-dispatches; it is the counter the acceptance gate reads
off ``/v1/metrics``.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from ..core.perfmodel import extension_weight
from ..obs.metrics import MetricsRegistry
from .backends import BackendUnavailable, FleetBackend, release_backend_thread_state

__all__ = [
    "FleetError",
    "FleetScheduler",
    "PRIORITY_BATCH",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_NAMES",
]

#: Priority classes: lower dispatches first.  Interactive beats batch.
PRIORITY_INTERACTIVE = 0
PRIORITY_BATCH = 1

#: Wire names of the priority classes (the ``X-Priority`` header values).
PRIORITY_NAMES = {"interactive": PRIORITY_INTERACTIVE, "batch": PRIORITY_BATCH}

#: Queue priority that sorts after every real unit: shutdown sentinels
#: drain the lane before stopping its workers.
_SENTINEL_PRIORITY = 1 << 30


class FleetError(RuntimeError):
    """The fleet cannot execute this unit (no live backend took it)."""


@dataclass
class _Unit:
    """One schedulable batch with its resolution future and bookkeeping."""

    seq: int
    suffixes: list
    scheme: object
    options: object
    tile: int
    key: object
    weight: float
    priority: int
    future: Future = field(default_factory=Future)
    #: Set the moment the future resolves; paced/slow backends poll it.
    cancelled: threading.Event = field(default_factory=threading.Event)
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Dispatches so far (first placement + every re-dispatch + hedges).
    attempts: int = 0
    hedged: bool = False

    def resolve(self, records=None, exc: BaseException | None = None) -> bool:
        """First terminal event wins; returns False for losers."""
        with self.lock:
            if self.future.done():
                return False
            if exc is not None:
                self.future.set_exception(exc)
            else:
                self.future.set_result(records)
            self.cancelled.set()
            return True


class _Lane:
    """One backend plus its named queue, workers and load accounting."""

    def __init__(self, backend: FleetBackend) -> None:
        self.backend = backend
        self.queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self.lock = threading.Lock()
        self.open = True
        self.queued_weight = 0.0
        self.inflight_weight = 0.0
        self.inflight = 0
        #: unit.seq -> (unit, monotonic start) for the hedge monitor.
        self.running: dict[int, tuple[_Unit, float]] = {}
        self.completed = 0
        self.failed = 0
        self.threads: list[threading.Thread] = []

    @property
    def name(self) -> str:
        return self.backend.name

    def backlog_seconds(self) -> float:
        """Modelled seconds of work queued + running on this lane."""
        with self.lock:
            weight = self.queued_weight + self.inflight_weight
        return self.backend.estimate_seconds(weight)

    def queued(self) -> int:
        return self.queue.qsize()

    def is_idle(self) -> bool:
        with self.lock:
            busy = self.inflight
        return self.open and busy < self.backend.max_inflight and self.queue.empty()

    def describe(self) -> dict:
        with self.lock:
            out = {
                "queued": self.queue.qsize(),
                "inflight": self.inflight,
                "completed": self.completed,
                "failed": self.failed,
                "backlog_seconds": round(
                    self.backend.estimate_seconds(
                        self.queued_weight + self.inflight_weight
                    ),
                    6,
                ),
                "open": self.open,
            }
        out.update(self.backend.describe())
        return out


class FleetScheduler:
    """Route fused extension batches across named backend queues.

    Parameters
    ----------
    backends:
        The fleet, in declaration order (order only breaks placement
        ties).  Names must be unique; the scheduler owns their lifecycle
        and closes them on :meth:`close`.
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` fleet counters
        land in — pass the service recorder's registry and they surface
        on ``GET /v1/metrics`` for free.
    hedge_after_s, hedge_cost_factor:
        A running unit becomes a straggler once it has been in flight
        for ``max(hedge_after_s, hedge_cost_factor x modelled seconds)``;
        stragglers are cloned onto an idle lane.  ``hedge_after_s=None``
        disables hedging.
    max_attempts:
        Total dispatches (first + re-dispatches + hedges) before a unit
        fails with :class:`FleetError`.
    """

    def __init__(
        self,
        backends: list[FleetBackend],
        *,
        registry: MetricsRegistry | None = None,
        hedge_after_s: float | None = 0.5,
        hedge_cost_factor: float = 4.0,
        max_attempts: int = 4,
        poll_s: float = 0.05,
    ) -> None:
        if not backends:
            raise ValueError("a fleet needs at least one backend")
        names = [b.name for b in backends]
        if len(set(names)) != len(names):
            raise ValueError(f"backend names must be unique, got {names}")
        if hedge_after_s is not None and hedge_after_s < 0:
            raise ValueError("hedge_after_s must be non-negative or None")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.hedge_after_s = hedge_after_s
        self.hedge_cost_factor = hedge_cost_factor
        self.max_attempts = max_attempts
        self.poll_s = poll_s
        self._seq = itertools.count()
        self._closed = False
        self._lock = threading.Lock()
        self.submitted = 0
        self.hedges = 0
        self.redispatched = 0
        self.hedge_wasted = 0

        self._completed_counter = self.registry.counter(
            "repro_fleet_completed_total", "Units completed, by backend."
        )
        self._failed_counter = self.registry.counter(
            "repro_fleet_failed_total", "Units failed, by backend."
        )
        self._redispatch_counter = self.registry.counter(
            "repro_fleet_redispatched_total",
            "Units re-dispatched onto another backend (hedges + failures).",
        )
        self._hedge_counter = self.registry.counter(
            "repro_fleet_hedges_total",
            "Straggler units cloned onto an idle backend.",
        )
        self._hedge_wasted_counter = self.registry.counter(
            "repro_fleet_hedge_wasted_total",
            "Dispatches whose result lost the first-completion race.",
        )
        # Scrapers watch these from zero: materialise the label-less
        # samples now so the families render before the first event.
        for counter in (
            self._redispatch_counter,
            self._hedge_counter,
            self._hedge_wasted_counter,
        ):
            counter.inc(0.0)
        self._queue_gauge = self.registry.gauge(
            "repro_fleet_queue_depth", "Queued units, by backend."
        )
        self._inflight_gauge = self.registry.gauge(
            "repro_fleet_inflight", "Running units, by backend."
        )
        self._backlog_gauge = self.registry.gauge(
            "repro_fleet_backlog_seconds",
            "Modelled seconds of queued + running work, by backend.",
        )

        self._lanes = [_Lane(b) for b in backends]
        for lane in self._lanes:
            self._queue_gauge.labels(backend=lane.name).set(0)
            self._inflight_gauge.labels(backend=lane.name).set(0)
            for i in range(lane.backend.max_inflight):
                t = threading.Thread(
                    target=self._worker,
                    args=(lane,),
                    name=f"repro-fleet-{lane.name}-{i}",
                    daemon=True,
                )
                lane.threads.append(t)
                t.start()
        self._monitor: threading.Thread | None = None
        if hedge_after_s is not None and len(self._lanes) > 1:
            self._monitor = threading.Thread(
                target=self._hedge_monitor, name="repro-fleet-hedge", daemon=True
            )
            self._monitor.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        suffixes,
        scheme,
        options,
        tile: int,
        *,
        key: object,
        priority: int = PRIORITY_INTERACTIVE,
        weight: float | None = None,
    ) -> Future:
        """Place one fused batch; returns a future of per-anchor records.

        The records are bit-identical to
        :func:`repro.core.pipeline.extend_suffixes_shard` on the same
        list, whichever backend (or backends, after re-dispatch) ran it.
        """
        with self._lock:
            if self._closed:
                raise FleetError("fleet is shut down")
            self.submitted += 1
        unit = _Unit(
            seq=next(self._seq),
            suffixes=suffixes,
            scheme=scheme,
            options=options,
            tile=tile,
            key=key,
            weight=extension_weight(suffixes) if weight is None else float(weight),
            priority=int(priority),
        )
        lane = self._place(unit)
        if lane is None:
            raise FleetError("no open backends in the fleet")
        self._enqueue(lane, unit)
        return unit.future

    # -- placement -----------------------------------------------------------

    def _place(self, unit: _Unit, exclude: tuple = ()) -> _Lane | None:
        """Least-loaded open lane by modelled completion time."""
        best = None
        best_eta = None
        for lane in self._lanes:
            if not lane.open or lane in exclude or lane.backend.closed:
                continue
            eta = lane.backlog_seconds() + lane.backend.estimate_seconds(
                unit.weight
            )
            if best_eta is None or eta < best_eta:
                best, best_eta = lane, eta
        return best

    def _enqueue(self, lane: _Lane, unit: _Unit) -> None:
        unit.attempts += 1
        with lane.lock:
            lane.queued_weight += unit.weight
        lane.queue.put((unit.priority, unit.seq, unit.attempts, unit))
        if not lane.open:
            # Lost a race with _retire_lane: the lane's workers may all be
            # gone, so nothing would ever drain this unit.  Pull whatever
            # is still queued and re-place it on the survivors.
            self._rescue_queued(lane)
        self._queue_gauge.labels(backend=lane.name).set(lane.queued())
        self._backlog_gauge.labels(backend=lane.name).set(lane.backlog_seconds())

    def _rescue_queued(self, lane: _Lane) -> None:
        while True:
            try:
                _prio, _seq, _attempt, unit = lane.queue.get_nowait()
            except queue.Empty:
                return
            if unit is None:
                # A drained sentinel; close() re-issues them, so dropping
                # one here cannot strand a worker forever.
                continue
            with lane.lock:
                lane.queued_weight = max(0.0, lane.queued_weight - unit.weight)
            self._redispatch(unit, came_from=lane)

    def _redispatch(self, unit: _Unit, *, came_from: _Lane) -> None:
        """Re-place a unit whose backend failed under it."""
        if unit.future.done():
            return
        if unit.attempts >= self.max_attempts:
            unit.resolve(exc=FleetError(
                f"unit failed on {unit.attempts} backends (last: "
                f"{came_from.name!r})"
            ))
            return
        lane = self._place(unit, exclude=(came_from,))
        if lane is None:
            unit.resolve(exc=FleetError(
                f"no backends left after {came_from.name!r} failed"
            ))
            return
        with self._lock:
            self.redispatched += 1
        self._redispatch_counter.inc()
        self._enqueue(lane, unit)

    # -- workers -------------------------------------------------------------

    def _worker(self, lane: _Lane) -> None:
        try:
            while True:
                _prio, _seq, _attempt, unit = lane.queue.get()
                if unit is None:
                    return
                with lane.lock:
                    lane.queued_weight = max(0.0, lane.queued_weight - unit.weight)
                self._queue_gauge.labels(backend=lane.name).set(lane.queued())
                if not lane.open:
                    # The lane was retired with this unit still queued;
                    # rescue it instead of silently dropping it.
                    self._redispatch(unit, came_from=lane)
                    continue
                if unit.future.done():
                    # Lost the hedge race while queued (or was cancelled).
                    self._note_wasted()
                    continue
                self._run_unit(lane, unit)
        finally:
            release_backend_thread_state()

    def _run_unit(self, lane: _Lane, unit: _Unit) -> None:
        with lane.lock:
            lane.inflight += 1
            lane.inflight_weight += unit.weight
            lane.running[unit.seq] = (unit, time.monotonic())
        self._inflight_gauge.labels(backend=lane.name).set(lane.inflight)
        try:
            records = lane.backend.run(
                unit.suffixes,
                unit.scheme,
                unit.options,
                unit.tile,
                key=unit.key,
                cancelled=unit.cancelled,
            )
        except BackendUnavailable:
            self._retire_lane(lane)
            self._redispatch(unit, came_from=lane)
        except BaseException as exc:  # noqa: BLE001 - unit fault boundary
            # Deterministic work: a hedge twin would fail identically, so
            # the first failure is the unit's real outcome.
            if unit.resolve(exc=exc):
                with lane.lock:
                    lane.failed += 1
                self._failed_counter.labels(backend=lane.name).inc()
        else:
            if unit.resolve(records):
                with lane.lock:
                    lane.completed += 1
                self._completed_counter.labels(backend=lane.name).inc()
            else:
                self._note_wasted()
        finally:
            with lane.lock:
                lane.inflight -= 1
                lane.inflight_weight = max(
                    0.0, lane.inflight_weight - unit.weight
                )
                lane.running.pop(unit.seq, None)
            self._inflight_gauge.labels(backend=lane.name).set(lane.inflight)
            self._backlog_gauge.labels(backend=lane.name).set(
                lane.backlog_seconds()
            )

    def _note_wasted(self) -> None:
        with self._lock:
            self.hedge_wasted += 1
        self._hedge_wasted_counter.inc()

    # -- failure + hedging ---------------------------------------------------

    def _retire_lane(self, lane: _Lane) -> None:
        """Take a broken backend out of rotation, stopping its workers.

        Queued units are rescued by the workers themselves on dequeue
        (they see ``open=False`` and re-dispatch), so retirement is just
        a flag flip plus sentinels; the lane's threads drain the queue
        and exit.
        """
        with lane.lock:
            if not lane.open:
                return
            lane.open = False
        lane.backend.close()
        for _ in lane.threads:
            lane.queue.put((_SENTINEL_PRIORITY, next(self._seq), 0, None))

    def kill_backend(self, name: str) -> None:
        """Admin/test entry point: retire one backend by queue name.

        In-flight units on it finish or fail over (a closed backend
        raises :class:`~repro.fleet.backends.BackendUnavailable` on its
        next run); queued units re-dispatch to the survivors.
        """
        for lane in self._lanes:
            if lane.name == name:
                self._retire_lane(lane)
                return
        raise KeyError(f"no backend named {name!r}")

    def _hedge_monitor(self) -> None:
        while True:
            time.sleep(self.poll_s)
            with self._lock:
                if self._closed:
                    return
            for lane in self._lanes:
                if not lane.open:
                    continue
                with lane.lock:
                    running = list(lane.running.values())
                now = time.monotonic()
                for unit, started in running:
                    if unit.hedged or unit.future.done():
                        continue
                    threshold = max(
                        self.hedge_after_s,
                        self.hedge_cost_factor
                        * lane.backend.estimate_seconds(unit.weight),
                    )
                    if now - started < threshold:
                        continue
                    target = self._idle_lane(exclude=lane)
                    if target is None:
                        continue
                    unit.hedged = True
                    with self._lock:
                        self.hedges += 1
                        self.redispatched += 1
                    self._hedge_counter.inc()
                    self._redispatch_counter.inc()
                    self._enqueue(target, unit)

    def _idle_lane(self, *, exclude: _Lane) -> _Lane | None:
        for lane in self._lanes:
            if lane is exclude:
                continue
            if lane.is_idle():
                return lane
        return None

    # -- introspection -------------------------------------------------------

    def estimated_wait_s(self, weight: float = 0.0) -> float:
        """Modelled seconds until a new unit of ``weight`` could finish.

        The minimum over open lanes of backlog + unit cost — what the
        front door's deadline-aware admission compares against a
        request's deadline budget.  ``inf`` when every lane is retired.
        """
        best = float("inf")
        for lane in self._lanes:
            if not lane.open or lane.backend.closed:
                continue
            eta = lane.backlog_seconds() + lane.backend.estimate_seconds(weight)
            best = min(best, eta)
        return best

    def backend_names(self) -> list[str]:
        return [lane.name for lane in self._lanes]

    def stats(self) -> dict:
        """JSON-ready fleet health (the ``fleet`` section of ``/v1/stats``)."""
        with self._lock:
            out = {
                "submitted": self.submitted,
                "hedges": self.hedges,
                "redispatched": self.redispatched,
                "hedge_wasted": self.hedge_wasted,
            }
        out["backends"] = [lane.describe() for lane in self._lanes]
        return out

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle -----------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Drain every lane, stop the workers, close the backends."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for lane in self._lanes:
            for _ in lane.threads:
                lane.queue.put((_SENTINEL_PRIORITY, next(self._seq), 0, None))
        deadline = time.monotonic() + timeout
        for lane in self._lanes:
            for t in lane.threads:
                t.join(max(0.0, deadline - time.monotonic()))
        if self._monitor is not None:
            self._monitor.join(max(self.poll_s * 4, 0.2))
        for lane in self._lanes:
            lane.backend.close()

    def __enter__(self) -> "FleetScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
