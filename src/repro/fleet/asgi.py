"""The asyncio front door's application layer (ASGI-shaped, stdlib only).

:class:`FleetApp` is an ASGI-style callable — ``await app(scope, receive,
send)`` — implementing the same versioned ``/v1`` surface as the threaded
server (:mod:`repro.service.http`), byte for byte: same routes, same
error envelope ``{"error": {"code", "message"}}``, same NDJSON streaming
records, same legacy 307s.  The request-body contract is literally
shared code (:func:`~repro.service.http.parse_align_request`,
:func:`~repro.service.http.register_reference_payload`,
:func:`~repro.service.http.classify_align_error`), so the two front ends
cannot drift.

What the async layer adds over the threaded one:

* **non-blocking multiplexing** — one event loop serves every
  connection; an ``/v1/align`` awaits the service future
  (``asyncio.wrap_future``) instead of parking a thread, so thousands of
  in-flight requests cost one task each.
* **tenancy** — per-tenant token-bucket quotas keyed on ``X-API-Key``
  (:mod:`repro.fleet.quota`); an empty bucket answers ``429
  quota_exceeded`` with ``Retry-After``.
* **priority classes** — ``X-Priority: interactive|batch`` maps to the
  fleet scheduler's dispatch classes; interactive requests overtake
  batch work at every queue.  Unknown values are a 400.
* **deadline-aware admission** — ``X-Deadline-Ms`` is compared against
  the fleet's modelled completion estimate
  (:meth:`~repro.fleet.scheduler.FleetScheduler.estimated_wait_s`); a
  request that cannot make its deadline is refused up front with ``504
  deadline_exceeded`` instead of burning a backend on a result nobody
  will read.  The deadline also bounds queue time like ``timeout_s``.

CPU-bearing request work (JSON parse + DNA validation, reference-store
writes, the streaming pipeline) runs on the default executor so the loop
never stalls behind one request.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading

from ..service.http import (
    API_PREFIX,
    DEFAULT_MAX_ALIGN_BODY,
    LEGACY_PATHS,
    RequestError,
    _MAX_REGISTER_BODY,
    _alignment_payload,
    _alignment_rows,
    _classify_stream_error,
    classify_align_error,
    parse_align_request,
    register_reference_payload,
)
from ..service.service import AlignmentService
from .quota import QuotaExceeded, TenantQuotas
from .scheduler import PRIORITY_INTERACTIVE, PRIORITY_NAMES

__all__ = ["FleetApp"]

#: Queue marker: the streaming worker finished; payload is the outcome.
_STREAM_END = object()


def _partial_record(partial) -> dict:
    return {
        "type": "partial",
        "seq": partial.seq,
        "anchors": partial.n_anchors,
        "done_anchors": partial.done_anchors,
        "eager": partial.eager,
        "wall_s": partial.wall_s,
        "alignments": _alignment_rows(partial.alignments),
    }


def _parse_body(body: bytes) -> dict:
    """JSON-object body or :class:`RequestError` (shared 400 semantics)."""
    if not body:
        raise RequestError(400, "bad_request", "body must not be empty")
    try:
        payload = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError):
        raise RequestError(400, "bad_request", "body is not valid JSON") from None
    if not isinstance(payload, dict):
        raise RequestError(400, "bad_request", "body must be a JSON object")
    return payload


class FleetApp:
    """The ``/v1`` surface as one ASGI-style callable.

    Parameters
    ----------
    service:
        The :class:`~repro.service.AlignmentService` behind the surface —
        typically fleet-backed (``fleet=[...]``), but any service works;
        tenancy/priority/deadline headers degrade gracefully without a
        scheduler.
    draining:
        Shared shutdown flag: once set, new POSTs get 503
        ``shutting_down`` and in-flight streams abort with a terminal
        error record.  The server owns (and sets) it.
    quotas:
        Per-tenant admission policy; ``None`` (or an empty policy)
        disables quota checks.
    max_align_body:
        Cap on raw-sequence align bodies, refused 413 *before* the body
        is read off the socket.
    """

    def __init__(
        self,
        service: AlignmentService,
        *,
        draining: threading.Event | None = None,
        quotas: TenantQuotas | None = None,
        max_align_body: int | None = None,
    ) -> None:
        self.service = service
        self.draining = draining if draining is not None else threading.Event()
        self.quotas = quotas if quotas is not None else TenantQuotas()
        self.max_align_body = (
            DEFAULT_MAX_ALIGN_BODY if max_align_body is None else int(max_align_body)
        )
        if self.max_align_body < 1:
            raise ValueError("max_align_body must be positive")

    # -- replies -------------------------------------------------------------

    @staticmethod
    async def _reply_raw(
        send, status: int, body: bytes, content_type: str, headers=None
    ) -> None:
        out = [("Content-Type", content_type), ("Content-Length", str(len(body)))]
        for name, value in (headers or {}).items():
            out.append((name, value))
        await send({"type": "http.response.start", "status": status, "headers": out})
        await send({"type": "http.response.body", "body": body})

    async def _reply(self, send, status: int, payload: dict, headers=None) -> None:
        await self._reply_raw(
            send, status, json.dumps(payload).encode(), "application/json", headers
        )

    async def _error(
        self, send, status: int, code: str, message: str, headers=None
    ) -> None:
        body = json.dumps({"error": {"code": code, "message": message}}).encode()
        await self._reply_raw(send, status, body, "application/json", headers)

    # -- routing -------------------------------------------------------------

    async def __call__(self, scope: dict, receive, send) -> None:
        method = scope["method"]
        path = scope["path"]
        if path in LEGACY_PATHS:
            target = API_PREFIX + path
            query = scope.get("raw_query", "")
            if query:
                target += "?" + query
            await send(
                {
                    "type": "http.response.start",
                    "status": 307,
                    "headers": [
                        ("Location", target),
                        ("Deprecation", "true"),
                        ("Content-Length", "0"),
                    ],
                }
            )
            await send({"type": "http.response.body", "body": b""})
            return
        if method in ("GET", "HEAD"):
            await self._get(scope, send, head=method == "HEAD")
        elif method == "POST":
            await self._post(scope, receive, send)
        else:
            await self._error(
                send, 405, "bad_request", f"method {method} not supported"
            )

    async def _get(self, scope: dict, send, *, head: bool = False) -> None:
        path = scope["path"]
        if head:
            known = {API_PREFIX + p for p in ("/healthz", "/stats", "/metrics")}
            status = 200 if path in known else 404
            await send(
                {
                    "type": "http.response.start",
                    "status": status,
                    "headers": [("Content-Length", "0")],
                }
            )
            await send({"type": "http.response.body", "body": b""})
            return
        if path == API_PREFIX + "/healthz":
            status = "draining" if self.draining.is_set() else "ok"
            await self._reply(send, 200, {"status": status})
        elif path == API_PREFIX + "/stats":
            await self._reply(send, 200, self.service.stats().as_dict())
        elif path == API_PREFIX + "/metrics":
            await self._reply_raw(
                send,
                200,
                self.service.metrics_text().encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == API_PREFIX + "/references":
            store = self.service.store
            if store is None:
                await self._error(
                    send,
                    400,
                    "bad_request",
                    "this server has no reference store (serve --store)",
                )
                return
            await self._reply(send, 200, {"references": store.list()})
        else:
            await self._error(send, 404, "not_found", f"unknown path {path!r}")

    async def _post(self, scope: dict, receive, send) -> None:
        path = scope["path"]
        if self.draining.is_set():
            await self._error(
                send, 503, "shutting_down", "server is draining; no new requests"
            )
            return
        if path == API_PREFIX + "/align":
            raw = scope.get("query", {}).get("stream", ["0"])[-1]
            await self._post_align(
                scope, receive, send, stream=raw not in ("", "0", "false")
            )
        elif path == API_PREFIX + "/references":
            await self._post_references(scope, receive, send)
        else:
            await self._error(send, 404, "not_found", f"unknown path {path!r}")

    # -- request plumbing ----------------------------------------------------

    async def _read_payload(
        self, scope: dict, receive, send, limit: int, over_limit_message: str
    ) -> dict | None:
        """Body → JSON object, or a reply + ``None`` (mirrors ``_read_json``).

        The size check runs on the scope's Content-Length before the body
        is pulled off the socket, so oversize uploads are refused unread
        (the server then drops the connection rather than skip the bytes).
        """
        length = scope.get("content_length", 0)
        if length <= 0:
            await self._error(send, 400, "bad_request", "body must not be empty")
            return None
        if length > limit:
            await self._error(
                send,
                413,
                "payload_too_large",
                f"body is {length} bytes (limit {limit}); " + over_limit_message,
            )
            return None
        body = await receive()
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(None, _parse_body, body)
        except RequestError as exc:
            await self._error(send, exc.status, exc.code, exc.message)
            return None

    def _admission_headers(self, scope: dict):
        """(priority, deadline_ms) from headers; :class:`RequestError` on junk."""
        headers = scope.get("headers", {})
        priority = PRIORITY_INTERACTIVE
        raw_priority = headers.get("x-priority")
        if raw_priority is not None:
            try:
                priority = PRIORITY_NAMES[raw_priority.strip().lower()]
            except KeyError:
                raise RequestError(
                    400,
                    "bad_request",
                    f"unknown X-Priority {raw_priority!r} "
                    f"(want one of {sorted(PRIORITY_NAMES)})",
                ) from None
        deadline_ms = None
        raw_deadline = headers.get("x-deadline-ms")
        if raw_deadline is not None:
            try:
                deadline_ms = float(raw_deadline)
            except ValueError:
                raise RequestError(
                    400, "bad_request", "X-Deadline-Ms must be a number"
                ) from None
            if deadline_ms <= 0:
                raise RequestError(
                    400, "bad_request", "X-Deadline-Ms must be positive"
                )
        return priority, deadline_ms

    def _check_quota(self, scope: dict) -> None:
        if not self.quotas.enabled:
            return
        self.quotas.check(scope.get("headers", {}).get("x-api-key"))

    def _check_deadline(self, fields: dict, deadline_ms: float | None) -> None:
        """Refuse requests the fleet's cost model says cannot make it."""
        fleet = self.service.fleet
        if deadline_ms is None or fleet is None:
            return
        sides = [
            len(codes)
            for codes in (fields["target_codes"], fields["query_codes"])
            if codes is not None
        ]
        # By-ref sides have unknown length here; admission then only
        # charges the backlog, which still catches a saturated fleet.
        weight = float(min(sides)) if len(sides) == 2 else 0.0
        estimate_s = fleet.estimated_wait_s(weight)
        if estimate_s * 1e3 > deadline_ms:
            raise RequestError(
                504,
                "deadline_exceeded",
                f"estimated completion in {estimate_s * 1e3:.0f}ms exceeds "
                f"the {deadline_ms:.0f}ms deadline; not admitted",
            )

    # -- /v1/align -----------------------------------------------------------

    async def _post_align(self, scope, receive, send, *, stream: bool) -> None:
        try:
            self._check_quota(scope)
        except QuotaExceeded as exc:
            await self._error(
                send,
                429,
                "quota_exceeded",
                str(exc),
                headers={"Retry-After": str(max(1, math.ceil(exc.retry_after_s)))},
            )
            return
        try:
            priority, deadline_ms = self._admission_headers(scope)
        except RequestError as exc:
            await self._error(send, exc.status, exc.code, exc.message)
            return
        payload = await self._read_payload(
            scope,
            receive,
            send,
            self.max_align_body,
            "register large sequences once via POST /v1/references and "
            "align by digest ('target_ref'/'query_ref') instead",
        )
        if payload is None:
            return
        loop = asyncio.get_running_loop()
        try:
            fields = await loop.run_in_executor(
                None, parse_align_request, payload, self.service
            )
            self._check_deadline(fields, deadline_ms)
        except RequestError as exc:
            await self._error(
                send, exc.status, exc.code, exc.message, exc.headers or None
            )
            return

        if stream:
            if fields["timeout_s"] is not None:
                await self._error(
                    send,
                    400,
                    "bad_request",
                    "'timeout_s' is not supported with stream=1",
                )
                return
            await self._stream_align(send, fields)
            return

        timeout_s = fields["timeout_s"]
        if deadline_ms is not None:
            deadline_s = deadline_ms / 1e3
            timeout_s = deadline_s if timeout_s is None else min(timeout_s, deadline_s)
        try:
            future = self.service.submit(
                fields["target_codes"],
                fields["query_codes"],
                options=fields["options"],
                timeout_s=timeout_s,
                target_ref=fields["target_ref"],
                query_ref=fields["query_ref"],
                priority=priority,
            )
            result = await asyncio.wrap_future(future)
        except Exception as exc:
            status, code, message, headers = classify_align_error(exc)
            await self._error(send, status, code, message, headers or None)
        else:
            await self._reply(send, 200, _alignment_payload(result))

    # -- streaming -----------------------------------------------------------

    async def _stream_align(self, send, fields: dict) -> None:
        """Chunk-encode NDJSON records as the streaming pipeline produces them.

        The pipeline runs on an executor thread; ``on_partial`` trampolines
        each record onto the loop through an :class:`asyncio.Queue`.  The
        contract matches the threaded server exactly: errors before the
        first record use the plain envelope + status, errors after
        streaming began become a terminal ``{"type": "error"}`` record,
        and the terminal ``summary`` equals the non-streaming payload.
        """
        loop = asyncio.get_running_loop()
        records: asyncio.Queue = asyncio.Queue()
        client_gone = threading.Event()

        def push(item) -> None:
            loop.call_soon_threadsafe(records.put_nowait, item)

        def should_abort() -> bool:
            return self.draining.is_set() or client_gone.is_set()

        def worker() -> None:
            try:
                result = self.service.align_stream(
                    fields["target_codes"],
                    fields["query_codes"],
                    options=fields["options"],
                    target_ref=fields["target_ref"],
                    query_ref=fields["query_ref"],
                    on_partial=lambda p: push(_partial_record(p)),
                    should_abort=should_abort,
                )
            except BaseException as exc:  # noqa: BLE001 - forwarded to loop
                push((_STREAM_END, exc))
            else:
                push((_STREAM_END, result))

        loop.run_in_executor(None, worker)
        started = False

        async def send_record(record: dict) -> None:
            nonlocal started
            if not started:
                await send(
                    {
                        "type": "http.response.start",
                        "status": 200,
                        "headers": [("Content-Type", "application/x-ndjson")],
                    }
                )
                started = True
            await send(
                {
                    "type": "http.response.body",
                    "body": json.dumps(record).encode() + b"\n",
                    "more_body": True,
                }
            )

        try:
            while True:
                item = await records.get()
                if isinstance(item, tuple) and item[0] is _STREAM_END:
                    outcome = item[1]
                    if isinstance(outcome, BaseException):
                        status, code, message = _classify_stream_error(outcome)
                        if not started:
                            await self._error(send, status, code, message)
                        else:
                            await send_record(
                                {
                                    "type": "error",
                                    "error": {"code": code, "message": message},
                                }
                            )
                            await send({"type": "http.response.body", "body": b""})
                    else:
                        await send_record(
                            {"type": "summary", **_alignment_payload(outcome)}
                        )
                        await send({"type": "http.response.body", "body": b""})
                    return
                await send_record(item)
        except (ConnectionError, asyncio.CancelledError):
            # Client went away (or the server is tearing down): flag the
            # producer to stop at its next batch boundary.  Its pushes go
            # through call_soon_threadsafe, so it can never block on this
            # abandoned consumer; no need to await it here.
            client_gone.set()
            raise
        finally:
            client_gone.set()

    # -- /v1/references ------------------------------------------------------

    async def _post_references(self, scope, receive, send) -> None:
        store = self.service.store
        if store is None:
            await self._error(
                send,
                400,
                "bad_request",
                "this server has no reference store (serve --store)",
            )
            return
        payload = await self._read_payload(
            scope,
            receive,
            send,
            _MAX_REGISTER_BODY,
            "split the FASTA and register per chromosome",
        )
        if payload is None:
            return
        loop = asyncio.get_running_loop()
        try:
            reply = await loop.run_in_executor(
                None, register_reference_payload, store, payload
            )
        except RequestError as exc:
            await self._error(
                send, exc.status, exc.code, exc.message, exc.headers or None
            )
            return
        await self._reply(send, 200, reply)
