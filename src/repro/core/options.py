"""FastZ configuration: the optimisation toggles of the paper's Figure 9.

The ablation study progressively enables cyclic buffering, eager traceback
and executor trimming on top of the base inspector-executor-with-binning
design, and finally isolates CUDA streams.  :class:`FastzOptions` encodes
exactly those switches; :func:`ablation_ladder` returns the paper's
progression.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, fields as dataclass_fields, replace

__all__ = [
    "FastzOptions",
    "ablation_ladder",
    "FASTZ_FULL",
    "DEFAULT_BIN_EDGES",
    "SCALED_BIN_EDGES",
]

#: Bin upper bounds (paper §3.3): 512, 2048, 8192, 32768 with 4x scaling.
DEFAULT_BIN_EDGES = (512, 2048, 8192, 32768)

#: Bin edges used by the scaled benchmark suite: the whole workload is
#: shrunk ~8x relative to the paper (chromosomes, y-drop horizon, segment
#: lengths), so the bins shrink by the same factor while keeping the 4x
#: ladder (see EXPERIMENTS.md).
SCALED_BIN_EDGES = (64, 256, 1024, 4096)


@dataclass(frozen=True)
class FastzOptions:
    """Optimisation switches of the FastZ GPU pipeline."""

    #: Hold the three live diagonals in registers (cyclic use-and-discard)
    #: instead of spilling score matrices to global memory.
    cyclic_buffers: bool = True
    #: Track a small traceback tile in the inspector and resolve short
    #: alignments there, skipping the executor.
    eager_traceback: bool = True
    #: Side length of the eager tile (16 x 16 in the paper).
    eager_tile: int = 16
    #: Restrict the executor to the optimal-alignment region found by the
    #: inspector instead of recomputing the whole search space.
    executor_trimming: bool = True
    #: Group executor tasks into alignment-length bins (one kernel each).
    binning: bool = True
    bin_edges: tuple[int, ...] = DEFAULT_BIN_EDGES
    #: Number of CUDA streams (1 disables cross-kernel overlap).
    streams: int = 32
    #: Host DP engine driving the functional pipeline, resolved through
    #: the :mod:`repro.align.engines` registry: ``"scalar"`` runs one
    #: extension at a time (the original per-anchor Python loop),
    #: ``"batched"`` advances struct-of-arrays batches of extensions in
    #: lockstep (:mod:`repro.align.batch`), ``"wholebin"`` advances each
    #: length bin as one tiled lockstep block — bit-identical results
    #: across all registered engines, only wall-clock differs.
    engine: str = "scalar"
    #: Max extensions sharing one lockstep batch under the batched engine
    #: (bounds slab memory; executor batches are additionally composed
    #: per length bin so short and long tasks never share a batch).
    batch_size: int = 256
    #: Score-plane dtype for the lockstep engine: ``"auto"`` uses int32
    #: whenever the worst-case score drift provably fits (halving score
    #: bandwidth, bit-identical either way), ``"int32"``/``"int64"`` force
    #: one path (tests, debugging).
    score_dtype: str = "auto"

    def __post_init__(self) -> None:
        if self.eager_tile <= 0:
            raise ValueError("eager_tile must be positive")
        if self.streams <= 0:
            raise ValueError("streams must be positive")
        # The engine-registry import is deferred: this validator runs at
        # module import time (FASTZ_FULL below), potentially while the
        # pipeline module registering the built-ins is still importing.
        from ..align.engines import registered_engines

        if self.engine not in registered_engines():
            names = ", ".join(repr(n) for n in registered_engines())
            raise ValueError(f"engine must be one of {names}")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.score_dtype not in ("auto", "int32", "int64"):
            raise ValueError("score_dtype must be 'auto', 'int32' or 'int64'")
        if not self.bin_edges or any(
            b <= a for a, b in zip(self.bin_edges, self.bin_edges[1:])
        ):
            raise ValueError("bin_edges must be strictly increasing and non-empty")
        if self.bin_edges[0] <= 0:
            raise ValueError("bin_edges must be positive")

    def to_mapping(self) -> dict:
        """JSON-ready rendering of every option field.

        Tuples become lists so the mapping survives a JSON round trip;
        :meth:`from_mapping` converts them back.  Round-trip identity
        (``FastzOptions.from_mapping(opts.to_mapping()) == opts``) is the
        contract the CLI, the HTTP body parser and :mod:`repro.api` all
        validate through.
        """
        out: dict = {}
        for f in dataclass_fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_mapping(cls, mapping: Mapping) -> "FastzOptions":
        """Build options from a plain mapping, rejecting unknown keys.

        The single validation path for every external surface: CLI flags,
        HTTP ``options`` bodies and :func:`repro.api.align` kwargs all
        funnel through here, so a typo'd key fails loudly everywhere
        instead of being silently dropped by one parser and honoured by
        another.  Values still go through ``__post_init__`` validation.
        """
        if not isinstance(mapping, Mapping):
            raise TypeError(
                f"options must be a mapping, not {type(mapping).__name__}"
            )
        known = {f.name for f in dataclass_fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ValueError(
                f"unknown FastzOptions key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        kwargs = dict(mapping)
        if isinstance(kwargs.get("bin_edges"), list):
            kwargs["bin_edges"] = tuple(kwargs["bin_edges"])
        return cls(**kwargs)

    @property
    def score_dtype_override(self) -> str | None:
        """``score_dtype`` in the engine's argument form (``None`` = auto)."""
        return None if self.score_dtype == "auto" else self.score_dtype

    @property
    def label(self) -> str:
        parts = []
        parts.append("cyclic" if self.cyclic_buffers else "naive")
        if self.eager_traceback:
            parts.append("eager")
        if self.executor_trimming:
            parts.append("trim")
        parts.append(f"streams={self.streams}")
        return "+".join(parts)


#: The complete FastZ configuration (the paper's penultimate Figure 9 bar).
FASTZ_FULL = FastzOptions()


def ablation_ladder(streams: int = 32) -> list[tuple[str, FastzOptions]]:
    """The paper's Figure 9 progression, in order.

    Each entry includes all optimisations of the entries before it:
    base (inspector-executor + binning + lightweight inspector) ->
    +cyclic -> +eager -> +trim (= FastZ) -> FastZ-single-stream.
    """
    base = FastzOptions(
        cyclic_buffers=False,
        eager_traceback=False,
        executor_trimming=False,
        streams=streams,
    )
    ladder = [
        ("insp-exec+binning", base),
        ("+cyclic", replace(base, cyclic_buffers=True)),
        ("+eager", replace(base, cyclic_buffers=True, eager_traceback=True)),
        (
            "+trim (FastZ)",
            replace(
                base,
                cyclic_buffers=True,
                eager_traceback=True,
                executor_trimming=True,
            ),
        ),
        (
            "FastZ-single-stream",
            replace(
                base,
                cyclic_buffers=True,
                eager_traceback=True,
                executor_trimming=True,
                streams=1,
            ),
        ),
    ]
    return ladder
