"""Per-seed task profiles: everything the performance model needs.

One :class:`FastzTask` records the inspector's work profile for both
extension directions, the optimal cells, the eager-traceback outcome, and —
for tasks that reached the executor — the trimmed executor profile.  The
cost model replays these records under any ablation variant without
re-running the DP (the untrimmed executor's work equals the inspector's
search space by construction).

The GPU model works at *side* granularity: each one-sided extension is an
independent DP problem and maps to its own warp, so
:class:`TaskArrays` exposes both task-level sums (CPU model, Feng baseline)
and side-level arrays laid out ``[left0, right0, left1, right1, ...]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.wavefront import WavefrontStats

__all__ = ["FastzTask", "TaskArrays", "tasks_to_arrays"]

_EMPTY_STATS = WavefrontStats(
    diagonals=0, cells=0, warp_steps=0, boundary_cells=0, max_width=0
)


@dataclass(frozen=True)
class FastzTask:
    """Profile of one seed extension through the FastZ pipeline."""

    anchor_t: int
    anchor_q: int
    score: int
    #: Inspector (search-space) work profiles, one per direction.
    insp_left: WavefrontStats
    insp_right: WavefrontStats
    #: Optimal cells found by the inspector.
    left_end: tuple[int, int]
    right_end: tuple[int, int]
    #: True when both directions resolved inside the eager tile.
    eager: bool
    #: Trimmed executor profiles (None for eager tasks — never executed).
    exec_left: WavefrontStats | None
    exec_right: WavefrontStats | None
    #: Alignment length in columns (bases + gaps) per direction, for the
    #: serial traceback walk.
    cols_left: int
    cols_right: int
    #: Load-balancing bin: 0 = eager, 1..len(bin_edges) per §3.3.
    bin_id: int

    @property
    def target_span(self) -> int:
        return self.left_end[0] + self.right_end[0]

    @property
    def query_span(self) -> int:
        return self.left_end[1] + self.right_end[1]

    @property
    def extent(self) -> int:
        return max(self.target_span, self.query_span)

    @property
    def alignment_cols(self) -> int:
        return self.cols_left + self.cols_right

    @property
    def inspector_cells(self) -> int:
        return self.insp_left.cells + self.insp_right.cells

    @property
    def inspector_steps(self) -> int:
        return self.insp_left.warp_steps + self.insp_right.warp_steps

    @property
    def inspector_boundary(self) -> int:
        return self.insp_left.boundary_cells + self.insp_right.boundary_cells

    @property
    def inspector_diagonals(self) -> int:
        return self.insp_left.diagonals + self.insp_right.diagonals

    @property
    def executor_cells(self) -> int:
        """Trimmed executor cells (0 for eager tasks)."""
        left = self.exec_left.cells if self.exec_left else 0
        right = self.exec_right.cells if self.exec_right else 0
        return left + right

    @property
    def executor_steps(self) -> int:
        left = self.exec_left.warp_steps if self.exec_left else 0
        right = self.exec_right.warp_steps if self.exec_right else 0
        return left + right

    @property
    def executor_boundary(self) -> int:
        left = self.exec_left.boundary_cells if self.exec_left else 0
        right = self.exec_right.boundary_cells if self.exec_right else 0
        return left + right


@dataclass(frozen=True)
class TaskArrays:
    """Column-oriented views of a task list (fast vector math).

    Task-level arrays have length ``n``; side-level arrays have length
    ``2n`` with left/right interleaved.
    """

    # task level
    insp_cells: np.ndarray
    insp_steps: np.ndarray
    insp_boundary: np.ndarray
    insp_diagonals: np.ndarray
    exec_cells: np.ndarray
    exec_steps: np.ndarray
    exec_boundary: np.ndarray
    alignment_cols: np.ndarray
    eager: np.ndarray
    bin_id: np.ndarray
    extent: np.ndarray
    # side level (length 2n, [left0, right0, left1, right1, ...])
    side_insp_cells: np.ndarray
    side_insp_steps: np.ndarray
    side_insp_boundary: np.ndarray
    #: Allocation rectangle of the search space in skewed layout
    #: (diagonals x widest diagonal) — what an untrimmed executor or a
    #: spilling inspector must allocate per problem.
    side_insp_rect: np.ndarray
    side_exec_cells: np.ndarray
    side_exec_steps: np.ndarray
    side_exec_boundary: np.ndarray
    side_cols: np.ndarray
    side_span: np.ndarray

    def __len__(self) -> int:
        return int(self.insp_cells.shape[0])

    @property
    def side_eager(self) -> np.ndarray:
        return np.repeat(self.eager, 2)

    @property
    def side_bin_id(self) -> np.ndarray:
        return np.repeat(self.bin_id, 2)

    @property
    def side_extent(self) -> np.ndarray:
        return np.repeat(self.extent, 2)


def tasks_to_arrays(tasks: list[FastzTask]) -> TaskArrays:
    """Convert a task list into parallel arrays."""
    n = len(tasks)

    def per_task(fn) -> np.ndarray:
        return np.fromiter((fn(t) for t in tasks), dtype=np.int64, count=n)

    def per_side(fn_l, fn_r) -> np.ndarray:
        out = np.empty(2 * n, dtype=np.int64)
        for k, t in enumerate(tasks):
            out[2 * k] = fn_l(t)
            out[2 * k + 1] = fn_r(t)
        return out

    def exec_stats(stats: WavefrontStats | None) -> WavefrontStats:
        return stats if stats is not None else _EMPTY_STATS

    return TaskArrays(
        insp_cells=per_task(lambda t: t.inspector_cells),
        insp_steps=per_task(lambda t: t.inspector_steps),
        insp_boundary=per_task(lambda t: t.inspector_boundary),
        insp_diagonals=per_task(lambda t: t.inspector_diagonals),
        exec_cells=per_task(lambda t: t.executor_cells),
        exec_steps=per_task(lambda t: t.executor_steps),
        exec_boundary=per_task(lambda t: t.executor_boundary),
        alignment_cols=per_task(lambda t: t.alignment_cols),
        eager=np.fromiter((t.eager for t in tasks), dtype=bool, count=n),
        bin_id=per_task(lambda t: t.bin_id),
        extent=per_task(lambda t: t.extent),
        side_insp_cells=per_side(
            lambda t: t.insp_left.cells, lambda t: t.insp_right.cells
        ),
        side_insp_steps=per_side(
            lambda t: t.insp_left.warp_steps, lambda t: t.insp_right.warp_steps
        ),
        side_insp_boundary=per_side(
            lambda t: t.insp_left.boundary_cells,
            lambda t: t.insp_right.boundary_cells,
        ),
        side_insp_rect=per_side(
            lambda t: t.insp_left.diagonals * t.insp_left.max_width,
            lambda t: t.insp_right.diagonals * t.insp_right.max_width,
        ),
        side_exec_cells=per_side(
            lambda t: exec_stats(t.exec_left).cells,
            lambda t: exec_stats(t.exec_right).cells,
        ),
        side_exec_steps=per_side(
            lambda t: exec_stats(t.exec_left).warp_steps,
            lambda t: exec_stats(t.exec_right).warp_steps,
        ),
        side_exec_boundary=per_side(
            lambda t: exec_stats(t.exec_left).boundary_cells,
            lambda t: exec_stats(t.exec_right).boundary_cells,
        ),
        side_cols=per_side(lambda t: t.cols_left, lambda t: t.cols_right),
        side_span=per_side(
            lambda t: max(t.left_end), lambda t: max(t.right_end)
        ),
    )
