"""Streaming seed→extend dataflow: the barrier pipeline, without barriers.

:func:`repro.core.pipeline.run_fastz` runs seed → filter → extend as full
stage barriers: nothing extends until every seed is found and thinned.
This module overlaps the stages with a bounded-queue producer/consumer
while keeping the final :class:`~repro.core.pipeline.FastzResult`
**bit-identical** to the barrier run.  Three facts make that possible:

1. **Role swap.**  Exact-match seeding is symmetric: instead of streaming
   query words through a target-side table, the producer builds a
   *query-side* table once and streams **target chunks** through it in
   ascending target order.  Censoring stays global — the censor set is
   the target words occurring more than ``max_word_count`` times, derived
   from a cached target :class:`~repro.seeding.SeedTable` when one is
   available (:func:`~repro.seeding.censored_from_table`) or counted
   directly — so the seed *set* is exactly the barrier pipeline's.

2. **Diagonal frontier.**  Diagonal thinning scans seeds in (diagonal,
   query-pos) order and every keep/drop decision depends only on seeds
   earlier in that order.  After seeding target positions ``< c``, every
   undiscovered seed has diagonal ``>= c - (len(query) - span)``, so all
   buffered seeds below that frontier can be decided *finally*
   (:class:`~repro.seeding.IncrementalCollapser`) and emitted as an
   anchor group while later chunks are still seeding.

3. **Order-free extension.**  Each anchor's extension record is a pure
   function of its two suffix pairs, so the consumer may extend anchor
   groups in arrival order (coalesced into bin-aware lockstep batches via
   the unchanged arena engine) and the fold simply re-sorts the per-anchor
   records into the barrier pipeline's global (query-pos, target-pos)
   anchor order before handing them to
   :func:`~repro.core.pipeline.finish_fastz`.

The queue between the stages is bounded (``queue_depth`` groups): a slow
consumer backpressures the producer instead of buffering the whole seed
stream.  ``on_partial`` surfaces each extension batch as it completes —
the service's NDJSON streaming and ``repro align --stream`` hang off it.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import obs
from ..align.alignment import Alignment
from ..align.extend import combine_alignment
from ..genome.sequence import Sequence
from ..lastz.config import LastzConfig
from ..seeding import Anchors, IncrementalCollapser, SeedTable
from ..seeding.seeds import (
    _window_masked,
    build_seed_table,
    censored_from_table,
    overrepresented_words,
    pack_words,
)
from .options import FASTZ_FULL, FastzOptions
from .pipeline import (
    FastzResult,
    PreparedRequest,
    _anchor_suffixes,
    extend_suffixes_shard,
    finish_fastz,
    shard_anchor_suffixes,
)

__all__ = [
    "DEFAULT_CHUNK_BP",
    "StreamAborted",
    "StreamPartial",
    "run_fastz_streaming",
]

#: Default producer seeding-chunk size in target bases.
DEFAULT_CHUNK_BP = 1 << 15
#: Default bound of the anchor-group queue between producer and consumer.
DEFAULT_QUEUE_DEPTH = 4
#: Default cap on anchors coalesced into one consumer extension batch.
DEFAULT_MAX_BATCH_ANCHORS = 1024


class StreamAborted(RuntimeError):
    """A streaming run was cancelled mid-flight (``should_abort`` fired)."""


@dataclass(frozen=True)
class StreamPartial:
    """Progress record for one completed consumer extension batch."""

    #: 0-based batch sequence number.
    seq: int
    #: Anchors extended in this batch.
    n_anchors: int
    #: Cumulative anchors extended so far (this batch included).
    done_anchors: int
    #: Threshold-clearing alignments discovered by this batch, in batch
    #: anchor order.  The union over all partials equals the final
    #: result's alignments as a set; the final fold re-sorts them into
    #: the barrier pipeline's global anchor order.
    alignments: list[Alignment]
    #: Anchors of this batch fully resolved by the inspector's eager tile.
    eager: int
    #: Seconds since the streaming run started.
    wall_s: float


def _put_cancellable(out, item, cancel: threading.Event) -> bool:
    """Bounded put that gives up when the consumer cancelled the run."""
    while not cancel.is_set():
        try:
            out.put(item, timeout=0.05)
            return True
        except queue.Full:
            continue
    return False


def _produce(
    t_codes: np.ndarray,
    q_codes: np.ndarray,
    config: LastzConfig,
    seed_table: SeedTable | None,
    target_mask: np.ndarray | None,
    query_mask: np.ndarray | None,
    chunk_bp: int,
    out: "queue.Queue",
    cancel: threading.Event,
    parent_span,
    t0: float,
) -> None:
    """Producer thread: chunked seeding + frontier collapse → anchor groups."""
    depth_gauge = obs.gauge(
        "repro_stream_queue_depth",
        "Anchor groups buffered between the streaming seeder and extender.",
    )
    try:
        with obs.span_under(parent_span, "fastz.stream.seed") as sp:
            sp.set(start_s=round(time.perf_counter() - t0, 4))
            # Query-side word table (the role swap) + global censor set.
            q_table = build_seed_table(
                q_codes,
                k=config.seed_length,
                spaced_pattern=config.spaced_pattern,
                mask=query_mask,
            )
            if seed_table is not None:
                censored = censored_from_table(
                    seed_table, max_word_count=config.max_word_count
                )
            else:
                censored = overrepresented_words(
                    t_codes,
                    k=config.seed_length,
                    spaced_pattern=config.spaced_pattern,
                    max_word_count=config.max_word_count,
                    mask=target_mask,
                )
            span_bp = q_table.span
            collapser = IncrementalCollapser(
                window=config.collapse_window,
                diag_band=config.diag_band,
                span=span_bp,
            )
            t_len = int(t_codes.shape[0])
            q_len = int(q_codes.shape[0])
            groups = 0
            chunks = 0

            def emit(anchors: Anchors) -> bool:
                nonlocal groups
                if len(anchors) == 0:
                    return True
                ok = _put_cancellable(
                    out,
                    ("group", anchors.target_pos, anchors.query_pos),
                    cancel,
                )
                if ok:
                    groups += 1
                    depth_gauge.set(out.qsize())
                    obs.counter(
                        "repro_stream_groups_total",
                        "Anchor groups emitted by the streaming seeder.",
                    ).inc()
                return ok

            # Word starts live in [0, t_len - span]; chunk that range in
            # ascending target order so the diagonal frontier advances.
            n_words = t_len - span_bp + 1
            if n_words > 0 and len(q_table) > 0:
                for c0 in range(0, n_words, chunk_bp):
                    if cancel.is_set():
                        return
                    c1 = min(c0 + chunk_bp, n_words)
                    with obs.span_under(
                        parent_span, "fastz.stream.seed_chunk", t_lo=c0, t_hi=c1
                    ) as csp:
                        csp.set(start_s=round(time.perf_counter() - t0, 4))
                        chunk = t_codes[c0 : c1 + span_bp - 1]
                        words, valid, _ = pack_words(
                            chunk,
                            k=config.seed_length,
                            spaced_pattern=config.spaced_pattern,
                        )
                        if target_mask is not None:
                            valid = valid & ~_window_masked(
                                np.asarray(
                                    target_mask[c0 : c1 + span_bp - 1], dtype=bool
                                ),
                                span_bp,
                            )
                        off = np.flatnonzero(valid)
                        w = words[off]
                        if censored.size and w.size:
                            keep = ~np.isin(w, censored)
                            w, off = w[keep], off[keep]
                        n_seeds = 0
                        if w.size:
                            left = np.searchsorted(q_table.words, w, side="left")
                            right = np.searchsorted(q_table.words, w, side="right")
                            counts = right - left
                            hit = counts > 0
                            if hit.any():
                                left = left[hit]
                                counts = counts[hit]
                                t_hit = (c0 + off[hit]).astype(np.int64)
                                n_seeds = int(counts.sum())
                                t_rep = np.repeat(t_hit, counts)
                                starts = np.repeat(left, counts)
                                within = np.arange(n_seeds) - np.repeat(
                                    np.cumsum(counts) - counts, counts
                                )
                                q_rep = q_table.positions[starts + within]
                                collapser.add(t_rep, q_rep)
                        # Every future seed starts at target >= c1 with
                        # query <= q_len - span, so its diagonal is at
                        # least c1 - (q_len - span): seeds below that
                        # frontier are decided finally, mid-stream.
                        anchors = collapser.drain(c1 - (q_len - span_bp))
                        csp.set(
                            seeds=n_seeds,
                            anchors=len(anchors),
                            end_s=round(time.perf_counter() - t0, 4),
                        )
                    chunks += 1
                    obs.counter(
                        "repro_stream_chunks_total",
                        "Seeding chunks processed by the streaming producer.",
                    ).inc()
                    if not emit(anchors):
                        return
            if not emit(collapser.drain(None)):
                return
            sp.set(
                chunks=chunks,
                groups=groups,
                end_s=round(time.perf_counter() - t0, 4),
            )
        _put_cancellable(out, ("done",), cancel)
    except BaseException as exc:  # propagate to the consumer, don't die silent
        _put_cancellable(out, ("error", exc), cancel)


def run_fastz_streaming(
    target: Sequence | np.ndarray,
    query: Sequence | np.ndarray,
    config: LastzConfig | None = None,
    options: FastzOptions = FASTZ_FULL,
    *,
    anchors: Anchors | None = None,
    keep_extensions: bool = False,
    workers: int | None = None,
    seed_table: SeedTable | None = None,
    target_mask: np.ndarray | None = None,
    query_mask: np.ndarray | None = None,
    chunk_bp: int = DEFAULT_CHUNK_BP,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    max_batch_anchors: int = DEFAULT_MAX_BATCH_ANCHORS,
    on_partial: Callable[[StreamPartial], None] | None = None,
    should_abort: Callable[[], bool] | None = None,
) -> FastzResult:
    """Run the FastZ pipeline with seeding/extension overlap.

    Bit-identical to :func:`~repro.core.pipeline.run_fastz` with the same
    arguments — the streaming knobs (``chunk_bp``, ``queue_depth``,
    ``max_batch_anchors``) change wall-clock and progress granularity,
    never results.  ``on_partial`` is called on the consumer thread after
    each extension batch; ``should_abort`` is polled between batches and
    raises :class:`StreamAborted` when it returns True (the HTTP layer's
    graceful drain hooks in here).  ``target_mask``/``query_mask`` mirror
    the soft-masking a cached ``seed_table`` bakes in on the barrier path.
    """
    config = config or LastzConfig()
    if chunk_bp <= 0:
        raise ValueError("chunk_bp must be positive")
    if queue_depth <= 0:
        raise ValueError("queue_depth must be positive")
    if max_batch_anchors <= 0:
        raise ValueError("max_batch_anchors must be positive")

    with obs.span("fastz.run", engine=options.engine, streaming=1) as root:
        t0 = time.perf_counter()
        t_codes = np.asarray(target.codes if isinstance(target, Sequence) else target)
        q_codes = np.asarray(query.codes if isinstance(query, Sequence) else query)
        scheme = config.scheme
        tile = options.eager_tile if options.eager_traceback else 0

        out: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        cancel = threading.Event()
        producer: threading.Thread | None = None
        if anchors is None:
            producer = threading.Thread(
                target=_produce,
                args=(
                    t_codes,
                    q_codes,
                    config,
                    seed_table,
                    target_mask,
                    query_mask,
                    chunk_bp,
                    out,
                    cancel,
                    root,
                    t0,
                ),
                name="fastz-stream-seed",
                daemon=True,
            )
            producer.start()
        else:
            # Pre-selected anchors: one group, same consumer/fold path.
            out.put(
                (
                    "group",
                    np.asarray(anchors.target_pos, dtype=np.int64),
                    np.asarray(anchors.query_pos, dtype=np.int64),
                )
            )
            out.put(("done",))

        pool = None
        depth_gauge = obs.gauge(
            "repro_stream_queue_depth",
            "Anchor groups buffered between the streaming seeder and extender.",
        )
        try:
            if workers and workers > 1:
                import multiprocessing

                pool = multiprocessing.Pool(processes=int(workers))

            all_t: list[np.ndarray] = []
            all_q: list[np.ndarray] = []
            records: list = []
            seq = 0
            done = False
            while not done:
                while True:
                    if should_abort is not None and should_abort():
                        raise StreamAborted("streaming run aborted")
                    try:
                        item = out.get(timeout=0.1)
                        break
                    except queue.Empty:
                        continue
                depth_gauge.set(out.qsize())
                if item[0] == "error":
                    raise item[1]
                if item[0] == "done":
                    break
                batch_t = [item[1]]
                batch_q = [item[2]]
                n_batch = int(item[1].shape[0])
                # Coalesce queued groups into one bin-aware lockstep batch
                # (occupancy), without ever waiting on the producer.
                while n_batch < max_batch_anchors:
                    try:
                        nxt = out.get_nowait()
                    except queue.Empty:
                        break
                    depth_gauge.set(out.qsize())
                    if nxt[0] == "error":
                        raise nxt[1]
                    if nxt[0] == "done":
                        done = True
                        break
                    batch_t.append(nxt[1])
                    batch_q.append(nxt[2])
                    n_batch += int(nxt[1].shape[0])

                t_pos = np.concatenate(batch_t)
                q_pos = np.concatenate(batch_q)
                with obs.span(
                    "fastz.stream.extend",
                    seq=seq,
                    anchors=int(t_pos.shape[0]),
                    groups=len(batch_t),
                ) as esp:
                    esp.set(start_s=round(time.perf_counter() - t0, 4))
                    suffixes = _anchor_suffixes(
                        t_codes, q_codes, t_pos.tolist(), q_pos.tolist()
                    )
                    if pool is not None and t_pos.shape[0] > 1:
                        shards = shard_anchor_suffixes(suffixes, int(workers))
                        parts = pool.starmap(
                            extend_suffixes_shard,
                            [(sub, scheme, options, tile) for _, sub in shards],
                        )
                        per_batch: list = [None] * int(t_pos.shape[0])
                        for (idx, _), part in zip(shards, parts):
                            for k, rec in zip(idx, part):
                                per_batch[k] = rec
                    else:
                        per_batch = extend_suffixes_shard(
                            suffixes, scheme, options, tile
                        )
                    esp.set(end_s=round(time.perf_counter() - t0, 4))

                all_t.append(t_pos)
                all_q.append(q_pos)
                records.extend(per_batch)
                obs.counter(
                    "repro_stream_batches_total",
                    "Extension batches completed by the streaming consumer.",
                ).inc()
                if on_partial is not None:
                    alignments = []
                    eager = 0
                    for (t, q), (insp_l, insp_r, final_l, final_r, _fb) in zip(
                        zip(t_pos.tolist(), q_pos.tolist()), per_batch
                    ):
                        if insp_l.eager_hit and insp_r.eager_hit:
                            eager += 1
                        score = insp_l.score + insp_r.score
                        if score >= scheme.gapped_threshold:
                            alignments.append(
                                combine_alignment(t, q, final_l, final_r, score)
                            )
                    on_partial(
                        StreamPartial(
                            seq=seq,
                            n_anchors=int(t_pos.shape[0]),
                            done_anchors=len(records),
                            alignments=alignments,
                            eager=eager,
                            wall_s=round(time.perf_counter() - t0, 4),
                        )
                    )
                seq += 1
        finally:
            cancel.set()
            if producer is not None:
                producer.join(timeout=30.0)
            if pool is not None:
                pool.terminate()
                pool.join()
            depth_gauge.set(0)

        # --- ordered fold: re-sort per-anchor records into the barrier
        # pipeline's global (query-pos, target-pos) anchor order ----------
        if records:
            t_arr = np.concatenate(all_t)
            q_arr = np.concatenate(all_q)
        else:
            t_arr = np.zeros(0, dtype=np.int64)
            q_arr = np.zeros(0, dtype=np.int64)
        order = np.lexsort((t_arr, q_arr))
        anchors_sorted = Anchors(t_arr[order], q_arr[order])
        per_anchor = [records[i] for i in order]
        prepared = PreparedRequest(
            t_codes=t_codes,
            q_codes=q_codes,
            scheme=scheme,
            options=options,
            anchors=anchors_sorted,
            tile=tile,
            t_pos=anchors_sorted.target_pos.tolist(),
            q_pos=anchors_sorted.query_pos.tolist(),
        )
        result = finish_fastz(prepared, per_anchor, keep_extensions=keep_extensions)
        root.set(
            anchors=prepared.n_anchors,
            alignments=len(result.alignments),
            eager_fraction=result.eager_fraction,
            batches=seq,
        )
        return result
