"""FastZ performance model: profile replay on simulated GPUs.

Converts the per-task work profiles (:class:`~repro.core.task.TaskArrays`)
into :class:`~repro.gpusim.TaskCost` streams for the inspector and executor
phases under any ablation variant of
:class:`~repro.core.options.FastzOptions`, schedules them on a
:class:`~repro.gpusim.DeviceSpec`, and adds the host ("other") component —
yielding the three-way breakdown of the paper's Figure 8 and the speedups
of Figures 7/9/11.

Each *one-sided* extension is its own warp task (left and right extensions
are independent DP problems).  Cost accounting follows the paper's books:

* compute: one warp-step per 32-cell diagonal strip, 23 diverged ops plus
  kernel overhead cycles (calibrated once, globally);
* memory, naive buffers: 32 score bytes per cell (8 accesses x 4 B, §2.2),
  amplified by cache-thrashing scan traffic;
* memory, cyclic buffers: 12 bytes per strip-boundary cell (§3.2/§6);
* executor adds 1 traceback byte per cell (§3.1.3) and a serial traceback
  walk on one thread (§3.1.3 "Traceback Parallelism");
* untrimmed executors allocate search-space-sized matrices (huge
  footprints -> occupancy collapse), trimmed executors allocate exactly
  the optimal region (§3.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpusim.calibration import Calibration, DEFAULT_CALIBRATION
from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import TaskCost
from ..gpusim.streams import simulate_stream_schedule
from .binning import assign_bins
from .options import FASTZ_FULL, FastzOptions, ablation_ladder
from .task import TaskArrays

__all__ = [
    "FastzTiming",
    "ablation_times",
    "estimate_extension_seconds",
    "extension_weight",
    "time_fastz",
    "time_feng_baseline",
]

#: Modelled host throughput for the quick cost estimate, in extension
#: weight units (wavefront-extent bases) per second.  Calibrated against
#: the lockstep NumPy engine on one core; the absolute value only
#: anchors the scale — fleet placement compares backends *relatively*.
HOST_WEIGHT_PER_SECOND = 5.0e6


def extension_weight(suffixes) -> float:
    """Total extension weight of an interleaved right/left suffix list.

    The same per-anchor weight :func:`~repro.core.pipeline
    .shard_anchor_suffixes` balances on — the wavefront's reachable
    extent, ``min(len(t), len(q))`` per one-sided problem — summed over
    the batch.  One number, computed from lengths alone, that every
    admission/placement decision can share without touching the codes.
    """
    return float(sum(min(len(t), len(q)) for t, q in suffixes))


def estimate_extension_seconds(
    weight: float,
    device: DeviceSpec | None = None,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> float:
    """Closed-form cost estimate for ``weight`` units of extension work.

    The fleet scheduler's placement policy runs this per submission, so
    it must stay O(1): no TaskArrays, no stream simulation.  On a GPU
    backend each weight unit is one cell of a 32-lane warp strip —
    issue-bound at ``step_cycles_cyclic`` cycles per 32-cell strip step
    across ``sms x warp_issue_width`` concurrent warp slots.  On the
    host (``device=None``) the lockstep NumPy engine is modelled as a
    flat :data:`HOST_WEIGHT_PER_SECOND` throughput.  Both are estimates
    of *relative* load, not promises of wall-clock.
    """
    if weight < 0:
        raise ValueError("weight must be non-negative")
    if device is None:
        return weight / HOST_WEIGHT_PER_SECOND
    strip_steps = weight / 32.0
    cycles = strip_steps * calib.step_cycles_cyclic
    issue_rate = device.sms * device.warp_issue_width * device.clock_ghz * 1e9
    return cycles / issue_rate


@dataclass(frozen=True)
class FastzTiming:
    """Modelled execution time of one FastZ run on one device."""

    inspector_seconds: float
    executor_seconds: float
    other_seconds: float
    device: str
    options: FastzOptions

    @property
    def total_seconds(self) -> float:
        return self.inspector_seconds + self.executor_seconds + self.other_seconds

    def breakdown(self) -> dict[str, float]:
        """Fractions of total time per phase (Figure 8)."""
        total = self.total_seconds
        if total <= 0:
            return {"inspector": 0.0, "executor": 0.0, "other": 0.0}
        return {
            "inspector": self.inspector_seconds / total,
            "executor": self.executor_seconds / total,
            "other": self.other_seconds / total,
        }


def _as_costs(
    compute: np.ndarray,
    bytes_dram: np.ndarray,
    footprint: np.ndarray,
    critical_fraction: float,
    serial: np.ndarray | None = None,
) -> list[TaskCost]:
    n = compute.shape[0]
    ser = serial if serial is not None else np.zeros(n)
    return [
        TaskCost(
            compute_cycles=float(compute[i]),
            critical_cycles=float(compute[i]) * critical_fraction,
            bytes_dram=float(bytes_dram[i]),
            footprint_bytes=float(footprint[i]),
            serial_cycles=float(ser[i]),
        )
        for i in range(n)
    ]


def _inspector_costs(
    arrays: TaskArrays,
    options: FastzOptions,
    calib: Calibration,
) -> list[TaskCost]:
    steps = arrays.side_insp_steps
    if options.cyclic_buffers:
        compute = steps * calib.step_cycles_cyclic
        bytes_dram = arrays.side_insp_boundary * calib.cyclic_boundary_bytes
        footprint = np.zeros(steps.shape[0])
    else:
        compute = steps * calib.step_cycles_naive
        bytes_dram = (
            arrays.side_insp_cells
            * calib.naive_score_bytes_per_cell
            * calib.naive_traffic_amplification
        )
        # Search-space size is unknown a priori: allocate the batch-worst
        # skewed-layout rectangle per problem (this is exactly the problem
        # the paper's design dodges).
        worst = float(arrays.side_insp_rect.max()) if len(arrays) else 0.0
        footprint = np.full(
            steps.shape[0], worst * (calib.footprint_bytes_per_cell - 1.0)
        )
    return _as_costs(compute, bytes_dram, footprint, calib.critical_fraction)


def _executor_costs(
    arrays: TaskArrays,
    options: FastzOptions,
    calib: Calibration,
) -> tuple[list[TaskCost], np.ndarray]:
    """Executor side-task costs and the side indices that run."""
    n_sides = arrays.side_insp_steps.shape[0]
    side_eager = arrays.side_eager
    if options.eager_traceback:
        include = np.flatnonzero(~side_eager)
    else:
        include = np.arange(n_sides)

    if options.executor_trimming:
        # Eager sides have no measured trimmed profile; if a variant sends
        # them to the executor anyway, approximate with the optimal-span
        # rectangle (at most the eager tile).
        est_cells = (arrays.side_span + 1) ** 2
        est_steps = 2 * arrays.side_span + 2
        cells = np.where(side_eager, est_cells, arrays.side_exec_cells)
        steps = np.where(side_eager, est_steps, arrays.side_exec_steps)
        boundary = np.where(side_eager, 0, arrays.side_exec_boundary)
        footprint = cells * calib.footprint_bytes_per_cell
    else:
        cells = arrays.side_insp_cells
        steps = arrays.side_insp_steps
        boundary = arrays.side_insp_boundary
        # Without trimming the executor allocates the dense skewed-layout
        # rectangle of the whole search space per problem.
        footprint = arrays.side_insp_rect * calib.footprint_bytes_per_cell

    step_cycles = (
        calib.step_cycles_cyclic if options.cyclic_buffers else calib.step_cycles_naive
    ) + calib.step_cycles_executor_extra
    compute = steps * step_cycles
    if options.cyclic_buffers:
        score_bytes = boundary * calib.cyclic_boundary_bytes
    else:
        score_bytes = (
            cells
            * calib.naive_score_bytes_per_cell
            * calib.naive_traffic_amplification
        )
    tb_bytes = cells * calib.traceback_bytes_per_cell + arrays.side_cols
    serial = arrays.side_cols * calib.traceback_walk_cycles_per_base

    compute = compute[include]
    bytes_dram = (score_bytes + tb_bytes)[include]
    footprint = footprint[include]
    serial = serial[include]
    return (
        _as_costs(compute, bytes_dram, footprint, calib.critical_fraction, serial),
        include,
    )


def _chunked(costs: list[TaskCost], chunks: int) -> list[list[TaskCost]]:
    if not costs:
        return []
    chunks = max(1, min(chunks, len(costs)))
    bounds = np.linspace(0, len(costs), chunks + 1).astype(int)
    return [costs[a:b] for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def time_fastz(
    arrays: TaskArrays,
    device: DeviceSpec,
    options: FastzOptions = FASTZ_FULL,
    calib: Calibration = DEFAULT_CALIBRATION,
    *,
    transfer_bytes: float = 0.0,
) -> FastzTiming:
    """Modelled FastZ execution time of a profiled run on ``device``."""
    n = len(arrays)

    # --- inspector: chunked kernels across streams -------------------------
    insp_costs = _inspector_costs(arrays, options, calib)
    insp_kernels = _chunked(insp_costs, calib.inspector_chunks)
    insp = simulate_stream_schedule(
        insp_kernels,
        device,
        streams=options.streams,
        min_warps_full=calib.min_warps_full_throughput,
        mem_bytes=calib.modeled_memory_bytes,
    )

    # --- executor: one kernel per length bin -------------------------------
    exec_costs, include = _executor_costs(arrays, options, calib)
    exec_seconds = 0.0
    if exec_costs:
        if options.binning:
            # Bin by extent; when eager is off, former-eager sides are
            # binned by their (tiny) extents like everything else.
            bins = assign_bins(
                arrays.side_extent[include],
                np.zeros(include.shape[0], dtype=bool),
                options.bin_edges,
            )
            kernels = [
                [exec_costs[k] for k in np.flatnonzero(bins == b)]
                for b in range(1, len(options.bin_edges) + 1)
            ]
            kernels = [k for k in kernels if k]
        else:
            kernels = [exec_costs]
        sched = simulate_stream_schedule(
            kernels,
            device,
            streams=options.streams,
            min_warps_full=calib.min_warps_full_throughput,
            mem_bytes=calib.modeled_memory_bytes,
        )
        exec_seconds = sched.seconds
        if not options.binning:
            # Per-problem device-side allocation serialises (§3: dynamic
            # allocation on GPUs is slow) — the config the paper refused to
            # even plot.
            exec_seconds += len(exec_costs) * device.dynamic_alloc_us * 1e-6

    # --- host-side "other" --------------------------------------------------
    other = (
        calib.host_fixed_us * 1e-6
        + n * calib.host_us_per_task * 1e-6
        + transfer_bytes / (device.pcie_gbs * 1e9)
    )

    return FastzTiming(
        inspector_seconds=insp.seconds,
        executor_seconds=exec_seconds,
        other_seconds=other,
        device=device.name,
        options=options,
    )


def time_feng_baseline(
    arrays: TaskArrays,
    device: DeviceSpec,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> float:
    """Modelled time of the Feng et al. single-problem GPU baseline.

    One seed extension at a time, parallelised across the whole device by
    anti-diagonal, with a grid-wide synchronisation between consecutive
    diagonals (§2.3/§4) — the sync dominates and makes the baseline slower
    than sequential LASTZ.
    """
    clock = device.clock_ghz * 1e9
    issue_total = device.sms * device.warp_issue_width
    sync = arrays.insp_diagonals.sum() * calib.feng_sync_us * 1e-6
    compute = float(
        (arrays.insp_steps * calib.step_cycles_naive).sum() / (issue_total * clock)
    )
    bytes_total = float(
        arrays.insp_cells.sum()
        * calib.naive_score_bytes_per_cell
        * calib.naive_traffic_amplification
        + arrays.insp_cells.sum() * calib.traceback_bytes_per_cell
    )
    memory = bytes_total / (device.mem_bandwidth_gbs * 1e9)
    walk = float(
        arrays.alignment_cols.sum() * calib.traceback_walk_cycles_per_base / clock
    )
    return sync + max(compute, memory) + walk


def ablation_times(
    arrays: TaskArrays,
    device: DeviceSpec,
    calib: Calibration = DEFAULT_CALIBRATION,
    *,
    streams: int = 32,
    bin_edges: tuple[int, ...] | None = None,
    transfer_bytes: float = 0.0,
) -> dict[str, FastzTiming]:
    """Figure 9: timings for the progressive optimisation ladder."""
    out: dict[str, FastzTiming] = {}
    for label, options in ablation_ladder(streams):
        if bin_edges is not None:
            from dataclasses import replace

            options = replace(options, bin_edges=bin_edges)
        out[label] = time_fastz(
            arrays, device, options, calib, transfer_bytes=transfer_bytes
        )
    return out
