"""The FastZ pipeline: inspector -> (eager traceback | trimmed executor).

Functional model of the paper's §3.1: every anchor is inspected with the
cyclic-buffer wavefront engine (no traceback, except the 16x16 eager tile);
extensions that resolve inside the tile are complete after the inspector;
the rest are re-run by the executor on the *trimmed* region — exactly up to
the optimal cell the inspector found — with full packed traceback.

The pipeline produces the same alignments as sequential LASTZ, or
occasionally longer ones (the wavefront's conservative pruning explores a
superset; paper §3.4), and records a :class:`~repro.core.task.FastzTask`
profile per anchor for the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..align.alignment import Alignment
from ..align.extend import combine_alignment
from ..align.wavefront import WavefrontResult, wavefront_extend
from ..genome.sequence import Sequence
from ..lastz.config import LastzConfig
from ..lastz.pipeline import select_anchors
from ..seeding import Anchors
from .binning import assign_bin, bin_histogram
from .options import FASTZ_FULL, FastzOptions
from .task import FastzTask, TaskArrays, tasks_to_arrays

__all__ = ["FastzResult", "run_fastz"]


@dataclass
class FastzResult:
    """Alignments plus per-task work profiles from a FastZ run."""

    alignments: list[Alignment]
    tasks: list[FastzTask]
    anchors: Anchors
    options: FastzOptions
    #: Times the trimmed executor disagreed with the inspector and fell
    #: back to an exact (unpruned) recompute. Expected to be ~0.
    executor_fallbacks: int = 0
    extensions: list = field(default_factory=list, repr=False)

    @cached_property
    def arrays(self) -> TaskArrays:
        return tasks_to_arrays(self.tasks)

    @property
    def eager_count(self) -> int:
        return sum(1 for t in self.tasks if t.eager)

    @property
    def eager_fraction(self) -> float:
        return self.eager_count / len(self.tasks) if self.tasks else 0.0

    def bin_counts(self) -> np.ndarray:
        """Table-2 row: [eager, bin1, bin2, bin3, bin4] counts."""
        ids = np.array([t.bin_id for t in self.tasks], dtype=np.int64)
        return bin_histogram(ids, self.options.bin_edges)

    def unique_alignments(self) -> list[Alignment]:
        """Alignments deduplicated by (target, query) interval."""
        seen = set()
        out = []
        for a in self.alignments:
            key = (a.target_start, a.target_end, a.query_start, a.query_end)
            if key not in seen:
                seen.add(key)
                out.append(a)
        return out


def _executor_side(
    t_suffix: np.ndarray,
    q_suffix: np.ndarray,
    inspected: WavefrontResult,
    scheme,
) -> tuple[WavefrontResult, bool]:
    """Trimmed executor recompute of one direction.

    Returns the executor result and whether an exact-recompute fallback was
    needed (the trimmed y-drop rerun found a different optimum — extremely
    rare, but the executor must never emit a wrong alignment).
    """
    trimmed_t = t_suffix[: inspected.end_i]
    trimmed_q = q_suffix[: inspected.end_j]
    result = wavefront_extend(trimmed_t, trimmed_q, scheme, traceback=True)
    if (result.score, result.end_i, result.end_j) == (
        inspected.score,
        inspected.end_i,
        inspected.end_j,
    ):
        return result, False
    exact = wavefront_extend(trimmed_t, trimmed_q, scheme, traceback=True, prune=False)
    return exact, True


def run_fastz(
    target: Sequence | np.ndarray,
    query: Sequence | np.ndarray,
    config: LastzConfig | None = None,
    options: FastzOptions = FASTZ_FULL,
    *,
    anchors: Anchors | None = None,
    keep_extensions: bool = False,
) -> FastzResult:
    """Run the FastZ pipeline over all anchors (no sequential skipping).

    ``options`` controls the *functional* behaviour: disabling eager
    traceback sends every task to the executor; disabling trimming makes
    the executor recompute the full search space (as the ablation variants
    of Figure 9 do).  The performance model can also replay a full-FastZ
    profile under any variant without re-running this pipeline.
    """
    config = config or LastzConfig()
    t_codes = np.asarray(target.codes if isinstance(target, Sequence) else target)
    q_codes = np.asarray(query.codes if isinstance(query, Sequence) else query)
    scheme = config.scheme

    if anchors is None:
        anchors = select_anchors(t_codes, q_codes, config)
    order = np.lexsort((anchors.target_pos, anchors.query_pos))
    anchors = anchors.take(order)

    tile = options.eager_tile if options.eager_traceback else 0
    alignments: list[Alignment] = []
    tasks: list[FastzTask] = []
    extensions: list = []
    fallbacks = 0

    for t, q in zip(anchors.target_pos.tolist(), anchors.query_pos.tolist()):
        right_suffix_t = t_codes[t:]
        right_suffix_q = q_codes[q:]
        left_suffix_t = t_codes[:t][::-1]
        left_suffix_q = q_codes[:q][::-1]

        # --- inspector ------------------------------------------------------
        insp_r = wavefront_extend(right_suffix_t, right_suffix_q, scheme, eager_tile=tile)
        insp_l = wavefront_extend(left_suffix_t, left_suffix_q, scheme, eager_tile=tile)
        eager = insp_l.eager_hit and insp_r.eager_hit
        score = insp_l.score + insp_r.score

        # --- executor (or not) ----------------------------------------------
        if eager:
            final_l, final_r = insp_l, insp_r
            exec_l = exec_r = None
        elif options.executor_trimming:
            final_r, fb_r = _executor_side(right_suffix_t, right_suffix_q, insp_r, scheme)
            final_l, fb_l = _executor_side(left_suffix_t, left_suffix_q, insp_l, scheme)
            fallbacks += int(fb_r) + int(fb_l)
            exec_l, exec_r = final_l.stats, final_r.stats
        else:
            # Untrimmed executor: recompute the full search space with
            # traceback (the V1/V2 ablation behaviour).
            final_r = wavefront_extend(right_suffix_t, right_suffix_q, scheme, traceback=True)
            final_l = wavefront_extend(left_suffix_t, left_suffix_q, scheme, traceback=True)
            exec_l, exec_r = final_l.stats, final_r.stats

        cols_l = sum(n for _, n in (final_l.ops or ()))
        cols_r = sum(n for _, n in (final_r.ops or ()))
        bin_id = assign_bin(
            max(
                final_l.end_i + final_r.end_i,
                final_l.end_j + final_r.end_j,
            ),
            eager,
            options.bin_edges,
        )
        tasks.append(
            FastzTask(
                anchor_t=t,
                anchor_q=q,
                score=score,
                insp_left=insp_l.stats,
                insp_right=insp_r.stats,
                left_end=(insp_l.end_i, insp_l.end_j),
                right_end=(insp_r.end_i, insp_r.end_j),
                eager=eager,
                exec_left=exec_l,
                exec_right=exec_r,
                cols_left=cols_l,
                cols_right=cols_r,
                bin_id=bin_id,
            )
        )

        if score >= scheme.gapped_threshold:
            alignments.append(combine_alignment(t, q, final_l, final_r, score))
        if keep_extensions:
            extensions.append((final_l, final_r))

    return FastzResult(
        alignments=alignments,
        tasks=tasks,
        anchors=anchors,
        options=options,
        executor_fallbacks=fallbacks,
        extensions=extensions,
    )
