"""The FastZ pipeline: inspector -> (eager traceback | trimmed executor).

Functional model of the paper's §3.1: every anchor is inspected with the
cyclic-buffer wavefront engine (no traceback, except the 16x16 eager tile);
extensions that resolve inside the tile are complete after the inspector;
the rest are re-run by the executor on the *trimmed* region — exactly up to
the optimal cell the inspector found — with full packed traceback.

The pipeline produces the same alignments as sequential LASTZ, or
occasionally longer ones (the wavefront's conservative pruning explores a
superset; paper §3.4), and records a :class:`~repro.core.task.FastzTask`
profile per anchor for the performance model.

Host engines drive the extensions (``FastzOptions.engine``), dispatched
through the :mod:`repro.align.engines` registry — every name below is a
``@register_engine`` entry here, and callers (service, pool workers,
fleet backends, streaming, jobs) resolve names with ``get_engine``:

* ``"scalar"`` — the original per-anchor loop over
  :func:`~repro.align.wavefront.wavefront_extend`;
* ``"batched"`` — the struct-of-arrays lockstep engine
  (:mod:`repro.align.batch`): the inspector advances all anchors' wavefronts
  together, and executor tasks are composed into per-length-bin batches
  (§3.3's inter-task parallelism) before being advanced in lockstep;
* ``"wholebin"`` — the same lockstep core, but each length bin advances
  as *one* block of anti-diagonal sweeps
  (:func:`~repro.align.batch.wholebin_wavefront_extend`): no per-chunk
  Python loops, rows swept in cache tiles with dead lanes masked.

All engines produce bit-identical results; ``run_fastz(..., workers=N)``
additionally shards the anchor set across a ``multiprocessing`` pool for
big profile builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from .. import obs
from ..align.alignment import Alignment
from ..align.arena import thread_arena
from ..align.batch import batch_wavefront_extend, wholebin_wavefront_extend
from ..align.engines import get_engine, register_engine
from ..align.extend import combine_alignment
from ..align.wavefront import WavefrontResult, wavefront_extend
from ..genome.sequence import Sequence
from ..lastz.config import LastzConfig
from ..lastz.pipeline import select_anchors
from ..scoring import ScoringScheme
from ..seeding import Anchors
from .binning import assign_bin, assign_bins, bin_histogram
from .options import FASTZ_FULL, FastzOptions
from .task import FastzTask, TaskArrays, tasks_to_arrays

__all__ = [
    "ChunkResult",
    "FastzResult",
    "PreparedRequest",
    "extend_suffixes_batched",
    "extend_suffixes_shard",
    "extend_suffixes_wholebin",
    "finish_fastz",
    "prepare_fastz",
    "run_fastz",
    "run_fastz_chunk",
    "shard_anchor_suffixes",
]


@dataclass
class FastzResult:
    """Alignments plus per-task work profiles from a FastZ run."""

    alignments: list[Alignment]
    tasks: list[FastzTask]
    anchors: Anchors
    options: FastzOptions
    #: Times the trimmed executor disagreed with the inspector and fell
    #: back to an exact (unpruned) recompute. Expected to be ~0.
    executor_fallbacks: int = 0
    extensions: list = field(default_factory=list, repr=False)

    @cached_property
    def arrays(self) -> TaskArrays:
        return tasks_to_arrays(self.tasks)

    @property
    def eager_count(self) -> int:
        return sum(1 for t in self.tasks if t.eager)

    @property
    def eager_fraction(self) -> float:
        return self.eager_count / len(self.tasks) if self.tasks else 0.0

    def bin_counts(self) -> np.ndarray:
        """Table-2 row: [eager, bin1, bin2, bin3, bin4] counts."""
        ids = np.array([t.bin_id for t in self.tasks], dtype=np.int64)
        return bin_histogram(ids, self.options.bin_edges)

    def unique_alignments(self) -> list[Alignment]:
        """Alignments deduplicated by (target, query) interval."""
        seen = set()
        out = []
        for a in self.alignments:
            key = (a.target_start, a.target_end, a.query_start, a.query_end)
            if key not in seen:
                seen.add(key)
                out.append(a)
        return out


def _executor_side(
    t_suffix: np.ndarray,
    q_suffix: np.ndarray,
    inspected: WavefrontResult,
    scheme,
) -> tuple[WavefrontResult, bool]:
    """Trimmed executor recompute of one direction.

    Returns the executor result and whether an exact-recompute fallback was
    needed (the trimmed y-drop rerun found a different optimum — extremely
    rare, but the executor must never emit a wrong alignment).
    """
    trimmed_t = t_suffix[: inspected.end_i]
    trimmed_q = q_suffix[: inspected.end_j]
    result = wavefront_extend(trimmed_t, trimmed_q, scheme, traceback=True)
    if (result.score, result.end_i, result.end_j) == (
        inspected.score,
        inspected.end_i,
        inspected.end_j,
    ):
        return result, False
    exact = wavefront_extend(trimmed_t, trimmed_q, scheme, traceback=True, prune=False)
    return exact, True


#: Per-anchor extension record: (inspector left/right, final left/right,
#: executor-fallback count).  Produced identically by both engines.
_AnchorExtension = tuple[WavefrontResult, WavefrontResult, WavefrontResult, WavefrontResult, int]


def _extend_one_suffix_pair(
    right: tuple[np.ndarray, np.ndarray],
    left: tuple[np.ndarray, np.ndarray],
    scheme: ScoringScheme,
    options: FastzOptions,
    tile: int,
) -> _AnchorExtension:
    """Inspector + executor for one anchor's two one-sided problems."""
    right_suffix_t, right_suffix_q = right
    left_suffix_t, left_suffix_q = left

    # --- inspector --------------------------------------------------
    insp_r = wavefront_extend(right_suffix_t, right_suffix_q, scheme, eager_tile=tile)
    insp_l = wavefront_extend(left_suffix_t, left_suffix_q, scheme, eager_tile=tile)
    eager = insp_l.eager_hit and insp_r.eager_hit

    # --- executor (or not) ------------------------------------------
    fb = 0
    if eager:
        final_l, final_r = insp_l, insp_r
    elif options.executor_trimming:
        final_r, fb_r = _executor_side(right_suffix_t, right_suffix_q, insp_r, scheme)
        final_l, fb_l = _executor_side(left_suffix_t, left_suffix_q, insp_l, scheme)
        fb = int(fb_r) + int(fb_l)
    else:
        # Untrimmed executor: recompute the full search space with
        # traceback (the V1/V2 ablation behaviour).
        final_r = wavefront_extend(right_suffix_t, right_suffix_q, scheme, traceback=True)
        final_l = wavefront_extend(left_suffix_t, left_suffix_q, scheme, traceback=True)
    return (insp_l, insp_r, final_l, final_r, fb)


@register_engine("scalar")
def _extend_suffixes_scalar(
    suffixes: list[tuple[np.ndarray, np.ndarray]],
    scheme: ScoringScheme,
    options: FastzOptions,
    tile: int,
) -> list[_AnchorExtension]:
    """The original per-anchor loop over interleaved right/left suffixes."""
    out: list[_AnchorExtension] = []
    with obs.span("fastz.extend", engine="scalar", anchors=len(suffixes) // 2) as sp:
        for k in range(len(suffixes) // 2):
            out.append(
                _extend_one_suffix_pair(
                    suffixes[2 * k], suffixes[2 * k + 1], scheme, options, tile
                )
            )
        sp.set(eager=sum(1 for r in out if r[0].eager_hit and r[1].eager_hit))
    return out


def _anchor_suffixes(
    t_codes: np.ndarray,
    q_codes: np.ndarray,
    t_pos: list[int],
    q_pos: list[int],
) -> list[tuple[np.ndarray, np.ndarray]]:
    """The two one-sided extension problems of each anchor, interleaved.

    Anchor ``k``'s right extension is at index ``2k``, its (reversed) left
    extension at ``2k + 1`` — the layout :func:`extend_suffixes_batched`
    expects.
    """
    suffixes: list[tuple[np.ndarray, np.ndarray]] = []
    for t, q in zip(t_pos, q_pos):
        suffixes.append((t_codes[t:], q_codes[q:]))  # right at 2k
        suffixes.append((t_codes[:t][::-1], q_codes[:q][::-1]))  # left at 2k+1
    return suffixes


@register_engine("batched")
def extend_suffixes_batched(
    suffixes: list[tuple[np.ndarray, np.ndarray]],
    scheme: ScoringScheme,
    options: FastzOptions,
    tile: int,
) -> list[_AnchorExtension]:
    """Lockstep inter-task extension: batched inspector, bin-aware executor.

    ``suffixes`` is the interleaved right/left layout of
    :func:`_anchor_suffixes` and may concatenate the anchors of *several*
    alignment requests — the extension problems are independent, so the
    alignment service fuses concurrent requests into one call and the
    per-anchor records come back bit-identical to per-request runs.

    The inspector advances every anchor's left and right wavefronts in
    struct-of-arrays batches of ``options.batch_size``.  Executor tasks are
    then grouped by the inspector-measured alignment-length bin
    (:func:`~repro.core.binning.assign_bins`) so short and long extensions
    never share a lockstep batch — the load-balance argument of §3.3 —
    and each bin is advanced in lockstep with full packed traceback.
    """
    with obs.span(
        "fastz.extend", engine="batched", anchors=len(suffixes) // 2
    ) as sp:
        return _extend_suffixes_lockstep_impl(
            suffixes, scheme, options, tile, sp, wholebin=False
        )


@register_engine("wholebin")
def extend_suffixes_wholebin(
    suffixes: list[tuple[np.ndarray, np.ndarray]],
    scheme: ScoringScheme,
    options: FastzOptions,
    tile: int,
) -> list[_AnchorExtension]:
    """Whole-bin lockstep extension: one SoA sweep block per length bin.

    Same inspector -> bin-aware executor composition as
    :func:`extend_suffixes_batched`, but each stage feeds the engine
    *whole bins*: the inspector advances every anchor's wavefronts in one
    :func:`~repro.align.batch.wholebin_wavefront_extend` block, and each
    executor bin becomes a single block too (extent-ordered, rows swept
    in cache tiles with dead lanes masked) instead of ``batch_size``
    chunks each driving their own Python loop.  Per-bin sweep counts and
    the masked-lane fraction are recorded on the ``fastz.executor`` span
    and the ``repro_batch_bin_*`` counters, so ``repro trace`` shows the
    tiling/masking tradeoff directly.  Results are bit-identical to the
    other engines.
    """
    with obs.span(
        "fastz.extend", engine="wholebin", anchors=len(suffixes) // 2
    ) as sp:
        return _extend_suffixes_lockstep_impl(
            suffixes, scheme, options, tile, sp, wholebin=True
        )


def _sweep_snapshot() -> tuple[float, float, float]:
    """Current values of the engine's global sweep ledger counters."""
    return (
        obs.counter(
            "repro_batch_sweep_steps_total",
            "Anti-diagonal lockstep sweep steps advanced.",
        ).value(),
        obs.counter(
            "repro_batch_sweep_slab_cells_total",
            "Union-window slab cells swept (live work plus masked dead lanes).",
        ).value(),
        obs.counter(
            "repro_batch_sweep_live_cells_total",
            "In-window live cells among swept slab cells.",
        ).value(),
    )


def _record_bin_sweeps(ex_sp, bin_id: int, before: tuple[float, float, float]) -> None:
    """Attribute the sweep-ledger delta around one executor bin to that bin.

    The delta is read from thread-shared counters, so under concurrent
    engine calls (service threads) the per-bin attribution is approximate;
    on the single-threaded paths ``repro trace`` reports it is exact.
    """
    steps0, cells0, live0 = before
    steps1, cells1, live1 = _sweep_snapshot()
    sweeps = steps1 - steps0
    cells = cells1 - cells0
    live = live1 - live0
    if cells <= 0:
        return
    obs.counter(
        "repro_batch_bin_sweeps_total",
        "Anti-diagonal sweep steps per executor length bin.",
    ).labels(bin=bin_id).inc(sweeps)
    obs.counter(
        "repro_batch_bin_slab_cells_total",
        "Slab cells swept per executor length bin.",
    ).labels(bin=bin_id).inc(cells)
    obs.counter(
        "repro_batch_bin_masked_cells_total",
        "Masked dead-lane cells swept per executor length bin.",
    ).labels(bin=bin_id).inc(max(cells - live, 0))
    ex_sp.set(
        sweeps=int(sweeps),
        occupancy=round(live / cells, 4),
        masked_fraction=round(1.0 - live / cells, 4),
    )


def _extend_suffixes_lockstep_impl(
    suffixes: list[tuple[np.ndarray, np.ndarray]],
    scheme: ScoringScheme,
    options: FastzOptions,
    tile: int,
    sp,
    *,
    wholebin: bool,
) -> list[_AnchorExtension]:
    n_anchors = len(suffixes) // 2
    with obs.span("fastz.inspector", tasks=len(suffixes)):
        if wholebin:
            insp = wholebin_wavefront_extend(
                suffixes,
                scheme,
                eager_tile=tile,
                arena=thread_arena("inspector"),
                score_dtype=options.score_dtype_override,
            )
        else:
            insp = batch_wavefront_extend(
                suffixes,
                scheme,
                eager_tile=tile,
                batch_size=options.batch_size,
                arena=thread_arena("inspector"),
                score_dtype=options.score_dtype_override,
            )
    insp_r = insp[0::2]
    insp_l = insp[1::2]

    eager = np.fromiter(
        (insp_l[k].eager_hit and insp_r[k].eager_hit for k in range(n_anchors)),
        dtype=bool,
        count=n_anchors,
    )
    pending = np.flatnonzero(~eager)
    n_eager = int(eager.sum())
    sp.set(eager=n_eager, executor_anchors=int(pending.shape[0]))
    obs.counter(
        "repro_pipeline_anchors_total", "Anchors extended by the pipeline."
    ).inc(n_anchors)
    obs.counter(
        "repro_pipeline_eager_total",
        "Anchors fully resolved by the inspector's eager tile.",
    ).inc(n_eager)

    # --- bin-aware executor batch composition (§3.3) ------------------------
    # Extent is known after the inspector; group executor jobs per bin so a
    # lockstep batch never mixes short and long alignments.
    finals: dict[tuple[int, int], WavefrontResult] = {}
    if pending.shape[0]:
        extents = np.fromiter(
            (
                max(
                    insp_l[k].end_i + insp_r[k].end_i,
                    insp_l[k].end_j + insp_r[k].end_j,
                )
                for k in pending
            ),
            dtype=np.int64,
            count=pending.shape[0],
        )
        if options.binning:
            bins = assign_bins(
                extents, np.zeros(pending.shape[0], dtype=bool), options.bin_edges
            )
        else:
            bins = np.zeros(pending.shape[0], dtype=np.int64)
        for bin_id in np.unique(bins):
            jobs: list[tuple[int, int]] = []  # (anchor index, side: 0=right 1=left)
            job_pairs: list[tuple[np.ndarray, np.ndarray]] = []
            job_extents: list[int] = []
            for k in pending[bins == bin_id]:
                for side in (0, 1):
                    ins = (insp_r, insp_l)[side][k]
                    t_suffix, q_suffix = suffixes[2 * k + side]
                    if options.executor_trimming:
                        t_suffix = t_suffix[: ins.end_i]
                        q_suffix = q_suffix[: ins.end_j]
                    jobs.append((int(k), side))
                    job_pairs.append((t_suffix, q_suffix))
                    job_extents.append(ins.end_i + ins.end_j)
            # Occupancy-aware composition: order the bin's jobs by the
            # inspector-measured extent (not raw suffix length) so the
            # engine's lockstep rows pack tasks of similar true depth —
            # with trimming off, suffix lengths say nothing about how far
            # the y-drop wavefront actually reaches.  Results are keyed by
            # (anchor, side), so ordering never changes output.  The
            # whole-bin engine always sorts: extent neighbours share a row
            # tile, keeping each tile's union window tight.
            if wholebin or len(jobs) > options.batch_size:
                by_extent = sorted(
                    range(len(jobs)), key=job_extents.__getitem__
                )
                jobs = [jobs[i] for i in by_extent]
                job_pairs = [job_pairs[i] for i in by_extent]
            with obs.span(
                "fastz.executor", bin=int(bin_id), tasks=len(job_pairs)
            ) as ex_sp:
                before = _sweep_snapshot()
                if wholebin:
                    ran = wholebin_wavefront_extend(
                        job_pairs,
                        scheme,
                        traceback=True,
                        arena=thread_arena(f"executor:{int(bin_id)}"),
                        score_dtype=options.score_dtype_override,
                        presorted=True,
                    )
                else:
                    ran = batch_wavefront_extend(
                        job_pairs,
                        scheme,
                        traceback=True,
                        batch_size=options.batch_size,
                        arena=thread_arena(f"executor:{int(bin_id)}"),
                        score_dtype=options.score_dtype_override,
                        presorted=True,
                    )
                _record_bin_sweeps(ex_sp, int(bin_id), before)
            obs.counter(
                "repro_pipeline_executor_tasks_total",
                "Executor extension tasks dispatched, by length bin.",
            ).labels(bin=int(bin_id)).inc(len(job_pairs))
            for (k, side), result in zip(jobs, ran):
                finals[(k, side)] = result

    out: list[_AnchorExtension] = []
    for k in range(n_anchors):
        if eager[k]:
            out.append((insp_l[k], insp_r[k], insp_l[k], insp_r[k], 0))
            continue
        fb = 0
        sides: list[WavefrontResult] = []
        for side in (0, 1):
            ins = (insp_r, insp_l)[side][k]
            result = finals[(k, side)]
            if options.executor_trimming and (
                result.score,
                result.end_i,
                result.end_j,
            ) != (ins.score, ins.end_i, ins.end_j):
                # Trimmed rerun disagreed with the inspector: exact fallback,
                # exactly as the scalar executor does.
                t_suffix, q_suffix = suffixes[2 * k + side]
                result = wavefront_extend(
                    t_suffix[: ins.end_i],
                    q_suffix[: ins.end_j],
                    scheme,
                    traceback=True,
                    prune=False,
                )
                fb += 1
            sides.append(result)
        if fb:
            obs.counter(
                "repro_pipeline_executor_fallbacks_total",
                "Trimmed executor reruns that disagreed with the inspector.",
            ).inc(fb)
        out.append((insp_l[k], insp_r[k], sides[1], sides[0], fb))
    return out


def shard_anchor_suffixes(
    suffixes: list[tuple[np.ndarray, np.ndarray]],
    n_shards: int,
) -> list[tuple[list[int], list[tuple[np.ndarray, np.ndarray]]]]:
    """Split an interleaved suffix list into LPT-balanced anchor shards.

    Each shard is ``(anchor_indices, shard_suffixes)`` where
    ``shard_suffixes`` keeps the right-at-``2k``/left-at-``2k+1``
    interleaving for the shard's anchors in ascending anchor order.
    Anchors are weighted by the smaller dimension of each one-sided
    problem (the wavefront's reachable extent) and dealt heaviest-first
    to the lightest shard (:func:`~repro.core.multigpu.greedy_partition`)
    so one repeat-dense anchor cannot serialise a whole shard — the
    workload-balance lever the service's multiprocess pool backend
    dispatches on.  Empty shards are dropped; extension records re-placed
    by anchor index reproduce the unsharded order exactly.
    """
    from .multigpu import greedy_partition

    n_anchors = len(suffixes) // 2
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    weights = [
        min(len(suffixes[2 * k][0]), len(suffixes[2 * k][1]))
        + min(len(suffixes[2 * k + 1][0]), len(suffixes[2 * k + 1][1]))
        for k in range(n_anchors)
    ]
    shards: list[tuple[list[int], list[tuple[np.ndarray, np.ndarray]]]] = []
    for part in greedy_partition(weights, n_shards):
        if not part:
            continue
        idx = sorted(part)
        sub: list[tuple[np.ndarray, np.ndarray]] = []
        for k in idx:
            sub.append(suffixes[2 * k])
            sub.append(suffixes[2 * k + 1])
        shards.append((idx, sub))
    return shards


def extend_suffixes_shard(
    suffixes: list[tuple[np.ndarray, np.ndarray]],
    scheme: ScoringScheme,
    options: FastzOptions,
    tile: int,
) -> list[_AnchorExtension]:
    """Engine-dispatching extension of one suffix shard (picklable entry).

    Module-level so pool workers can receive it by reference: one shard
    of a fused batch runs the configured engine — resolved through the
    :mod:`repro.align.engines` registry — exactly as the in-process path
    would, and because every extension task is independent the per-anchor
    records are bit-identical however the batch was sharded.
    """
    return get_engine(options.engine)(suffixes, scheme, options, tile)


def _extend_anchors(
    t_codes: np.ndarray,
    q_codes: np.ndarray,
    scheme: ScoringScheme,
    options: FastzOptions,
    tile: int,
    t_pos: list[int],
    q_pos: list[int],
) -> list[_AnchorExtension]:
    """Extend one request's anchors with the configured registry engine."""
    return get_engine(options.engine)(
        _anchor_suffixes(t_codes, q_codes, t_pos, q_pos), scheme, options, tile
    )


def _extend_chunk(args) -> list[_AnchorExtension]:
    """Top-level pool worker: extend one contiguous anchor chunk."""
    t_codes, q_codes, scheme, options, tile, t_pos, q_pos = args
    return _extend_anchors(t_codes, q_codes, scheme, options, tile, t_pos, q_pos)


def _extend_anchors_pool(
    t_codes: np.ndarray,
    q_codes: np.ndarray,
    scheme: ScoringScheme,
    options: FastzOptions,
    tile: int,
    t_pos: list[int],
    q_pos: list[int],
    workers: int,
) -> list[_AnchorExtension]:
    """Shard the anchor set across a multiprocessing pool.

    Each worker runs the configured engine over a contiguous anchor chunk;
    chunk results concatenate back in anchor order, so the merged output is
    identical to a single-process run.
    """
    import multiprocessing

    n_anchors = len(t_pos)
    chunk = -(-n_anchors // workers)
    payloads = [
        (
            t_codes,
            q_codes,
            scheme,
            options,
            tile,
            t_pos[start : start + chunk],
            q_pos[start : start + chunk],
        )
        for start in range(0, n_anchors, chunk)
    ]
    with multiprocessing.Pool(processes=min(workers, len(payloads))) as pool:
        parts = pool.map(_extend_chunk, payloads)
    return [record for part in parts for record in part]


@dataclass
class PreparedRequest:
    """One alignment request after anchor selection, ready for extension.

    The per-request half of the pipeline that is independent of every other
    request: sequence codes, the sorted anchor set and the extension
    parameters.  ``run_fastz`` builds one, extends it and finishes it in a
    single call; the alignment service prepares many requests, fuses their
    :meth:`suffixes` into shared lockstep batches, and finishes each with
    :func:`finish_fastz` — with results bit-identical to per-request runs.
    """

    t_codes: np.ndarray
    q_codes: np.ndarray
    scheme: ScoringScheme
    options: FastzOptions
    anchors: Anchors
    tile: int
    t_pos: list[int]
    q_pos: list[int]

    @property
    def n_anchors(self) -> int:
        return len(self.t_pos)

    def suffixes(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Interleaved right/left extension problems of every anchor."""
        return _anchor_suffixes(self.t_codes, self.q_codes, self.t_pos, self.q_pos)


def prepare_fastz(
    target: Sequence | np.ndarray,
    query: Sequence | np.ndarray,
    config: LastzConfig | None = None,
    options: FastzOptions = FASTZ_FULL,
    *,
    anchors: Anchors | None = None,
    seed_table=None,
) -> PreparedRequest:
    """Stage a request: encode, select anchors, sort, fix the eager tile.

    ``seed_table`` is an optional prebuilt target-side
    :class:`~repro.seeding.SeedTable` (the reference store's persistent
    cache); it skips the table-build half of seeding, bit-identically.
    Ignored when ``anchors`` are given.
    """
    config = config or LastzConfig()
    with obs.span("fastz.prepare") as sp:
        t_codes = np.asarray(target.codes if isinstance(target, Sequence) else target)
        q_codes = np.asarray(query.codes if isinstance(query, Sequence) else query)

        if anchors is None:
            with obs.span(
                "fastz.seeding", target_bp=len(t_codes), query_bp=len(q_codes)
            ):
                anchors = select_anchors(
                    t_codes, q_codes, config, target_table=seed_table
                )
        order = np.lexsort((anchors.target_pos, anchors.query_pos))
        anchors = anchors.take(order)
        sp.set(anchors=len(anchors.target_pos))

    return PreparedRequest(
        t_codes=t_codes,
        q_codes=q_codes,
        scheme=config.scheme,
        options=options,
        anchors=anchors,
        tile=options.eager_tile if options.eager_traceback else 0,
        t_pos=anchors.target_pos.tolist(),
        q_pos=anchors.query_pos.tolist(),
    )


def finish_fastz(
    prepared: PreparedRequest,
    per_anchor: list[_AnchorExtension],
    *,
    keep_extensions: bool = False,
) -> FastzResult:
    """Fold per-anchor extension records into a :class:`FastzResult`."""
    with obs.span("fastz.finish", anchors=prepared.n_anchors) as sp:
        result = _finish_fastz_impl(prepared, per_anchor, keep_extensions)
        sp.set(
            alignments=len(result.alignments),
            eager=result.eager_count,
            fallbacks=result.executor_fallbacks,
        )
        return result


def _finish_fastz_impl(
    prepared: PreparedRequest,
    per_anchor: list[_AnchorExtension],
    keep_extensions: bool,
) -> FastzResult:
    scheme = prepared.scheme
    options = prepared.options
    alignments: list[Alignment] = []
    tasks: list[FastzTask] = []
    extensions: list = []
    fallbacks = 0

    for (t, q), (insp_l, insp_r, final_l, final_r, fb) in zip(
        zip(prepared.t_pos, prepared.q_pos), per_anchor
    ):
        eager = insp_l.eager_hit and insp_r.eager_hit
        score = insp_l.score + insp_r.score
        fallbacks += fb
        if eager:
            exec_l = exec_r = None
        else:
            exec_l, exec_r = final_l.stats, final_r.stats

        cols_l = sum(n for _, n in (final_l.ops or ()))
        cols_r = sum(n for _, n in (final_r.ops or ()))
        bin_id = assign_bin(
            max(
                final_l.end_i + final_r.end_i,
                final_l.end_j + final_r.end_j,
            ),
            eager,
            options.bin_edges,
        )
        tasks.append(
            FastzTask(
                anchor_t=t,
                anchor_q=q,
                score=score,
                insp_left=insp_l.stats,
                insp_right=insp_r.stats,
                left_end=(insp_l.end_i, insp_l.end_j),
                right_end=(insp_r.end_i, insp_r.end_j),
                eager=eager,
                exec_left=exec_l,
                exec_right=exec_r,
                cols_left=cols_l,
                cols_right=cols_r,
                bin_id=bin_id,
            )
        )

        if score >= scheme.gapped_threshold:
            alignments.append(combine_alignment(t, q, final_l, final_r, score))
        if keep_extensions:
            extensions.append((final_l, final_r))

    return FastzResult(
        alignments=alignments,
        tasks=tasks,
        anchors=prepared.anchors,
        options=options,
        executor_fallbacks=fallbacks,
        extensions=extensions,
    )


def run_fastz(
    target: Sequence | np.ndarray,
    query: Sequence | np.ndarray,
    config: LastzConfig | None = None,
    options: FastzOptions = FASTZ_FULL,
    *,
    anchors: Anchors | None = None,
    keep_extensions: bool = False,
    workers: int | None = None,
    seed_table=None,
    streaming: bool = False,
    on_partial=None,
    stream_chunk_bp: int | None = None,
) -> FastzResult:
    """Run the FastZ pipeline over all anchors (no sequential skipping).

    ``options`` controls the *functional* behaviour: disabling eager
    traceback sends every task to the executor; disabling trimming makes
    the executor recompute the full search space (as the ablation variants
    of Figure 9 do).  The performance model can also replay a full-FastZ
    profile under any variant without re-running this pipeline.

    ``options.engine`` selects the host DP engine (``"scalar"`` loop or
    ``"batched"`` lockstep batches); ``workers`` > 1 additionally shards
    the anchor set across a multiprocessing pool.  Both knobs change only
    wall-clock, never results.

    ``streaming=True`` runs the bounded-queue overlap pipeline
    (:func:`repro.core.streaming.run_fastz_streaming`) instead of the
    stage barriers — still bit-identical; ``on_partial`` then receives a
    :class:`~repro.core.streaming.StreamPartial` per extension batch and
    ``stream_chunk_bp`` overrides the producer's seeding-chunk size.
    Streaming is a *run-mode* parameter, deliberately not a
    :class:`FastzOptions` field: options are hashed into job digests and
    cache keys, and streaming never changes results.
    """
    if streaming:
        from .streaming import DEFAULT_CHUNK_BP, run_fastz_streaming

        return run_fastz_streaming(
            target,
            query,
            config,
            options,
            anchors=anchors,
            keep_extensions=keep_extensions,
            workers=workers,
            seed_table=seed_table,
            chunk_bp=stream_chunk_bp or DEFAULT_CHUNK_BP,
            on_partial=on_partial,
        )
    with obs.span("fastz.run", engine=options.engine) as sp:
        prepared = prepare_fastz(
            target, query, config, options, anchors=anchors, seed_table=seed_table
        )
        t_codes, q_codes = prepared.t_codes, prepared.q_codes
        scheme, tile = prepared.scheme, prepared.tile
        t_pos, q_pos = prepared.t_pos, prepared.q_pos

        if workers and workers > 1 and len(t_pos) > 1:
            per_anchor = _extend_anchors_pool(
                t_codes, q_codes, scheme, options, tile, t_pos, q_pos, int(workers)
            )
        else:
            per_anchor = _extend_anchors(
                t_codes, q_codes, scheme, options, tile, t_pos, q_pos
            )

        result = finish_fastz(prepared, per_anchor, keep_extensions=keep_extensions)
        sp.set(
            anchors=prepared.n_anchors,
            alignments=len(result.alignments),
            eager_fraction=result.eager_fraction,
        )
        return result


# ---------------------------------------------------------------------------
# Chunk-scoped entry (the whole-genome job runner, :mod:`repro.jobs`)
# ---------------------------------------------------------------------------


@dataclass
class ChunkResult:
    """Extension of one chunk-pair task's anchors, window-bounded.

    ``records`` carries ``(anchor_t, anchor_q, alignment)`` triples — the
    source anchor rides along so the merge stage can deduplicate overlap
    regions in global anchor order, exactly reproducing
    :meth:`FastzResult.unique_alignments` on an unsegmented run.
    """

    records: list[tuple[int, int, Alignment]]
    n_anchors: int
    eager_count: int
    #: Anchors whose window-bounded wavefront touched the window edge and
    #: were re-extended against the full sequences (seam guard).
    window_fallbacks: int
    executor_fallbacks: int


def _confined(result: WavefrontResult, t_len: int, q_len: int, t_cut: bool, q_cut: bool) -> bool:
    """Did a window-bounded extension provably match the full-suffix run?

    The wavefront advances one anti-diagonal per step from the origin, so
    after ``stats.diagonals`` steps every visited cell has ``i, j <=
    diagonals - 1``.  The band-evolution recurrence only senses a sequence
    boundary at anti-diagonals *beyond* that dimension; as long as the
    deepest processed anti-diagonal stays within every *truncated*
    dimension, the windowed run is step-for-step identical to the
    full-suffix run (pruning, best-cell tie-breaks, traceback — all of
    it).  Dimensions that were not truncated clamp identically in both
    runs and need no check.
    """
    deepest = result.stats.diagonals - 1
    return (not t_cut or deepest <= t_len) and (not q_cut or deepest <= q_len)


def run_fastz_chunk(
    target: Sequence | np.ndarray,
    query: Sequence | np.ndarray,
    config: LastzConfig | None = None,
    options: FastzOptions = FASTZ_FULL,
    *,
    anchors: Anchors,
    t_window: tuple[int, int] | None = None,
    q_window: tuple[int, int] | None = None,
) -> ChunkResult:
    """Extend pre-selected anchors inside a sequence window (one job chunk).

    The whole-genome runner hands each worker a chunk-pair task: the
    anchors owned by the chunk pair plus target/query windows extending
    ``overlap`` bases beyond the chunk cores.  Extension suffixes are
    clipped to the window, so a worker only ever touches ``chunk + 2 *
    overlap`` bases per side — the SegAlign memory story — while the seam
    guard keeps the result *unconditionally* equal to an unsegmented run:
    any extension whose wavefront could have sensed the window edge
    (:func:`_confined`) is transparently re-run against the full
    sequences and counted in ``window_fallbacks``.
    """
    config = config or LastzConfig()
    scheme = config.scheme
    t_codes = np.asarray(target.codes if isinstance(target, Sequence) else target)
    q_codes = np.asarray(query.codes if isinstance(query, Sequence) else query)
    t_lo, t_hi = t_window if t_window is not None else (0, len(t_codes))
    q_lo, q_hi = q_window if q_window is not None else (0, len(q_codes))
    if not (0 <= t_lo <= t_hi <= len(t_codes)):
        raise ValueError(f"target window [{t_lo}, {t_hi}) out of range")
    if not (0 <= q_lo <= q_hi <= len(q_codes)):
        raise ValueError(f"query window [{q_lo}, {q_hi}) out of range")

    order = np.lexsort((anchors.target_pos, anchors.query_pos))
    anchors = anchors.take(order)
    t_pos = anchors.target_pos.tolist()
    q_pos = anchors.query_pos.tolist()
    for t, q in zip(t_pos, q_pos):
        if not (t_lo <= t <= t_hi and q_lo <= q <= q_hi):
            raise ValueError(f"anchor ({t}, {q}) outside its chunk window")
    tile = options.eager_tile if options.eager_traceback else 0

    with obs.span(
        "fastz.chunk", anchors=len(t_pos), engine=options.engine
    ) as sp:
        # Window-clipped right/left suffixes, interleaved like _anchor_suffixes.
        suffixes: list[tuple[np.ndarray, np.ndarray]] = []
        for t, q in zip(t_pos, q_pos):
            suffixes.append((t_codes[t:t_hi], q_codes[q:q_hi]))
            suffixes.append((t_codes[t_lo:t][::-1], q_codes[q_lo:q][::-1]))

        per_anchor = extend_suffixes_shard(suffixes, scheme, options, tile)

        # --- seam guard ----------------------------------------------------
        t_cut_hi = t_hi < len(t_codes)
        q_cut_hi = q_hi < len(q_codes)
        t_cut_lo = t_lo > 0
        q_cut_lo = q_lo > 0
        window_fallbacks = 0
        for k, (t, q) in enumerate(zip(t_pos, q_pos)):
            insp_l, insp_r, final_l, final_r, _fb = per_anchor[k]
            # The executor's input is derived from the inspector (trimmed to
            # its optimum), so once the inspector is confined the executor
            # matches too — except in the untrimmed-ablation mode, where the
            # executor reruns the raw window suffix and needs its own check.
            checks = [
                (insp_r, t_hi - t, q_hi - q, t_cut_hi, q_cut_hi),
                (insp_l, t - t_lo, q - q_lo, t_cut_lo, q_cut_lo),
            ]
            if not options.executor_trimming:
                checks.append((final_r, t_hi - t, q_hi - q, t_cut_hi, q_cut_hi))
                checks.append((final_l, t - t_lo, q - q_lo, t_cut_lo, q_cut_lo))
            if all(_confined(r, tl, ql, tc, qc) for r, tl, ql, tc, qc in checks):
                continue
            window_fallbacks += 1
            per_anchor[k] = _extend_one_suffix_pair(
                (t_codes[t:], q_codes[q:]),
                (t_codes[:t][::-1], q_codes[:q][::-1]),
                scheme,
                options,
                tile,
            )
        if window_fallbacks:
            obs.counter(
                "repro_jobs_window_fallbacks_total",
                "Chunk extensions re-run unbounded because the window-clipped "
                "wavefront reached the overlap edge.",
            ).inc(window_fallbacks)

        # --- fold into alignment records ----------------------------------
        records: list[tuple[int, int, Alignment]] = []
        eager_count = 0
        executor_fallbacks = 0
        for (t, q), (insp_l, insp_r, final_l, final_r, fb) in zip(
            zip(t_pos, q_pos), per_anchor
        ):
            executor_fallbacks += fb
            if insp_l.eager_hit and insp_r.eager_hit:
                eager_count += 1
            score = insp_l.score + insp_r.score
            if score >= scheme.gapped_threshold:
                records.append((t, q, combine_alignment(t, q, final_l, final_r, score)))

        sp.set(
            alignments=len(records),
            eager=eager_count,
            window_fallbacks=window_fallbacks,
        )
        return ChunkResult(
            records=records,
            n_anchors=len(t_pos),
            eager_count=eager_count,
            window_fallbacks=window_fallbacks,
            executor_fallbacks=executor_fallbacks,
        )
