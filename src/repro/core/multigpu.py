"""Multi-GPU extension (paper §6, "Multi-GPU/node extension").

The paper defers this to future work but notes the approach directly:
"the seeds can be partitioned easily.  As such, each partition can be
assigned to different GPUs and/or nodes for parallel execution."

This module models exactly that: anchors are dealt round-robin across
``n_gpus`` identical devices, each partition runs the full FastZ schedule
independently (inspector, executor bins, streams), and the wall-clock is
the slowest device — plus a host-side scatter/gather term, since the
sequences must be broadcast and the alignments collected once per device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpusim.calibration import Calibration, DEFAULT_CALIBRATION
from ..gpusim.device import DeviceSpec
from .options import FASTZ_FULL, FastzOptions
from .perfmodel import FastzTiming, time_fastz
from .task import TaskArrays

__all__ = [
    "MultiGpuTiming",
    "greedy_partition",
    "partition_arrays",
    "partition_loads",
    "time_fastz_multi_gpu",
]


@dataclass(frozen=True)
class MultiGpuTiming:
    """Modelled multi-GPU execution of one FastZ run."""

    per_gpu: tuple[FastzTiming, ...]
    broadcast_seconds: float
    n_gpus: int

    @property
    def total_seconds(self) -> float:
        slowest = max((t.total_seconds for t in self.per_gpu), default=0.0)
        return slowest + self.broadcast_seconds

    def scaling_efficiency(self, single: FastzTiming) -> float:
        """(single-GPU time / n) / multi-GPU time: 1.0 = perfect scaling."""
        if self.total_seconds <= 0:
            return 0.0
        return single.total_seconds / (self.n_gpus * self.total_seconds)


def _take(arrays: TaskArrays, idx: np.ndarray) -> TaskArrays:
    """Select a subset of tasks (task indices) from a TaskArrays."""
    side_idx = np.empty(2 * idx.shape[0], dtype=np.int64)
    side_idx[0::2] = 2 * idx
    side_idx[1::2] = 2 * idx + 1
    kwargs = {}
    for name in TaskArrays.__dataclass_fields__:
        value = getattr(arrays, name)
        kwargs[name] = value[side_idx] if name.startswith("side_") else value[idx]
    return TaskArrays(**kwargs)


def partition_arrays(arrays: TaskArrays, n_parts: int) -> list[TaskArrays]:
    """Round-robin partition of tasks (the paper's easy seed split)."""
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    n = len(arrays)
    return [_take(arrays, np.arange(p, n, n_parts)) for p in range(n_parts)]


def greedy_partition(weights, n_parts: int) -> list[list[int]]:
    """Weight-balanced partition: longest-processing-time-first greedy.

    Items (by index into ``weights``) are assigned heaviest-first to the
    currently lightest part — the classic LPT heuristic, guaranteed within
    4/3 of the optimal makespan.  This is the load-balance step SaLoBa
    identifies as dominant for segmented GPU alignment: the whole-genome
    job scheduler weights chunk-pair tasks by anchor count and uses the
    resulting order (and the per-part plan, for its progress estimate) so
    one repeat-dense chunk pair cannot serialise the tail of a run.

    Deterministic: ties broken by part index, then by item index.
    Returns ``n_parts`` lists of item indices (some possibly empty).
    """
    if n_parts <= 0:
        raise ValueError("n_parts must be positive")
    w = np.asarray(list(weights), dtype=np.float64)
    if w.ndim != 1:
        raise ValueError("weights must be one-dimensional")
    if w.size and w.min() < 0:
        raise ValueError("weights must be non-negative")
    parts: list[list[int]] = [[] for _ in range(n_parts)]
    loads = np.zeros(n_parts, dtype=np.float64)
    # Stable heaviest-first order: equal weights keep their input order.
    order = np.argsort(-w, kind="stable")
    for idx in order:
        p = int(np.argmin(loads))  # argmin takes the first minimum: ties by part
        parts[p].append(int(idx))
        loads[p] += w[idx]
    return parts


def partition_loads(weights, n_parts: int) -> tuple[list[list[int]], list[float]]:
    """:func:`greedy_partition` plus the per-part load sums.

    Both the jobs scheduler (progress estimates) and the service's
    multiprocess pool backend (shard weighting gauges) want the projected
    load alongside the assignment; computing it here keeps the two from
    re-deriving it differently.
    """
    w = [float(x) for x in weights]
    parts = greedy_partition(w, n_parts)
    loads = [sum(w[i] for i in part) for part in parts]
    return parts, loads


def time_fastz_multi_gpu(
    arrays: TaskArrays,
    device: DeviceSpec,
    n_gpus: int,
    options: FastzOptions = FASTZ_FULL,
    calib: Calibration = DEFAULT_CALIBRATION,
    *,
    transfer_bytes: float = 0.0,
) -> MultiGpuTiming:
    """Model a FastZ run partitioned across ``n_gpus`` identical devices.

    Each device receives every sequence (broadcast over PCIe, serialised at
    the host) and a round-robin share of the anchors; completion is
    bulk-synchronous across devices.
    """
    parts = partition_arrays(arrays, n_gpus)
    timings = tuple(
        time_fastz(
            part,
            device,
            options,
            calib,
            # Sequences go to every GPU; anchors/results split.
            transfer_bytes=transfer_bytes / n_gpus,
        )
        for part in parts
    )
    broadcast = (n_gpus - 1) * transfer_bytes / (device.pcie_gbs * 1e9)
    return MultiGpuTiming(per_gpu=timings, broadcast_seconds=broadcast, n_gpus=n_gpus)
