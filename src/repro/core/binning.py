"""Alignment-length binning (paper §3.3).

An optimal alignment with extent ``max(target_span, query_span)`` is placed
in the smallest bin that contains it; extensions resolved by eager
traceback form their own class (bin 0).  The default edges are the paper's
512 / 2048 / 8192 / 32768 with 4x scaling; anything beyond the last edge is
clamped into the last bin (the paper notes larger bins could be added the
same way).
"""

from __future__ import annotations

import numpy as np

from .options import DEFAULT_BIN_EDGES

__all__ = ["assign_bin", "assign_bins", "bin_labels", "bin_histogram"]


def assign_bin(
    extent: int,
    eager: bool,
    edges: tuple[int, ...] = DEFAULT_BIN_EDGES,
) -> int:
    """Bin id for one task: 0 = eager, else 1..len(edges)."""
    if eager:
        return 0
    for idx, edge in enumerate(edges, start=1):
        if extent <= edge:
            return idx
    return len(edges)


def assign_bins(
    extents: np.ndarray,
    eager: np.ndarray,
    edges: tuple[int, ...] = DEFAULT_BIN_EDGES,
) -> np.ndarray:
    """Vectorised :func:`assign_bin`."""
    extents = np.asarray(extents)
    eager = np.asarray(eager, dtype=bool)
    bins = np.searchsorted(np.asarray(edges), extents, side="left") + 1
    bins = np.minimum(bins, len(edges))
    bins[eager] = 0
    return bins.astype(np.int64)


def bin_labels(edges: tuple[int, ...] = DEFAULT_BIN_EDGES) -> list[str]:
    """Human-readable labels, Table-2 style."""
    labels = ["eager"]
    prev = None
    for edge in edges:
        labels.append(f"<= {edge}" if prev is None else f"{prev}-{edge}")
        prev = edge
    return labels


def bin_histogram(
    bin_ids: np.ndarray,
    edges: tuple[int, ...] = DEFAULT_BIN_EDGES,
) -> np.ndarray:
    """Counts per bin id (length ``len(edges) + 1``, index 0 = eager)."""
    return np.bincount(np.asarray(bin_ids), minlength=len(edges) + 1)
