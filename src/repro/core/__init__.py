"""FastZ core: inspector-executor pipeline, binning, performance model."""

from .binning import assign_bin, assign_bins, bin_histogram, bin_labels
from .multigpu import (
    MultiGpuTiming,
    greedy_partition,
    partition_arrays,
    time_fastz_multi_gpu,
)
from .options import FASTZ_FULL, FastzOptions, ablation_ladder
from .perfmodel import (
    FastzTiming,
    ablation_times,
    time_fastz,
    time_feng_baseline,
)
from .pipeline import ChunkResult, FastzResult, run_fastz, run_fastz_chunk
from .streaming import StreamAborted, StreamPartial, run_fastz_streaming
from .task import FastzTask, TaskArrays, tasks_to_arrays

__all__ = [
    "FASTZ_FULL",
    "FastzOptions",
    "FastzResult",
    "FastzTask",
    "FastzTiming",
    "ChunkResult",
    "MultiGpuTiming",
    "StreamAborted",
    "StreamPartial",
    "greedy_partition",
    "partition_arrays",
    "time_fastz_multi_gpu",
    "TaskArrays",
    "ablation_ladder",
    "ablation_times",
    "assign_bin",
    "assign_bins",
    "bin_histogram",
    "bin_labels",
    "run_fastz",
    "run_fastz_chunk",
    "run_fastz_streaming",
    "tasks_to_arrays",
    "time_fastz",
    "time_feng_baseline",
]
