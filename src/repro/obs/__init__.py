"""``repro.obs`` — tracing + metrics threaded through every layer.

The paper's argument is quantitative (eager-traceback elision, per-bin
executor composition, score-traffic reduction), so the pipeline exposes
those numbers at runtime through two instruments:

* a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  fixed-bucket histograms, rendered in Prometheus text format
  (``GET /metrics`` on the service);
* a :class:`~repro.obs.tracing.Tracer` of context-manager spans with
  parent linkage, wall/CPU time and per-span attributes
  (``repro trace`` on the CLI).

**Disabled-by-default contract:** the module-level registry and tracer
start as no-op null objects; instrumented hot paths pay one method call
per site and nothing else.  :func:`enable` swaps in live instruments
(process-wide), :func:`disable` restores the null ones.  Code should
always reach the instruments through the module helpers (:func:`span`,
:func:`counter`, :func:`gauge`, :func:`histogram`) so an ``enable`` at
any point takes effect everywhere immediately.

Metric naming convention: ``repro_<area>_<what>_<unit>`` with Prometheus
suffix rules (``_total`` for counters, ``_seconds`` for time
histograms); stage labels stay low-cardinality (bin ids, outcome kinds).
"""

from __future__ import annotations

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    DEFAULT_BUCKETS,
)
from .tracing import NullTracer, Span, Tracer, render_span_tree

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "DEFAULT_BUCKETS",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "render_span_tree",
    "span",
    "span_under",
]

_NULL_REGISTRY = NullRegistry()
_NULL_TRACER = NullTracer()

_registry: MetricsRegistry | NullRegistry = _NULL_REGISTRY
_tracer: Tracer | NullTracer = _NULL_TRACER


def enable(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> tuple[MetricsRegistry, Tracer]:
    """Turn observability on process-wide; returns the live instruments."""
    global _registry, _tracer
    if not isinstance(_registry, MetricsRegistry) or registry is not None:
        _registry = registry or MetricsRegistry()
    if not isinstance(_tracer, Tracer) or tracer is not None:
        _tracer = tracer or Tracer()
    return _registry, _tracer  # type: ignore[return-value]


def disable() -> None:
    """Restore the no-op instruments (the default state)."""
    global _registry, _tracer
    _registry = _NULL_REGISTRY
    _tracer = _NULL_TRACER


def enabled() -> bool:
    return _registry.enabled or _tracer.enabled


def get_registry() -> MetricsRegistry | NullRegistry:
    return _registry


def get_tracer() -> Tracer | NullTracer:
    return _tracer


# -- hot-path helpers (always dispatch to the *current* instruments) ---------


def span(name: str, **attributes: object):
    """Open a span on the current tracer (a no-op span when disabled)."""
    return _tracer.span(name, **attributes)


def span_under(parent, name: str, **attributes: object):
    """Open a span attached under ``parent``, even from another thread.

    Streaming producer threads use this to hang their stage spans off the
    consumer's root span so ``repro trace`` renders one tree with the
    overlapping stages side by side.  No-op when tracing is disabled.
    """
    return _tracer.span_under(parent, name, **attributes)


def counter(name: str, help: str = ""):
    return _registry.counter(name, help)


def gauge(name: str, help: str = ""):
    return _registry.gauge(name, help)


def histogram(name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS):
    return _registry.histogram(name, help, buckets)
