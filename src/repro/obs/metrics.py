"""Lock-cheap metrics: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` owns a flat namespace of metric *families*;
a family optionally fans out into labelled children (``family.labels(
bin="2")``).  Every mutation is one dict lookup plus one locked ``+=`` on
the child, so instruments are cheap enough for the submit path and the
per-batch pipeline hooks.

The registry renders itself in the Prometheus text exposition format
(``render``), which is what the service's ``GET /metrics`` endpoint
serves.  A :class:`NullRegistry` (the library-wide default — see
:mod:`repro.obs`) returns shared no-op instruments so instrumented code
pays only a method call when observability is disabled.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram boundaries (seconds): micro-benchmarks to full runs.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _format_value(value: float) -> str:
    """Prometheus sample rendering: integral floats print as integers."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Family:
    """Common family plumbing: name, help text, labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not name or not set(name) <= _NAME_OK or name[0].isdigit():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._children: dict[tuple[tuple[str, str], ...], object] = {}

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labels: object):
        """The child for one label combination (created on first use)."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def samples(self) -> list[tuple[tuple[tuple[str, str], ...], object]]:
        with self._lock:
            return list(self._children.items())


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Counter(_Family):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def value(self, **labels: object) -> float:
        return self.labels(**labels).value

    def render(self) -> list[str]:
        return [
            f"{self.name}{_format_labels(key)} {_format_value(child.value)}"
            for key, child in self.samples()
        ]


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Family):
    """A value that can go up and down (queue depth, cache size...)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self.labels().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def value(self, **labels: object) -> float:
        return self.labels(**labels).value

    def render(self) -> list[str]:
        return [
            f"{self.name}{_format_labels(key)} {_format_value(child.value)}"
            for key, child in self.samples()
        ]


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        slot = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self._bounds, counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out


class Histogram(_Family):
    """Fixed-boundary distribution (Prometheus cumulative buckets)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be strictly increasing and non-empty")
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def count(self, **labels: object) -> int:
        return self.labels(**labels).count

    def sum(self, **labels: object) -> float:
        return self.labels(**labels).sum

    def render(self) -> list[str]:
        lines: list[str] = []
        for key, child in self.samples():
            for bound, running in child.bucket_counts():
                le = "+Inf" if bound == float("inf") else _format_value(bound)
                extra = 'le="%s"' % le
                lines.append(
                    f"{self.name}_bucket{_format_labels(key, extra)} {running}"
                )
            lines.append(
                f"{self.name}_sum{_format_labels(key)} {_format_value(child.sum)}"
            )
            lines.append(f"{self.name}_count{_format_labels(key)} {child.count}")
        return lines


class MetricsRegistry:
    """A namespace of metric families with Prometheus text rendering."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _get(self, name: str, factory, kind: str) -> _Family:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = factory()
                    self._families[name] = family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}"
            )
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(name, lambda: Histogram(name, help, buckets), "histogram")

    def families(self) -> list[_Family]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def render(self) -> str:
        """Prometheus text exposition of every family with samples."""
        lines: list[str] = []
        for family in self.families():
            body = family.render()
            if not body:
                continue
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            lines.extend(body)
        return "\n".join(lines) + ("\n" if lines else "")


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram child and family."""

    __slots__ = ()

    def labels(self, **labels: object) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def count(self, **labels: object) -> int:
        return 0

    def sum(self, **labels: object) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled registry: every instrument is a shared no-op singleton."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        return _NULL_INSTRUMENT

    def families(self) -> list:
        return []

    def render(self) -> str:
        return ""
