"""Span-based tracing: context-manager spans with parent linkage.

A :class:`Span` measures one stage of work — wall time, CPU (process)
time, and free-form attributes (bin sizes, task counts, eager-resolution
counts...).  Spans opened while another span is active on the same
thread become its children, so one ``run_fastz`` call yields a tree::

    fastz.run
    ├─ fastz.prepare
    │  └─ fastz.seeding
    └─ fastz.extend
       ├─ fastz.inspector
       └─ fastz.executor [bin=1]

The tracer keeps a per-thread span stack (service handler threads and
the dispatcher thread each build their own trees) and retains the most
recent finished root spans for rendering.  :class:`NullTracer` — the
library default, see :mod:`repro.obs` — hands out one shared no-op span
so disabled tracing costs a single method call per site.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["NullTracer", "Span", "Tracer", "render_span_tree"]


class Span:
    """One timed stage.  Use via ``with tracer.span(name, **attrs):``."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "wall_s",
        "cpu_s",
        "_tracer",
        "_t0",
        "_c0",
        "_adopted",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self.name = name
        self.attributes = attributes
        self.children: list[Span] = []
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._tracer = tracer
        self._t0 = 0.0
        self._c0 = 0.0
        self._adopted = False

    def set(self, **attributes: object) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.process_time() - self._c0
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)

    def find(self, name: str) -> list["Span"]:
        """Every descendant span (including self) with ``name``."""
        out = [self] if self.name == name else []
        for child in self.children:
            out.extend(child.find(name))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall_s * 1e3:.2f}ms)"


class Tracer:
    """Collects span trees, one stack per thread."""

    enabled = True

    def __init__(self, keep_roots: int = 32) -> None:
        self.roots: deque[Span] = deque(maxlen=keep_roots)
        self._local = threading.local()

    # -- span lifecycle (called by Span.__enter__/__exit__) ------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack and not span._adopted:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if not stack and not span._adopted:
            self.roots.append(span)

    # -- public API ----------------------------------------------------------

    def span(self, name: str, **attributes: object) -> Span:
        return Span(self, name, attributes)

    def span_under(self, parent, name: str, **attributes: object) -> Span:
        """A span pre-attached under ``parent`` (cross-thread parenting).

        The tracer's per-thread stacks can only link spans opened on the
        *same* thread; a streaming producer thread wants its stage spans to
        appear under the consumer's root.  The returned span is appended to
        ``parent.children`` immediately and never registered as a root of
        its own thread; spans opened *inside* it on the same thread nest
        normally.  ``parent`` must still be open (or at least retained) on
        its owning thread — the usual producer/consumer join guarantees
        that.  A non-:class:`Span` parent degrades to a plain root span.
        """
        span = Span(self, name, attributes)
        if isinstance(parent, Span):
            span._adopted = True
            parent.children.append(span)
        return span

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def last_root(self, name: str | None = None) -> Span | None:
        """The most recent finished root span (optionally by name)."""
        for root in reversed(self.roots):
            if name is None or root.name == name:
                return root
        return None


class _NullSpan:
    """Shared no-op span: enter/exit/set all do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def set(self, **attributes: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: hands out one shared no-op span."""

    enabled = False

    def span(self, name: str, **attributes: object) -> _NullSpan:
        return _NULL_SPAN

    def span_under(self, parent, name: str, **attributes: object) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def last_root(self, name: str | None = None) -> None:
        return None


def _format_attrs(attributes: dict) -> str:
    if not attributes:
        return ""
    body = " ".join(
        f"{k}={v:.4f}" if isinstance(v, float) else f"{k}={v}"
        for k, v in attributes.items()
    )
    return f"  [{body}]"


def render_span_tree(span: Span) -> str:
    """Pretty-print one span tree with per-stage wall/CPU timings."""
    lines: list[str] = []

    def walk(node: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        glyph = "" if is_root else ("└─ " if is_last else "├─ ")
        lines.append(
            f"{prefix}{glyph}{node.name}  "
            f"wall={node.wall_s * 1e3:.2f}ms cpu={node.cpu_s * 1e3:.2f}ms"
            f"{_format_attrs(node.attributes)}"
        )
        child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1, False)

    walk(span, "", True, True)
    return "\n".join(lines)
