"""Anti-diagonal wavefront extension with cyclic use-and-discard buffers.

This is the functional model of FastZ's GPU kernels (paper §3.1-3.2).  The
DP matrix is traversed by anti-diagonals; the *only* score state kept are
three rotating buffers holding diagonals ``d``, ``d-1`` and ``d-2`` — the
"cyclic use-and-discard" registers of the paper.  Buffers are indexed by the
row coordinate ``i`` (the layout transform ``i' = i + j, j' = j`` of Figure 4
makes a diagonal contiguous; indexing by ``i`` is the same bijection modulo
orientation).  In diagonal coordinates the recurrences become pure
neighbour reads:

* ``I(i, j)`` reads index ``i``   of diagonal ``d-1``  (cell ``(i, j-1)``),
* ``D(i, j)`` reads index ``i-1`` of diagonal ``d-1``  (cell ``(i-1, j)``),
* diagonal    reads index ``i-1`` of diagonal ``d-2``  (cell ``(i-1, j-1)``),

which on the real GPU are register-shuffle exchanges between adjacent lanes.

Pruning follows the paper's conservative approximation of y-drop: the
threshold uses only *completed* diagonals, and only the edges of the active
window are discarded (interior below-threshold cells are kept), so the
engine explores the same cells as the row-wise reference or a superset.

Three traceback modes:

* none (inspector default): only the optimal cell is tracked;
* *eager tile*: packed traceback recorded only inside a small
  ``(tile+1) x (tile+1)`` corner; if the optimum lands inside, the
  alignment is recovered immediately (paper §3.1.2) and the executor is
  skipped;
* full: packed traceback for every computed cell (executor mode), stored
  per diagonal exactly as the GPU's shared-memory write consolidation
  would lay it out.

The inner loop is deliberately terse: this engine dominates the cost of
profiling whole benchmarks, so recurrences write straight into the cyclic
buffers (``out=``) and skip all traceback bookkeeping past the region that
needs it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scoring import NEG_INF, ScoringScheme
from .alignment import Alignment
from .traceback import S_DIAG, S_FROM_D, S_FROM_I, S_ORIGIN, walk_traceback

__all__ = [
    "WavefrontStats",
    "WavefrontResult",
    "DiagTraceback",
    "wavefront_extend",
    "WARP_WIDTH",
    "INT32_SAFE_DRIFT",
    "max_step_penalty",
    "score_drift_bound",
    "pick_score_dtype",
]

#: Lanes per warp; a diagonal wider than this is processed in strips and the
#: strip-boundary lane must spill its cell to memory (paper §3.2).
WARP_WIDTH = 32

#: How far an int32 score cell may sink below the ``NEG_INF`` sentinel
#: (``-2**30``) before wrapping past ``int32`` min.  ``2**31 - 2**30 = 2**30``
#: exactly; keep a 2**16 guard band so off-by-a-few-penalties reasoning can
#: never matter.
INT32_SAFE_DRIFT = (1 << 30) - (1 << 16)


def max_step_penalty(scheme: ScoringScheme) -> int:
    """Largest magnitude any one DP transition can subtract from a cell.

    Every recurrence is ``max`` of predecessors minus one of
    ``gap_open + gap_extend``, ``gap_extend`` or a substitution score, so
    one anti-diagonal step moves a value by at most this much.
    """
    return max(
        int(scheme.gap_open + scheme.gap_extend),
        int(scheme.gap_extend),
        int(np.abs(np.asarray(scheme.substitution)).max()),
    )


def score_drift_bound(scheme: ScoringScheme, span: int, *, prune: bool = True) -> int:
    """Worst-case distance any slab value can drift below ``NEG_INF``.

    An extension over sequences with ``len(t) + len(q) <= span`` computes
    at most ``span`` anti-diagonals; cells seeded from the sentinel sink by
    at most :func:`max_step_penalty` per diagonal (plus one substitution on
    the diagonal candidate, covered by the ``+ 2`` margin).  Pruning also
    compares against ``best - ydrop``, so the y-drop magnitude joins the
    bound.  If this bound fits :data:`INT32_SAFE_DRIFT`, int32 slabs with
    the unchanged ``NEG_INF`` sentinel are arithmetically exact — every op
    is add/subtract/max, so int32 and int64 sweeps are bit-identical.
    """
    bound = (int(span) + 2) * max_step_penalty(scheme)
    if prune:
        bound += int(scheme.ydrop)
    return bound


def pick_score_dtype(
    scheme: ScoringScheme, span: int, *, prune: bool = True
) -> np.dtype:
    """int32 when :func:`score_drift_bound` proves it exact, else int64."""
    if score_drift_bound(scheme, span, prune=prune) <= INT32_SAFE_DRIFT:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


@dataclass(frozen=True)
class WavefrontStats:
    """Work profile of one wavefront extension, in GPU-relevant units."""

    diagonals: int
    cells: int
    #: Sum over diagonals of ceil(width / 32): SIMT issue steps of the warp.
    warp_steps: int
    #: Cells spilled to memory because they sit on a strip boundary.
    boundary_cells: int
    max_width: int

    @property
    def mean_width(self) -> float:
        return self.cells / self.diagonals if self.diagonals else 0.0


@dataclass(frozen=True)
class WavefrontResult:
    score: int
    end_i: int
    end_j: int
    stats: WavefrontStats
    ops: tuple[tuple[str, int], ...] | None = None
    #: True when the optimum fell inside the eager-traceback tile.
    eager_hit: bool = False

    def alignment(self) -> Alignment:
        if self.ops is None:
            raise ValueError("extension was run without traceback")
        return Alignment(
            target_start=0,
            target_end=self.end_i,
            query_start=0,
            query_end=self.end_j,
            score=self.score,
            ops=self.ops,
        )


class DiagTraceback:
    """Packed traceback stored one anti-diagonal at a time.

    Mirrors the executor's shared-memory consolidation: each diagonal's
    bytes form one contiguous run (flushed to global memory as whole cache
    blocks on the real GPU).  Addressed as a dense ``(i, j)`` matrix for
    the traceback walk.
    """

    def __init__(self, shape: tuple[int, int]):
        self.shape = shape
        self._starts: list[int] = []
        self._diags: list[np.ndarray] = []

    def append_diag(self, start_i: int, packed: np.ndarray) -> None:
        self._starts.append(start_i)
        self._diags.append(np.asarray(packed, dtype=np.uint8))

    def __getitem__(self, key: tuple[int, int]) -> int:
        i, j = key
        d = i + j
        if not 0 <= d < len(self._diags):
            raise ValueError(f"traceback diagonal {d} was never computed")
        off = i - self._starts[d]
        diag = self._diags[d]
        if not 0 <= off < diag.shape[0]:
            raise ValueError(f"traceback cell ({i}, {j}) was never computed")
        return int(diag[off])

    def nbytes(self) -> int:
        return sum(d.shape[0] for d in self._diags)


def _regrow(buf: np.ndarray, cap: int) -> np.ndarray:
    out = np.full(cap, NEG_INF, dtype=np.int64)
    out[: buf.shape[0]] = buf
    return out


def wavefront_extend(
    target: np.ndarray,
    query: np.ndarray,
    scheme: ScoringScheme,
    *,
    eager_tile: int = 0,
    traceback: bool = False,
    prune: bool = True,
) -> WavefrontResult:
    """One-sided y-drop extension by anti-diagonal wavefront.

    Parameters
    ----------
    eager_tile:
        If > 0 and ``traceback`` is False, record packed traceback inside
        the ``(tile+1)^2`` corner; when the optimum lands there the result
        carries the alignment and ``eager_hit=True``.
    traceback:
        Record full packed traceback (executor mode).  The caller trims
        the problem by passing sliced ``target``/``query``.
    prune:
        Disable to compute the exact full matrix (test mode; must then be
        bit-identical to :func:`repro.align.gotoh.gotoh_extend`).
    """
    target = np.asarray(target, dtype=np.uint8)
    query = np.asarray(query, dtype=np.uint8)
    m, n = int(target.shape[0]), int(query.shape[0])
    oe = int(scheme.gap_open + scheme.gap_extend)
    e = int(scheme.gap_extend)
    ydrop = int(scheme.ydrop) if prune else None
    sub = scheme.substitution

    full_tb = DiagTraceback((m + 1, n + 1)) if traceback else None
    tile = int(eager_tile) if not traceback else 0
    tile_tb: np.ndarray | None = None
    if tile > 0:
        tile_tb = np.zeros((tile + 1, tile + 1), dtype=np.uint8)
        tile_tb[0, 0] = S_ORIGIN
    if full_tb is not None:
        full_tb.append_diag(0, np.array([S_ORIGIN], dtype=np.uint8))

    cap = 128
    S_pp = np.full(cap, NEG_INF, dtype=np.int64)
    S_p = np.full(cap, NEG_INF, dtype=np.int64)
    S_c = np.full(cap, NEG_INF, dtype=np.int64)
    I_p = np.full(cap, NEG_INF, dtype=np.int64)
    I_c = np.full(cap, NEG_INF, dtype=np.int64)
    D_p = np.full(cap, NEG_INF, dtype=np.int64)
    D_c = np.full(cap, NEG_INF, dtype=np.int64)
    I_pp = np.full(cap, NEG_INF, dtype=np.int64)
    D_pp = np.full(cap, NEG_INF, dtype=np.int64)
    scratch = np.empty(cap, dtype=np.int64)

    S_p[0] = 0  # diagonal 0: the origin

    best = 0
    best_i = best_j = 0
    lo_prev, hi_prev = 0, 0

    diagonals = 1
    cells = 1
    warp_steps = 1
    boundary_cells = 0
    max_width = 1

    maximum = np.maximum
    subtract = np.subtract

    for d in range(1, m + n + 1):
        lo = lo_prev if lo_prev > d - n else d - n
        if lo < 0:
            lo = 0
        hi = hi_prev + 1
        if hi > d:
            hi = d
        if hi > m:
            hi = m
        if lo > hi:
            break
        width = hi - lo + 1

        if hi + 3 > S_c.shape[0]:
            cap = max(hi + 3, 2 * S_c.shape[0])
            S_pp, S_p, S_c = _regrow(S_pp, cap), _regrow(S_p, cap), _regrow(S_c, cap)
            I_pp, I_p, I_c = _regrow(I_pp, cap), _regrow(I_p, cap), _regrow(I_c, cap)
            D_pp, D_p, D_c = _regrow(D_pp, cap), _regrow(D_p, cap), _regrow(D_c, cap)
            scratch = np.empty(cap, dtype=np.int64)

        # Scrub recycled buffer edges (windows move by at most 1 per step).
        if lo >= 1:
            S_c[lo - 1] = I_c[lo - 1] = D_c[lo - 1] = NEG_INF
        S_c[hi + 1] = I_c[hi + 1] = D_c[hi + 1] = NEG_INF

        Icur = I_c[lo : hi + 1]
        Dcur = D_c[lo : hi + 1]
        Scur = S_c[lo : hi + 1]
        sc = scratch[:width]

        # --- I(i, j): from diagonal d-1, same index -------------------------
        subtract(I_p[lo : hi + 1], e, out=Icur)
        subtract(S_p[lo : hi + 1], oe, out=sc)
        maximum(Icur, sc, out=Icur)
        if hi == d:  # cell (d, 0) has no insertion parent
            Icur[-1] = NEG_INF

        # --- D(i, j): from diagonal d-1, index i-1 --------------------------
        if lo >= 1:
            subtract(D_p[lo - 1 : hi], e, out=Dcur)
            subtract(S_p[lo - 1 : hi], oe, out=sc)
            maximum(Dcur, sc, out=Dcur)
        else:
            Dcur[0] = NEG_INF
            if width > 1:
                subtract(D_p[0:hi], e, out=Dcur[1:])
                subtract(S_p[0:hi], oe, out=sc[1:])
                maximum(Dcur[1:], sc[1:], out=Dcur[1:])

        # --- S = max(I, D, diag) --------------------------------------------
        maximum(Icur, Dcur, out=Scur)
        di_lo = lo if lo >= 1 else 1
        di_hi = hi if hi <= d - 1 else d - 1
        diag_core = None
        if di_lo <= di_hi:
            t_sl = target[di_lo - 1 : di_hi]
            q_sl = query[d - di_hi - 1 : d - di_lo][::-1]
            diag_core = S_pp[di_lo - 1 : di_hi] + sub[t_sl, q_sl]
            core = Scur[di_lo - lo : di_hi - lo + 1]
            maximum(core, diag_core, out=core)

        # --- traceback recording --------------------------------------------
        record_tile = tile_tb is not None and d <= 2 * tile
        if full_tb is not None or record_tile:
            i_from_i = (I_p[lo : hi + 1] - e) > (S_p[lo : hi + 1] - oe)
            if lo >= 1:
                d_from_d = (D_p[lo - 1 : hi] - e) > (S_p[lo - 1 : hi] - oe)
            else:
                d_from_d = np.zeros(width, dtype=bool)
                if width > 1:
                    d_from_d[1:] = (D_p[0:hi] - e) > (S_p[0:hi] - oe)
            s_choice = np.full(width, S_FROM_D, dtype=np.uint8)
            s_choice[Scur == Icur] = S_FROM_I
            if diag_core is not None:
                sl = slice(di_lo - lo, di_hi - lo + 1)
                hit = Scur[sl] == diag_core
                s_choice[sl][hit] = S_DIAG
            packed = s_choice | (i_from_i.astype(np.uint8) << 2)
            packed |= d_from_d.astype(np.uint8) << 3
            if full_tb is not None:
                full_tb.append_diag(lo, packed)
            else:
                t_lo = max(lo, d - tile)
                t_hi = min(hi, tile)
                if t_lo <= t_hi:
                    ii = np.arange(t_lo, t_hi + 1)
                    tile_tb[ii, d - ii] = packed[t_lo - lo : t_hi - lo + 1]

        # --- prune window edges against completed-diagonal best -------------
        if ydrop is not None:
            alive = np.flatnonzero(Scur >= best - ydrop)
            if alive.shape[0] == 0:
                diagonals += 1
                cells += width
                strips = -(-width // WARP_WIDTH)
                warp_steps += strips
                boundary_cells += strips - 1
                if width > max_width:
                    max_width = width
                break
            first = int(alive[0])
            last = int(alive[-1])
            if first > 0:
                S_c[lo : lo + first] = NEG_INF
                I_c[lo : lo + first] = NEG_INF
                D_c[lo : lo + first] = NEG_INF
            if last < width - 1:
                S_c[lo + last + 1 : hi + 1] = NEG_INF
                I_c[lo + last + 1 : hi + 1] = NEG_INF
                D_c[lo + last + 1 : hi + 1] = NEG_INF
            lo_next, hi_next = lo + first, lo + last
        else:
            lo_next, hi_next = lo, hi

        # --- best-cell tracking (ties: smallest i+j, then smallest i) -------
        w_idx = int(np.argmax(Scur))
        d_best = int(Scur[w_idx])
        if d_best > best:
            best = d_best
            best_i = lo + w_idx
            best_j = d - best_i

        diagonals += 1
        cells += width
        strips = -(-width // WARP_WIDTH)
        warp_steps += strips
        boundary_cells += strips - 1
        if width > max_width:
            max_width = width

        S_pp, S_p, S_c = S_p, S_c, S_pp
        I_pp, I_p, I_c = I_p, I_c, I_pp
        D_pp, D_p, D_c = D_p, D_c, D_pp
        lo_prev, hi_prev = lo_next, hi_next

    stats = WavefrontStats(
        diagonals=diagonals,
        cells=cells,
        warp_steps=warp_steps,
        boundary_cells=boundary_cells,
        max_width=max_width,
    )

    ops = None
    eager_hit = False
    if full_tb is not None:
        ops = walk_traceback(full_tb, best_i, best_j)
    elif tile_tb is not None and best_i <= tile and best_j <= tile:
        ops = walk_traceback(tile_tb, best_i, best_j)
        eager_hit = True

    return WavefrontResult(
        score=best,
        end_i=best_i,
        end_j=best_j,
        stats=stats,
        ops=ops,
        eager_hit=eager_hit,
    )
