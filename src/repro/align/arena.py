"""Reusable slab arena for the lockstep batch engine.

The batched wavefront engine (:mod:`repro.align.batch`) advances hundreds
of extension tasks per anti-diagonal; on a GPU the working set would live
in a preallocated device buffer for the lifetime of the stream.  The CPU
analogue is this arena: one :class:`LockstepArena` owns the score, code,
boolean and traceback slabs and hands out *views* sized to each lockstep
chunk, so a warm engine (the pipeline executor, a service dispatcher
thread, a pool worker process) performs zero slab allocations in steady
state — growth happens geometrically and only when a chunk's union window
outgrows every batch seen before.

Blocks are keyed by role (``"scores"``, ``"bools"``, ``"scratch8"``,
``"codes_t"``, ``"codes_q"``, ``"tile"``) *and* dtype, so an int32 sweep
and an int64 fallback sweep can alternate without thrashing each other's
buffers.  Returned views are **uninitialised** — the engine owns all
filling/scrubbing — and :meth:`block` reports whether the backing storage
changed so the engine knows when live state must be copied across.

An arena is deliberately **not** thread-safe: it models one lane of
device memory.  Keep one arena per dispatcher thread / worker process and
never share one across concurrent ``batch_wavefront_extend`` calls.
"""

from __future__ import annotations

import threading

import numpy as np

from .. import obs

__all__ = ["LockstepArena", "thread_arena", "release_thread_arenas"]


class LockstepArena:
    """Preallocated, geometrically grown slab storage for lockstep sweeps.

    ``acquires``/``reuses``/``allocations`` count checkout outcomes (a
    checkout that fits inside a retained buffer is a *reuse*; one that
    forces fresh backing is an *allocation*).  The same counts are
    mirrored into the :mod:`repro.obs` registry as
    ``repro_batch_arena_acquires_total`` / ``..._reuses_total`` /
    ``..._allocs_total`` plus a ``repro_batch_arena_bytes`` gauge of
    retained storage, so a trace or ``GET /v1/metrics`` shows whether the
    hot path runs allocation-free.
    """

    __slots__ = ("_blocks", "acquires", "reuses", "allocations")

    def __init__(self) -> None:
        self._blocks: dict[tuple[str, str], np.ndarray] = {}
        self.acquires = 0
        self.reuses = 0
        self.allocations = 0

    def block(
        self, key: str, shape: tuple[int, ...], dtype: np.dtype | type
    ) -> tuple[np.ndarray, bool]:
        """Check out an uninitialised view of at least ``shape``.

        Returns ``(view, fresh)``.  ``view`` has exactly ``shape``;
        ``fresh`` is True when the backing buffer changed (first checkout
        or growth), meaning any live state in a previously returned view
        of the same key must be copied into the new view by the caller.
        When ``fresh`` is False the view aliases the previous backing, so
        a grown view already contains the old columns/rows in place.
        """
        dt = np.dtype(dtype)
        self.acquires += 1
        obs.counter(
            "repro_batch_arena_acquires_total", "Arena slab checkouts."
        ).inc()
        slot = (key, dt.str)
        buf = self._blocks.get(slot)
        if buf is not None and all(h >= s for h, s in zip(buf.shape, shape)):
            self.reuses += 1
            obs.counter(
                "repro_batch_arena_reuses_total",
                "Arena slab checkouts served from retained buffers.",
            ).inc()
            return buf[tuple(slice(0, s) for s in shape)], False
        # Grow each axis to at least what is asked for, never shrinking an
        # axis the retained buffer already covers (the engine's own
        # geometric growth supplies the doubling).
        if buf is not None and buf.ndim == len(shape):
            new_shape = tuple(max(h, s) for h, s in zip(buf.shape, shape))
        else:
            new_shape = tuple(shape)
        arr = np.empty(new_shape, dtype=dt)
        self._blocks[slot] = arr
        self.allocations += 1
        obs.counter(
            "repro_batch_arena_allocs_total",
            "Arena slab checkouts that allocated fresh backing.",
        ).inc()
        obs.gauge(
            "repro_batch_arena_bytes", "Bytes of slab storage retained by arenas."
        ).set(float(self.nbytes()))
        return arr[tuple(slice(0, s) for s in shape)], True

    def nbytes(self) -> int:
        """Total bytes of retained backing storage."""
        return sum(buf.nbytes for buf in self._blocks.values())

    def release(self) -> None:
        """Drop all retained buffers (counters are kept)."""
        self._blocks.clear()


_thread_arenas = threading.local()


def thread_arena(key: str) -> LockstepArena:
    """The calling thread's warm arena for ``key``, created on first use.

    This is how long-lived engines stay allocation-free across *calls*:
    the pipeline checks out ``thread_arena("inspector")`` and
    ``thread_arena("executor:<bin>")`` so a service dispatcher thread or a
    pool worker process reuses the same slabs batch after batch, while two
    threads never share backing storage (arenas are not thread-safe).
    """
    registry = getattr(_thread_arenas, "registry", None)
    if registry is None:
        registry = _thread_arenas.registry = {}
    arena = registry.get(key)
    if arena is None:
        arena = registry[key] = LockstepArena()
    return arena


def release_thread_arenas() -> int:
    """Drop every warm arena owned by the calling thread.

    Returns the number of bytes freed.  Long-running hosts call this on
    shutdown paths (service dispatcher exit, pool worker exit) so retained
    slab memory does not outlive the engine that warmed it.
    """
    registry = getattr(_thread_arenas, "registry", None)
    freed = 0
    if registry:
        for arena in registry.values():
            freed += arena.nbytes()
            arena.release()
        registry.clear()
    return freed
