"""Banded Smith-Waterman extension (the Darwin-WGA heuristic FastZ rejects).

Darwin-WGA limits the DP search to a fixed-width band around the main
diagonal (paper §2.1/§2.3): cheap, but "the optimal solution may not
always be found within the band" — many insertions/deletions walk the
alignment off the band and the heuristic silently returns a worse (or no)
alignment.  FastZ deliberately uses exact y-drop filtering instead.

This engine exists to demonstrate that contrast: it reuses the row-wise
y-drop machinery but intersects every row's window with the band
``|i - j| <= bandwidth``.  On indel-free inputs it matches the exact
engines; on gap-rich inputs it loses score — which is precisely the
sensitivity argument of the paper.
"""

from __future__ import annotations

import numpy as np

from ..scoring import NEG_INF, ScoringScheme
from .ydrop import ExtensionResult, ExtensionStats

__all__ = ["banded_extend"]


def banded_extend(
    target: np.ndarray,
    query: np.ndarray,
    scheme: ScoringScheme,
    *,
    bandwidth: int = 32,
) -> ExtensionResult:
    """One-sided extension restricted to a ±``bandwidth`` diagonal band.

    Same origin-anchored semantics as :func:`repro.align.ydrop.ydrop_extend`
    (without traceback): returns the best cell inside the band and the
    work statistics.  Cells with ``|i - j| > bandwidth`` are never
    computed.
    """
    if bandwidth < 0:
        raise ValueError("bandwidth must be non-negative")
    target = np.asarray(target, dtype=np.uint8)
    query = np.asarray(query, dtype=np.uint8)
    m, n = int(target.shape[0]), int(query.shape[0])
    oe = int(scheme.gap_open + scheme.gap_extend)
    e = int(scheme.gap_extend)
    ydrop = int(scheme.ydrop)
    sub = scheme.substitution

    width_cap = 2 * bandwidth + 2
    S_prev = np.full(n + 2, NEG_INF, dtype=np.int64)
    S_cur = np.full(n + 2, NEG_INF, dtype=np.int64)
    D_prev = np.full(n + 2, NEG_INF, dtype=np.int64)
    D_cur = np.full(n + 2, NEG_INF, dtype=np.int64)
    I_cur = np.full(n + 2, NEG_INF, dtype=np.int64)

    # Row 0: origin plus the in-band insertion ladder.
    S_prev[0] = 0
    row0_hi = min(n, bandwidth, (ydrop - oe) // e + 1 if oe <= ydrop else 0)
    if row0_hi >= 1:
        js = np.arange(1, row0_hi + 1, dtype=np.int64)
        S_prev[1 : row0_hi + 1] = -scheme.gap_open - js * e

    best = 0
    best_i = best_j = 0
    rows = 1
    cells = 1 + row0_hi
    max_row_width = 1 + row0_hi
    max_antidiag = row0_hi

    for i in range(1, m + 1):
        thresh = best - ydrop
        lo = max(i - bandwidth, 0)
        hi = min(i + bandwidth, n) + 1  # exclusive
        if lo >= hi:
            break
        width = hi - lo

        Dw = D_cur[lo:hi]
        np.subtract(D_prev[lo:hi], e, out=Dw)
        np.maximum(Dw, S_prev[lo:hi] - oe, out=Dw)

        Sw = S_cur[lo:hi]
        np.copyto(Sw, Dw)
        di_lo = max(lo, 1)
        if di_lo < hi:
            q_sl = query[di_lo - 1 : hi - 1]
            diag_core = S_prev[di_lo - 1 : hi - 1] + sub[int(target[i - 1]), q_sl]
            core = Sw[di_lo - lo :]
            np.maximum(core, diag_core, out=core)

        # I scan within the row (prefix max), then fold.
        Iw = I_cur[lo:hi]
        Iw[0] = NEG_INF
        if width > 1:
            idx = np.arange(lo, hi, dtype=np.int64)
            c = Sw + idx * e
            run = np.maximum.accumulate(c)
            Iw[1:] = run[:-1] - oe - (idx[1:] - 1) * e
            np.maximum(Sw, Iw, out=Sw)

        alive = np.flatnonzero(Sw >= thresh)
        rows += 1
        cells += width
        if width > max_row_width:
            max_row_width = width
        if i + hi - 1 > max_antidiag:
            max_antidiag = i + hi - 1
        if alive.shape[0] == 0:
            break

        w_idx = int(np.argmax(Sw))
        row_best = int(Sw[w_idx])
        if row_best > best or (
            row_best == best
            and (i + lo + w_idx, i) < (best_i + best_j, best_i)
        ):
            best = row_best
            best_i, best_j = i, lo + w_idx

        # Scrub band borders (cells leaving the band must read as dead).
        if lo >= 1:
            S_cur[lo - 1] = D_cur[lo - 1] = NEG_INF
        S_cur[hi] = D_cur[hi] = NEG_INF

        S_prev, S_cur = S_cur, S_prev
        D_prev, D_cur = D_cur, D_prev

    stats = ExtensionStats(
        rows=rows,
        cells=cells,
        max_row_width=min(max_row_width, width_cap),
        max_antidiag=max_antidiag,
    )
    return ExtensionResult(
        score=best, end_i=best_i, end_j=best_j, stats=stats, ops=None
    )
