"""Extension-engine registry: one name -> one engine, used by every caller.

Before this module, ``FastzOptions.engine`` was compared against a
hard-coded ``("scalar", "batched")`` tuple at four independent dispatch
sites in :mod:`repro.core.pipeline` (plus the validator in
:mod:`repro.core.options`).  Adding an engine meant touching every one of
them — and the service, pool-worker, fleet-backend, streaming and jobs
paths all funnel through those sites, so the blast radius was the whole
serving stack.  The registry collapses that to one table:

* :func:`register_engine` — decorator that publishes a callable under a
  name (``@register_engine("wholebin")``);
* :func:`get_engine` — resolves a name to its callable, with an error
  message that lists every valid name;
* :func:`registered_engines` — the sorted name list, read by
  ``FastzOptions`` validation so CLI ``choices=`` and HTTP 400 messages
  stay in sync with reality automatically.

An engine is any callable with the :class:`ExtensionEngine` shape: it
takes the interleaved right/left suffix list of
:func:`repro.core.pipeline._anchor_suffixes` plus ``(scheme, options,
tile)`` and returns one ``(insp_l, insp_r, final_l, final_r, fallbacks)``
record per anchor, bit-identical to the scalar engine.  Every registered
engine is automatically exercised by the registry-parametrized
equivalence matrix in ``tests/core/test_engine_registry.py``.

Import-order note: the built-in engines live in ``repro.core.pipeline``,
but ``repro.core.options`` validates engine names at import time (the
module-level ``FASTZ_FULL = FastzOptions()``), i.e. potentially *while*
the pipeline module is still importing.  The registry therefore pre-seeds
the built-in names lazily (name -> ``(module, attribute)``) so
:func:`registered_engines` never needs the pipeline imported, and
:func:`get_engine` resolves a lazy name on first use.
"""

from __future__ import annotations

from importlib import import_module
from typing import Callable, Protocol, runtime_checkable

__all__ = [
    "ExtensionEngine",
    "get_engine",
    "register_engine",
    "registered_engines",
    "unregister_engine",
]


@runtime_checkable
class ExtensionEngine(Protocol):
    """Callable contract for a registered extension engine.

    ``suffixes`` is the interleaved layout of ``_anchor_suffixes`` (anchor
    ``k``'s right problem at index ``2k``, reversed left at ``2k + 1``);
    the return value is one per-anchor extension record, and the hard
    contract is bit-identity with the scalar engine: same scores, end
    cells, ops, eager hits, stats and fallback counts.
    """

    def __call__(
        self,
        suffixes: list,
        scheme,
        options,
        tile: int,
    ) -> list: ...


#: Built-in engines, resolved on first :func:`get_engine` call so the
#: registry is complete even before ``repro.core.pipeline`` has imported.
_LAZY_BUILTINS: dict[str, tuple[str, str]] = {
    "scalar": ("repro.core.pipeline", "_extend_suffixes_scalar"),
    "batched": ("repro.core.pipeline", "extend_suffixes_batched"),
    "wholebin": ("repro.core.pipeline", "extend_suffixes_wholebin"),
}

_REGISTRY: dict[str, Callable] = {}


def register_engine(name: str) -> Callable[[Callable], Callable]:
    """Decorator: publish ``fn`` as the engine called ``name``.

    Re-registering a name replaces the previous engine (last wins), which
    is what tests and experiments want; the built-in names are re-bound
    harmlessly when ``repro.core.pipeline`` imports.
    """
    if not name or not isinstance(name, str):
        raise ValueError("engine name must be a non-empty string")

    def deco(fn: Callable) -> Callable:
        _REGISTRY[name] = fn
        return fn

    return deco


def unregister_engine(name: str) -> None:
    """Remove a registered engine (built-in names cannot be removed)."""
    if name in _LAZY_BUILTINS:
        raise ValueError(f"cannot unregister built-in engine {name!r}")
    _REGISTRY.pop(name, None)


def registered_engines() -> tuple[str, ...]:
    """Sorted names of every registered engine (the single source of truth
    for ``FastzOptions.engine`` validation and CLI ``choices=``)."""
    return tuple(sorted(set(_REGISTRY) | set(_LAZY_BUILTINS)))


def get_engine(name: str) -> Callable:
    """Resolve an engine name to its callable.

    Raises ``ValueError`` (listing the valid names) for unknown engines —
    the same message surfaces as an HTTP 400 through ``FastzOptions``.
    """
    fn = _REGISTRY.get(name)
    if fn is not None:
        return fn
    lazy = _LAZY_BUILTINS.get(name)
    if lazy is not None:
        module, attr = lazy
        fn = getattr(import_module(module), attr)
        # The pipeline's decorators normally registered it during the
        # import above; seed the mapping directly if not (e.g. a stale
        # partial import), so the lazy path is one-shot.
        _REGISTRY.setdefault(name, fn)
        return _REGISTRY[name]
    names = ", ".join(registered_engines())
    raise ValueError(f"unknown engine {name!r}: registered engines are {names}")
