"""Full-matrix Gotoh affine-gap extension alignment (reference engine).

This is the textbook O(M*N) memory implementation of the recurrences in the
paper's Figure 1.  It exists to *verify* the production engines: the y-drop
row engine (:mod:`repro.align.ydrop`) and the cyclic-buffer wavefront engine
(:mod:`repro.align.wavefront`) are both tested bit-exact against it (with
pruning disabled).  It is intentionally simple and only suitable for small
problems.

Semantics: an *extension* alignment anchored at the origin.  ``S[0, 0] = 0``;
every other cell may only be reached through the affine recurrences (leading
gaps pay full open+extend penalties, as in LASTZ's one-sided extension).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scoring import NEG_INF, ScoringScheme
from .alignment import Alignment
from .traceback import S_DIAG, S_FROM_D, S_FROM_I, S_ORIGIN, pack, walk_traceback

__all__ = ["GotohResult", "gotoh_extend", "gotoh_matrices"]


@dataclass(frozen=True)
class GotohResult:
    """Result of a full-matrix extension."""

    score: int
    end_i: int
    end_j: int
    alignment: Alignment


def gotoh_matrices(
    target: np.ndarray,
    query: np.ndarray,
    scheme: ScoringScheme,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Compute the full S, I, D score matrices and packed traceback.

    Returns ``(S, I, D, TB)`` each of shape ``(M+1, N+1)``.
    """
    target = np.asarray(target, dtype=np.uint8)
    query = np.asarray(query, dtype=np.uint8)
    m, n = target.shape[0], query.shape[0]
    oe = scheme.gap_open + scheme.gap_extend
    e = scheme.gap_extend
    sub = scheme.substitution

    S = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    I = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    D = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    TB = np.zeros((m + 1, n + 1), dtype=np.uint8)

    S[0, 0] = 0
    TB[0, 0] = S_ORIGIN

    for j in range(1, n + 1):
        i_open = S[0, j - 1] - oe
        i_ext = I[0, j - 1] - e
        I[0, j] = max(i_open, i_ext)
        S[0, j] = I[0, j]
        TB[0, j] = pack(S_FROM_I, i_ext > i_open, False)

    for i in range(1, m + 1):
        d_open = S[i - 1, 0] - oe
        d_ext = D[i - 1, 0] - e
        D[i, 0] = max(d_open, d_ext)
        S[i, 0] = D[i, 0]
        TB[i, 0] = pack(S_FROM_D, False, d_ext > d_open)
        for j in range(1, n + 1):
            i_open = S[i, j - 1] - oe
            i_ext = I[i, j - 1] - e
            I[i, j] = max(i_open, i_ext)

            d_open = S[i - 1, j] - oe
            d_ext = D[i - 1, j] - e
            D[i, j] = max(d_open, d_ext)

            diag = S[i - 1, j - 1] + sub[target[i - 1], query[j - 1]]
            best = max(diag, I[i, j], D[i, j])
            S[i, j] = best
            if best == diag:
                choice = S_DIAG
            elif best == I[i, j]:
                choice = S_FROM_I
            else:
                choice = S_FROM_D
            TB[i, j] = pack(choice, i_ext > i_open, d_ext > d_open)

    return S, I, D, TB


def gotoh_extend(
    target: np.ndarray,
    query: np.ndarray,
    scheme: ScoringScheme,
) -> GotohResult:
    """One-sided extension: best-scoring cell plus its alignment.

    Ties on the score are broken toward the *shortest* alignment: smallest
    anti-diagonal ``i + j`` first, then smallest ``i``.  The production
    engines use the same rule so end cells are comparable across engines.
    """
    S, _, _, TB = gotoh_matrices(target, query, scheme)
    score = int(S.max())
    ii, jj = np.nonzero(S == score)
    order = np.lexsort((ii, ii + jj))  # primary: i+j, secondary: i
    end_i, end_j = int(ii[order[0]]), int(jj[order[0]])
    ops = walk_traceback(TB, end_i, end_j)
    alignment = Alignment(
        target_start=0,
        target_end=end_i,
        query_start=0,
        query_end=end_j,
        score=score,
        ops=ops,
    )
    return GotohResult(score=score, end_i=end_i, end_j=end_j, alignment=alignment)
