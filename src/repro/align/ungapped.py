"""X-drop ungapped extension (the filtering stage of 'ungapped LASTZ').

An ungapped extension walks the single diagonal through the anchor, summing
substitution scores, and stops once the running score drops more than
``xdrop`` below the running maximum.  Both directions are pure prefix
scans, so the whole thing is three NumPy calls per side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scoring import ScoringScheme

__all__ = ["UngappedHSP", "ungapped_extend_one_sided", "ungapped_extend"]


@dataclass(frozen=True)
class UngappedHSP:
    """An ungapped high-scoring segment pair around an anchor.

    ``left``/``right`` are the number of bases included on each side of the
    anchor (the anchor base itself belongs to the right side).
    """

    score: int
    left: int
    right: int

    @property
    def length(self) -> int:
        return self.left + self.right


def ungapped_extend_one_sided(
    target: np.ndarray,
    query: np.ndarray,
    scheme: ScoringScheme,
) -> tuple[int, int]:
    """Best prefix score along one direction.

    Returns ``(score, length)``: the maximum prefix-sum of per-base scores
    within the x-drop horizon, and the number of bases up to that maximum.
    The inputs must already be equal-length diagonal slices.
    """
    target = np.asarray(target, dtype=np.intp)
    query = np.asarray(query, dtype=np.intp)
    n = min(target.shape[0], query.shape[0])
    if n == 0:
        return 0, 0
    per_base = scheme.substitution[target[:n], query[:n]].astype(np.int64)
    prefix = np.cumsum(per_base)
    running_max = np.maximum.accumulate(np.concatenate(([0], prefix)))
    # First position where the score has dropped xdrop below the running max.
    dropped = np.flatnonzero(prefix < running_max[:-1] - scheme.xdrop)
    horizon = int(dropped[0]) if dropped.size else n
    if horizon == 0:
        return 0, 0
    window = prefix[:horizon]
    best_idx = int(np.argmax(window))
    best = int(window[best_idx])
    if best <= 0:
        return 0, 0
    return best, best_idx + 1


def ungapped_extend(
    target: np.ndarray,
    query: np.ndarray,
    t_anchor: int,
    q_anchor: int,
    scheme: ScoringScheme,
) -> UngappedHSP:
    """Two-sided x-drop ungapped extension around an anchor pair."""
    if not (0 <= t_anchor <= target.shape[0] and 0 <= q_anchor <= query.shape[0]):
        raise IndexError("anchor outside sequence bounds")
    r_score, r_len = ungapped_extend_one_sided(
        target[t_anchor:], query[q_anchor:], scheme
    )
    l_score, l_len = ungapped_extend_one_sided(
        target[:t_anchor][::-1], query[:q_anchor][::-1], scheme
    )
    return UngappedHSP(score=l_score + r_score, left=l_len, right=r_len)
