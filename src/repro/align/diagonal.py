"""The anti-diagonal layout transformation of Figure 4.

GPUs need the cells of one anti-diagonal to be *contiguous* so a warp's
loads/stores coalesce.  The classic transform maps logical cell ``(i, j)``
to transformed coordinates ``(i + j, j)``: every anti-diagonal becomes a row
of the transformed (skewed) matrix.  The transformed array needs padding —
``(M+N+1) x (min(M,N)+1)`` instead of ``(M+1) x (N+1)`` — which this module
quantifies, because the paper notes the footprint increase is the price of
coalescing.

These helpers are used by the GPU-simulator's memory model (to reason about
coalesced transactions) and are tested for bijectivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "to_diagonal",
    "from_diagonal",
    "diagonal_span",
    "DiagonalLayout",
    "skew_matrix",
    "unskew_matrix",
]


def to_diagonal(i: int | np.ndarray, j: int | np.ndarray) -> tuple:
    """Logical ``(i, j)`` -> transformed ``(d, k) = (i + j, j)``."""
    return i + j, j


def from_diagonal(d: int | np.ndarray, k: int | np.ndarray) -> tuple:
    """Transformed ``(d, k)`` -> logical ``(i, j) = (d - k, k)``."""
    return d - k, k


def diagonal_span(d: int, m: int, n: int) -> tuple[int, int]:
    """Half-open ``j`` range of anti-diagonal ``d`` of an (m+1)x(n+1) grid."""
    if d < 0 or d > m + n:
        return 0, 0
    lo = max(0, d - m)
    hi = min(d, n) + 1
    return lo, hi


@dataclass(frozen=True)
class DiagonalLayout:
    """Geometry of the transformed layout for an ``(m+1) x (n+1)`` DP grid."""

    m: int
    n: int

    @property
    def rows(self) -> int:
        """Transformed row count: one per anti-diagonal."""
        return self.m + self.n + 1

    @property
    def row_width(self) -> int:
        """Width of the widest anti-diagonal (allocation width)."""
        return min(self.m, self.n) + 1

    @property
    def logical_cells(self) -> int:
        return (self.m + 1) * (self.n + 1)

    @property
    def padded_cells(self) -> int:
        return self.rows * self.row_width

    @property
    def padding_overhead(self) -> float:
        """Fractional footprint increase caused by the skew padding."""
        return self.padded_cells / self.logical_cells - 1.0


def skew_matrix(matrix: np.ndarray, fill=0) -> np.ndarray:
    """Skew a dense ``(m+1) x (n+1)`` matrix into diagonal-major layout.

    Row ``d`` of the result holds the cells of anti-diagonal ``d`` packed
    left-to-right by increasing ``j``; unused slots carry ``fill``.
    """
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    m, n = matrix.shape[0] - 1, matrix.shape[1] - 1
    layout = DiagonalLayout(m, n)
    out = np.full((layout.rows, layout.row_width), fill, dtype=matrix.dtype)
    for d in range(layout.rows):
        lo, hi = diagonal_span(d, m, n)
        js = np.arange(lo, hi)
        out[d, : hi - lo] = matrix[d - js, js]
    return out


def unskew_matrix(skewed: np.ndarray, m: int, n: int) -> np.ndarray:
    """Inverse of :func:`skew_matrix`."""
    layout = DiagonalLayout(m, n)
    if skewed.shape != (layout.rows, layout.row_width):
        raise ValueError(
            f"skewed matrix shape {skewed.shape} does not match layout "
            f"({layout.rows}, {layout.row_width})"
        )
    out = np.zeros((m + 1, n + 1), dtype=skewed.dtype)
    for d in range(layout.rows):
        lo, hi = diagonal_span(d, m, n)
        js = np.arange(lo, hi)
        out[d - js, js] = skewed[d, : hi - lo]
    return out
