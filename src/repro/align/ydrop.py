"""Row-wise y-drop gapped extension (the LASTZ reference engine).

This reproduces LASTZ's ``ydrop_one_sided_align``: a one-sided affine-gap
extension anchored at the origin that explores the DP matrix row by row,
keeping per-row active windows and pruning cells that score more than
``ydrop`` below the best score seen in completed rows.

The implementation is vectorised per row:

* ``D`` (deletion) and the diagonal contribution are pure element-wise maps
  over the previous row;
* ``I`` (insertion) is a within-row prefix scan, computed with the classic
  transformation ``I[j] = cummax(S_noI[k] + k*e)[j-1] - (o + e) - (j-1)*e``
  (gap chains never re-open through ``I`` because re-opening costs strictly
  more than extending);
* the rightward *tail* of pure-insertion cells past the last computed column
  decays by exactly ``gap_extend`` per step, so its length is computed in
  closed form instead of cell by cell — but the cells still count toward the
  explored-work statistics, since LASTZ computes them.

The per-row windows double as the work profile: :func:`diag_width_profile`
converts them to anti-diagonal widths, which is what the GPU cost model
needs (a warp covers an anti-diagonal 32 cells at a time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..scoring import NEG_INF, ScoringScheme
from .alignment import Alignment
from .traceback import (
    D_EXTEND_BIT,
    I_EXTEND_BIT,
    S_DIAG,
    S_FROM_D,
    S_FROM_I,
    S_ORIGIN,
    walk_traceback,
)

__all__ = [
    "ExtensionStats",
    "ExtensionResult",
    "ydrop_extend",
    "diag_width_profile",
    "WindowedTraceback",
]

_INITIAL_CAPACITY = 256


@dataclass(frozen=True)
class ExtensionStats:
    """Work profile of one one-sided extension (the *search space*)."""

    rows: int
    cells: int
    max_row_width: int
    max_antidiag: int

    @property
    def mean_row_width(self) -> float:
        return self.cells / self.rows if self.rows else 0.0


@dataclass(frozen=True)
class ExtensionResult:
    """Outcome of a one-sided y-drop extension.

    ``end_i``/``end_j`` locate the optimal cell (ties broken toward the
    smallest anti-diagonal, then the smallest row — identical to the Gotoh
    and wavefront engines).  ``ops`` is present only when traceback was
    requested.
    """

    score: int
    end_i: int
    end_j: int
    stats: ExtensionStats
    ops: tuple[tuple[str, int], ...] | None = None
    windows: tuple[tuple[int, int], ...] | None = field(default=None, repr=False)

    def alignment(self) -> Alignment:
        if self.ops is None:
            raise ValueError("extension was run without traceback")
        return Alignment(
            target_start=0,
            target_end=self.end_i,
            query_start=0,
            query_end=self.end_j,
            score=self.score,
            ops=self.ops,
        )


class WindowedTraceback:
    """Sparse packed-traceback store addressed like a dense (i, j) matrix.

    Row ``i`` stores bytes for columns ``[start_i, start_i + len_i)``; any
    access outside a stored window raises, which flags a corrupted walk.
    """

    def __init__(self, shape: tuple[int, int]):
        self.shape = shape
        self._starts: list[int] = []
        self._rows: list[np.ndarray] = []

    def append_row(self, start: int, packed: np.ndarray) -> None:
        self._starts.append(start)
        self._rows.append(np.asarray(packed, dtype=np.uint8))

    def __getitem__(self, key: tuple[int, int]) -> int:
        i, j = key
        if not 0 <= i < len(self._rows):
            raise ValueError(f"traceback row {i} was never computed")
        off = j - self._starts[i]
        row = self._rows[i]
        if not 0 <= off < row.shape[0]:
            raise ValueError(f"traceback cell ({i}, {j}) was never computed")
        return int(row[off])

    def nbytes(self) -> int:
        return sum(r.shape[0] for r in self._rows)


def diag_width_profile(windows: tuple[tuple[int, int], ...]) -> np.ndarray:
    """Anti-diagonal widths of the explored region.

    ``windows[i] = (L, R)`` means row ``i`` computed columns ``[L, R)``.
    Row ``i`` covers anti-diagonals ``i + L .. i + R - 1``, one cell each,
    so the per-diagonal widths follow from a difference array in
    O(rows + D).
    """
    if not windows:
        return np.zeros(0, dtype=np.int64)
    max_d = max(i + r - 1 for i, (_, r) in enumerate(windows) if r > 0)
    diff = np.zeros(max_d + 2, dtype=np.int64)
    for i, (left, right) in enumerate(windows):
        if right > left:
            diff[i + left] += 1
            diff[i + right] -= 1
    return np.cumsum(diff)[:-1]


def _regrow(buf: np.ndarray, cap: int, fill) -> np.ndarray:
    out = np.full(cap, fill, dtype=buf.dtype)
    out[: buf.shape[0]] = buf
    return out


def ydrop_extend(
    target: np.ndarray,
    query: np.ndarray,
    scheme: ScoringScheme,
    *,
    traceback: bool = False,
    collect_windows: bool = False,
) -> ExtensionResult:
    """One-sided y-drop extension of ``query`` against ``target``.

    Both inputs are code arrays (the extension direction is encoded by the
    caller reversing them for leftward extension).  Returns the optimal
    cell and the explored-work statistics; with ``traceback=True`` also the
    edit script of the optimal alignment.
    """
    target = np.asarray(target, dtype=np.uint8)
    query = np.asarray(query, dtype=np.uint8)
    m, n = int(target.shape[0]), int(query.shape[0])
    o = int(scheme.gap_open)
    e = int(scheme.gap_extend)
    oe = o + e
    ydrop = int(scheme.ydrop)
    sub = scheme.substitution

    tb = WindowedTraceback((m + 1, n + 1)) if traceback else None
    windows: list[tuple[int, int]] = []

    # --- row 0: origin plus the pure-insertion tail -----------------------
    tail0 = 0
    if n >= 1 and oe <= ydrop:
        tail0 = min(n, (ydrop - oe) // e + 1)
    width0 = 1 + tail0
    cap = max(_INITIAL_CAPACITY, width0 + 2)
    S_prev = np.full(cap, NEG_INF, dtype=np.int64)
    S_cur = np.full(cap, NEG_INF, dtype=np.int64)
    D_prev = np.full(cap, NEG_INF, dtype=np.int64)
    D_cur = np.full(cap, NEG_INF, dtype=np.int64)
    I_cur = np.full(cap, NEG_INF, dtype=np.int64)
    scratch = np.empty(cap, dtype=np.int64)
    idx_e = np.arange(cap, dtype=np.int64) * e  # cached j*e table

    S_prev[0] = 0
    if tail0:
        S_prev[1 : tail0 + 1] = -o - idx_e[1 : tail0 + 1]
    if tb is not None:
        row0 = np.full(width0, S_FROM_I | I_EXTEND_BIT, dtype=np.uint8)
        row0[0] = S_ORIGIN
        if tail0:
            row0[1] = S_FROM_I
        tb.append_row(0, row0)
    if collect_windows:
        windows.append((0, width0))

    best = 0
    best_i = best_j = 0
    rows = 1
    cells = width0
    max_row_width = width0
    max_antidiag = width0 - 1
    # Active window [left, right) of the previous row.
    left, right = 0, width0

    maximum = np.maximum
    subtract = np.subtract

    for i in range(1, m + 1):
        if right <= left:
            break
        t_code = int(target[i - 1])
        thresh = best - ydrop

        lo = left
        hi = right + 1 if right + 1 <= n + 1 else n + 1
        if hi <= lo:
            break
        width = hi - lo

        if hi + 2 > S_cur.shape[0]:
            cap = max(hi + 2, 2 * S_cur.shape[0])
            S_prev = _regrow(S_prev, cap, NEG_INF)
            S_cur = _regrow(S_cur, cap, NEG_INF)
            D_prev = _regrow(D_prev, cap, NEG_INF)
            D_cur = _regrow(D_cur, cap, NEG_INF)
            I_cur = _regrow(I_cur, cap, NEG_INF)
            scratch = np.empty(cap, dtype=np.int64)
            idx_e = np.arange(cap, dtype=np.int64) * e

        Dw = D_cur[lo:hi]
        sc = scratch[:width]

        # D: element-wise from the previous row (same columns).
        subtract(D_prev[lo:hi], e, out=Dw)
        subtract(S_prev[lo:hi], oe, out=sc)
        d_from_d = None
        if tb is not None:
            d_from_d = Dw > sc
        maximum(Dw, sc, out=Dw)

        # S without I: max(D, diagonal).
        Sw = S_cur[lo:hi]
        np.copyto(Sw, Dw)
        di_lo = lo if lo >= 1 else 1
        if di_lo <= hi - 1:
            q_sl = query[di_lo - 1 : hi - 1]
            diag_core = S_prev[di_lo - 1 : hi - 1] + sub[t_code, q_sl]
            core = Sw[di_lo - lo :]
            maximum(core, diag_core, out=core)
        else:
            diag_core = None

        # I prefix scan: I[j] = cummax(S_noI[k] + k*e)[j-1] - oe - (j-1)*e.
        Iw = I_cur[lo:hi]
        Iw[0] = NEG_INF
        i_from_i = None
        if width > 1:
            c = Sw + idx_e[lo:hi]
            run = np.maximum.accumulate(c)
            subtract(run[:-1], oe + idx_e[lo + 1 : hi] - idx_e[1], out=Iw[1:])
            if tb is not None:
                i_from_i = np.zeros(width, dtype=bool)
                i_from_i[1:] = run[:-1] > c[:-1]
            maximum(Sw, Iw, out=Sw)

        # Closed-form pure-insertion tail past column hi-1.
        tail_start = hi
        tail = 0
        if hi <= n:
            i_tail0 = max(int(Iw[-1]) - e, int(Sw[-1]) - oe)
            if i_tail0 >= thresh:
                tail = min(n + 1 - tail_start, (i_tail0 - thresh) // e + 1)

        total_width = width + tail
        if tail_start + tail + 1 > S_cur.shape[0]:
            cap = max(tail_start + tail + 1, 2 * S_cur.shape[0])
            S_prev = _regrow(S_prev, cap, NEG_INF)
            S_cur = _regrow(S_cur, cap, NEG_INF)
            D_prev = _regrow(D_prev, cap, NEG_INF)
            D_cur = _regrow(D_cur, cap, NEG_INF)
            I_cur = _regrow(I_cur, cap, NEG_INF)
            scratch = np.empty(cap, dtype=np.int64)
            idx_e = np.arange(cap, dtype=np.int64) * e
            Sw = S_cur[lo:hi]
            Iw = I_cur[lo:hi]

        # --- prune: shrink the active window at both edges ----------------
        alive = np.flatnonzero(Sw >= thresh)
        if alive.shape[0] == 0 and tail == 0:
            # The extension dies on this row; its cells were still computed.
            rows += 1
            cells += width
            if tb is not None:
                tb.append_row(lo, np.zeros(0, dtype=np.uint8))
            if collect_windows:
                windows.append((lo, hi))
            break
        first = int(alive[0]) if alive.shape[0] else width
        last = int(alive[-1]) if alive.shape[0] else width - 1

        # --- traceback bytes for every computed cell -----------------------
        if tb is not None:
            # S choice with the fixed priority diag > I > D, matching the
            # Gotoh and wavefront engines.
            s_choice = np.full(width, S_FROM_D, dtype=np.uint8)
            s_choice[Sw == Iw] = S_FROM_I
            if diag_core is not None:
                sl = slice(di_lo - lo, width)
                s_choice[sl][Sw[sl] == diag_core] = S_DIAG
            row_bytes = s_choice
            if i_from_i is not None:
                row_bytes = row_bytes | (i_from_i.astype(np.uint8) << 2)
            if d_from_d is not None:
                row_bytes = row_bytes | (d_from_d.astype(np.uint8) << 3)
            if tail:
                tail_bytes = np.full(tail, S_FROM_I | I_EXTEND_BIT, dtype=np.uint8)
                if not (int(Iw[-1]) - e > int(Sw[-1]) - oe):
                    tail_bytes[0] = S_FROM_I
                row_bytes = np.concatenate([row_bytes, tail_bytes])
            tb.append_row(lo, row_bytes)

        # --- fill the tail into the current row ----------------------------
        if tail:
            seed = max(int(Iw[-1]) - e, int(Sw[-1]) - oe)
            S_cur[tail_start : tail_start + tail] = seed - idx_e[:tail]
            I_cur[tail_start : tail_start + tail] = S_cur[tail_start : tail_start + tail]
            D_cur[tail_start : tail_start + tail] = NEG_INF

        # --- best-cell tracking (ties: smallest i+j, then smallest i) ------
        w_idx = int(np.argmax(Sw))
        row_best = int(Sw[w_idx])
        if row_best >= best:
            cand_i, cand_j = i, lo + w_idx
            if row_best > best or (cand_i + cand_j, cand_i) < (
                best_i + best_j,
                best_i,
            ):
                best = row_best
                best_i, best_j = cand_i, cand_j

        # --- bookkeeping ----------------------------------------------------
        rows += 1
        cells += total_width
        if total_width > max_row_width:
            max_row_width = total_width
        if i + tail_start + tail - 1 > max_antidiag:
            max_antidiag = i + tail_start + tail - 1
        if collect_windows:
            windows.append((lo, tail_start + tail))

        # Window for the next row; NEG edge-pruned cells so they cannot
        # feed it.
        new_left = lo + first
        new_right = tail_start + tail if tail else lo + last + 1
        if first > 0:
            S_cur[lo:new_left] = NEG_INF
            I_cur[lo:new_left] = NEG_INF
            D_cur[lo:new_left] = NEG_INF
        if not tail and lo + last + 1 < hi:
            S_cur[lo + last + 1 : hi] = NEG_INF
            I_cur[lo + last + 1 : hi] = NEG_INF
            D_cur[lo + last + 1 : hi] = NEG_INF

        # Scrub the one-cell borders of this row's span: the buffers
        # alternate rows (double buffering), so a column this row did not
        # write still holds row i-2 data.  The next row reads at most one
        # column outside [lo, span_end), on each side.
        span_end = tail_start + tail
        if lo >= 1:
            S_cur[lo - 1] = D_cur[lo - 1] = NEG_INF
        S_cur[span_end] = D_cur[span_end] = NEG_INF

        S_prev, S_cur = S_cur, S_prev
        D_prev, D_cur = D_cur, D_prev
        left, right = new_left, new_right

    stats = ExtensionStats(
        rows=rows,
        cells=cells,
        max_row_width=max_row_width,
        max_antidiag=max_antidiag,
    )
    ops = None
    if tb is not None:
        ops = walk_traceback(tb, best_i, best_j)
    return ExtensionResult(
        score=best,
        end_i=best_i,
        end_j=best_j,
        stats=stats,
        ops=ops,
        windows=tuple(windows) if collect_windows else None,
    )
