"""Two-sided anchor extension: combine left and right one-sided extensions.

LASTZ (and FastZ) extend every anchor *twice* — leftward over the reversed
prefixes and rightward over the suffixes — and combine the two optimal
one-sided alignments into the final gapped alignment (paper §3.1.2 explains
why a short left extension cannot be discarded early: the combined alignment
may still score high).

The anchor is a DP origin *between* bases: the right extension's first
diagonal move consumes ``target[t]``/``query[q]``, the left extension's
first move consumes ``target[t-1]``/``query[q-1]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..scoring import ScoringScheme
from .alignment import Alignment, merge_ops

__all__ = ["AnchorExtension", "extend_anchor", "combine_alignment"]


@dataclass(frozen=True)
class AnchorExtension:
    """Both one-sided extension results around one anchor."""

    anchor_t: int
    anchor_q: int
    left: object  # ExtensionResult | WavefrontResult
    right: object
    score: int

    @property
    def target_span(self) -> int:
        return self.left.end_i + self.right.end_i

    @property
    def query_span(self) -> int:
        return self.left.end_j + self.right.end_j

    @property
    def extent(self) -> int:
        """Max of target/query spans — the paper's binning measure."""
        return max(self.target_span, self.query_span)

    def alignment(self) -> Alignment:
        return combine_alignment(
            self.anchor_t, self.anchor_q, self.left, self.right, self.score
        )


def combine_alignment(
    anchor_t: int,
    anchor_q: int,
    left,
    right,
    score: int,
) -> Alignment:
    """Stitch two one-sided results (with edit scripts) into one alignment."""
    if left.ops is None or right.ops is None:
        raise ValueError("both extensions need tracebacks to combine")
    # The left extension ran on reversed sequences: reversing the op order
    # yields the forward script (per-op base order inside a run is symmetric).
    ops = merge_ops(list(reversed(left.ops)) + list(right.ops))
    return Alignment(
        target_start=anchor_t - left.end_i,
        target_end=anchor_t + right.end_i,
        query_start=anchor_q - left.end_j,
        query_end=anchor_q + right.end_j,
        score=score,
        ops=ops,
    )


def extend_anchor(
    target: np.ndarray,
    query: np.ndarray,
    anchor_t: int,
    anchor_q: int,
    scheme: ScoringScheme,
    engine: Callable,
    **engine_kwargs,
) -> AnchorExtension:
    """Run ``engine`` on both sides of an anchor and combine the scores.

    ``engine`` is any one-sided extension callable with the signature
    ``engine(target, query, scheme, **kwargs)`` returning an object with
    ``score``, ``end_i``, ``end_j`` and optional ``ops`` — i.e.
    :func:`repro.align.ydrop.ydrop_extend` or
    :func:`repro.align.wavefront.wavefront_extend`.
    """
    if not (0 <= anchor_t <= target.shape[0] and 0 <= anchor_q <= query.shape[0]):
        raise IndexError("anchor outside sequence bounds")
    right = engine(target[anchor_t:], query[anchor_q:], scheme, **engine_kwargs)
    left = engine(
        target[:anchor_t][::-1], query[:anchor_q][::-1], scheme, **engine_kwargs
    )
    return AnchorExtension(
        anchor_t=anchor_t,
        anchor_q=anchor_q,
        left=left,
        right=right,
        score=left.score + right.score,
    )
