"""Alignment results: edit scripts, CIGAR strings, identity statistics.

The coordinate convention throughout: an alignment covers the half-open
intervals ``[target_start, target_end)`` and ``[query_start, query_end)``.
Edit operations are ``M`` (match/mismatch column, consumes both), ``I``
(insertion in the query relative to the target, consumes query only — the
paper's ``I`` matrix) and ``D`` (deletion, consumes target only).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["EditOp", "Alignment", "merge_ops"]

#: Allowed edit-operation codes.
EditOp = str
_OPS = ("M", "I", "D")


def merge_ops(ops: list[tuple[str, int]]) -> tuple[tuple[str, int], ...]:
    """Collapse adjacent same-op runs and drop zero-length runs."""
    merged: list[tuple[str, int]] = []
    for op, length in ops:
        if op not in _OPS:
            raise ValueError(f"unknown edit op {op!r}")
        if length < 0:
            raise ValueError("edit op length must be non-negative")
        if length == 0:
            continue
        if merged and merged[-1][0] == op:
            merged[-1] = (op, merged[-1][1] + length)
        else:
            merged.append((op, length))
    return tuple(merged)


@dataclass(frozen=True)
class Alignment:
    """A scored local alignment between a target and query interval."""

    target_start: int
    target_end: int
    query_start: int
    query_end: int
    score: int
    ops: tuple[tuple[str, int], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.target_end < self.target_start or self.query_end < self.query_start:
            raise ValueError("alignment interval ends before it starts")
        object.__setattr__(self, "ops", merge_ops(list(self.ops)))
        if self.ops:
            t_span = sum(n for op, n in self.ops if op in ("M", "D"))
            q_span = sum(n for op, n in self.ops if op in ("M", "I"))
            if t_span != self.target_length or q_span != self.query_length:
                raise ValueError(
                    f"edit script spans ({t_span}, {q_span}) do not match intervals "
                    f"({self.target_length}, {self.query_length})"
                )

    # -- geometry ----------------------------------------------------------
    @property
    def target_length(self) -> int:
        return self.target_end - self.target_start

    @property
    def query_length(self) -> int:
        return self.query_end - self.query_start

    @property
    def length(self) -> int:
        """Alignment length in columns (bases + gaps) if the edit script is
        known, else the larger of the two interval lengths."""
        if self.ops:
            return sum(n for _, n in self.ops)
        return max(self.target_length, self.query_length)

    def cigar(self) -> str:
        """CIGAR rendering of the edit script, e.g. ``"120M2D87M"``."""
        return "".join(f"{n}{op}" for op, n in self.ops)

    # -- verification ------------------------------------------------------
    def rescore(self, target: np.ndarray, query: np.ndarray, scheme) -> int:
        """Recompute the score of this alignment from scratch.

        Used by tests and the FastZ executor's self-check: walking the edit
        script over the sequences must reproduce ``self.score``.
        """
        if not self.ops:
            if self.target_length == 0 and self.query_length == 0:
                return 0  # empty alignment scores zero by definition
            raise ValueError("cannot rescore an alignment without an edit script")
        score = 0
        ti, qj = self.target_start, self.query_start
        for op, n in self.ops:
            if op == "M":
                t = np.asarray(target[ti : ti + n], dtype=np.intp)
                q = np.asarray(query[qj : qj + n], dtype=np.intp)
                score += int(scheme.substitution[t, q].sum())
                ti += n
                qj += n
            elif op == "I":
                score -= scheme.gap_open + n * scheme.gap_extend
                qj += n
            else:  # "D"
                score -= scheme.gap_open + n * scheme.gap_extend
                ti += n
        return score

    def identity(self, target: np.ndarray, query: np.ndarray) -> float:
        """Fraction of M columns whose bases are equal (0.0 if no M column)."""
        if not self.ops:
            return 0.0
        same = 0
        total = 0
        ti, qj = self.target_start, self.query_start
        for op, n in self.ops:
            if op == "M":
                t = np.asarray(target[ti : ti + n])
                q = np.asarray(query[qj : qj + n])
                same += int(np.count_nonzero(t == q))
                total += n
                ti += n
                qj += n
            elif op == "I":
                qj += n
            else:
                ti += n
        return same / total if total else 0.0

    def overlaps(self, other: "Alignment") -> bool:
        """True if both target and query intervals intersect ``other``'s."""
        t = self.target_start < other.target_end and other.target_start < self.target_end
        q = self.query_start < other.query_end and other.query_start < self.query_end
        return t and q
