"""Batched struct-of-arrays wavefront engine: inter-task lockstep parallelism.

:func:`repro.align.wavefront.wavefront_extend` advances ONE extension's
anti-diagonals at a time; running it over a whole anchor set from Python is
the CPU analogue of launching one GPU kernel per seed — exactly the
per-problem regime the paper's inter-task parallelism exists to kill
(§3.1, §3.3).  This module is the batch analogue of the paper's kernels: N
extension tasks are packed into struct-of-arrays state and every iteration
advances the *next anti-diagonal of every live task* with one set of masked
2-D numpy operations, the way one bulk-synchronous kernel launch advances
every alignment in a bin by one wavefront step.

Layout
------
All per-task score state is stacked row-wise:

* cyclic three-diagonal buffers ``S/I/D`` become ``(N, cap)`` planes of one
  arena-backed score block indexed by the absolute row coordinate ``i``
  (same bijection as the scalar engine's buffers), rotated by plane-index
  swap each step;
* per-task active windows live in ``lo``/``hi`` vectors; each step computes
  only the union column range ``[min(lo), max(hi)]`` and masks each row to
  its own window — the tighter the batch's length distribution, the less
  masked-out waste, which is the measurable CPU analogue of §3.3's
  length-binned load balance (recorded as the ``repro_batch_occupancy``
  histogram: live cells over union-window slab cells);
* sequence codes are staged **once** into padded ``(N, L)`` slabs; growth
  zero-extends the slab and stages only the new columns;
* finished tasks become masked *tombstones* (their window is pinned shut
  with sentinels, so they stop contributing to the union range and every
  per-row update skips them via ``where=``); slabs are physically
  compacted only when the dead fraction exceeds a threshold
  (``REPRO_BATCH_COMPACT_THRESHOLD``, default 0.5), instead of fancy-index
  copying every slab on every retirement.

Allocation model
----------------
All slab storage is checked out of a :class:`~repro.align.arena.
LockstepArena`; a warm engine performs no slab allocations in steady
state.  The score planes are int32 whenever
:func:`~repro.align.wavefront.score_drift_bound` proves the sweep cannot
wrap past int32 around the ``NEG_INF`` sentinel (every op is
add/subtract/max, so int32 and int64 sweeps are then bit-identical); the
engine transparently falls back to int64 otherwise.  All per-diagonal
recurrences, window masking and y-drop pruning write into the arena
planes with ``out=``/``where=`` ufuncs — the hot loop allocates only
O(N)-sized vectors, never O(N x width) temporaries.

Two entry points drive the same sweep core: :func:`batch_wavefront_extend`
splits the task list into ``batch_size`` chunks, each advanced by its own
anti-diagonal loop; :func:`wholebin_wavefront_extend` packs an entire
length bin into one block and advances it with a single loop, sweeping
rows in cache-sized tiles (``REPRO_WHOLEBIN_TILE_ROWS``) that each mask
their own dead lanes — per-step Python dispatch cost is then paid once
per bin instead of once per chunk.

The engine reproduces the scalar engine *bit-identically*: same scores,
same optimal cells (same tie-breaks — the masked out-of-window cells are
held at exactly ``NEG_INF``, matching the scalar buffers' scrubbed edges),
same eager-tile hits and packed traceback bytes, and the same
:class:`WavefrontStats` accounting.  ``tests/align/test_batch.py`` holds
the property-style equivalence suite.
"""

from __future__ import annotations

import os

import numpy as np

from .. import obs
from ..scoring import NEG_INF, ScoringScheme
from .arena import LockstepArena
from .traceback import S_DIAG, S_FROM_D, S_FROM_I, S_ORIGIN, walk_traceback
from .wavefront import (
    WARP_WIDTH,
    DiagTraceback,
    WavefrontResult,
    WavefrontStats,
    pick_score_dtype,
)

__all__ = ["batch_wavefront_extend", "wholebin_wavefront_extend"]

#: Window sentinels for tombstoned (retired) rows: ``lo`` is pushed above
#: any reachable diagonal and ``hi`` below zero, so a dead row's window can
#: never reopen and never stretches the union range ``[L, H]``.
_DEAD_LO = np.int64(1) << 40
_DEAD_HI = np.int64(-3)

_COMPACT_ENV = "REPRO_BATCH_COMPACT_THRESHOLD"
_DEFAULT_COMPACT_THRESHOLD = 0.5

_TILE_ROWS_ENV = "REPRO_WHOLEBIN_TILE_ROWS"
_DEFAULT_TILE_ROWS = 1024

_OCC_BUCKETS = tuple(i / 10 for i in range(1, 11))

#: Score block plane layout: 7 cyclic S/I/D planes + 2 scratch planes.
_N_SCORE_PLANES = 9


def _compact_threshold() -> float:
    """Dead-row fraction above which slabs are physically compacted."""
    raw = os.environ.get(_COMPACT_ENV)
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return _DEFAULT_COMPACT_THRESHOLD


def _wholebin_tile_rows() -> int:
    """Rows per cache tile for whole-bin sweeps (env-overridable)."""
    raw = os.environ.get(_TILE_ROWS_ENV)
    if raw:
        try:
            rows = int(raw)
            if rows > 0:
                return rows
        except ValueError:
            pass
    return _DEFAULT_TILE_ROWS


def _coerce_forced_dtype(score_dtype: str | np.dtype | None) -> np.dtype | None:
    """Validate a caller dtype override (int32/int64 only)."""
    if score_dtype is None:
        return None
    forced = np.dtype(score_dtype)
    if forced not in (np.dtype(np.int32), np.dtype(np.int64)):
        raise ValueError("score_dtype must be int32 or int64")
    return forced


def batch_wavefront_extend(
    pairs: list[tuple[np.ndarray, np.ndarray]],
    scheme: ScoringScheme,
    *,
    eager_tile: int = 0,
    traceback: bool = False,
    prune: bool = True,
    batch_size: int | None = None,
    arena: LockstepArena | None = None,
    score_dtype: str | np.dtype | None = None,
    presorted: bool = False,
) -> list[WavefrontResult]:
    """Extend N ``(target, query)`` suffix pairs in lockstep.

    Drop-in batch equivalent of calling
    :func:`~repro.align.wavefront.wavefront_extend` once per pair with the
    same keyword arguments; results come back in input order and are
    bit-identical to the per-task calls.

    Memory model
    ------------
    One lockstep slab holds ``batch_size`` rows times the widest union
    window the chunk reaches — O(batch_size x max_extent) score cells
    (int32 when provably safe, else int64), regardless of how many pairs
    are passed.  ``batch_size=None`` packs *everything* into a single
    slab, so slab memory then grows with ``len(pairs)``; callers with
    unbounded task lists (the pipeline executor, service workers) must
    pass a bound — they all forward ``FastzOptions.batch_size``.  Slabs
    are checked out of ``arena`` and reused across chunks; pass a warm
    :class:`~repro.align.arena.LockstepArena` to reuse them across *calls*
    as well (one arena per thread/process — arenas are not thread-safe).
    ``score_dtype`` ("int32"/"int64") overrides the automatic promotion
    decision, e.g. to force the int64 path in tests; forcing int32 on a
    workload whose drift bound exceeds the int32 budget is undefined.
    ``presorted=True`` says the caller already ordered ``pairs`` by
    expected sweep depth (e.g. the executor's inspector-measured extents,
    a better key than raw length), suppressing the internal length sort.
    Composition never changes any result — only slab occupancy.
    """
    results: list[WavefrontResult | None] = [None] * len(pairs)
    if not pairs:
        return []
    if batch_size is not None and batch_size <= 0:
        raise ValueError("batch_size must be positive")
    forced = _coerce_forced_dtype(score_dtype)
    if arena is None:
        arena = LockstepArena()
    step = int(batch_size) if batch_size else len(pairs)
    # Occupancy-aware chunk composition: when the task list is split into
    # several lockstep chunks, grouping tasks of similar total length keeps
    # each chunk's union window tight and lets whole chunks retire early
    # (tasks are independent, so composition never changes any result;
    # results are still returned in input order).
    if len(pairs) > step and not presorted:
        order: list[int] = sorted(
            range(len(pairs)),
            key=lambda i: len(pairs[i][0]) + len(pairs[i][1]),
        )
    else:
        order = list(range(len(pairs)))
    for start in range(0, len(pairs), step):
        chunk = order[start : start + step]
        _extend_lockstep(
            [pairs[i] for i in chunk],
            scheme,
            eager_tile,
            traceback,
            prune,
            results,
            chunk,
            arena,
            forced,
        )
    return results  # type: ignore[return-value]


def wholebin_wavefront_extend(
    pairs: list[tuple[np.ndarray, np.ndarray]],
    scheme: ScoringScheme,
    *,
    eager_tile: int = 0,
    traceback: bool = False,
    prune: bool = True,
    arena: LockstepArena | None = None,
    score_dtype: str | np.dtype | None = None,
    presorted: bool = False,
    tile_rows: int | None = None,
) -> list[WavefrontResult]:
    """Extend an *entire bin* of suffix pairs as one lockstep SoA block.

    Same contract and bit-identical results as
    :func:`batch_wavefront_extend`, but the composition is inverted: where
    the batched entry splits the task list into ``batch_size`` chunks and
    drives one Python anti-diagonal loop *per chunk*, this entry packs
    every pair into a single arena-backed score block and advances the
    whole bin with one anti-diagonal loop — one NumPy sweep per diagonal
    per row tile, the CPU analogue of launching one bulk-synchronous
    kernel per wavefront step for the whole bin (paper §3.3).  The
    per-step Python/ufunc dispatch overhead is amortised over every live
    task at once instead of ``batch_size`` of them, which is where the
    engine's remaining time went (``repro trace`` on the batched engine).

    Inside each step the bin is swept in row tiles of ``tile_rows``
    (default ``REPRO_WHOLEBIN_TILE_ROWS`` or 1024): each tile computes
    its own union column range, so one monster alignment widens only its
    own tile's sweep — the cache-locality/dead-lane-masking tradeoff is
    per tile, not per bin.  Dead rows are masked tombstones exactly as in
    the batched engine (all-dead tiles are skipped outright), dtype
    promotion stays per block, and retirement/compaction fold into the
    sweep unchanged.  Slab memory is O(len(pairs) x max_extent) — callers
    feed length-binned task sets (the pipeline executor) so extents are
    homogeneous by construction.
    """
    results: list[WavefrontResult | None] = [None] * len(pairs)
    if not pairs:
        return []
    if tile_rows is not None and tile_rows <= 0:
        raise ValueError("tile_rows must be positive")
    forced = _coerce_forced_dtype(score_dtype)
    if arena is None:
        arena = LockstepArena()
    # Extent-similar neighbours keep each row tile's union window tight;
    # executors pass inspector-measured orderings via presorted=True.
    if len(pairs) > 1 and not presorted:
        order = sorted(
            range(len(pairs)),
            key=lambda i: len(pairs[i][0]) + len(pairs[i][1]),
        )
    else:
        order = list(range(len(pairs)))
    _extend_lockstep(
        [pairs[i] for i in order],
        scheme,
        eager_tile,
        traceback,
        prune,
        results,
        order,
        arena,
        forced,
        tile_rows=tile_rows if tile_rows is not None else _wholebin_tile_rows(),
    )
    return results  # type: ignore[return-value]


def _extend_lockstep(
    pairs: list[tuple[np.ndarray, np.ndarray]],
    scheme: ScoringScheme,
    eager_tile: int,
    traceback: bool,
    prune: bool,
    results: list,
    out_index: list[int],
    arena: LockstepArena,
    forced_dtype: np.dtype | None,
    tile_rows: int | None = None,
) -> None:
    """Advance one lockstep slab to completion.

    ``tile_rows=None`` sweeps the slab as a single row tile per step (the
    batched engine's behaviour); an integer partitions each step's sweep
    into contiguous row tiles of that size, each with its own union column
    range (the whole-bin engine).  Tiling never changes results — every
    per-row recurrence, mask, seal and prune is computed from the row's
    own window, and a tile's column range always covers its rows' windows.
    """
    targets = [np.asarray(t, dtype=np.uint8) for t, _ in pairs]
    queries = [np.asarray(q, dtype=np.uint8) for _, q in pairs]
    R = len(pairs)
    obs.counter(
        "repro_batch_lockstep_batches_total",
        "Struct-of-arrays lockstep batches advanced.",
    ).inc()
    obs.counter(
        "repro_batch_tasks_total", "Extension tasks packed into lockstep batches."
    ).inc(R)

    oe = int(scheme.gap_open + scheme.gap_extend)
    e = int(scheme.gap_extend)
    ydrop = int(scheme.ydrop) if prune else None
    tile = int(eager_tile) if not traceback else 0

    idx = np.asarray(out_index, dtype=np.int64)
    m = np.fromiter((t.shape[0] for t in targets), dtype=np.int64, count=R)
    n = np.fromiter((q.shape[0] for q in queries), dtype=np.int64, count=R)

    span = int((m + n).max())
    sdt = forced_dtype or pick_score_dtype(scheme, span, prune=prune)
    obs.counter(
        "repro_batch_sweep_dtype_total", "Lockstep sweeps by score dtype."
    ).labels(dtype=sdt.name).inc()
    NEG = sdt.type(NEG_INF)
    sub = np.asarray(scheme.substitution)
    sub_side = int(sub.shape[0])
    sub_f = np.ascontiguousarray(sub, dtype=sdt).ravel()
    # The flat-take substitution lookup clips instead of raising, so enforce
    # the scalar engine's fancy-indexing contract (out-of-alphabet codes are
    # an error) up front, before any state is staged.
    for seq in targets:
        if seq.shape[0] and int(seq.max()) >= sub_side:
            raise IndexError(
                f"target codes exceed the {sub_side}-letter alphabet"
            )
    for seq in queries:
        if seq.shape[0] and int(seq.max()) >= sub_side:
            raise IndexError(
                f"query codes exceed the {sub_side}-letter alphabet"
            )

    cap = 128
    blk, _ = arena.block("scores", (_N_SCORE_PLANES, R, cap), sdt)
    blk[:7] = NEG
    bool_blk, _ = arena.block("bools", (4, R, cap), np.bool_)
    u8_blk, _ = arena.block("scratch8", (4, R, cap), np.uint8)
    cols_all = np.arange(cap, dtype=np.int64)
    # Cyclic rotation swaps plane *indices*; views are re-derived per step.
    p_spp, p_sp, p_sc = 0, 1, 2
    p_ip, p_ic = 3, 4
    p_dp, p_dc = 5, 6
    blk[p_sp, :, 0] = 0  # diagonal 0: the origin

    t_len = q_len = 64
    Tpad, _ = arena.block("codes_t", (R, t_len), np.uint8)
    Qpad, _ = arena.block("codes_q", (R, q_len), np.uint8)
    Tpad[:] = 0
    Qpad[:] = 0
    for row in range(R):
        seq = targets[row]
        stop = min(int(seq.shape[0]), t_len)
        if stop:
            Tpad[row, :stop] = seq[:stop]
        seq = queries[row]
        stop = min(int(seq.shape[0]), q_len)
        if stop:
            Qpad[row, :stop] = seq[:stop]

    lo_prev = np.zeros(R, dtype=np.int64)
    hi_prev = np.zeros(R, dtype=np.int64)
    best = np.zeros(R, dtype=sdt)
    best_i = np.zeros(R, dtype=np.int64)
    best_j = np.zeros(R, dtype=np.int64)
    thr = np.empty(R, dtype=sdt)
    d_best = np.empty(R, dtype=sdt)
    lo = np.zeros(R, dtype=np.int64)
    hi = np.zeros(R, dtype=np.int64)
    lo_nb = np.empty(R, dtype=np.int64)  # pruned next-window buffers
    hi_nb = np.empty(R, dtype=np.int64)
    has_alive = np.zeros(R, dtype=bool)
    dmn = np.subtract(0, n)  # maintained incrementally as d - n
    width = np.empty(R, dtype=np.int64)
    strips = np.empty(R, dtype=np.int64)
    improved = np.empty(R, dtype=bool)
    scr_b = np.empty(R, dtype=bool)
    rows_all = np.arange(R, dtype=np.int64)

    diagonals = np.ones(R, dtype=np.int64)
    cells = np.ones(R, dtype=np.int64)
    warp_steps = np.ones(R, dtype=np.int64)
    # boundary_cells is recovered at finalize as warp_steps - diagonals: both
    # start at 1 and every step adds (strips, 1) while boundary adds strips-1.
    max_width = np.ones(R, dtype=np.int64)

    live = np.ones(R, dtype=bool)
    n_live = R
    compact_frac = _compact_threshold()
    slab_cells = 0
    live_cells = 0
    sweep_steps = 0
    tile_sweeps = 0

    tile_tb: np.ndarray | None = None
    if tile > 0:
        tile_tb, _ = arena.block("tile", (R, tile + 1, tile + 1), np.uint8)
        tile_tb[:] = 0
        tile_tb[:, 0, 0] = S_ORIGIN
    full_tbs: list[DiagTraceback | None] | None = None
    if traceback:
        full_tbs = []
        for row in range(R):
            tb = DiagTraceback((int(m[row]) + 1, int(n[row]) + 1))
            tb.append_diag(0, np.array([S_ORIGIN], dtype=np.uint8))
            full_tbs.append(tb)

    def _finalize_rows(dead: np.ndarray) -> None:
        """Emit WavefrontResults for the rows in ``dead`` (one bulk scalar
        extraction per stat array instead of per-row numpy indexing)."""
        nonlocal live_cells
        sel = dead.tolist()
        out_i = idx[dead].tolist()
        sc_l = best[dead].tolist()
        bi_l = best_i[dead].tolist()
        bj_l = best_j[dead].tolist()
        dg_l = diagonals[dead].tolist()
        ce_l = cells[dead].tolist()
        ws_l = warp_steps[dead].tolist()
        bc_l = (warp_steps[dead] - diagonals[dead]).tolist()
        mw_l = max_width[dead].tolist()
        # Each row's cells counter is 1 + its lifetime sum of window widths,
        # so retiring rows is the natural place to accumulate the occupancy
        # numerator without a per-step masked reduction.
        live_cells += int(cells[dead].sum()) - dead.shape[0]
        for k, row in enumerate(sel):
            bi, bj = bi_l[k], bj_l[k]
            ops = None
            eager_hit = False
            if full_tbs is not None:
                ops = walk_traceback(full_tbs[row], bi, bj)
            elif tile_tb is not None and bi <= tile and bj <= tile:
                ops = walk_traceback(tile_tb[row], bi, bj)
                eager_hit = True
            results[out_i[k]] = WavefrontResult(
                score=sc_l[k],
                end_i=bi,
                end_j=bj,
                stats=WavefrontStats(
                    diagonals=dg_l[k],
                    cells=ce_l[k],
                    warp_steps=ws_l[k],
                    boundary_cells=bc_l[k],
                    max_width=mw_l[k],
                ),
                ops=ops,
                eager_hit=eager_hit,
            )

    def _retire(dead: np.ndarray) -> None:
        """Finalize ``dead`` rows and tombstone them in place."""
        nonlocal n_live
        _finalize_rows(dead)
        live[dead] = False
        lo_prev[dead] = _DEAD_LO
        hi_prev[dead] = _DEAD_HI
        if full_tbs is not None:
            for row in dead.tolist():
                full_tbs[row] = None
        n_live -= int(dead.shape[0])

    def _compact() -> None:
        """Physically repack live rows to the front of every slab."""
        nonlocal R, blk, bool_blk, u8_blk, Tpad, Qpad, tile_tb, full_tbs
        nonlocal targets, queries, idx, m, n, lo, hi, lo_prev, hi_prev
        nonlocal best, best_i, best_j, thr, d_best, live
        nonlocal dmn, width, strips, improved, scr_b, rows_all
        nonlocal diagonals, cells, warp_steps, max_width
        nonlocal lo_nb, hi_nb, has_alive
        keep = np.flatnonzero(live)
        k = keep.shape[0]
        blk[:7, :k] = blk[:7, keep]
        blk = blk[:, :k]
        bool_blk = bool_blk[:, :k]
        u8_blk = u8_blk[:, :k]
        Tpad[:k] = Tpad[keep]
        Tpad = Tpad[:k]
        Qpad[:k] = Qpad[keep]
        Qpad = Qpad[:k]
        if tile_tb is not None:
            tile_tb[:k] = tile_tb[keep]
            tile_tb = tile_tb[:k]
        if full_tbs is not None:
            full_tbs = [full_tbs[i] for i in keep]
        targets = [targets[i] for i in keep]
        queries = [queries[i] for i in keep]
        idx, m, n = idx[keep], m[keep], n[keep]
        lo, hi = lo[keep], hi[keep]
        lo_prev, hi_prev = lo_prev[keep], hi_prev[keep]
        best, best_i, best_j = best[keep], best_i[keep], best_j[keep]
        diagonals, cells = diagonals[keep], cells[keep]
        warp_steps, max_width = warp_steps[keep], max_width[keep]
        thr = thr[:k]
        d_best = d_best[:k]
        lo_nb = lo_nb[:k]
        hi_nb = hi_nb[:k]
        has_alive = has_alive[:k]
        dmn = dmn[keep]
        width = width[:k]
        strips = strips[:k]
        improved = improved[:k]
        scr_b = scr_b[:k]
        rows_all = rows_all[:k]
        live = np.ones(k, dtype=bool)
        R = k
        obs.counter(
            "repro_batch_compactions_total",
            "Lockstep slab compactions (dead fraction crossed threshold).",
        ).inc()

    def _maybe_compact() -> None:
        if (R - n_live) > compact_frac * R:
            _compact()

    d = 0
    while n_live:
        d += 1
        np.add(dmn, 1, out=dmn)
        np.maximum(lo_prev, dmn, out=lo)
        np.maximum(lo, 0, out=lo)
        np.add(hi_prev, 1, out=hi)
        np.minimum(hi, m, out=hi)
        np.minimum(hi, d, out=hi)

        # --- retire tasks whose window closed (the scalar break) ------------
        np.greater(lo, hi, out=scr_b)
        np.logical_and(scr_b, live, out=scr_b)
        if scr_b.any():
            dead = np.flatnonzero(scr_b)
            lo[dead] = _DEAD_LO
            hi[dead] = _DEAD_HI
            _retire(dead)
            if not n_live:
                break
            _maybe_compact()

        L = int(lo.min())
        H = int(hi.max())
        np.subtract(hi, lo, out=width)
        np.add(width, 1, out=width)

        if H + 3 > cap:
            new_cap = max(H + 3, 2 * cap)
            nb, fresh = arena.block("scores", (_N_SCORE_PLANES, R, new_cap), sdt)
            if fresh:
                nb[:7, :, :cap] = blk[:7]
            nb[:7, :, cap:] = NEG
            blk = nb
            bool_blk, _ = arena.block("bools", (4, R, new_cap), np.bool_)
            u8_blk, _ = arena.block("scratch8", (4, R, new_cap), np.uint8)
            cols_all = np.arange(new_cap, dtype=np.int64)
            cap = new_cap
        if H > t_len:
            new_t = max(2 * t_len, H + 64)
            nT, fresh = arena.block("codes_t", (R, new_t), np.uint8)
            if fresh:
                nT[:, :t_len] = Tpad
            nT[:, t_len:] = 0
            for row in np.flatnonzero(live & (m > t_len)).tolist():
                seq = targets[row]
                stop = min(int(seq.shape[0]), new_t)
                nT[row, t_len:stop] = seq[t_len:stop]
            Tpad = nT
            t_len = new_t
        if d >= q_len:
            new_q = max(2 * q_len, d + 64)
            nQ, fresh = arena.block("codes_q", (R, new_q), np.uint8)
            if fresh:
                nQ[:, :q_len] = Qpad
            nQ[:, q_len:] = 0
            for row in np.flatnonzero(live & (n > q_len)).tolist():
                seq = queries[row]
                stop = min(int(seq.shape[0]), new_q)
                nQ[row, q_len:stop] = seq[q_len:stop]
            Qpad = nQ
            q_len = new_q

        S_pp, S_p, S_c = blk[p_spp], blk[p_sp], blk[p_sc]
        I_p, I_c = blk[p_ip], blk[p_ic]
        D_p, D_c = blk[p_dp], blk[p_dc]

        record_tile = tile_tb is not None and d <= 2 * tile
        if ydrop is not None:
            np.subtract(best, ydrop, out=thr)
            lo_next, hi_next = lo_nb, hi_nb
        else:
            lo_next, hi_next = lo, hi
        sweep_steps += 1
        t_step = R if tile_rows is None else tile_rows

        # One sweep per row tile: each tile computes its own union column
        # range [Lt, Ht], so the per-row recurrences, window masks, seals
        # and prunes below are exactly the single-tile computation applied
        # to a row subset — tiling changes locality and masked-lane waste,
        # never values.  With tile_rows=None the loop body runs once with
        # [Lt, Ht] == [L, H]: the classic batched sweep.
        for r0 in range(0, R, t_step):
            r1 = min(r0 + t_step, R)
            lo_t = lo[r0:r1]
            hi_t = hi[r0:r1]
            Lt = int(lo_t.min())
            Ht = int(hi_t.max())
            if Lt > Ht:  # every row in this tile is a tombstone
                continue
            tile_sweeps += 1
            nt = r1 - r0
            Wt = Ht - Lt + 1
            slab_cells += nt * Wt
            sc0 = blk[7, r0:r1, :Wt]
            sc1 = blk[8, r0:r1, :Wt]
            b_in = bool_blk[0, r0:r1, :Wt]
            b_dv = bool_blk[1, r0:r1, :Wt]
            b_a = bool_blk[2, r0:r1, :Wt]
            b_b = bool_blk[3, r0:r1, :Wt]
            s_ch = u8_blk[0, r0:r1, :Wt]
            u8a = u8_blk[1, r0:r1, :Wt]

            # Scrub the recycled buffer's union-window edges (windows move
            # by at most one column per step; interior columns are
            # overwritten below).
            if Lt >= 1:
                S_c[r0:r1, Lt - 1] = I_c[r0:r1, Lt - 1] = D_c[r0:r1, Lt - 1] = NEG
            S_c[r0:r1, Ht + 1] = I_c[r0:r1, Ht + 1] = D_c[r0:r1, Ht + 1] = NEG

            Sp = S_p[r0:r1, Lt : Ht + 1]
            Ip = I_p[r0:r1, Lt : Ht + 1]
            Icur = I_c[r0:r1, Lt : Ht + 1]
            Dcur = D_c[r0:r1, Lt : Ht + 1]
            Scur = S_c[r0:r1, Lt : Ht + 1]

            # --- I(i, j): from diagonal d-1, same index ---------------------
            np.subtract(Ip, e, out=Icur)
            np.subtract(Sp, oe, out=sc0)
            np.maximum(Icur, sc0, out=Icur)
            if Ht == d:  # cell (d, 0) has no insertion parent
                top = np.flatnonzero(hi_t == d)
                if top.shape[0]:
                    Icur[top, hi_t[top] - Lt] = NEG

            # --- D(i, j): from diagonal d-1, index i-1 ----------------------
            if Lt >= 1:
                np.subtract(D_p[r0:r1, Lt - 1 : Ht], e, out=Dcur)
                np.subtract(S_p[r0:r1, Lt - 1 : Ht], oe, out=sc0)
                np.maximum(Dcur, sc0, out=Dcur)
            else:
                Dcur[:, 0] = NEG  # cell (0, d) has no deletion parent
                np.subtract(D_p[r0:r1, 0:Ht], e, out=Dcur[:, 1:])
                np.subtract(S_p[r0:r1, 0:Ht], oe, out=sc0[:, 1:])
                np.maximum(Dcur[:, 1:], sc0[:, 1:], out=Dcur[:, 1:])

            # --- S = max(I, D, diag) ----------------------------------------
            np.maximum(Icur, Dcur, out=Scur)
            if Lt >= 1:
                tg = Tpad[r0:r1, Lt - 1 : Ht]
            else:
                tg = u8_blk[2, r0:r1, :Wt]
                tg[:, 0] = 0
                tg[:, 1:] = Tpad[r0:r1, 0:Ht]
            if Ht == d:
                qg = u8_blk[3, r0:r1, :Wt]
                qg[:, -1] = 0
                if Wt > 1:
                    qg[:, :-1] = Qpad[r0:r1, 0 : d - Lt][:, ::-1]
            else:
                qg = Qpad[r0:r1, d - Ht - 1 : d - Lt][:, ::-1]
            # Substitution lookup: flat 5x5 take via a uint8 index plane.
            np.multiply(tg, 5, out=u8a)
            np.add(u8a, qg, out=u8a)
            np.take(sub_f, u8a, out=sc1, mode="clip")
            if Lt >= 1:
                np.add(sc1, S_pp[r0:r1, Lt - 1 : Ht], out=sc1)
            else:
                np.add(sc1[:, 1:], S_pp[r0:r1, 0:Ht], out=sc1[:, 1:])
            # The matrix-edge cells (i == 0, present iff Lt == 0; i == d,
            # present iff Ht == d) have no diagonal parent: neutralise the
            # candidate at the two union-edge columns (in-window edge cells
            # always have a real I or D parent, so the NEG candidate never
            # wins there).  The max itself must stay gated to each row's
            # window: the diag parent plane was masked by *its own* (wider,
            # pre-prune) window two steps ago, so outside [lo, hi] it can
            # still hold real values that an ungated max would resurrect
            # past the y-drop threshold.
            if Lt == 0:
                sc1[:, 0] = NEG
            if Ht == d:
                sc1[:, -1] = NEG
            cols = cols_all[Lt : Ht + 1]
            np.greater_equal(cols, lo_t[:, None], out=b_in)
            np.less_equal(cols, hi_t[:, None], out=b_b)
            np.logical_and(b_in, b_b, out=b_in)
            np.maximum(Scur, sc1, out=Scur, where=b_in)

            # --- traceback recording ----------------------------------------
            if full_tbs is not None or record_tile:
                # b_in still holds the in-window mask from the S max above;
                # diag_valid differs from it only at the matrix edges.
                np.copyto(b_dv, b_in)
                if Lt == 0:
                    b_dv[:, 0] = False
                if Ht == d:
                    b_dv[:, -1] = False
                np.copyto(s_ch, np.uint8(S_FROM_D))
                np.equal(Scur, Icur, out=b_a)
                np.copyto(s_ch, np.uint8(S_FROM_I), where=b_a)
                np.equal(Scur, sc1, out=b_a)
                np.logical_and(b_a, b_dv, out=b_a)
                np.copyto(s_ch, np.uint8(S_DIAG), where=b_a)
                np.subtract(Ip, e, out=sc0)
                np.subtract(Sp, oe, out=sc1)
                np.greater(sc0, sc1, out=b_a)  # i_from_i
                if Lt >= 1:
                    np.subtract(D_p[r0:r1, Lt - 1 : Ht], e, out=sc0)
                    np.subtract(S_p[r0:r1, Lt - 1 : Ht], oe, out=sc1)
                    np.greater(sc0, sc1, out=b_b)  # d_from_d
                else:
                    b_b[:, 0] = False
                    np.subtract(D_p[r0:r1, 0:Ht], e, out=sc0[:, 1:])
                    np.subtract(S_p[r0:r1, 0:Ht], oe, out=sc1[:, 1:])
                    np.greater(sc0[:, 1:], sc1[:, 1:], out=b_b[:, 1:])
                # Pack parent bits into s_ch; bits are disjoint so add == OR.
                np.add(s_ch, np.uint8(4), out=s_ch, where=b_a)
                np.add(s_ch, np.uint8(8), out=s_ch, where=b_b)
                if full_tbs is not None:
                    off = (lo_t - Lt).tolist()
                    w_l = width[r0:r1].tolist()
                    lo_l = lo_t.tolist()
                    for row in np.flatnonzero(live[r0:r1]).tolist():
                        start = off[row]
                        full_tbs[r0 + row].append_diag(
                            lo_l[row], s_ch[row, start : start + w_l[row]].copy()
                        )
                else:
                    t_lo = max(Lt, d - tile)
                    t_hi = min(Ht, tile)
                    if t_lo <= t_hi:
                        rr, pp = np.nonzero(b_in[:, t_lo - Lt : t_hi - Lt + 1])
                        if rr.shape[0]:
                            ii = pp + t_lo
                            tile_tb[rr + r0, ii, d - ii] = s_ch[rr, pp + (t_lo - Lt)]

            # --- prune window edges against completed-diagonal best ---------
            # The alive test is gated to each row's window (b_in), so stale
            # plane values and out-of-window garbage never keep a row alive.
            if ydrop is not None:
                np.greater_equal(Scur, thr[r0:r1, None], out=b_a)
                np.logical_and(b_a, b_in, out=b_a)
                first = b_a.argmax(axis=1)
                alive_t = b_a[rows_all[:nt], first]
                last = Wt - 1 - b_a[:, ::-1].argmax(axis=1)
                has_alive[r0:r1] = alive_t
                np.add(first, Lt, out=lo_next[r0:r1])
                np.add(last, Lt, out=hi_next[r0:r1])
                seal_rows = np.flatnonzero(alive_t) + r0
            else:
                seal_rows = np.flatnonzero(live[r0:r1]) + r0
            # Seal each surviving row's window in the planes.  Later steps
            # read outside [lo_next, hi_next] only at the two boundary
            # columns (the window can move by at most one column per step),
            # so pin exactly those cells to NEG_INF — mirroring the scalar
            # engine's scrubbed buffer edges — instead of masking the whole
            # slab.  S is read both as gap and diagonal parent on either
            # side; I is read one column past the top edge, D one past the
            # bottom.  Everything further out is never read again: stale
            # pruned-away values decay in place and stay strictly below
            # ``best``, so they can't disturb the alive test (window-gated)
            # or the best-cell argmax (a new optimum strictly exceeds every
            # stale or pruned cell).
            if seal_rows.shape[0]:
                hcol = hi_next[seal_rows] + 1
                S_c[seal_rows, hcol] = NEG
                I_c[seal_rows, hcol] = NEG
                lcol = lo_next[seal_rows] - 1
                inb = lcol >= 0
                if not inb.all():
                    lrows, lcol = seal_rows[inb], lcol[inb]
                else:
                    lrows = seal_rows
                S_c[lrows, lcol] = NEG
                D_c[lrows, lcol] = NEG

            # --- best-cell tracking (ties: smallest i+j, then smallest i) ---
            d_best_t = d_best[r0:r1]
            np.maximum.reduce(Scur, axis=1, out=d_best_t)
            imp_t = improved[r0:r1]
            np.greater(d_best_t, best[r0:r1], out=imp_t)
            if ydrop is not None:
                np.logical_and(imp_t, has_alive[r0:r1], out=imp_t)
            else:
                np.logical_and(imp_t, live[r0:r1], out=imp_t)
            if imp_t.any():
                w_idx = Scur.argmax(axis=1)
                np.copyto(best[r0:r1], d_best_t, where=imp_t)
                np.copyto(best_i[r0:r1], w_idx + Lt, where=imp_t)
                np.copyto(best_j[r0:r1], d - best_i[r0:r1], where=imp_t)

        # Retired rows are never read after finalize, so the per-row stats
        # run ungated (tombstones accumulate garbage that compaction drops).
        np.add(diagonals, 1, out=diagonals)
        np.add(cells, width, out=cells)
        np.add(width, WARP_WIDTH - 1, out=strips)
        np.floor_divide(strips, WARP_WIDTH, out=strips)
        np.add(warp_steps, strips, out=warp_steps)
        np.maximum(max_width, width, out=max_width)

        p_spp, p_sp, p_sc = p_sp, p_sc, p_spp
        p_ip, p_ic = p_ic, p_ip
        p_dp, p_dc = p_dc, p_dp
        np.copyto(lo_prev, lo_next, where=live)
        np.copyto(hi_prev, hi_next, where=live)

        # --- retire tasks whose whole window fell below threshold -----------
        if ydrop is not None:
            dying = live & ~has_alive
            if dying.any():
                _retire(np.flatnonzero(dying))
                if not n_live:
                    break
                _maybe_compact()

    if slab_cells:
        obs.histogram(
            "repro_batch_occupancy",
            "Live cells / union-window slab cells per lockstep sweep.",
            buckets=_OCC_BUCKETS,
        ).observe(live_cells / slab_cells)
    # Sweep accounting: steps is the anti-diagonal loop count, tiles the
    # row-tile vector sweeps executed inside them; slab vs live cells is
    # the masked-lane (dead-work) ledger the executor turns into per-bin
    # occupancy and ``repro trace`` prints as a masked fraction.
    obs.counter(
        "repro_batch_sweep_steps_total",
        "Anti-diagonal lockstep sweep steps advanced.",
    ).inc(sweep_steps)
    obs.counter(
        "repro_batch_sweep_tiles_total",
        "Row-tile vector sweeps executed within lockstep steps.",
    ).inc(tile_sweeps)
    obs.counter(
        "repro_batch_sweep_slab_cells_total",
        "Union-window slab cells swept (live work plus masked dead lanes).",
    ).inc(slab_cells)
    obs.counter(
        "repro_batch_sweep_live_cells_total",
        "In-window live cells among swept slab cells.",
    ).inc(live_cells)
