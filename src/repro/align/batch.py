"""Batched struct-of-arrays wavefront engine: inter-task lockstep parallelism.

:func:`repro.align.wavefront.wavefront_extend` advances ONE extension's
anti-diagonals at a time; running it over a whole anchor set from Python is
the CPU analogue of launching one GPU kernel per seed — exactly the
per-problem regime the paper's inter-task parallelism exists to kill
(§3.1, §3.3).  This module is the batch analogue of the paper's kernels: N
extension tasks are packed into struct-of-arrays state and every iteration
advances the *next anti-diagonal of every live task* with one set of masked
2-D numpy operations, the way one bulk-synchronous kernel launch advances
every alignment in a bin by one wavefront step.

Layout
------
All per-task score state is stacked row-wise:

* cyclic three-diagonal buffers ``S/I/D`` become ``(N, cap)`` slabs indexed
  by the absolute row coordinate ``i`` (same bijection as the scalar
  engine's buffers), rotated by reference swap each step;
* per-task active windows live in ``lo``/``hi`` vectors; each step computes
  only the union column range ``[min(lo), max(hi)]`` and masks each row to
  its own window — the tighter the batch's length distribution, the less
  masked-out waste, which is the measurable CPU analogue of §3.3's
  length-binned load balance;
* sequence codes are staged into padded ``(N, L)`` slabs grown on demand,
  so the diagonal-parent substitution lookup is two contiguous slices plus
  one fancy-index into the 5x5 matrix — no per-task gathers;
* finished tasks are retired (their :class:`WavefrontResult` is emitted)
  and the batch is compacted so dead rows stop consuming bandwidth.

The engine reproduces the scalar engine *bit-identically*: same scores,
same optimal cells (same tie-breaks — the masked out-of-window cells are
held at exactly ``NEG_INF``, matching the scalar buffers' scrubbed edges),
same eager-tile hits and packed traceback bytes, and the same
:class:`WavefrontStats` accounting.  ``tests/align/test_batch.py`` holds
the property-style equivalence suite.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..scoring import NEG_INF, ScoringScheme
from .traceback import S_DIAG, S_FROM_D, S_FROM_I, S_ORIGIN, walk_traceback
from .wavefront import WARP_WIDTH, DiagTraceback, WavefrontResult, WavefrontStats

__all__ = ["batch_wavefront_extend"]

_NEG = np.int64(NEG_INF)


def _grow_slab(slab: np.ndarray, cap: int) -> np.ndarray:
    out = np.full((slab.shape[0], cap), _NEG, dtype=np.int64)
    out[:, : slab.shape[1]] = slab
    return out


def _grow_codes(slab: np.ndarray, seqs: list[np.ndarray], length: int) -> np.ndarray:
    """Extend the padded code slab to ``length`` columns, zero-padded."""
    out = np.zeros((slab.shape[0], length), dtype=np.uint8)
    have = slab.shape[1]
    out[:, :have] = slab
    for row, seq in enumerate(seqs):
        stop = min(int(seq.shape[0]), length)
        if stop > have:
            out[row, have:stop] = seq[have:stop]
    return out


def batch_wavefront_extend(
    pairs: list[tuple[np.ndarray, np.ndarray]],
    scheme: ScoringScheme,
    *,
    eager_tile: int = 0,
    traceback: bool = False,
    prune: bool = True,
    batch_size: int | None = None,
) -> list[WavefrontResult]:
    """Extend N ``(target, query)`` suffix pairs in lockstep.

    Drop-in batch equivalent of calling
    :func:`~repro.align.wavefront.wavefront_extend` once per pair with the
    same keyword arguments; results come back in input order and are
    bit-identical to the per-task calls.

    ``batch_size`` caps how many tasks share one lockstep slab (bounding
    slab memory); ``None`` runs everything as a single batch.
    """
    results: list[WavefrontResult | None] = [None] * len(pairs)
    if not pairs:
        return []
    if batch_size is not None and batch_size <= 0:
        raise ValueError("batch_size must be positive")
    step = int(batch_size) if batch_size else len(pairs)
    for start in range(0, len(pairs), step):
        _extend_lockstep(
            pairs[start : start + step],
            scheme,
            eager_tile,
            traceback,
            prune,
            results,
            start,
        )
    return results  # type: ignore[return-value]


def _extend_lockstep(
    pairs: list[tuple[np.ndarray, np.ndarray]],
    scheme: ScoringScheme,
    eager_tile: int,
    traceback: bool,
    prune: bool,
    results: list,
    base_index: int,
) -> None:
    targets = [np.asarray(t, dtype=np.uint8) for t, _ in pairs]
    queries = [np.asarray(q, dtype=np.uint8) for _, q in pairs]
    rows = len(pairs)
    obs.counter(
        "repro_batch_lockstep_batches_total",
        "Struct-of-arrays lockstep batches advanced.",
    ).inc()
    obs.counter(
        "repro_batch_tasks_total", "Extension tasks packed into lockstep batches."
    ).inc(rows)

    oe = int(scheme.gap_open + scheme.gap_extend)
    e = int(scheme.gap_extend)
    ydrop = int(scheme.ydrop) if prune else None
    sub = scheme.substitution
    tile = int(eager_tile) if not traceback else 0

    idx = np.arange(rows, dtype=np.int64)
    m = np.fromiter((t.shape[0] for t in targets), dtype=np.int64, count=rows)
    n = np.fromiter((q.shape[0] for q in queries), dtype=np.int64, count=rows)

    cap = 128
    S_pp = np.full((rows, cap), _NEG, dtype=np.int64)
    S_p = np.full((rows, cap), _NEG, dtype=np.int64)
    S_c = np.full((rows, cap), _NEG, dtype=np.int64)
    I_p = np.full((rows, cap), _NEG, dtype=np.int64)
    I_c = np.full((rows, cap), _NEG, dtype=np.int64)
    D_p = np.full((rows, cap), _NEG, dtype=np.int64)
    D_c = np.full((rows, cap), _NEG, dtype=np.int64)
    S_p[:, 0] = 0  # diagonal 0: the origin

    t_len = q_len = 64
    Tpad = _grow_codes(np.zeros((rows, 0), dtype=np.uint8), targets, t_len)
    Qpad = _grow_codes(np.zeros((rows, 0), dtype=np.uint8), queries, q_len)

    lo_prev = np.zeros(rows, dtype=np.int64)
    hi_prev = np.zeros(rows, dtype=np.int64)
    best = np.zeros(rows, dtype=np.int64)
    best_i = np.zeros(rows, dtype=np.int64)
    best_j = np.zeros(rows, dtype=np.int64)

    diagonals = np.ones(rows, dtype=np.int64)
    cells = np.ones(rows, dtype=np.int64)
    warp_steps = np.ones(rows, dtype=np.int64)
    boundary_cells = np.zeros(rows, dtype=np.int64)
    max_width = np.ones(rows, dtype=np.int64)

    tile_tb: np.ndarray | None = None
    if tile > 0:
        tile_tb = np.zeros((rows, tile + 1, tile + 1), dtype=np.uint8)
        tile_tb[:, 0, 0] = S_ORIGIN
    full_tbs: list[DiagTraceback] | None = None
    if traceback:
        full_tbs = []
        for row in range(rows):
            tb = DiagTraceback((int(m[row]) + 1, int(n[row]) + 1))
            tb.append_diag(0, np.array([S_ORIGIN], dtype=np.uint8))
            full_tbs.append(tb)

    def finalize(row: int) -> None:
        stats = WavefrontStats(
            diagonals=int(diagonals[row]),
            cells=int(cells[row]),
            warp_steps=int(warp_steps[row]),
            boundary_cells=int(boundary_cells[row]),
            max_width=int(max_width[row]),
        )
        bi, bj = int(best_i[row]), int(best_j[row])
        ops = None
        eager_hit = False
        if full_tbs is not None:
            ops = walk_traceback(full_tbs[row], bi, bj)
        elif tile_tb is not None and bi <= tile and bj <= tile:
            ops = walk_traceback(tile_tb[row], bi, bj)
            eager_hit = True
        results[base_index + int(idx[row])] = WavefrontResult(
            score=int(best[row]),
            end_i=bi,
            end_j=bj,
            stats=stats,
            ops=ops,
            eager_hit=eager_hit,
        )

    d = 0
    while rows:
        d += 1
        lo = np.maximum(np.maximum(lo_prev, d - n), 0)
        hi = np.minimum(np.minimum(hi_prev + 1, d), m)

        # --- retire tasks whose window closed (the scalar break) ------------
        closed = lo > hi
        if closed.any():
            for row in np.flatnonzero(closed):
                finalize(int(row))
            keep = np.flatnonzero(~closed)
            rows = keep.shape[0]
            if rows == 0:
                break
            idx, m, n = idx[keep], m[keep], n[keep]
            lo, hi, lo_prev, hi_prev = lo[keep], hi[keep], lo_prev[keep], hi_prev[keep]
            best, best_i, best_j = best[keep], best_i[keep], best_j[keep]
            diagonals, cells = diagonals[keep], cells[keep]
            warp_steps, boundary_cells = warp_steps[keep], boundary_cells[keep]
            max_width = max_width[keep]
            S_pp, S_p, S_c = S_pp[keep], S_p[keep], S_c[keep]
            I_p, I_c, D_p, D_c = I_p[keep], I_c[keep], D_p[keep], D_c[keep]
            Tpad, Qpad = Tpad[keep], Qpad[keep]
            targets = [targets[i] for i in keep]
            queries = [queries[i] for i in keep]
            if tile_tb is not None:
                tile_tb = tile_tb[keep]
            if full_tbs is not None:
                full_tbs = [full_tbs[i] for i in keep]

        L = int(lo.min())
        H = int(hi.max())
        width = hi - lo + 1

        if H + 3 > cap:
            cap = max(H + 3, 2 * cap)
            S_pp, S_p, S_c = _grow_slab(S_pp, cap), _grow_slab(S_p, cap), _grow_slab(S_c, cap)
            I_p, I_c = _grow_slab(I_p, cap), _grow_slab(I_c, cap)
            D_p, D_c = _grow_slab(D_p, cap), _grow_slab(D_c, cap)
        if H > t_len:
            t_len = max(2 * t_len, H + 64)
            Tpad = _grow_codes(Tpad, targets, t_len)
        if d >= q_len:
            q_len = max(2 * q_len, d + 64)
            Qpad = _grow_codes(Qpad, queries, q_len)

        cols = np.arange(L, H + 1, dtype=np.int64)
        in_win = (cols >= lo[:, None]) & (cols <= hi[:, None])
        W = H - L + 1

        # Scrub the recycled buffer's union-window edges (windows move by at
        # most one column per step; interior columns are overwritten below).
        if L >= 1:
            S_c[:, L - 1] = I_c[:, L - 1] = D_c[:, L - 1] = _NEG
        S_c[:, H + 1] = I_c[:, H + 1] = D_c[:, H + 1] = _NEG

        Sp = S_p[:, L : H + 1]
        Ip = I_p[:, L : H + 1]

        # --- I(i, j): from diagonal d-1, same index -------------------------
        Icur = np.maximum(Ip - e, Sp - oe)
        top = hi == d  # cell (d, 0) has no insertion parent
        if top.any():
            tr = np.flatnonzero(top)
            Icur[tr, hi[tr] - L] = _NEG

        # --- D(i, j): from diagonal d-1, index i-1 --------------------------
        if L >= 1:
            Dcur = np.maximum(D_p[:, L - 1 : H] - e, S_p[:, L - 1 : H] - oe)
        else:
            Dcur = np.empty_like(Icur)
            Dcur[:, 0] = _NEG  # cell (0, d) has no deletion parent
            np.maximum(D_p[:, 0:H] - e, S_p[:, 0:H] - oe, out=Dcur[:, 1:])

        # --- S = max(I, D, diag) --------------------------------------------
        Scur = np.maximum(Icur, Dcur)
        diag_valid = in_win & (cols >= 1) & (cols <= d - 1)
        if L >= 1:
            spp = S_pp[:, L - 1 : H]
            tg = Tpad[:, L - 1 : H]
        else:
            spp = np.empty_like(Scur)
            spp[:, 0] = _NEG
            spp[:, 1:] = S_pp[:, 0:H]
            tg = np.zeros((rows, W), dtype=np.uint8)
            tg[:, 1:] = Tpad[:, 0:H]
        if H == d:
            qg = np.zeros((rows, W), dtype=np.uint8)
            if W > 1:
                qg[:, :-1] = Qpad[:, d - H : d - L][:, ::-1]
        else:
            qg = Qpad[:, d - H - 1 : d - L][:, ::-1]
        diag_cand = spp + sub[tg, qg]
        Scur = np.where(diag_valid, np.maximum(Scur, diag_cand), Scur)

        # --- traceback recording --------------------------------------------
        record_tile = tile_tb is not None and d <= 2 * tile
        if full_tbs is not None or record_tile:
            i_from_i = (Ip - e) > (Sp - oe)
            if L >= 1:
                d_from_d = (D_p[:, L - 1 : H] - e) > (S_p[:, L - 1 : H] - oe)
            else:
                d_from_d = np.zeros((rows, W), dtype=bool)
                d_from_d[:, 1:] = (D_p[:, 0:H] - e) > (S_p[:, 0:H] - oe)
            s_choice = np.full((rows, W), S_FROM_D, dtype=np.uint8)
            s_choice[Scur == Icur] = S_FROM_I
            s_choice[diag_valid & (Scur == diag_cand)] = S_DIAG
            packed = s_choice | (i_from_i.astype(np.uint8) << 2)
            packed |= d_from_d.astype(np.uint8) << 3
            if full_tbs is not None:
                off = (lo - L).tolist()
                w_list = width.tolist()
                for row, tb in enumerate(full_tbs):
                    start = off[row]
                    tb.append_diag(
                        int(lo[row]), packed[row, start : start + w_list[row]].copy()
                    )
            else:
                t_mask = in_win & (cols[None, :] <= tile) & (cols[None, :] >= d - tile)
                rr, pp = np.nonzero(t_mask)
                if rr.shape[0]:
                    ii = pp + L
                    tile_tb[rr, ii, d - ii] = packed[rr, pp]

        # Hold masked-out cells at exactly NEG_INF: the batch-slab invariant
        # that mirrors the scalar engine's scrubbed buffer edges.
        Icur = np.where(in_win, Icur, _NEG)
        Dcur = np.where(in_win, Dcur, _NEG)
        Scur = np.where(in_win, Scur, _NEG)

        # --- prune window edges against completed-diagonal best -------------
        if ydrop is not None:
            alive = in_win & (Scur >= (best - ydrop)[:, None])
            has_alive = alive.any(axis=1)
            first = alive.argmax(axis=1)
            last = W - 1 - alive[:, ::-1].argmax(axis=1)
            lo_next = L + first
            hi_next = L + last
            if has_alive.any():
                keep_cells = (cols >= lo_next[:, None]) & (cols <= hi_next[:, None])
                Icur = np.where(keep_cells, Icur, _NEG)
                Dcur = np.where(keep_cells, Dcur, _NEG)
                Scur = np.where(keep_cells, Scur, _NEG)
        else:
            has_alive = np.ones(rows, dtype=bool)
            lo_next, hi_next = lo, hi

        S_c[:, L : H + 1] = Scur
        I_c[:, L : H + 1] = Icur
        D_c[:, L : H + 1] = Dcur

        # --- best-cell tracking (ties: smallest i+j, then smallest i) -------
        w_idx = Scur.argmax(axis=1)
        d_best = np.take_along_axis(Scur, w_idx[:, None], axis=1)[:, 0]
        improved = has_alive & (d_best > best)
        if improved.any():
            best = np.where(improved, d_best, best)
            best_i = np.where(improved, L + w_idx, best_i)
            best_j = np.where(improved, d - best_i, best_j)

        diagonals += 1
        cells += width
        strips = -(-width // WARP_WIDTH)
        warp_steps += strips
        boundary_cells += strips - 1
        np.maximum(max_width, width, out=max_width)

        S_pp, S_p, S_c = S_p, S_c, S_pp
        I_p, I_c = I_c, I_p
        D_p, D_c = D_c, D_p
        lo_prev, hi_prev = lo_next, hi_next

        # --- retire tasks whose whole window fell below threshold -----------
        if not has_alive.all():
            for row in np.flatnonzero(~has_alive):
                finalize(int(row))
            keep = np.flatnonzero(has_alive)
            rows = keep.shape[0]
            if rows == 0:
                break
            idx, m, n = idx[keep], m[keep], n[keep]
            lo_prev, hi_prev = lo_prev[keep], hi_prev[keep]
            best, best_i, best_j = best[keep], best_i[keep], best_j[keep]
            diagonals, cells = diagonals[keep], cells[keep]
            warp_steps, boundary_cells = warp_steps[keep], boundary_cells[keep]
            max_width = max_width[keep]
            S_pp, S_p, S_c = S_pp[keep], S_p[keep], S_c[keep]
            I_p, I_c, D_p, D_c = I_p[keep], I_c[keep], D_p[keep], D_c[keep]
            Tpad, Qpad = Tpad[keep], Qpad[keep]
            targets = [targets[i] for i in keep]
            queries = [queries[i] for i in keep]
            if tile_tb is not None:
                tile_tb = tile_tb[keep]
            if full_tbs is not None:
                full_tbs = [full_tbs[i] for i in keep]
