"""Alignment engines: Gotoh reference, y-drop row engine, FastZ wavefront."""

from .alignment import Alignment, merge_ops
from .arena import LockstepArena, release_thread_arenas, thread_arena
from .banded import banded_extend
from .batch import batch_wavefront_extend, wholebin_wavefront_extend
from .diagonal import (
    DiagonalLayout,
    diagonal_span,
    from_diagonal,
    skew_matrix,
    to_diagonal,
    unskew_matrix,
)
from .engines import (
    ExtensionEngine,
    get_engine,
    register_engine,
    registered_engines,
    unregister_engine,
)
from .extend import AnchorExtension, combine_alignment, extend_anchor
from .gotoh import GotohResult, gotoh_extend, gotoh_matrices
from .traceback import pack, walk_traceback
from .ungapped import UngappedHSP, ungapped_extend, ungapped_extend_one_sided
from .wavefront import (
    WARP_WIDTH,
    DiagTraceback,
    WavefrontResult,
    WavefrontStats,
    wavefront_extend,
)
from .ydrop import (
    ExtensionResult,
    ExtensionStats,
    WindowedTraceback,
    diag_width_profile,
    ydrop_extend,
)

__all__ = [
    "Alignment",
    "banded_extend",
    "batch_wavefront_extend",
    "AnchorExtension",
    "combine_alignment",
    "extend_anchor",
    "DiagTraceback",
    "DiagonalLayout",
    "ExtensionEngine",
    "ExtensionResult",
    "ExtensionStats",
    "GotohResult",
    "LockstepArena",
    "UngappedHSP",
    "WARP_WIDTH",
    "WavefrontResult",
    "WavefrontStats",
    "WindowedTraceback",
    "diag_width_profile",
    "diagonal_span",
    "from_diagonal",
    "get_engine",
    "gotoh_extend",
    "gotoh_matrices",
    "merge_ops",
    "pack",
    "register_engine",
    "registered_engines",
    "release_thread_arenas",
    "skew_matrix",
    "thread_arena",
    "to_diagonal",
    "ungapped_extend",
    "ungapped_extend_one_sided",
    "unregister_engine",
    "unskew_matrix",
    "walk_traceback",
    "wavefront_extend",
    "wholebin_wavefront_extend",
    "ydrop_extend",
]
