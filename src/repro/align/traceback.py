"""Byte-packed traceback state and the traceback walk.

The paper (§3.1.3) packs the per-cell traceback of all three DP matrices
into a single byte: the ``S`` recurrence selects among 3 choices (2 bits),
and the ``I``/``D`` recurrences among 2 each (1 bit each).  We use:

=========  ====  =========================================================
bits       mask  meaning
=========  ====  =========================================================
0-1        0x03  S choice: 0 = diagonal (match column), 1 = I, 2 = D,
                 3 = origin (stop; only ever set at cell (0, 0))
2          0x04  I came from I (gap extension) rather than from S (open)
3          0x08  D came from D rather than from S
=========  ====  =========================================================

The walk is a three-state machine (S, I, D) exactly mirroring the affine
recurrences: in state I the walker consumes a query base per step and stays
in I while bit 2 is set; symmetrically for D.
"""

from __future__ import annotations

import numpy as np

from .alignment import merge_ops

__all__ = [
    "S_DIAG",
    "S_FROM_I",
    "S_FROM_D",
    "S_ORIGIN",
    "I_EXTEND_BIT",
    "D_EXTEND_BIT",
    "pack",
    "walk_traceback",
]

S_DIAG = 0
S_FROM_I = 1
S_FROM_D = 2
S_ORIGIN = 3
I_EXTEND_BIT = 0x04
D_EXTEND_BIT = 0x08


def pack(s_choice: np.ndarray, i_extend: np.ndarray, d_extend: np.ndarray) -> np.ndarray:
    """Pack per-matrix choices into single bytes (vectorised)."""
    out = np.asarray(s_choice, dtype=np.uint8) & 0x03
    out = out | (np.asarray(i_extend, dtype=bool).astype(np.uint8) << 2)
    out = out | (np.asarray(d_extend, dtype=bool).astype(np.uint8) << 3)
    return out


def walk_traceback(
    tb: np.ndarray,
    end_i: int,
    end_j: int,
) -> tuple[tuple[str, int], ...]:
    """Walk a packed traceback matrix from ``(end_i, end_j)`` back to (0, 0).

    ``tb`` is indexed ``[i, j]`` over the (M+1) x (N+1) DP grid.  Returns the
    edit script in forward order (ops as produced left-to-right along the
    alignment).  Raises ``ValueError`` if the walk escapes the matrix, which
    indicates a corrupted traceback (the executor treats that as fatal).
    """
    if len(tb.shape) != 2:
        raise ValueError("traceback matrix must be 2-D")
    if not (0 <= end_i < tb.shape[0] and 0 <= end_j < tb.shape[1]):
        raise ValueError("traceback end cell outside matrix")

    ops_rev: list[tuple[str, int]] = []
    i, j = end_i, end_j
    state = "S"
    # Upper bound on steps: every step either consumes a base or switches
    # state into a gap (which the next step must consume).
    for _ in range(2 * (end_i + end_j) + 2):
        if state == "S":
            if i == 0 and j == 0:
                break
            choice = int(tb[i, j]) & 0x03
            if choice == S_ORIGIN:
                break
            if choice == S_DIAG:
                if i == 0 or j == 0:
                    raise ValueError(f"diagonal move out of bounds at ({i}, {j})")
                ops_rev.append(("M", 1))
                i -= 1
                j -= 1
            elif choice == S_FROM_I:
                state = "I"
            else:
                state = "D"
        elif state == "I":
            if j == 0:
                raise ValueError(f"insertion move out of bounds at ({i}, {j})")
            ops_rev.append(("I", 1))
            extend = bool(int(tb[i, j]) & I_EXTEND_BIT)
            j -= 1
            if not extend:
                state = "S"
        else:  # state == "D"
            if i == 0:
                raise ValueError(f"deletion move out of bounds at ({i}, {j})")
            ops_rev.append(("D", 1))
            extend = bool(int(tb[i, j]) & D_EXTEND_BIT)
            i -= 1
            if not extend:
                state = "S"
    else:
        raise ValueError("traceback walk did not terminate")

    if (i, j) != (0, 0):
        raise ValueError(f"traceback walk ended at ({i}, {j}), not the origin")
    return merge_ops(list(reversed(ops_rev)))
