"""repro.api — the stable v1 facade over the alignment pipelines.

One front door for every way of running an alignment, so callers (the
CLI, the job runner, tests, downstream scripts) stop reaching into
pipeline internals:

* :func:`align` — one in-process alignment
  (:func:`repro.core.pipeline.run_fastz`).
* :func:`align_window` — extend pre-selected anchors inside a sequence
  window, the unit of work of the whole-genome runner
  (:func:`repro.core.pipeline.run_fastz_chunk`).
* :func:`align_chunked` — a segmented, checkpointed, fault-tolerant
  whole-genome job (:func:`repro.jobs.run_wga`).
* :class:`Client` — a stdlib HTTP client for a running ``repro serve``
  endpoint, speaking the versioned ``/v1`` surface.

Every entry point accepts ``options`` as a :class:`FastzOptions`, a
plain mapping (validated through
:meth:`~repro.core.options.FastzOptions.from_mapping`, so typos are
errors, not silent defaults), or ``None`` for the full pipeline — the
same validation path the HTTP body and the CLI flags go through.
"""

from __future__ import annotations

import http.client
import json
import threading
from collections.abc import Mapping
from pathlib import Path
from typing import TYPE_CHECKING, Callable
from urllib.parse import urlsplit

import numpy as np

from .core.options import FASTZ_FULL, FastzOptions
from .core.pipeline import ChunkResult, FastzResult, run_fastz, run_fastz_chunk
from .genome.sequence import Sequence
from .lastz.config import LastzConfig
from .seeding import Anchors

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .jobs.runner import JobOptions, WgaReport
    from .store import ReferenceStore, StoredReference

__all__ = [
    "ApiError",
    "Client",
    "align",
    "align_chunked",
    "align_window",
    "register_reference",
    "resolve_options",
]


def resolve_options(
    options: FastzOptions | Mapping | None,
) -> FastzOptions:
    """Normalise the ``options`` argument every facade call accepts.

    ``None`` means the full pipeline (:data:`FASTZ_FULL`); a mapping is
    validated field-by-field with unknown keys rejected.
    """
    if options is None:
        return FASTZ_FULL
    if isinstance(options, FastzOptions):
        return options
    return FastzOptions.from_mapping(options)


def _as_alignable(value):
    """Accept a :class:`~repro.store.StoredReference` anywhere a sequence goes.

    A stored reference decodes lazily into a :class:`Sequence`; anything
    else passes through untouched so array/Sequence callers pay nothing.
    """
    from .store.store import StoredReference

    if isinstance(value, StoredReference):
        return value.sequence()
    return value


def register_reference(
    sequence: Sequence | str,
    *,
    store: "ReferenceStore | str | Path",
    name: str | None = None,
) -> "StoredReference":
    """Register a reference in a store once; returns the stored handle.

    Idempotent: registering the same bases (mask included) returns the
    same digest.  ``sequence`` may be raw DNA text — soft-mask lowercase
    is preserved through the sidecar, exactly as ``repro refs add`` does.
    """
    from .genome.alphabet import encode_with_mask
    from .store import ReferenceStore

    if not isinstance(store, ReferenceStore):
        store = ReferenceStore(store)
    if isinstance(sequence, str):
        codes, mask = encode_with_mask(sequence)
    else:
        codes, mask = sequence.codes, None
        if name is None:
            name = sequence.name
    digest = store.add(codes, name=name, mask=mask)
    return store.get(digest)


def align(
    target: "Sequence | np.ndarray | StoredReference",
    query: "Sequence | np.ndarray | StoredReference",
    config: LastzConfig | None = None,
    options: FastzOptions | Mapping | None = None,
    *,
    anchors: Anchors | None = None,
    workers: int | None = None,
    keep_extensions: bool = False,
    streaming: bool = False,
    on_partial: "Callable | None" = None,
    stream_chunk_bp: int | None = None,
) -> FastzResult:
    """Align one (target, query) pair in-process.

    Thin, stable wrapper over :func:`repro.core.pipeline.run_fastz`;
    ``workers`` shards anchors across a multiprocessing pool with
    bit-identical results.  Either side may be a
    :class:`~repro.store.StoredReference` (decoded lazily from the
    store's 2-bit file).

    ``streaming=True`` overlaps seeding with extension
    (:func:`repro.core.streaming.run_fastz_streaming`): same result, and
    ``on_partial`` receives a
    :class:`~repro.core.streaming.StreamPartial` after each extension
    batch.  ``stream_chunk_bp`` tunes the seeding-chunk granularity.
    """
    return run_fastz(
        _as_alignable(target),
        _as_alignable(query),
        config,
        resolve_options(options),
        anchors=anchors,
        workers=workers,
        keep_extensions=keep_extensions,
        streaming=streaming,
        on_partial=on_partial,
        stream_chunk_bp=stream_chunk_bp,
    )


def align_window(
    target: Sequence | np.ndarray,
    query: Sequence | np.ndarray,
    config: LastzConfig | None = None,
    options: FastzOptions | Mapping | None = None,
    *,
    anchors: Anchors,
    t_window: tuple[int, int] | None = None,
    q_window: tuple[int, int] | None = None,
) -> ChunkResult:
    """Extend pre-selected anchors inside target/query windows.

    The unit of work the whole-genome runner ships to its workers —
    seam-guarded, so windowing never changes an alignment.
    """
    return run_fastz_chunk(
        target,
        query,
        config,
        resolve_options(options),
        anchors=anchors,
        t_window=t_window,
        q_window=q_window,
    )


def align_chunked(
    target: "Sequence | StoredReference",
    query: "Sequence | StoredReference",
    config: LastzConfig | None = None,
    options: FastzOptions | Mapping | None = None,
    *,
    job: "JobOptions | None" = None,
    job_dir: str | Path | None = None,
    fresh: bool = False,
    log: Callable[[str], None] | None = None,
    on_alignment: Callable | None = None,
) -> "WgaReport":
    """Run (or resume) a segmented, checkpointed whole-genome job.

    Wraps :func:`repro.jobs.run_wga` (imported lazily — the jobs
    subsystem is heavier than one alignment needs).  ``job_dir`` is the
    durable state directory; when ``None`` a throwaway temporary
    directory is used, which forfeits resumability but keeps one-shot
    calls ergonomic.

    ``on_alignment`` streams finalized alignments as the incremental
    merge's watermark passes them — called mid-run, in ascending anchor
    order, long before the report is assembled (``repro wga --follow``).
    """
    from .jobs import JobOptions, run_wga

    if job is None:
        job = JobOptions()
    kwargs = dict(fresh=fresh, log=log, on_alignment=on_alignment)
    if job_dir is None:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-wga-") as tmp:
            return run_wga(
                target, query, config, resolve_options(options),
                job=job, job_dir=tmp, **kwargs,
            )
    return run_wga(
        target, query, config, resolve_options(options),
        job=job, job_dir=job_dir, **kwargs,
    )


# ---------------------------------------------------------------------------
# HTTP client
# ---------------------------------------------------------------------------


class ApiError(RuntimeError):
    """A ``/v1`` endpoint answered with an error envelope.

    ``status`` is the HTTP status; ``code`` the stable machine-readable
    error code (``bad_request``, ``overloaded``, ...); ``retry_after_s``
    the server's suggested backoff when it sent one.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(f"{status} {code}: {message}")
        self.status = status
        self.code = code
        self.retry_after_s = retry_after_s


def _parse_retry_after(value: str | None) -> float | None:
    """Parse a ``Retry-After`` header into seconds, or ``None``.

    RFC 9110 allows two forms: non-negative delta-seconds and an
    HTTP-date.  Dates are converted to a delay relative to now and
    clamped at zero (a date in the past means "retry immediately", not a
    negative backoff).  Unparseable values yield ``None`` rather than an
    exception — a proxy's malformed header must not mask the real error.
    """
    if value is None:
        return None
    value = value.strip()
    try:
        delta = float(value)
    except ValueError:
        pass
    else:
        return max(0.0, delta)
    from datetime import datetime, timezone
    from email.utils import parsedate_to_datetime

    try:
        when = parsedate_to_datetime(value)
    except (TypeError, ValueError):
        return None
    if when is None:
        return None
    if when.tzinfo is None:
        when = when.replace(tzinfo=timezone.utc)
    return max(0.0, (when - datetime.now(timezone.utc)).total_seconds())


def _as_dna_text(sequence: Sequence | np.ndarray | str) -> str:
    if isinstance(sequence, str):
        return sequence
    from .genome.alphabet import decode

    codes = sequence.codes if isinstance(sequence, Sequence) else sequence
    return decode(np.asarray(codes))


class Client:
    """Minimal stdlib client for a running ``repro serve`` endpoint.

    Speaks the versioned JSON surface (``POST /v1/align``,
    ``GET /v1/stats``, ``GET /v1/metrics``, ``GET /v1/healthz``) and
    turns error envelopes into :class:`ApiError`.

    The client holds **one persistent connection** per server: both
    ``repro serve`` front ends speak HTTP/1.1 keep-alive, so consecutive
    calls reuse the socket instead of paying a TCP handshake each —
    exactly what a submit loop against the service wants.  The
    connection is re-established transparently when the server closed it
    (drain, idle timeout, an error that forced a close); thread safety
    comes from one lock around the request/response exchange.  Streaming
    calls (:meth:`align_stream`) use a dedicated connection so a
    long-lived stream never blocks the client's other calls.

    ``api_key`` (sent as ``X-API-Key``) names the tenant for the fleet
    front door's quota accounting; it is harmless elsewhere.

    >>> client = Client("http://127.0.0.1:8642")
    >>> client.healthz()
    {'status': 'ok'}
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout_s: float = 60.0,
        api_key: str | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.api_key = api_key
        parts = urlsplit(self.base_url)
        if parts.scheme not in ("http", "https"):
            raise ValueError(f"unsupported URL scheme {parts.scheme!r}")
        self._https = parts.scheme == "https"
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or (443 if self._https else 80)
        self._conn: http.client.HTTPConnection | None = None
        self._lock = threading.Lock()

    # -- plumbing ------------------------------------------------------------

    def _new_connection(self) -> http.client.HTTPConnection:
        cls = (
            http.client.HTTPSConnection if self._https else http.client.HTTPConnection
        )
        return cls(self._host, self._port, timeout=self.timeout_s)

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def close(self) -> None:
        """Drop the persistent connection (idempotent)."""
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _headers(self, extra: dict | None = None, *, has_body: bool) -> dict:
        headers: dict = {}
        if has_body:
            headers["Content-Type"] = "application/json"
        if self.api_key is not None:
            headers["X-API-Key"] = self.api_key
        if extra:
            headers.update({k: v for k, v in extra.items() if v is not None})
        return headers

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        extra_headers: dict | None = None,
    ):
        data = None if body is None else json.dumps(body).encode()
        headers = self._headers(extra_headers, has_body=data is not None)
        with self._lock:
            # One retry: a keep-alive socket the server closed between
            # calls fails on write (or with an empty response); that is
            # staleness, not an error, so reconnect once and repeat.
            for attempt in (0, 1):
                was_fresh = self._conn is None
                if self._conn is None:
                    self._conn = self._new_connection()
                try:
                    self._conn.request(method, f"/v1{path}", body=data, headers=headers)
                    resp = self._conn.getresponse()
                    raw = resp.read()
                except TimeoutError:
                    # A timeout is not staleness — the server may have
                    # accepted the request; re-sending could run it twice.
                    self._drop_connection()
                    raise
                except (http.client.HTTPException, ConnectionError, OSError):
                    self._drop_connection()
                    if attempt or was_fresh:
                        raise
                    continue
                if resp.will_close:
                    self._drop_connection()
                break
        if resp.status >= 400:
            try:
                envelope = json.loads(raw)["error"]
                code = str(envelope["code"])
                message = str(envelope["message"])
            except Exception:
                code, message = "internal", raw.decode(errors="replace")
            raise ApiError(
                resp.status,
                code,
                message,
                retry_after_s=_parse_retry_after(resp.getheader("Retry-After")),
            )
        return raw, resp.headers

    def _get_json(self, path: str) -> dict:
        raw, _ = self._request("GET", path)
        return json.loads(raw)

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> dict:
        return self._get_json("/healthz")

    def stats(self) -> dict:
        return self._get_json("/stats")

    def metrics(self) -> str:
        raw, _ = self._request("GET", "/metrics")
        return raw.decode()

    def register_reference(
        self,
        sequence: Sequence | np.ndarray | str,
        *,
        name: str | None = None,
    ) -> dict:
        """POST a reference to ``/v1/references``; returns the envelope.

        The response carries the content digest (``digest``) to pass as
        ``target_ref``/``query_ref`` in later :meth:`align` calls, plus
        ``registered`` (False when the store already had these bytes).
        """
        body: dict = {"sequence": _as_dna_text(sequence)}
        if name is not None:
            body["name"] = name
        raw, _ = self._request("POST", "/references", body)
        return json.loads(raw)

    def references(self) -> dict:
        """GET the server's reference listing (``/v1/references``)."""
        return self._get_json("/references")

    def align(
        self,
        target: Sequence | np.ndarray | str | None = None,
        query: Sequence | np.ndarray | str | None = None,
        *,
        target_ref: str | None = None,
        query_ref: str | None = None,
        options: FastzOptions | Mapping | None = None,
        timeout_s: float | None = None,
        priority: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """POST one alignment; returns the response payload as a dict.

        Each side is either raw sequence (``target``/``query``) or a
        registered reference digest (``target_ref``/``query_ref``) —
        exactly one per side.  ``options`` overrides the server's
        defaults field-by-field; a :class:`FastzOptions` is serialised
        whole, a mapping is sent as-is (the server validates it).

        ``priority`` (``"interactive"`` or ``"batch"``) and
        ``deadline_ms`` map to the fleet front door's ``X-Priority`` /
        ``X-Deadline-Ms`` headers — dispatch class and deadline-aware
        admission; the threaded server ignores them.
        """
        body = self._align_body(
            target, query, target_ref, query_ref, options, timeout_s
        )
        raw, _ = self._request(
            "POST",
            "/align",
            body,
            extra_headers={
                "X-Priority": priority,
                "X-Deadline-Ms": (
                    None if deadline_ms is None else repr(float(deadline_ms))
                ),
            },
        )
        return json.loads(raw)

    def align_stream(
        self,
        target: Sequence | np.ndarray | str | None = None,
        query: Sequence | np.ndarray | str | None = None,
        *,
        target_ref: str | None = None,
        query_ref: str | None = None,
        options: FastzOptions | Mapping | None = None,
        priority: str | None = None,
    ):
        """POST one alignment to ``/v1/align?stream=1``; yields NDJSON records.

        The server runs the streaming pipeline and chunk-encodes one JSON
        record per line as work completes: ``{"type": "partial", ...}``
        after each extension batch, then a terminal ``{"type": "summary",
        ...}`` whose payload is identical to the non-streaming
        :meth:`align` response (streamed and barrier results are
        bit-identical).  A terminal ``{"type": "error", ...}`` record —
        e.g. the server draining mid-stream — raises :class:`ApiError`.

        Streams get their own connection (both servers close it when the
        stream ends), so the client's persistent connection stays free
        for other calls while the stream is being consumed.
        """
        body = self._align_body(
            target, query, target_ref, query_ref, options, None
        )
        conn = self._new_connection()
        try:
            conn.request(
                "POST",
                "/v1/align?stream=1",
                body=json.dumps(body).encode(),
                headers=self._headers({"X-Priority": priority}, has_body=True),
            )
            resp = conn.getresponse()
            if resp.status >= 400:
                raw = resp.read()
                try:
                    envelope = json.loads(raw)["error"]
                    code = str(envelope["code"])
                    message = str(envelope["message"])
                except Exception:
                    code, message = "internal", raw.decode(errors="replace")
                raise ApiError(
                    resp.status,
                    code,
                    message,
                    retry_after_s=_parse_retry_after(resp.getheader("Retry-After")),
                )
            for line in resp:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("type") == "error":
                    envelope = record.get("error", {})
                    raise ApiError(
                        200,
                        str(envelope.get("code", "internal")),
                        str(envelope.get("message", "stream failed")),
                    )
                yield record
        finally:
            conn.close()

    @staticmethod
    def _align_body(
        target,
        query,
        target_ref,
        query_ref,
        options,
        timeout_s,
    ) -> dict:
        body: dict = {}
        for side, value, ref in (
            ("target", target, target_ref),
            ("query", query, query_ref),
        ):
            if (value is None) == (ref is None):
                raise ValueError(
                    f"exactly one of {side!r} or {side}_ref is required"
                )
            if ref is not None:
                body[f"{side}_ref"] = ref
            else:
                body[side] = _as_dna_text(value)
        if options is not None:
            body["options"] = (
                options.to_mapping()
                if isinstance(options, FastzOptions)
                else dict(options)
            )
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return body
