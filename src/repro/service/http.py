"""JSON-over-HTTP front end for the alignment service (stdlib only).

A thin :mod:`http.server` layer so ``repro serve`` needs no third-party
web framework.  The surface is versioned under ``/v1``:

* ``POST /v1/align`` — body ``{"target": "ACGT...", "query": "ACGT...",
  "timeout_s": 5.0?, "options": {...}?}``; responds with the scored
  alignments.  Either side may instead be a registered reference:
  ``{"target_ref": "<digest>"}`` (needs a server configured with a
  reference store) — exactly one of value/ref per side.  ``options``
  overrides the server's default
  :class:`~repro.core.options.FastzOptions` field-by-field and is
  validated with :meth:`~repro.core.options.FastzOptions.from_mapping`
  (unknown keys are a 400, not silently ignored).
* ``POST /v1/align?stream=1`` — same body, streamed response: the
  streaming pipeline runs on the handler thread and the reply is
  chunk-encoded NDJSON, one JSON record per line — ``{"type":
  "partial", ...}`` after each extension batch (threshold-clearing
  alignments included as they are discovered), then a terminal
  ``{"type": "summary", ...}`` identical to the non-streaming payload
  (streamed and barrier results are bit-identical), or ``{"type":
  "error", ...}`` if the run fails after streaming began.
* ``POST /v1/references`` — register a reference: ``{"sequence":
  "ACGTacgt...", "name": "chr1"?}``; idempotent by content digest, the
  response carries ``{"digest", "length", "registered"}``.  Lowercase
  input is recorded as the soft-mask sidecar.
* ``GET /v1/references`` — list registered references.
* ``GET /v1/stats`` — the :class:`~repro.service.stats.ServiceStats`
  snapshot as JSON.
* ``GET /v1/metrics`` — the same counters (plus queue-wait/latency
  histograms) in Prometheus text exposition format.
* ``GET /v1/healthz`` — liveness probe.

Errors use one envelope everywhere: ``{"error": {"code": "...",
"message": "..."}}`` with a stable machine-readable ``code``
(``bad_request``, ``not_found``, ``payload_too_large``, ``overloaded``,
``shutting_down``, ``deadline_exceeded``, ``cancelled``,
``store_corrupt``, ``internal``).  Load-shedding 503s carry a
``Retry-After`` header.  Raw-sequence ``/v1/align`` bodies over the
configurable ``max_align_body`` limit get **413** ``payload_too_large``
*before* the body is read — the message points at ``POST
/v1/references``, the intended path for large sequences.

The original unversioned paths (``/align``, ``/stats``, ``/metrics``,
``/healthz``) answer with a **307** redirect to their ``/v1`` twin plus
a ``Deprecation: true`` header — 307 preserves the method and body, so
old POSTing clients keep working through one extra round trip.

The server is threading (one handler thread per connection), so
concurrent clients naturally pile requests into the service queue and
get micro-batched together.

Shutdown is a *bounded graceful drain*, not an abrupt daemon-thread
kill: :meth:`ServiceHTTPServer.initiate_shutdown` (what ``repro
serve`` wires to SIGTERM/SIGINT) stops the accept loop and flips the
draining flag — new requests get 503 ``shutting_down``, in-flight
streams see it via ``should_abort`` and close with a terminal error
record — then :meth:`~ServiceHTTPServer.server_close` joins handler
threads for ``grace_s`` seconds and force-closes whatever sockets
remain.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
import urllib.parse
from concurrent.futures import CancelledError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core.options import FastzOptions
from ..core.streaming import StreamAborted
from ..genome.alphabet import encode, encode_with_mask
from ..store import StoreCorrupt, UnknownReference, reference_digest
from ..store.twobit import runs_from_mask
from .batcher import DeadlineExceeded
from .service import AlignmentService, ServiceClosed, ServiceOverloaded

__all__ = [
    "API_PREFIX",
    "LEGACY_PATHS",
    "RequestError",
    "ServiceHTTPServer",
    "classify_align_error",
    "make_server",
    "parse_align_request",
    "register_reference_payload",
]

#: Version prefix of the current HTTP surface.
API_PREFIX = "/v1"

#: Pre-versioning paths still honoured via 307 + ``Deprecation: true``.
LEGACY_PATHS = ("/align", "/healthz", "/metrics", "/stats")

#: Default cap on raw-sequence ``/v1/align`` bodies (a chromosome pair in
#: text is fine, an accidental multi-GB POST is not); ``make_server``'s
#: ``max_align_body`` overrides it.  Oversize bodies 413 with a pointer
#: at ``POST /v1/references``.
DEFAULT_MAX_ALIGN_BODY = 64 * 1024 * 1024

#: Registration bodies may legitimately carry whole chromosomes; this is
#: an absolute backstop, not a tuning knob.
_MAX_REGISTER_BODY = 1024 * 1024 * 1024


class RequestError(Exception):
    """A request failed validation; carries the full error-envelope triple.

    Raised by the parsing helpers shared between the threaded handler and
    the asyncio front door (:mod:`repro.fleet.asgi`), so both surfaces
    reject bad input with byte-identical envelopes.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.headers = headers or {}


def parse_align_request(payload: dict, service: AlignmentService) -> dict:
    """Validate a ``/v1/align`` body into submit-ready fields.

    Returns ``{"target_codes", "query_codes", "options", "timeout_s",
    "target_ref", "query_ref"}`` (codes/refs are ``None`` for the unused
    form of each side).  Raises :class:`RequestError` on any violation —
    the single source of truth for the align-body contract, shared by the
    threaded and asyncio servers.
    """
    target = payload.get("target")
    query = payload.get("query")
    target_ref = payload.get("target_ref")
    query_ref = payload.get("query_ref")
    for field, value in (("target_ref", target_ref), ("query_ref", query_ref)):
        if value is not None and not isinstance(value, str):
            raise RequestError(
                400, "bad_request", f"'{field}' must be a digest string"
            )
    if (target is None) == (target_ref is None):
        raise RequestError(
            400,
            "bad_request",
            "give exactly one of 'target' (DNA string) or 'target_ref' (digest)",
        )
    if (query is None) == (query_ref is None):
        raise RequestError(
            400,
            "bad_request",
            "give exactly one of 'query' (DNA string) or 'query_ref' (digest)",
        )
    if target is not None and not isinstance(target, str):
        raise RequestError(400, "bad_request", "'target' must be a DNA string")
    if query is not None and not isinstance(query, str):
        raise RequestError(400, "bad_request", "'query' must be a DNA string")
    timeout_s = payload.get("timeout_s")
    # bool is a subclass of int, so isinstance alone would accept
    # ``"timeout_s": true`` and treat it as a 1-second deadline.
    if timeout_s is not None and (
        isinstance(timeout_s, bool) or not isinstance(timeout_s, (int, float))
    ):
        raise RequestError(400, "bad_request", "'timeout_s' must be a number")

    options = None
    raw_options = payload.get("options")
    if raw_options is not None:
        if not isinstance(raw_options, dict):
            raise RequestError(400, "bad_request", "'options' must be a JSON object")
        try:
            options = FastzOptions.from_mapping(
                {**service.default_options.to_mapping(), **raw_options}
            )
        except (TypeError, ValueError) as exc:
            raise RequestError(400, "bad_request", f"bad 'options': {exc}") from None

    # Validate before dispatch: the encoding LUT maps junk to N, so a
    # malformed body would otherwise be aligned-as-N (or, for other
    # input bugs, surface as a 500 from deep inside the pipeline).
    target_codes = query_codes = None
    if target is not None:
        try:
            target_codes = encode(target, strict=True)
        except ValueError as exc:
            raise RequestError(
                400, "bad_request", f"'target' is not a DNA sequence: {exc}"
            ) from None
    if query is not None:
        try:
            query_codes = encode(query, strict=True)
        except ValueError as exc:
            raise RequestError(
                400, "bad_request", f"'query' is not a DNA sequence: {exc}"
            ) from None
    return {
        "target_codes": target_codes,
        "query_codes": query_codes,
        "options": options,
        "timeout_s": timeout_s,
        "target_ref": target_ref,
        "query_ref": query_ref,
    }


def register_reference_payload(store, payload: dict) -> dict:
    """Validate + apply a ``POST /v1/references`` body; returns the reply.

    Raises :class:`RequestError` on bad input or store write failure.
    Shared by both server front ends, like :func:`parse_align_request`.
    """
    sequence = payload.get("sequence")
    if not isinstance(sequence, str):
        raise RequestError(400, "bad_request", "'sequence' must be a DNA string")
    name = payload.get("name", "reference")
    if not isinstance(name, str) or not name:
        raise RequestError(400, "bad_request", "'name' must be a non-empty string")
    try:
        encode(sequence, strict=True)
    except ValueError as exc:
        raise RequestError(
            400, "bad_request", f"'sequence' is not a DNA sequence: {exc}"
        ) from None
    # Lowercase input is FASTA soft-masking; keep it in the sidecar.
    codes, mask = encode_with_mask(sequence)
    digest = reference_digest(codes, runs_from_mask(mask))
    existed = store.contains(digest)
    try:
        store.add(codes, name=name, mask=mask)
    except OSError as exc:
        raise RequestError(
            500, "internal", f"cannot write store files: {exc}"
        ) from None
    return {
        "digest": digest,
        "name": name,
        "length": len(codes),
        "registered": not existed,
    }


def classify_align_error(exc: BaseException) -> tuple[int, str, str, dict]:
    """(status, code, message, headers) for a failed align submission.

    The one mapping from service-level exceptions to the error envelope,
    applied to both the synchronous submit path and the future's result.
    """
    if isinstance(exc, UnknownReference):
        return 404, "not_found", str(exc), {}
    if isinstance(exc, StoreCorrupt):
        return 500, "store_corrupt", str(exc), {}
    if isinstance(exc, ValueError):
        # e.g. align-by-ref against a server without a store.
        return 400, "bad_request", str(exc), {}
    if isinstance(exc, ServiceOverloaded):
        retry = str(max(1, round(getattr(exc, "retry_after_s", 1.0))))
        return 503, "overloaded", str(exc), {"Retry-After": retry}
    if isinstance(exc, ServiceClosed):
        return 503, "shutting_down", str(exc), {}
    if isinstance(exc, (DeadlineExceeded, TimeoutError)):
        return (
            504,
            "deadline_exceeded",
            str(exc) or "request deadline exceeded",
            {},
        )
    if isinstance(exc, CancelledError):
        return 503, "cancelled", "request cancelled during shutdown", {}
    return 500, "internal", f"{type(exc).__name__}: {exc}", {}


def _alignment_rows(alignments) -> list[dict]:
    return [
        {
            "score": a.score,
            "target_start": a.target_start,
            "target_end": a.target_end,
            "query_start": a.query_start,
            "query_end": a.query_end,
            "cigar": a.cigar(),
        }
        for a in alignments
    ]


def _alignment_payload(result) -> dict:
    return {
        "count": len(result.alignments),
        "anchors": len(result.tasks),
        "eager_fraction": round(result.eager_fraction, 4),
        "alignments": _alignment_rows(result.unique_alignments()),
    }


class ServiceHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`AlignmentService`.

    Handler threads are **not** daemons: a SIGTERM must not tear down a
    thread mid-journal-write or mid-stream.  Instead the server drains —
    :meth:`initiate_shutdown` stops accepting and flags ``draining``,
    and :meth:`server_close` bounds the wait for stragglers to
    ``grace_s`` seconds before force-closing their sockets.
    """

    daemon_threads = False
    # Keep the stdlib's handler-thread tracking (it only happens when
    # block_on_close is set); server_close skips the unbounded stdlib
    # join and does its own bounded drain instead.
    block_on_close = True

    def __init__(
        self,
        address,
        service: AlignmentService,
        *,
        quiet: bool = True,
        max_align_body: int | None = None,
        grace_s: float = 5.0,
    ):
        self.service = service
        self.quiet = quiet
        self.max_align_body = (
            DEFAULT_MAX_ALIGN_BODY if max_align_body is None else int(max_align_body)
        )
        if self.max_align_body < 1:
            raise ValueError("max_align_body must be positive")
        if grace_s < 0:
            raise ValueError("grace_s must be non-negative")
        self.grace_s = float(grace_s)
        self._draining = threading.Event()
        self._conn_lock = threading.Lock()
        self._connections: set = set()
        super().__init__(address, _Handler)

    # -- graceful drain ------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once shutdown began; new requests get 503 ``shutting_down``."""
        return self._draining.is_set()

    def _track_connection(self, conn) -> None:
        with self._conn_lock:
            self._connections.add(conn)

    def _untrack_connection(self, conn) -> None:
        with self._conn_lock:
            self._connections.discard(conn)

    def initiate_shutdown(self) -> None:
        """Begin a graceful drain; safe to call from a signal handler.

        Flips ``draining`` immediately — new requests are answered 503
        ``shutting_down`` (an immediate refusal beats hanging in the
        listen backlog), in-flight streams abort at their next batch
        boundary with a terminal error record — then stops the accept
        loop as soon as in-flight connections clear, or after
        ``grace_s`` at the latest.  Runs on a helper thread:
        ``shutdown()`` called inline on the serve_forever thread
        deadlocks.  Idempotent.
        """
        if self._draining.is_set():
            return
        self._draining.set()
        threading.Thread(
            target=self._drain_then_stop, name="repro-http-drain", daemon=True
        ).start()

    def _drain_then_stop(self) -> None:
        deadline = time.monotonic() + self.grace_s
        while time.monotonic() < deadline:
            with self._conn_lock:
                busy = len(self._connections)
            if busy == 0:
                break
            time.sleep(0.05)
        self.shutdown()

    def server_close(self) -> None:
        """Close the listener, then drain handlers for at most ``grace_s``.

        Handlers that outlive the grace window get their sockets
        shut down, which fails their next read/write and unwinds them;
        a final short join collects them.
        """
        self._draining.set()
        # TCPServer.server_close (not super()): ThreadingMixIn's version
        # joins handler threads without a bound, the opposite of a grace
        # window.
        socketserver.TCPServer.server_close(self)
        deadline = time.monotonic() + self.grace_s
        threads = [
            t
            for t in list(vars(self).get("_threads", None) or ())
            if t.is_alive()
        ]
        for t in threads:
            t.join(max(0.0, deadline - time.monotonic()))
        with self._conn_lock:
            leftovers = list(self._connections)
        for conn in leftovers:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        for t in threads:
            t.join(1.0)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    #: HTTP/1.1 so connections persist across requests: every non-stream
    #: reply carries Content-Length, which is all keep-alive needs, and
    #: the :class:`~repro.api.Client` reuses one connection per server.
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def setup(self) -> None:  # noqa: D102 - stdlib hook
        super().setup()
        self.server._track_connection(self.connection)

    def finish(self) -> None:  # noqa: D102 - stdlib hook
        try:
            super().finish()
        finally:
            self.server._untrack_connection(self.connection)

    def log_message(self, fmt, *args):  # noqa: D102 - stdlib hook
        if not self.server.quiet:
            super().log_message(fmt, *args)

    def _split_path(self) -> tuple[str, dict[str, list[str]]]:
        """Request path split into (path, query mapping)."""
        parts = urllib.parse.urlsplit(self.path)
        return parts.path, urllib.parse.parse_qs(parts.query)

    def _reply(self, status: int, payload: dict) -> None:
        self._reply_raw(status, json.dumps(payload).encode(), "application/json")

    def _reply_raw(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self,
        status: int,
        code: str,
        message: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps({"error": {"code": code, "message": message}}).encode()
        self._reply_raw(status, body, "application/json", headers)

    def _redirect_legacy(self, path: str) -> bool:
        """307 a pre-versioning path to its ``/v1`` twin (True if sent)."""
        if path not in LEGACY_PATHS:
            return False
        self.send_response(307)
        self.send_header("Location", API_PREFIX + self.path)
        self.send_header("Deprecation", "true")
        self.send_header("Content-Length", "0")
        self.end_headers()
        return True

    # -- routes --------------------------------------------------------------

    def do_HEAD(self) -> None:  # noqa: N802 - stdlib naming
        # ``curl -I`` is the natural probe for the Deprecation/Location
        # headers on legacy paths; answer it instead of a stdlib 501.
        path, _ = self._split_path()
        if self._redirect_legacy(path):
            return
        known = {API_PREFIX + p for p in ("/healthz", "/stats", "/metrics")}
        status = 200 if path in known else 404
        self.send_response(status)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path, _ = self._split_path()
        if self._redirect_legacy(path):
            return
        if path == API_PREFIX + "/healthz":
            status = "draining" if self.server.draining else "ok"
            self._reply(200, {"status": status})
        elif path == API_PREFIX + "/stats":
            self._reply(200, self.server.service.stats().as_dict())
        elif path == API_PREFIX + "/metrics":
            self._reply_raw(
                200,
                self.server.service.metrics_text().encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == API_PREFIX + "/references":
            store = self.server.service.store
            if store is None:
                self._error(
                    400,
                    "bad_request",
                    "this server has no reference store (serve --store)",
                )
                return
            self._reply(200, {"references": store.list()})
        else:
            self._error(404, "not_found", f"unknown path {path!r}")

    # -- POST bodies ---------------------------------------------------------

    def _read_json(self, limit: int, over_limit_message: str) -> dict | None:
        """Read + parse a JSON object body; replies and returns None on error.

        The size check runs on ``Content-Length`` *before* any body bytes
        are read, so an oversize upload is refused without buffering it.
        """
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            # Refusals that skip the body must also drop the connection:
            # on a keep-alive socket the unread bytes would otherwise be
            # parsed as the next request line.
            self.close_connection = True
            self._error(400, "bad_request", "bad Content-Length")
            return None
        if length <= 0:
            self.close_connection = True
            self._error(400, "bad_request", "body must not be empty")
            return None
        if length > limit:
            self.close_connection = True
            self._error(
                413,
                "payload_too_large",
                f"body is {length} bytes (limit {limit}); "
                + over_limit_message,
            )
            return None
        try:
            payload = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._error(400, "bad_request", "body is not valid JSON")
            return None
        if not isinstance(payload, dict):
            self._error(400, "bad_request", "body must be a JSON object")
            return None
        return payload

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path, query = self._split_path()
        if self._redirect_legacy(path):
            return
        if self.server.draining:
            self._error(
                503, "shutting_down", "server is draining; no new requests"
            )
            return
        if path == API_PREFIX + "/align":
            stream = query.get("stream", ["0"])[-1] not in ("", "0", "false")
            self._post_align(stream=stream)
        elif path == API_PREFIX + "/references":
            self._post_references()
        else:
            self._error(404, "not_found", f"unknown path {path!r}")

    def _post_references(self) -> None:
        store = self.server.service.store
        if store is None:
            self._error(
                400,
                "bad_request",
                "this server has no reference store (serve --store)",
            )
            return
        payload = self._read_json(
            _MAX_REGISTER_BODY, "split the FASTA and register per chromosome"
        )
        if payload is None:
            return
        try:
            reply = register_reference_payload(store, payload)
        except RequestError as exc:
            self._error(exc.status, exc.code, exc.message, exc.headers or None)
            return
        self._reply(200, reply)

    def _post_align(self, stream: bool = False) -> None:
        payload = self._read_json(
            self.server.max_align_body,
            "register large sequences once via POST /v1/references and "
            "align by digest ('target_ref'/'query_ref') instead",
        )
        if payload is None:
            return
        service = self.server.service
        try:
            fields = parse_align_request(payload, service)
        except RequestError as exc:
            self._error(exc.status, exc.code, exc.message, exc.headers or None)
            return

        if stream:
            if fields["timeout_s"] is not None:
                self._error(
                    400,
                    "bad_request",
                    "'timeout_s' is not supported with stream=1",
                )
                return
            self._stream_align(
                fields["target_codes"],
                fields["query_codes"],
                fields["options"],
                fields["target_ref"],
                fields["query_ref"],
            )
            return

        try:
            result = service.align(
                fields["target_codes"],
                fields["query_codes"],
                options=fields["options"],
                timeout_s=fields["timeout_s"],
                target_ref=fields["target_ref"],
                query_ref=fields["query_ref"],
            )
        except Exception as exc:
            status, code, message, headers = classify_align_error(exc)
            self._error(status, code, message, headers or None)
        else:
            self._reply(200, _alignment_payload(result))

    # -- streaming -----------------------------------------------------------

    def _stream_align(
        self, target_codes, query_codes, options, target_ref, query_ref
    ) -> None:
        """Run the streaming pipeline and chunk-encode NDJSON records.

        The response closes the connection when done (``Connection:
        close``): the stream has no Content-Length, so ending the
        connection keeps framing unambiguous even for clients that do not
        decode chunked transfer.  Errors before the first record use the
        normal error envelope + status; errors after streaming began
        become a terminal ``{"type": "error"}`` record.
        """
        service = self.server.service
        started = False

        def write_record(record: dict) -> None:
            nonlocal started
            if not started:
                self.protocol_version = "HTTP/1.1"
                self.close_connection = True
                self.send_response(200)
                self.send_header("Content-Type", "application/x-ndjson")
                self.send_header("Transfer-Encoding", "chunked")
                self.send_header("Connection", "close")
                self.end_headers()
                started = True
            data = json.dumps(record).encode() + b"\n"
            self.wfile.write(b"%x\r\n" % len(data) + data + b"\r\n")
            self.wfile.flush()

        def on_partial(partial) -> None:
            write_record(
                {
                    "type": "partial",
                    "seq": partial.seq,
                    "anchors": partial.n_anchors,
                    "done_anchors": partial.done_anchors,
                    "eager": partial.eager,
                    "wall_s": partial.wall_s,
                    "alignments": _alignment_rows(partial.alignments),
                }
            )

        try:
            result = service.align_stream(
                target_codes,
                query_codes,
                options=options,
                target_ref=target_ref,
                query_ref=query_ref,
                on_partial=on_partial,
                should_abort=self.server._draining.is_set,
            )
        except (BrokenPipeError, ConnectionResetError):
            # The client went away mid-stream; the abort already
            # cancelled the producer, nothing left to tell anyone.
            self.close_connection = True
            return
        except Exception as exc:
            status, code, message = _classify_stream_error(exc)
            if not started:
                self._error(status, code, message)
                return
            try:
                write_record(
                    {"type": "error", "error": {"code": code, "message": message}}
                )
            except OSError:
                pass
        else:
            try:
                write_record({"type": "summary", **_alignment_payload(result)})
            except OSError:
                self.close_connection = True
                return
        try:
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except OSError:
            pass


def _classify_stream_error(exc: Exception) -> tuple[int, str, str]:
    """(status, code, message) for a streaming failure, pre- or mid-stream."""
    if isinstance(exc, StreamAborted):
        return 503, "shutting_down", "server is draining; stream aborted"
    if isinstance(exc, ServiceClosed):
        return 503, "shutting_down", str(exc)
    if isinstance(exc, UnknownReference):
        return 404, "not_found", str(exc)
    if isinstance(exc, StoreCorrupt):
        return 500, "store_corrupt", str(exc)
    if isinstance(exc, ValueError):
        return 400, "bad_request", str(exc)
    return 500, "internal", f"{type(exc).__name__}: {exc}"


def make_server(
    service: AlignmentService,
    host: str = "127.0.0.1",
    port: int = 8642,
    *,
    quiet: bool = True,
    max_align_body: int | None = None,
    grace_s: float = 5.0,
) -> ServiceHTTPServer:
    """Bind (but do not start) the JSON endpoint for ``service``.

    ``max_align_body`` caps raw-sequence ``/v1/align`` bodies (default
    :data:`DEFAULT_MAX_ALIGN_BODY`); oversize bodies are refused with 413
    ``payload_too_large`` before being read.  ``grace_s`` bounds how long
    :meth:`ServiceHTTPServer.server_close` waits for in-flight handler
    threads before force-closing their sockets.
    """
    return ServiceHTTPServer(
        (host, port),
        service,
        quiet=quiet,
        max_align_body=max_align_body,
        grace_s=grace_s,
    )
