"""JSON-over-HTTP front end for the alignment service (stdlib only).

A thin :mod:`http.server` layer so ``repro serve`` needs no third-party
web framework:

* ``POST /align`` — body ``{"target": "ACGT...", "query": "ACGT...",
  "timeout_s": 5.0?}``; responds with the scored alignments.
* ``GET /stats`` — the :class:`~repro.service.stats.ServiceStats`
  snapshot as JSON.
* ``GET /metrics`` — the same counters (plus queue-wait/latency
  histograms) in Prometheus text exposition format.
* ``GET /healthz`` — liveness probe.

The server is threading (one handler thread per connection), so
concurrent clients naturally pile requests into the service queue and
get micro-batched together.
"""

from __future__ import annotations

import json
from concurrent.futures import CancelledError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..genome.alphabet import encode
from .batcher import DeadlineExceeded
from .service import AlignmentService, ServiceClosed, ServiceOverloaded

__all__ = ["ServiceHTTPServer", "make_server"]

#: Refuse request bodies beyond this (a chromosome pair in text is fine,
#: an accidental multi-GB POST is not).
_MAX_BODY_BYTES = 64 * 1024 * 1024


def _alignment_payload(result) -> dict:
    return {
        "count": len(result.alignments),
        "anchors": len(result.tasks),
        "eager_fraction": round(result.eager_fraction, 4),
        "alignments": [
            {
                "score": a.score,
                "target_start": a.target_start,
                "target_end": a.target_end,
                "query_start": a.query_start,
                "query_end": a.query_end,
                "cigar": a.cigar(),
            }
            for a in result.unique_alignments()
        ],
    }


class ServiceHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`AlignmentService`."""

    daemon_threads = True

    def __init__(self, address, service: AlignmentService, *, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # -- plumbing ------------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: D102 - stdlib hook
        if not self.server.quiet:
            super().log_message(fmt, *args)

    def _reply(self, status: int, payload: dict) -> None:
        self._reply_raw(status, json.dumps(payload).encode(), "application/json")

    def _reply_raw(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._reply(200, {"status": "ok"})
        elif self.path == "/stats":
            self._reply(200, self.server.service.stats().as_dict())
        elif self.path == "/metrics":
            self._reply_raw(
                200,
                self.server.service.metrics_text().encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._error(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/align":
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._error(400, f"body must be 1..{_MAX_BODY_BYTES} bytes")
            return
        try:
            payload = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._error(400, "body is not valid JSON")
            return
        if not isinstance(payload, dict):
            self._error(400, "body must be a JSON object")
            return
        target = payload.get("target")
        query = payload.get("query")
        if not isinstance(target, str) or not isinstance(query, str):
            self._error(400, "'target' and 'query' must be DNA strings")
            return
        timeout_s = payload.get("timeout_s")
        # bool is a subclass of int, so isinstance alone would accept
        # ``"timeout_s": true`` and treat it as a 1-second deadline.
        if timeout_s is not None and (
            isinstance(timeout_s, bool) or not isinstance(timeout_s, (int, float))
        ):
            self._error(400, "'timeout_s' must be a number")
            return

        # Validate before dispatch: the encoding LUT maps junk to N, so a
        # malformed body would otherwise be aligned-as-N (or, for other
        # input bugs, surface as a 500 from deep inside the pipeline).
        try:
            target_codes = encode(target, strict=True)
        except ValueError as exc:
            self._error(400, f"'target' is not a DNA sequence: {exc}")
            return
        try:
            query_codes = encode(query, strict=True)
        except ValueError as exc:
            self._error(400, f"'query' is not a DNA sequence: {exc}")
            return

        service = self.server.service
        try:
            result = service.align(
                target_codes, query_codes, timeout_s=timeout_s
            )
        except ServiceOverloaded as exc:
            self._error(503, str(exc))
        except ServiceClosed as exc:
            self._error(503, str(exc))
        except (DeadlineExceeded, TimeoutError) as exc:
            self._error(504, str(exc) or "request deadline exceeded")
        except CancelledError:
            self._error(503, "request cancelled during shutdown")
        except Exception as exc:
            self._error(500, f"{type(exc).__name__}: {exc}")
        else:
            self._reply(200, _alignment_payload(result))


def make_server(
    service: AlignmentService,
    host: str = "127.0.0.1",
    port: int = 8642,
    *,
    quiet: bool = True,
) -> ServiceHTTPServer:
    """Bind (but do not start) the JSON endpoint for ``service``."""
    return ServiceHTTPServer((host, port), service, quiet=quiet)
