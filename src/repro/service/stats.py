"""Service observability: registry-backed counters, latency percentiles.

Every service event lands in a :class:`~repro.obs.metrics.MetricsRegistry`
owned by the recorder (always live, independent of the process-wide
:mod:`repro.obs` default), so ``GET /stats`` and the Prometheus
``GET /metrics`` endpoint read the *same* counters and cannot disagree.
The recorder keeps one extra structure the registry cannot express: a
bounded window of raw completed-request latencies for exact nearest-rank
percentiles.  The snapshot is an immutable :class:`ServiceStats`.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry
from .cache import CacheStats

__all__ = ["ServiceStats", "StatsRecorder"]

#: Completed-request latencies kept for the percentile window.
_LATENCY_WINDOW = 4096

#: Request-latency and queue-wait histogram boundaries (seconds).
_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Terminal request outcomes tracked by the events counter.
_EVENT_KINDS = (
    "submitted",
    "completed",
    "failed",
    "rejected",
    "shed",
    "timed_out",
    "cancelled",
    "abandoned",
    "cache_hit",
)


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0 when empty).

    Uses the deterministic ceiling rank ``ceil(q * n)`` (1-indexed), the
    textbook nearest-rank definition — unlike ``round()``, whose
    banker's rounding makes p50 of an even-length sample drift up a rank.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(q * len(ordered))
    return ordered[min(max(rank, 1), len(ordered)) - 1]


@dataclass(frozen=True)
class ServiceStats:
    """One consistent snapshot of the service's health."""

    queue_depth: int
    submitted: int
    completed: int
    failed: int
    rejected: int
    #: Submissions refused by admission control (in-flight bytes bound)
    #: before they could queue — the load-shedding half of backpressure.
    shed: int
    timed_out: int
    cancelled: int
    #: Requests whose caller stopped waiting but whose work still ran.
    abandoned: int
    #: Submissions answered from the result cache (no dispatch, and no
    #: entry in the latency window — hits would collapse p50 toward 0).
    cache_hits: int
    #: Dispatch-batch sizes -> number of batches of that size.
    batch_histogram: dict[int, int]
    latency_p50_ms: float
    latency_p95_ms: float
    cache: CacheStats = field(repr=False)
    #: Multiprocess-backend health (None on the in-process backend):
    #: workers/alive/dispatches/respawns/redispatches/degraded.
    pool: dict | None = None
    #: Fleet-scheduler health (None when extensions run on the dispatcher):
    #: submitted/hedges/redispatched plus one entry per backend queue.
    fleet: dict | None = None

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate

    @property
    def mean_batch_size(self) -> float:
        n = sum(self.batch_histogram.values())
        if not n:
            return 0.0
        return sum(size * count for size, count in self.batch_histogram.items()) / n

    def as_dict(self) -> dict:
        """JSON-ready rendering (used by the HTTP ``/stats`` endpoint)."""
        return {
            "queue_depth": self.queue_depth,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "cancelled": self.cancelled,
            "abandoned": self.abandoned,
            "cache_hits": self.cache_hits,
            "batch_histogram": {str(k): v for k, v in sorted(self.batch_histogram.items())},
            "mean_batch_size": round(self.mean_batch_size, 2),
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p95_ms": round(self.latency_p95_ms, 3),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "size": self.cache.size,
                "capacity": self.cache.capacity,
                "hit_rate": round(self.cache.hit_rate, 4),
            },
            "pool": self.pool,
            "fleet": self.fleet,
        }


class StatsRecorder:
    """Thread-safe accumulation of service events over a metrics registry.

    The registry is the single source of truth for counts; ``/metrics``
    renders it directly.  ``registry`` may be shared (e.g. with the
    process-wide :mod:`repro.obs` one) — metric names are namespaced
    under ``repro_service_``.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._events = self.registry.counter(
            "repro_service_events_total", "Service request events by kind."
        )
        self._batches = self.registry.counter(
            "repro_service_batches_total", "Dispatched micro-batches by size."
        )
        self._latency = self.registry.histogram(
            "repro_service_request_latency_seconds",
            "Submit-to-result latency of dispatched requests.",
            buckets=_LATENCY_BUCKETS,
        )
        self._queue_wait = self.registry.histogram(
            "repro_service_queue_wait_seconds",
            "Time requests spent queued before the dispatcher picked them up.",
            buckets=_LATENCY_BUCKETS,
        )
        self._queue_depth = self.registry.gauge(
            "repro_service_queue_depth", "Requests currently queued."
        )
        self._queue_depth.set(0)
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._depth = 0

    # -- queue-depth gauge ---------------------------------------------------
    #
    # The gauge moves with the queue, not with the scraper: enqueue and
    # dequeue each update it immediately, so a ``/metrics`` scrape between
    # dispatches sees the real backlog instead of whatever the last
    # snapshot happened to capture.

    def note_enqueued(self) -> None:
        with self._lock:
            self._depth += 1
            depth = self._depth
        self._queue_depth.set(depth)

    def note_dequeued(self, n: int = 1) -> None:
        with self._lock:
            self._depth = max(0, self._depth - n)
            depth = self._depth
        self._queue_depth.set(depth)

    @property
    def queue_depth(self) -> int:
        """Requests currently enqueued (live, not snapshot-time)."""
        with self._lock:
            return self._depth

    # -- event recording -----------------------------------------------------

    def record_submitted(self) -> None:
        self._events.labels(kind="submitted").inc()

    def record_rejected(self) -> None:
        self._events.labels(kind="rejected").inc()

    def record_shed(self) -> None:
        self._events.labels(kind="shed").inc()

    def record_timed_out(self) -> None:
        self._events.labels(kind="timed_out").inc()

    def record_cancelled(self) -> None:
        self._events.labels(kind="cancelled").inc()

    def record_abandoned(self) -> None:
        self._events.labels(kind="abandoned").inc()

    def record_cache_hit(self) -> None:
        self._events.labels(kind="cache_hit").inc()

    def record_batch(self, size: int) -> None:
        self._batches.labels(size=size).inc()

    def record_queue_wait(self, seconds: float) -> None:
        self._queue_wait.observe(seconds)

    def record_completed(self, latency_seconds: float) -> None:
        self._events.labels(kind="completed").inc()
        self._latency.observe(latency_seconds)
        with self._lock:
            self._latencies.append(latency_seconds)

    def record_failed(self) -> None:
        self._events.labels(kind="failed").inc()

    # -- snapshots -----------------------------------------------------------

    def batch_histogram(self) -> dict[int, int]:
        """Exact dispatch-size counts rebuilt from the labelled counter."""
        out: dict[int, int] = {}
        for labels, child in self._batches.samples():
            size = int(dict(labels)["size"])
            count = int(child.value)
            if count:
                out[size] = count
        return out

    def snapshot(
        self,
        *,
        queue_depth: int,
        cache: CacheStats,
        pool: dict | None = None,
        fleet: dict | None = None,
    ) -> ServiceStats:
        with self._lock:
            latencies = list(self._latencies)
        counts = {kind: int(self._events.value(kind=kind)) for kind in _EVENT_KINDS}
        return ServiceStats(
            queue_depth=queue_depth,
            submitted=counts["submitted"],
            completed=counts["completed"],
            failed=counts["failed"],
            rejected=counts["rejected"],
            shed=counts["shed"],
            timed_out=counts["timed_out"],
            cancelled=counts["cancelled"],
            abandoned=counts["abandoned"],
            cache_hits=counts["cache_hit"],
            batch_histogram=self.batch_histogram(),
            latency_p50_ms=_percentile(latencies, 0.50) * 1e3,
            latency_p95_ms=_percentile(latencies, 0.95) * 1e3,
            cache=cache,
            pool=pool,
            fleet=fleet,
        )
