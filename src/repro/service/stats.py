"""Service observability: counters, latency percentiles, batch histogram.

The recorder is the single mutation point (every touch holds one lock and
does O(1) work, so it is cheap enough for the submit path); the snapshot
is an immutable :class:`ServiceStats` for callers, the ``/stats`` HTTP
endpoint and the benchmark harness.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, field

from .cache import CacheStats

__all__ = ["ServiceStats", "StatsRecorder"]

#: Completed-request latencies kept for the percentile window.
_LATENCY_WINDOW = 4096


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


@dataclass(frozen=True)
class ServiceStats:
    """One consistent snapshot of the service's health."""

    queue_depth: int
    submitted: int
    completed: int
    failed: int
    rejected: int
    timed_out: int
    cancelled: int
    #: Dispatch-batch sizes -> number of batches of that size.
    batch_histogram: dict[int, int]
    latency_p50_ms: float
    latency_p95_ms: float
    cache: CacheStats = field(repr=False)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate

    @property
    def mean_batch_size(self) -> float:
        n = sum(self.batch_histogram.values())
        if not n:
            return 0.0
        return sum(size * count for size, count in self.batch_histogram.items()) / n

    def as_dict(self) -> dict:
        """JSON-ready rendering (used by the HTTP ``/stats`` endpoint)."""
        return {
            "queue_depth": self.queue_depth,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "timed_out": self.timed_out,
            "cancelled": self.cancelled,
            "batch_histogram": {str(k): v for k, v in sorted(self.batch_histogram.items())},
            "mean_batch_size": round(self.mean_batch_size, 2),
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p95_ms": round(self.latency_p95_ms, 3),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "size": self.cache.size,
                "capacity": self.cache.capacity,
                "hit_rate": round(self.cache.hit_rate, 4),
            },
        }


class StatsRecorder:
    """Thread-safe accumulation of service events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._timed_out = 0
        self._cancelled = 0
        self._batches: Counter[int] = Counter()
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)

    def record_submitted(self) -> None:
        with self._lock:
            self._submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_timed_out(self) -> None:
        with self._lock:
            self._timed_out += 1

    def record_cancelled(self) -> None:
        with self._lock:
            self._cancelled += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batches[size] += 1

    def record_completed(self, latency_seconds: float) -> None:
        with self._lock:
            self._completed += 1
            self._latencies.append(latency_seconds)

    def record_failed(self) -> None:
        with self._lock:
            self._failed += 1

    def snapshot(self, *, queue_depth: int, cache: CacheStats) -> ServiceStats:
        with self._lock:
            latencies = list(self._latencies)
            return ServiceStats(
                queue_depth=queue_depth,
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                rejected=self._rejected,
                timed_out=self._timed_out,
                cancelled=self._cancelled,
                batch_histogram=dict(self._batches),
                latency_p50_ms=_percentile(latencies, 0.50) * 1e3,
                latency_p95_ms=_percentile(latencies, 0.95) * 1e3,
                cache=cache,
            )
