"""Alignment requests: normalisation, digests and cache/fusion keys.

A request is everything one caller hands the service: a (target, query)
pair plus the LASTZ configuration and FastZ options to align them under,
optionally with pre-selected anchors.  Two derived keys drive the service:

* :attr:`AlignmentRequest.cache_key` — a SHA-256 digest over the sequence
  codes, the anchors (if given), the full scoring configuration and the
  options.  Two requests with equal keys produce bit-identical
  :class:`~repro.core.pipeline.FastzResult`\\ s, so the key indexes the
  LRU result cache.
* :attr:`AlignmentRequest.fuse_key` — the subset that must match for two
  requests' extension tasks to share one lockstep batch: the scoring
  scheme and the :class:`~repro.core.options.FastzOptions`.  Requests in
  one micro-batch are grouped by this key before their suffixes are
  concatenated into :func:`~repro.core.pipeline.extend_suffixes_shard`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields as dataclass_fields
from functools import cached_property

import numpy as np

from ..core.options import FastzOptions
from ..genome.sequence import Sequence
from ..lastz.config import LastzConfig
from ..scoring import ScoringScheme
from ..seeding import Anchors

__all__ = ["AlignmentRequest", "scheme_digest"]


def _digest_update(h, value) -> None:
    """Feed one config field into a hash, ndarray-aware.

    ``repr`` alone is not enough: :class:`ScoringScheme` marks its
    substitution matrix ``repr=False``, so two schemes differing only in
    the matrix would collide.
    """
    if isinstance(value, np.ndarray):
        h.update(np.ascontiguousarray(value).tobytes())
        h.update(str(value.dtype).encode())
    else:
        h.update(repr(value).encode())
    h.update(b"\x00")


def scheme_digest(scheme: ScoringScheme) -> str:
    """Stable hex digest of every field of a scoring scheme."""
    h = hashlib.sha256()
    for f in dataclass_fields(scheme):
        _digest_update(h, getattr(scheme, f.name))
    return h.hexdigest()


def _config_digest(config: LastzConfig) -> str:
    h = hashlib.sha256()
    for f in dataclass_fields(config):
        value = getattr(config, f.name)
        if isinstance(value, ScoringScheme):
            h.update(scheme_digest(value).encode())
        else:
            _digest_update(h, value)
    return h.hexdigest()


def _as_codes(sequence: Sequence | np.ndarray) -> np.ndarray:
    codes = np.asarray(
        sequence.codes if isinstance(sequence, Sequence) else sequence
    )
    if codes.ndim != 1:
        raise ValueError("sequence codes must be one-dimensional")
    return codes


@dataclass
class AlignmentRequest:
    """One caller's alignment job, normalised to code arrays.

    Store-backed requests additionally carry the reference's content
    digest (``target_digest``/``query_digest``), an optional prebuilt
    seed table from the store's persistent cache, and an optional
    shared-memory ``(name, length)`` source handle per side so the pool
    dispatcher can ship windows instead of codes.  None of these change
    the alignment result — the digest keys the cache cheaply and the
    table/source only change how the same computation is fed.
    """

    target: np.ndarray
    query: np.ndarray
    config: LastzConfig
    options: FastzOptions
    anchors: Anchors | None = field(default=None)
    #: Reference-store content digests, when the request came in by ref.
    target_digest: str | None = field(default=None)
    query_digest: str | None = field(default=None)
    #: Prebuilt target-side seed table (store cache); skips table build.
    seed_table: object | None = field(default=None, repr=False)
    #: Shared-memory handles ``("shm", name, length)`` for pool dispatch.
    target_source: tuple | None = field(default=None, repr=False)
    query_source: tuple | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.target = _as_codes(self.target)
        self.query = _as_codes(self.query)

    @property
    def nbytes(self) -> int:
        """Sequence payload size — the admission-control cost of a request."""
        return int(self.target.nbytes) + int(self.query.nbytes)

    @cached_property
    def cache_key(self) -> str:
        """Digest of everything that determines the alignment result.

        Sides that arrived by reference hash the store digest instead of
        the codes — same discriminating power (the digest *is* a content
        hash) without touching megabytes of sequence per lookup.
        """
        h = hashlib.sha256()
        if self.target_digest is not None:
            h.update(b"ref:" + self.target_digest.encode() + b"\x00")
        else:
            _digest_update(h, self.target)
        if self.query_digest is not None:
            h.update(b"ref:" + self.query_digest.encode() + b"\x00")
        else:
            _digest_update(h, self.query)
        if self.anchors is None:
            h.update(b"anchors:none\x00")
        else:
            _digest_update(h, np.asarray(self.anchors.target_pos))
            _digest_update(h, np.asarray(self.anchors.query_pos))
        h.update(_config_digest(self.config).encode())
        _digest_update(h, self.options)
        return h.hexdigest()

    @cached_property
    def fuse_key(self) -> tuple[str, FastzOptions]:
        """Compatibility key: requests sharing it can batch together."""
        return (scheme_digest(self.config.scheme), self.options)
