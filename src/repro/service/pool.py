"""Sharded multiprocess execution backend for the alignment service.

The dispatcher's fused extension batches are CPU-bound numpy loops, so a
single process caps the service at roughly one core no matter how well
micro-batching amortises per-request overhead.  :class:`WorkerPool` keeps
``N`` persistent worker processes and, per fused batch, splits the
interleaved suffix list into LPT-balanced anchor shards
(:func:`~repro.core.pipeline.shard_anchor_suffixes`, weight = wavefront
extent) dispatched one per worker — the SaLoBa workload-balance lever
applied to the online path.  Because every extension task is independent,
re-placing shard records by anchor index reproduces the in-process result
bit for bit at any worker count.

Robustness, with the patterns proven out by :mod:`repro.jobs.scheduler`:

* **warm per-worker caches** — the scoring scheme / options / tile of a
  fuse group are shipped once per worker and cached by digest, so steady
  traffic pays one small key per dispatch instead of re-pickling the
  scheme every batch (workers are persistent precisely so process-local
  state stays warm);
* **death detection + respawn + re-dispatch** — a worker that dies
  (segfault, OOM-kill, SIGKILL) is detected by process liveness, a
  replacement is spawned into its slot, and the in-flight shard is
  re-dispatched, so the requests in that batch still complete; a shard
  that repeatedly kills its workers stops after ``max_redispatch``
  attempts with :class:`PoolError` instead of respawning forever;
* **graceful degradation** — :class:`PoolError` (spawn failure, shard
  killing every worker, pool closed) tells the dispatcher to run that
  batch on the in-process backend; the service keeps serving, just
  slower.

A shard whose *handler* raises (poisoned request) is reported as a
failure message, not a death: ``extend`` raises ``RuntimeError`` and the
dispatcher's existing per-request isolation takes over.

Test hook (inert unless set): ``REPRO_POOL_TEST_KILL_WORKER`` is a
comma-separated list of worker ids that ``os._exit(137)`` on their first
task receipt — SIGKILL semantics placed deterministically mid-batch.
Worker ids increment across respawns, so a replacement never re-matches
its predecessor's id.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import Any

from ..align.arena import release_thread_arenas
from ..core.pipeline import extend_suffixes_shard, shard_anchor_suffixes
from ..obs.metrics import MetricsRegistry

__all__ = ["PoolError", "WorkerPool"]

#: Test hook: comma-separated worker ids that hard-exit on first task.
_KILL_ENV = "REPRO_POOL_TEST_KILL_WORKER"

#: Dispatch-latency histogram boundaries (seconds).
_DISPATCH_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class PoolError(RuntimeError):
    """The pool cannot execute this batch; run it in-process instead."""


def _kill_ids() -> set[str]:
    raw = os.environ.get(_KILL_ENV, "")
    return {part.strip() for part in raw.split(",") if part.strip()}


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """Worker loop: one shard at a time, failures reported not raised.

    Polls with a timeout so an orphaned worker (coordinator hard-killed,
    skipping the atexit reaping of daemon children) notices the
    re-parenting and exits instead of blocking on the queue forever.

    Each worker implicitly keeps the pipeline's warm lockstep arenas
    (:func:`repro.align.thread_arena`) alive between shards — the
    process-resident analogue of the device buffers a GPU stream would
    own — and drops them on the clean-shutdown path.
    """
    parent = os.getppid()
    warm: dict[str, tuple] = {}
    while True:
        try:
            item = task_q.get(timeout=2.0)
        except queue_mod.Empty:
            if os.getppid() != parent:
                release_thread_arenas()
                return
            continue
        if item is None:
            release_thread_arenas()
            return
        job_id, shard_id, key, params, suffixes = item
        if str(worker_id) in _kill_ids():
            os._exit(137)
        try:
            if params is not None:
                warm[key] = params
            scheme, options, tile = warm[key]
            records = extend_suffixes_shard(suffixes, scheme, options, tile)
        except Exception as exc:  # noqa: BLE001 - fault isolation boundary
            result_q.put(
                ("fail", job_id, shard_id, f"{type(exc).__name__}: {exc}")
            )
        else:
            result_q.put(("done", job_id, shard_id, records))


@dataclass
class _Worker:
    proc: multiprocessing.Process
    task_q: Any
    worker_id: int
    #: Fuse-group keys whose (scheme, options, tile) this worker has
    #: cached; dies with the process.
    seen: set
    #: (job_id, shard_id) in flight, or None when idle.
    current: tuple[int, int] | None = None


class WorkerPool:
    """``N`` persistent extension workers behind one dispatch call.

    ``extend`` is synchronous and called only from the dispatcher thread;
    ``close`` may be called from any thread (shutdown) after the
    dispatcher has stopped.
    """

    def __init__(
        self,
        workers: int,
        *,
        registry: MetricsRegistry | None = None,
        max_redispatch: int = 2,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_redispatch < 0:
            raise ValueError("max_redispatch must be non-negative")
        self.n_workers = workers
        self.max_redispatch = max_redispatch
        self.registry = registry if registry is not None else MetricsRegistry()
        self.dispatches = 0
        self.respawns = 0
        self.redispatches = 0
        self.degraded = 0
        self._gauge = self.registry.gauge(
            "repro_service_pool_workers", "Pool worker processes by state."
        )
        self._respawn_counter = self.registry.counter(
            "repro_service_pool_respawns_total",
            "Dead pool workers replaced with fresh processes.",
        )
        self._shard_counter = self.registry.counter(
            "repro_service_pool_shards_total",
            "Extension shards dispatched, by worker slot.",
        )
        self._redispatch_counter = self.registry.counter(
            "repro_service_pool_redispatched_total",
            "In-flight shards re-dispatched after a worker death.",
        )
        self._degraded_counter = self.registry.counter(
            "repro_service_pool_degraded_total",
            "Fused batches that fell back to the in-process backend.",
        )
        self._dispatch_seconds = self.registry.histogram(
            "repro_service_pool_dispatch_seconds",
            "Wall time of fused-batch dispatches through the pool.",
            buckets=_DISPATCH_BUCKETS,
        )
        self._ctx = multiprocessing.get_context()
        self._result_q = self._ctx.Queue()
        self._ids = itertools.count()
        self._jobs = itertools.count()
        self._closed = False
        self._workers = [self._spawn() for _ in range(workers)]
        self._set_worker_gauges()

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self) -> _Worker:
        worker_id = next(self._ids)
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_q, self._result_q),
            name=f"repro-pool-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        return _Worker(proc=proc, task_q=task_q, worker_id=worker_id, seen=set())

    def _respawn(self, slot: int) -> None:
        self.respawns += 1
        self._respawn_counter.inc()
        try:
            self._workers[slot] = self._spawn()
        except Exception as exc:  # pragma: no cover - OS resource exhaustion
            raise PoolError(f"cannot respawn pool worker: {exc}") from exc
        self._set_worker_gauges()

    def _set_worker_gauges(self) -> None:
        self._gauge.labels(state="configured").set(self.n_workers)
        self._gauge.labels(state="alive").set(self.n_alive)

    @property
    def n_alive(self) -> int:
        return sum(1 for w in self._workers if w.proc.is_alive())

    @property
    def worker_pids(self) -> list[int]:
        return [w.proc.pid for w in self._workers]

    @property
    def closed(self) -> bool:
        return self._closed

    def note_degraded(self) -> None:
        """Record one batch the dispatcher ran in-process after a PoolError."""
        self.degraded += 1
        self._degraded_counter.inc()

    def stats(self) -> dict:
        """JSON-ready pool health for :class:`ServiceStats`."""
        return {
            "workers": self.n_workers,
            "alive": self.n_alive,
            "dispatches": self.dispatches,
            "respawns": self.respawns,
            "redispatches": self.redispatches,
            "degraded": self.degraded,
        }

    def close(self, timeout: float = 2.0) -> None:
        """Stop every worker; idempotent."""
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            try:
                w.task_q.put_nowait(None)
            except Exception:  # noqa: BLE001 - best-effort shutdown
                pass
        deadline = time.monotonic() + timeout
        for w in self._workers:
            w.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=1.0)
        self._result_q.close()
        self._result_q.cancel_join_thread()
        self._set_worker_gauges()

    # -- dispatch ------------------------------------------------------------

    def _send(self, slot: int, job_id: int, shard_id: int, key: str,
              params: tuple, suffixes) -> None:
        worker = self._workers[slot]
        payload = None if key in worker.seen else params
        worker.seen.add(key)
        worker.current = (job_id, shard_id)
        worker.task_q.put((job_id, shard_id, key, payload, suffixes))
        self._shard_counter.labels(slot=slot).inc()

    def extend(self, suffixes, scheme, options, tile: int, *, key: str):
        """Run one fused batch's extensions sharded across the workers.

        Returns per-anchor extension records in anchor order, bit-identical
        to :func:`~repro.core.pipeline.extend_suffixes_batched` on the same
        list.  Raises :class:`PoolError` when the pool cannot execute the
        batch (degrade in-process) and ``RuntimeError`` when a shard's
        handler failed (poisoned request: retry per request).
        """
        if self._closed:
            raise PoolError("pool is closed")
        n_anchors = len(suffixes) // 2
        if n_anchors == 0:
            return []
        t0 = time.perf_counter()
        job_id = next(self._jobs)
        params = (scheme, options, tile)
        # Replace workers that died idle (e.g. killed between batches)
        # before handing them shards.
        for slot, worker in enumerate(self._workers):
            if not worker.proc.is_alive():
                self._respawn(slot)
        shards = shard_anchor_suffixes(suffixes, min(len(self._workers), n_anchors))
        shard_sub = {sid: sub for sid, (_idx, sub) in enumerate(shards)}
        for shard_id in shard_sub:
            self._send(shard_id, job_id, shard_id, key, params, shard_sub[shard_id])
        self.dispatches += 1

        done: dict[int, list] = {}
        failures: dict[int, str] = {}
        redispatched: dict[int, int] = {}
        while len(done) + len(failures) < len(shards):
            try:
                msg = self._result_q.get(timeout=0.02)
            except queue_mod.Empty:
                msg = None
            while msg is not None:
                kind, msg_job, shard_id, payload = msg
                for worker in self._workers:
                    if worker.current == (msg_job, shard_id):
                        worker.current = None
                # Stale deliveries (an aborted earlier job, or a shard the
                # death-reap already re-dispatched and resolved) are dropped.
                if msg_job == job_id and shard_id not in done and shard_id not in failures:
                    if kind == "done":
                        done[shard_id] = payload
                    else:
                        failures[shard_id] = payload
                try:
                    msg = self._result_q.get_nowait()
                except queue_mod.Empty:
                    msg = None

            for slot, worker in enumerate(self._workers):
                if worker.proc.is_alive():
                    continue
                current = worker.current
                self._respawn(slot)
                if current is None or current[0] != job_id:
                    continue
                shard_id = current[1]
                if shard_id in done or shard_id in failures:
                    continue
                redispatched[shard_id] = redispatched.get(shard_id, 0) + 1
                self.redispatches += 1
                self._redispatch_counter.inc()
                if redispatched[shard_id] > self.max_redispatch:
                    raise PoolError(
                        f"shard killed {redispatched[shard_id]} workers in a row"
                    )
                self._send(
                    slot, job_id, shard_id, key, params, shard_sub[shard_id]
                )

        self._dispatch_seconds.observe(time.perf_counter() - t0)
        if failures:
            shard_id, error = sorted(failures.items())[0]
            raise RuntimeError(f"pool shard {shard_id} failed: {error}")

        out: list = [None] * n_anchors
        for shard_id, (idx, _sub) in enumerate(shards):
            records = done[shard_id]
            for local, anchor in enumerate(idx):
                out[anchor] = records[local]
        return out
