"""Sharded multiprocess execution backend for the alignment service.

The dispatcher's fused extension batches are CPU-bound numpy loops, so a
single process caps the service at roughly one core no matter how well
micro-batching amortises per-request overhead.  :class:`WorkerPool` keeps
``N`` persistent worker processes and, per fused batch, splits the
interleaved suffix list into LPT-balanced anchor shards
(:func:`~repro.core.pipeline.shard_anchor_suffixes`, weight = wavefront
extent) dispatched one per worker — the SaLoBa workload-balance lever
applied to the online path.  Because every extension task is independent,
re-placing shard records by anchor index reproduces the in-process result
bit for bit at any worker count.

Robustness, with the patterns proven out by :mod:`repro.jobs.scheduler`:

* **warm per-worker caches** — the scoring scheme / options / tile of a
  fuse group are shipped once per worker and cached by digest, so steady
  traffic pays one small key per dispatch instead of re-pickling the
  scheme every batch (workers are persistent precisely so process-local
  state stays warm);
* **death detection + respawn + re-dispatch** — a worker that dies
  (segfault, OOM-kill, SIGKILL) is detected by process liveness, a
  replacement is spawned into its slot, and the in-flight shard is
  re-dispatched, so the requests in that batch still complete; a shard
  that repeatedly kills its workers stops after ``max_redispatch``
  attempts with :class:`PoolError` instead of respawning forever;
* **graceful degradation** — :class:`PoolError` (spawn failure, shard
  killing every worker, pool closed) tells the dispatcher to run that
  batch on the in-process backend; the service keeps serving, just
  slower.

A shard whose *handler* raises (poisoned request) is reported as a
failure message, not a death: ``extend`` raises ``RuntimeError`` and the
dispatcher's existing per-request isolation takes over.

Test hook (inert unless set): ``REPRO_POOL_TEST_KILL_WORKER`` is a
comma-separated list of worker ids that ``os._exit(137)`` on their first
task receipt — SIGKILL semantics placed deterministically mid-batch.
Worker ids increment across respawns, so a replacement never re-matches
its predecessor's id.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import Any

from ..align.arena import release_thread_arenas
from ..core.multigpu import greedy_partition
from ..core.pipeline import extend_suffixes_shard, shard_anchor_suffixes
from ..obs.metrics import MetricsRegistry
from ..store.shm import ShmPublisher, attach_codes, release_attachments

__all__ = ["PoolError", "WorkerPool"]

#: Test hook: comma-separated worker ids that hard-exit on first task.
_KILL_ENV = "REPRO_POOL_TEST_KILL_WORKER"

#: Dispatch-latency histogram boundaries (seconds).
_DISPATCH_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class PoolError(RuntimeError):
    """The pool cannot execute this batch; run it in-process instead."""


def _kill_ids() -> set[str]:
    raw = os.environ.get(_KILL_ENV, "")
    return {part.strip() for part in raw.split(",") if part.strip()}


def _resolve_sources(sources) -> list:
    """Materialise a dispatch message's code sources in a worker.

    ``("shm", name, length)`` attaches to the parent's published segment
    (cached per process by :func:`repro.store.attach_codes`, so repeated
    shards over the same reference map it once); ``("inline", codes)``
    arrived pickled in the message itself — the fallback for sequences
    that were never registered with the store.
    """
    out = []
    for src in sources:
        if src[0] == "shm":
            _kind, name, length = src
            out.append(attach_codes(name, length))
        else:
            out.append(src[1])
    return out


def _spec_suffixes(sources, rows) -> list:
    """Rebuild the interleaved right/left suffix views from a shard spec.

    Mirrors :func:`repro.core.pipeline._anchor_suffixes` exactly — right
    extension at ``2k``, reversed left at ``2k + 1`` — over whatever code
    arrays the sources resolve to, so the extension records come back
    bit-identical to a pickled-suffix dispatch.
    """
    codes = _resolve_sources(sources)
    suffixes = []
    for ti, qi, t, q in rows:
        tc, qc = codes[ti], codes[qi]
        suffixes.append((tc[t:], qc[q:]))  # right at 2k
        suffixes.append((tc[:t][::-1], qc[:q][::-1]))  # left at 2k+1
    return suffixes


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """Worker loop: one shard at a time, failures reported not raised.

    Polls with a timeout so an orphaned worker (coordinator hard-killed,
    skipping the atexit reaping of daemon children) notices the
    re-parenting and exits instead of blocking on the queue forever.

    Each worker implicitly keeps the pipeline's warm lockstep arenas
    (:func:`repro.align.thread_arena`) alive between shards — the
    process-resident analogue of the device buffers a GPU stream would
    own — and drops them on the clean-shutdown path.  Work arrives either
    as pickled suffixes (``("suffixes", ...)``) or as a store-aware spec
    (``("spec", sources, rows)``) that rebuilds them from shared-memory
    references — megabytes of sequence shrink to a name + window.
    """
    parent = os.getppid()
    warm: dict[str, tuple] = {}
    while True:
        try:
            item = task_q.get(timeout=2.0)
        except queue_mod.Empty:
            if os.getppid() != parent:
                release_thread_arenas()
                release_attachments()
                return
            continue
        if item is None:
            release_thread_arenas()
            release_attachments()
            return
        job_id, shard_id, key, params, work = item
        if str(worker_id) in _kill_ids():
            os._exit(137)
        try:
            if params is not None:
                warm[key] = params
            scheme, options, tile = warm[key]
            if work[0] == "spec":
                suffixes = _spec_suffixes(work[1], work[2])
            else:
                suffixes = work[1]
            records = extend_suffixes_shard(suffixes, scheme, options, tile)
        except Exception as exc:  # noqa: BLE001 - fault isolation boundary
            result_q.put(
                ("fail", job_id, shard_id, f"{type(exc).__name__}: {exc}")
            )
        else:
            result_q.put(("done", job_id, shard_id, records))


@dataclass
class _Worker:
    proc: multiprocessing.Process
    task_q: Any
    worker_id: int
    #: Fuse-group keys whose (scheme, options, tile) this worker has
    #: cached; dies with the process.
    seen: set
    #: (job_id, shard_id) in flight, or None when idle.
    current: tuple[int, int] | None = None


class WorkerPool:
    """``N`` persistent extension workers behind one dispatch call.

    ``extend`` is synchronous and called only from the dispatcher thread;
    ``close`` may be called from any thread (shutdown) after the
    dispatcher has stopped.
    """

    def __init__(
        self,
        workers: int,
        *,
        registry: MetricsRegistry | None = None,
        max_redispatch: int = 2,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_redispatch < 0:
            raise ValueError("max_redispatch must be non-negative")
        self.n_workers = workers
        self.max_redispatch = max_redispatch
        self.registry = registry if registry is not None else MetricsRegistry()
        self.dispatches = 0
        self.respawns = 0
        self.redispatches = 0
        self.degraded = 0
        self._gauge = self.registry.gauge(
            "repro_service_pool_workers", "Pool worker processes by state."
        )
        self._respawn_counter = self.registry.counter(
            "repro_service_pool_respawns_total",
            "Dead pool workers replaced with fresh processes.",
        )
        self._shard_counter = self.registry.counter(
            "repro_service_pool_shards_total",
            "Extension shards dispatched, by worker slot.",
        )
        self._redispatch_counter = self.registry.counter(
            "repro_service_pool_redispatched_total",
            "In-flight shards re-dispatched after a worker death.",
        )
        self._degraded_counter = self.registry.counter(
            "repro_service_pool_degraded_total",
            "Fused batches that fell back to the in-process backend.",
        )
        self._dispatch_seconds = self.registry.histogram(
            "repro_service_pool_dispatch_seconds",
            "Wall time of fused-batch dispatches through the pool.",
            buckets=_DISPATCH_BUCKETS,
        )
        self._ctx = multiprocessing.get_context()
        self._result_q = self._ctx.Queue()
        self._ids = itertools.count()
        self._jobs = itertools.count()
        self._closed = False
        #: Parent-owned shared-memory registry for store-backed references;
        #: dispatch specs carry ("shm", name, length) instead of codes.
        self._shm = ShmPublisher()
        self._workers = [self._spawn() for _ in range(workers)]
        self._set_worker_gauges()

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self) -> _Worker:
        worker_id = next(self._ids)
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_q, self._result_q),
            name=f"repro-pool-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        return _Worker(proc=proc, task_q=task_q, worker_id=worker_id, seen=set())

    def _respawn(self, slot: int) -> None:
        self.respawns += 1
        self._respawn_counter.inc()
        try:
            self._workers[slot] = self._spawn()
        except Exception as exc:  # pragma: no cover - OS resource exhaustion
            raise PoolError(f"cannot respawn pool worker: {exc}") from exc
        self._set_worker_gauges()

    def _set_worker_gauges(self) -> None:
        self._gauge.labels(state="configured").set(self.n_workers)
        self._gauge.labels(state="alive").set(self.n_alive)

    @property
    def n_alive(self) -> int:
        return sum(1 for w in self._workers if w.proc.is_alive())

    @property
    def worker_pids(self) -> list[int]:
        return [w.proc.pid for w in self._workers]

    @property
    def closed(self) -> bool:
        return self._closed

    def note_degraded(self) -> None:
        """Record one batch the dispatcher ran in-process after a PoolError."""
        self.degraded += 1
        self._degraded_counter.inc()

    def stats(self) -> dict:
        """JSON-ready pool health for :class:`ServiceStats`."""
        return {
            "workers": self.n_workers,
            "alive": self.n_alive,
            "dispatches": self.dispatches,
            "respawns": self.respawns,
            "redispatches": self.redispatches,
            "degraded": self.degraded,
        }

    def close(self, timeout: float = 2.0) -> None:
        """Stop every worker; idempotent."""
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            try:
                w.task_q.put_nowait(None)
            except Exception:  # noqa: BLE001 - best-effort shutdown
                pass
        deadline = time.monotonic() + timeout
        for w in self._workers:
            w.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=1.0)
        self._result_q.close()
        self._result_q.cancel_join_thread()
        self._shm.close()
        self._set_worker_gauges()

    # -- shared-memory publication ------------------------------------------

    def publish(self, key: str, codes) -> tuple[str, int] | None:
        """Publish a reference's codes once; returns the worker handle.

        Idempotent per key; ``None`` (caller ships codes inline) when the
        publisher's byte cap is exhausted or the segment cannot be
        created.  Segments live until :meth:`close`.
        """
        if self._closed:
            return None
        return self._shm.publish(key, codes)

    # -- dispatch ------------------------------------------------------------

    def _send(self, slot: int, job_id: int, shard_id: int, key: str,
              params: tuple, work) -> None:
        worker = self._workers[slot]
        payload = None if key in worker.seen else params
        worker.seen.add(key)
        worker.current = (job_id, shard_id)
        worker.task_q.put((job_id, shard_id, key, payload, work))
        self._shard_counter.labels(slot=slot).inc()

    def extend(self, suffixes, scheme, options, tile: int, *, key: str):
        """Run one fused batch's extensions sharded across the workers.

        Returns per-anchor extension records in anchor order, bit-identical
        to :func:`~repro.core.pipeline.extend_suffixes_shard` on the same
        list.  Raises :class:`PoolError` when the pool cannot execute the
        batch (degrade in-process) and ``RuntimeError`` when a shard's
        handler failed (poisoned request: retry per request).
        """
        if self._closed:
            raise PoolError("pool is closed")
        n_anchors = len(suffixes) // 2
        if n_anchors == 0:
            return []
        shards = shard_anchor_suffixes(suffixes, min(len(self._workers), n_anchors))
        idx_by_shard = [idx for idx, _sub in shards]
        work_by_shard = [("suffixes", sub) for _idx, sub in shards]
        return self._run_shards(
            work_by_shard, idx_by_shard, n_anchors, scheme, options, tile, key=key
        )

    def extend_spec(self, sources, rows, scheme, options, tile: int, *, key: str):
        """Store-aware variant of :meth:`extend`: dispatch windows, not bytes.

        ``sources`` is a list of code sources — ``("shm", name, length)``
        handles from :meth:`publish` or ``("inline", codes)`` for
        unregistered sequences; ``rows`` is one ``(ti, qi, t, q)`` tuple
        per anchor, in anchor order, indexing into ``sources``.  Workers
        rebuild the suffix views locally, so a shard message carries only
        the row table (plus any inline sources) — the >100x dispatch
        payload reduction of the reference store.
        """
        if self._closed:
            raise PoolError("pool is closed")
        n_anchors = len(rows)
        if n_anchors == 0:
            return []
        lengths = [
            src[2] if src[0] == "shm" else len(src[1]) for src in sources
        ]
        # Same weight the suffix path computes: the wavefront's reachable
        # extent on each side, so the LPT plan (and thus the shard
        # composition) is identical however the codes are shipped.
        weights = [
            min(lengths[ti] - t, lengths[qi] - q) + min(t, q)
            for ti, qi, t, q in rows
        ]
        n_shards = min(len(self._workers), n_anchors)
        idx_by_shard = []
        work_by_shard = []
        for part in greedy_partition(weights, n_shards):
            if not part:
                continue
            idx = sorted(part)
            idx_by_shard.append(idx)
            work_by_shard.append(("spec", sources, [rows[k] for k in idx]))
        return self._run_shards(
            work_by_shard, idx_by_shard, n_anchors, scheme, options, tile, key=key
        )

    def _run_shards(
        self, work_by_shard, idx_by_shard, n_anchors, scheme, options, tile, *, key
    ):
        """Dispatch prepared shard work and collect records by anchor index."""
        if self._closed:
            raise PoolError("pool is closed")
        t0 = time.perf_counter()
        job_id = next(self._jobs)
        params = (scheme, options, tile)
        # Replace workers that died idle (e.g. killed between batches)
        # before handing them shards.
        for slot, worker in enumerate(self._workers):
            if not worker.proc.is_alive():
                self._respawn(slot)
        for shard_id, work in enumerate(work_by_shard):
            self._send(shard_id, job_id, shard_id, key, params, work)
        self.dispatches += 1

        done: dict[int, list] = {}
        failures: dict[int, str] = {}
        redispatched: dict[int, int] = {}
        while len(done) + len(failures) < len(work_by_shard):
            try:
                msg = self._result_q.get(timeout=0.02)
            except queue_mod.Empty:
                msg = None
            while msg is not None:
                kind, msg_job, shard_id, payload = msg
                for worker in self._workers:
                    if worker.current == (msg_job, shard_id):
                        worker.current = None
                # Stale deliveries (an aborted earlier job, or a shard the
                # death-reap already re-dispatched and resolved) are dropped.
                if msg_job == job_id and shard_id not in done and shard_id not in failures:
                    if kind == "done":
                        done[shard_id] = payload
                    else:
                        failures[shard_id] = payload
                try:
                    msg = self._result_q.get_nowait()
                except queue_mod.Empty:
                    msg = None

            for slot, worker in enumerate(self._workers):
                if worker.proc.is_alive():
                    continue
                current = worker.current
                self._respawn(slot)
                if current is None or current[0] != job_id:
                    continue
                shard_id = current[1]
                if shard_id in done or shard_id in failures:
                    continue
                redispatched[shard_id] = redispatched.get(shard_id, 0) + 1
                self.redispatches += 1
                self._redispatch_counter.inc()
                if redispatched[shard_id] > self.max_redispatch:
                    raise PoolError(
                        f"shard killed {redispatched[shard_id]} workers in a row"
                    )
                self._send(
                    slot, job_id, shard_id, key, params, work_by_shard[shard_id]
                )

        self._dispatch_seconds.observe(time.perf_counter() - t0)
        if failures:
            shard_id, error = sorted(failures.items())[0]
            raise RuntimeError(f"pool shard {shard_id} failed: {error}")

        out: list = [None] * n_anchors
        for shard_id, idx in enumerate(idx_by_shard):
            records = done[shard_id]
            for local, anchor in enumerate(idx):
                out[anchor] = records[local]
        return out
