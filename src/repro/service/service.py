"""The :class:`AlignmentService` façade: futures over a bounded queue.

Callers submit alignment jobs and get back
:class:`concurrent.futures.Future` objects; a single dispatcher thread
(:mod:`repro.service.batcher`) fuses queued jobs into bin-aware lockstep
batches over the struct-of-arrays engine.  The service adds the
production-shaped edges around that core:

* **result cache** — submissions are checked against a keyed LRU before
  queueing; a hit resolves the future immediately without touching the
  dispatcher (:mod:`repro.service.cache`);
* **backpressure** — the queue is bounded; a full queue rejects the
  submission with :class:`ServiceOverloaded` instead of buffering
  unboundedly;
* **admission control** — queued-but-unresolved sequence bytes are
  bounded (``max_inflight_bytes``); beyond the bound, submissions are
  load-shed with :class:`ServiceOverloaded` (HTTP 503 + ``Retry-After``)
  *before* they can melt the queue with multi-megabyte payloads;
* **multiprocess backend** — ``pool_workers > 0`` shards each fused
  batch across persistent worker processes
  (:class:`~repro.service.pool.WorkerPool`), LPT-balanced by extension
  weight; results stay bit-identical to the in-process backend, and the
  dispatcher degrades back to in-process execution if the pool breaks;
* **deadlines** — a per-request ``timeout_s`` expires requests that are
  still queued when it elapses
  (:class:`~repro.service.batcher.DeadlineExceeded`);
* **graceful shutdown** — ``shutdown(drain=True)`` refuses new work,
  finishes everything queued, and joins the dispatcher;
  ``drain=False`` cancels queued requests instead;
* **isolation** — a poisoned request resolves only its own future.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np

from .. import obs
from ..core.options import FastzOptions
from ..core.pipeline import FastzResult
from ..genome.sequence import Sequence
from ..lastz.config import LastzConfig
from ..seeding import Anchors
from ..store import ReferenceStore
from .batcher import BatchPolicy, DeadlineExceeded, Dispatcher, Pending
from .cache import ResultCache
from .pool import WorkerPool
from .request import AlignmentRequest
from .stats import ServiceStats, StatsRecorder

__all__ = [
    "AlignmentService",
    "DeadlineExceeded",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
]

#: Default admission-control bound on queued sequence bytes (256 MiB).
DEFAULT_MAX_INFLIGHT_BYTES = 256 * 1024 * 1024

#: Service-default engine: lockstep batches, the whole point of fusing.
_DEFAULT_OPTIONS = FastzOptions(engine="batched")


class ServiceError(Exception):
    """Base class for service-level submission failures."""


class ServiceOverloaded(ServiceError):
    """The service is at capacity; retry later (backpressure).

    Raised both when the bounded request queue is full and when admission
    control sheds the submission because too many sequence bytes are
    already in flight.  ``retry_after_s`` is the suggested backoff (the
    HTTP layer surfaces it as a ``Retry-After`` header).
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceClosed(ServiceError):
    """The service is shutting down and no longer accepts submissions."""


class AlignmentService:
    """Concurrent alignment front end over the FastZ pipeline.

    Parameters
    ----------
    max_batch, max_wait_ms:
        The micro-batching policy: how many requests one dispatch may
        fuse, and how long an under-full batch waits for stragglers.
    max_queue:
        Bound on queued (undispatched) requests; submissions beyond it
        raise :class:`ServiceOverloaded`.
    max_inflight_bytes:
        Admission-control bound on the sequence bytes of queued-but-
        unresolved requests; submissions beyond it are load-shed with
        :class:`ServiceOverloaded`.  A request is always admitted when
        nothing is in flight, so a single large pair can still be served.
        ``None`` disables the bound.
    cache_entries:
        LRU result-cache capacity (0 disables caching).
    pool_workers:
        Multiprocess execution backend: shard each fused extension batch
        across this many persistent worker processes (0 = run fused
        batches in-process on the dispatcher thread, the pre-pool
        behaviour).  Results are bit-identical either way.
    store:
        A :class:`~repro.store.ReferenceStore` (or its root path) backing
        align-by-digest submissions (``target_ref``/``query_ref``): codes
        come off the store's mmap, the persisted seed table skips the
        table-build stage, and with a pool backend the codes are published
        to shared memory once so shard dispatch carries digests + windows.
        ``None`` (default) rejects by-ref submissions.
    config, options:
        Defaults applied to submissions that do not bring their own.
    stream_chunk_bp:
        Default seeding-chunk size (target bases) for
        :meth:`align_stream`; tunes partial-result granularity only —
        streamed results stay bit-identical at any value.
    fleet:
        Route fused extension batches through a
        :class:`~repro.fleet.scheduler.FleetScheduler` instead of running
        them on the dispatcher thread.  Either a ready scheduler (adopted;
        closed on shutdown) or a list of
        :class:`~repro.fleet.backends.FleetBackend`\\ s to build one from
        (its metrics then share this service's registry).  Results are
        bit-identical to the in-process path for any backend mix.

    Usable as a context manager; exit drains and shuts down.
    """

    def __init__(
        self,
        *,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        max_inflight_bytes: int | None = DEFAULT_MAX_INFLIGHT_BYTES,
        cache_entries: int = 128,
        pool_workers: int = 0,
        store: "ReferenceStore | str | None" = None,
        config: LastzConfig | None = None,
        options: FastzOptions = _DEFAULT_OPTIONS,
        stream_chunk_bp: int | None = None,
        fleet=None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if max_inflight_bytes is not None and max_inflight_bytes < 1:
            raise ValueError("max_inflight_bytes must be positive or None")
        if pool_workers < 0:
            raise ValueError("pool_workers must be non-negative")
        self.policy = BatchPolicy(max_batch=max_batch, max_wait_ms=max_wait_ms)
        self._store = (
            store
            if store is None or isinstance(store, ReferenceStore)
            else ReferenceStore(store)
        )
        self.default_config = config or LastzConfig()
        self.default_options = options
        self.max_inflight_bytes = max_inflight_bytes
        if stream_chunk_bp is not None and stream_chunk_bp < 1:
            raise ValueError("stream_chunk_bp must be positive or None")
        #: Default seeding-chunk size for :meth:`align_stream` (None =
        #: the pipeline default); granularity only, never results.
        self.stream_chunk_bp = stream_chunk_bp
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._cache = ResultCache(cache_entries)
        self._recorder = StatsRecorder()
        self._lock = threading.Lock()
        self._closed = False
        self._inflight_bytes = 0
        self._inflight_gauge = self._recorder.registry.gauge(
            "repro_service_inflight_bytes",
            "Sequence bytes of queued-but-unresolved requests.",
        )
        self._pool = (
            WorkerPool(pool_workers, registry=self._recorder.registry)
            if pool_workers > 0
            else None
        )
        # ``fleet`` is either a ready FleetScheduler (adopted: the service
        # closes it on shutdown) or a list of FleetBackends, in which case
        # the scheduler is built here so its counters land in the same
        # registry /v1/metrics renders.
        self._fleet = None
        if fleet is not None:
            from ..fleet.scheduler import FleetScheduler

            if isinstance(fleet, FleetScheduler):
                self._fleet = fleet
            else:
                self._fleet = FleetScheduler(
                    list(fleet), registry=self._recorder.registry
                )
        self._dispatcher = Dispatcher(
            self._queue,
            self.policy,
            self._cache,
            self._recorder,
            pool=self._pool,
            fleet=self._fleet,
        )
        self._dispatcher.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        target: Sequence | np.ndarray | None = None,
        query: Sequence | np.ndarray | None = None,
        config: LastzConfig | None = None,
        options: FastzOptions | None = None,
        *,
        anchors: Anchors | None = None,
        timeout_s: float | None = None,
        target_ref: str | None = None,
        query_ref: str | None = None,
        priority: int = 0,
    ) -> Future:
        """Enqueue one alignment job; returns a future of ``FastzResult``.

        Each side takes either raw codes (``target``/``query``) or a
        reference-store digest (``target_ref``/``query_ref``) — exactly
        one per side; by-ref needs a service constructed with ``store=``.
        Raises :class:`ServiceOverloaded` when the queue is full and
        :class:`ServiceClosed` after shutdown began.  ``timeout_s`` bounds
        how long the request may sit in the queue before it is expired
        with :class:`DeadlineExceeded`.  ``priority`` is the fleet
        dispatch class (:data:`~repro.fleet.scheduler.PRIORITY_INTERACTIVE`
        or :data:`~repro.fleet.scheduler.PRIORITY_BATCH`); it only affects
        ordering on a fleet-backed service, never results.
        """
        return self._submit(
            target,
            query,
            config,
            options,
            anchors=anchors,
            timeout_s=timeout_s,
            target_ref=target_ref,
            query_ref=query_ref,
            priority=priority,
        )[0]

    def _resolve_side(
        self,
        value: Sequence | np.ndarray | None,
        ref: str | None,
        config: LastzConfig,
        *,
        target_side: bool,
        anchors: Anchors | None,
    ) -> tuple:
        """One side's (codes, digest, shm source, seed table) from value/ref."""
        if ref is None:
            if value is None:
                raise ValueError(
                    "each side needs either a sequence or a reference digest"
                )
            return value, None, None, None
        if value is not None:
            raise ValueError(
                "give a sequence or a reference digest per side, not both"
            )
        if self._store is None:
            raise ValueError(
                "align-by-ref requires a service configured with store="
            )
        stored = self._store.get(ref)
        codes = stored.codes
        source = None
        if self._pool is not None:
            handle = self._pool.publish(stored.digest, codes)
            if handle is not None:
                source = ("shm", handle[0], handle[1])
        table = None
        if target_side and anchors is None:
            table = self._store.seed_table(
                stored.digest,
                k=config.seed_length,
                spaced_pattern=config.spaced_pattern,
            )
        return codes, stored.digest, source, table

    def _submit(
        self,
        target: Sequence | np.ndarray | None = None,
        query: Sequence | np.ndarray | None = None,
        config: LastzConfig | None = None,
        options: FastzOptions | None = None,
        *,
        anchors: Anchors | None = None,
        timeout_s: float | None = None,
        target_ref: str | None = None,
        query_ref: str | None = None,
        priority: int = 0,
    ) -> tuple[Future, Pending | None]:
        """Submission core: returns the future plus its queue entry.

        The :class:`Pending` is ``None`` on a cache hit (nothing was
        queued); :meth:`align` uses it to mark work abandoned when the
        caller's result wait times out.
        """
        config = config or self.default_config
        t_codes, t_digest, t_source, seed_table = self._resolve_side(
            target, target_ref, config, target_side=True, anchors=anchors
        )
        q_codes, q_digest, q_source, _ = self._resolve_side(
            query, query_ref, config, target_side=False, anchors=anchors
        )
        request = AlignmentRequest(
            target=t_codes,
            query=q_codes,
            config=config,
            options=options or self.default_options,
            anchors=anchors,
            target_digest=t_digest,
            query_digest=q_digest,
            seed_table=seed_table,
            target_source=t_source,
            query_source=q_source,
        )
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shut down")
            cached = self._cache.get(request.cache_key)
            if cached is not None:
                # Cache hits bypass the dispatcher entirely: count them as
                # their own event instead of a 0-latency completion, which
                # would collapse the latency percentiles under hot caches.
                future: Future = Future()
                self._recorder.record_submitted()
                self._recorder.record_cache_hit()
                future.set_result(cached)
                return future, None
            # Admission control: shed before queueing when the in-flight
            # sequence bytes would exceed the bound.  An empty service
            # always admits, so no single request is permanently too big.
            cost = request.nbytes
            if (
                self.max_inflight_bytes is not None
                and self._inflight_bytes > 0
                and self._inflight_bytes + cost > self.max_inflight_bytes
            ):
                self._recorder.record_shed()
                raise ServiceOverloaded(
                    f"{self._inflight_bytes} sequence bytes already in flight "
                    f"(bound {self.max_inflight_bytes}); retry later",
                    retry_after_s=1.0,
                )
            pending = Pending(request=request, priority=priority)
            if timeout_s is not None:
                pending.deadline = pending.enqueued_at + timeout_s
            try:
                self._queue.put_nowait(pending)
            except queue.Full:
                self._recorder.record_rejected()
                raise ServiceOverloaded(
                    f"request queue full ({self._queue.maxsize} pending)"
                ) from None
            self._inflight_bytes += cost
            self._inflight_gauge.set(self._inflight_bytes)
            self._recorder.record_submitted()
            self._recorder.note_enqueued()
        # The future resolves exactly once (result, exception or
        # cancellation), whatever path the request takes — release the
        # admission budget there, not at N scattered outcome sites.
        # Registered outside the lock: a future that resolved already
        # runs the callback synchronously, and _release re-takes the lock.
        pending.future.add_done_callback(lambda _f: self._release(cost))
        return pending.future, pending

    def _release(self, cost: int) -> None:
        with self._lock:
            self._inflight_bytes = max(0, self._inflight_bytes - cost)
            self._inflight_gauge.set(self._inflight_bytes)

    def align(
        self,
        target: Sequence | np.ndarray | None = None,
        query: Sequence | np.ndarray | None = None,
        config: LastzConfig | None = None,
        options: FastzOptions | None = None,
        *,
        anchors: Anchors | None = None,
        timeout_s: float | None = None,
        target_ref: str | None = None,
        query_ref: str | None = None,
    ) -> FastzResult:
        """Blocking convenience wrapper: submit and wait for the result.

        ``timeout_s`` is one budget for the whole call: time already
        spent queueing is deducted from the result wait (it used to be
        spent twice — once as the queue deadline, once as the ``result``
        timeout).  If the wait times out, still-queued work is cancelled
        and already-running work is marked abandoned so it is not counted
        ``completed`` when it eventually finishes.
        """
        start = time.monotonic()
        future, pending = self._submit(
            target,
            query,
            config,
            options,
            anchors=anchors,
            timeout_s=timeout_s,
            target_ref=target_ref,
            query_ref=query_ref,
        )
        if timeout_s is None:
            return future.result()
        remaining = timeout_s - (time.monotonic() - start)
        try:
            return future.result(timeout=max(0.0, remaining))
        except FutureTimeoutError:
            if pending is not None:
                pending.abandoned = True
                future.cancel()
            raise

    def align_stream(
        self,
        target: Sequence | np.ndarray | None = None,
        query: Sequence | np.ndarray | None = None,
        config: LastzConfig | None = None,
        options: FastzOptions | None = None,
        *,
        target_ref: str | None = None,
        query_ref: str | None = None,
        on_partial=None,
        should_abort=None,
        chunk_bp: int | None = None,
    ) -> FastzResult:
        """Run one alignment with the streaming pipeline, on *this* thread.

        Streaming runs bypass the micro-batcher — overlap comes from the
        run's own producer/consumer stages, not from fusing with other
        requests — so the caller's thread (an HTTP handler, typically)
        does the work and ``on_partial`` fires inline as extension
        batches complete.  The result is bit-identical to :meth:`align`
        with the same inputs.  ``should_abort`` is polled between batches
        (the HTTP layer's graceful drain hooks in here) and aborts with
        :class:`~repro.core.streaming.StreamAborted`.  By-ref sides
        resolve against the store; a store-cached seed table supplies the
        censor set so the seeding stage skips the target count pass.
        """
        from ..core.streaming import DEFAULT_CHUNK_BP, run_fastz_streaming

        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shut down")
        config = config or self.default_config
        options = options or self.default_options

        def resolve(value, ref, *, target_side):
            if ref is None:
                if value is None:
                    raise ValueError(
                        "each side needs either a sequence or a reference digest"
                    )
                codes = value.codes if isinstance(value, Sequence) else value
                return np.asarray(codes), None
            if value is not None:
                raise ValueError(
                    "give a sequence or a reference digest per side, not both"
                )
            if self._store is None:
                raise ValueError(
                    "align-by-ref requires a service configured with store="
                )
            stored = self._store.get(ref)
            table = None
            if target_side:
                table = self._store.seed_table(
                    stored.digest,
                    k=config.seed_length,
                    spaced_pattern=config.spaced_pattern,
                )
            return stored.codes, table

        t_codes, seed_table = resolve(target, target_ref, target_side=True)
        q_codes, _ = resolve(query, query_ref, target_side=False)
        self._recorder.record_submitted()
        start = time.monotonic()
        try:
            result = run_fastz_streaming(
                t_codes,
                q_codes,
                config,
                options,
                seed_table=seed_table,
                chunk_bp=chunk_bp or self.stream_chunk_bp or DEFAULT_CHUNK_BP,
                on_partial=on_partial,
                should_abort=should_abort,
            )
        except Exception:
            self._recorder.record_failed()
            raise
        finally:
            # The handler thread ran lockstep extension batches; drop its
            # thread-local arena slabs instead of pinning them to a
            # connection-lifetime thread.
            from ..align.arena import release_thread_arenas

            release_thread_arenas()
        self._recorder.record_completed(time.monotonic() - start)
        return result

    # -- introspection -------------------------------------------------------

    def stats(self) -> ServiceStats:
        """A consistent snapshot of queue depth, latency and cache health."""
        return self._recorder.snapshot(
            queue_depth=self._recorder.queue_depth,
            cache=self._cache.stats,
            pool=self._pool.stats() if self._pool is not None else None,
            fleet=self._fleet.stats() if self._fleet is not None else None,
        )

    @property
    def pool(self) -> WorkerPool | None:
        """The multiprocess backend, or None on the in-process backend."""
        return self._pool

    @property
    def fleet(self):
        """The fleet scheduler extensions route through, or None."""
        return self._fleet

    @property
    def store(self) -> ReferenceStore | None:
        """The reference store backing by-ref submissions, if configured."""
        return self._store

    def metrics_text(self) -> str:
        """Prometheus text exposition for the ``GET /metrics`` endpoint.

        Renders the recorder's registry (the same counters ``/stats``
        reads) plus, when process-wide observability is enabled, the
        global :mod:`repro.obs` registry (pipeline/gpusim families).
        """
        registry = self._recorder.registry
        cache = self._cache.stats
        cache_gauge = registry.gauge(
            "repro_service_cache", "Result-cache state by field."
        )
        cache_gauge.labels(field="hits").set(cache.hits)
        cache_gauge.labels(field="misses").set(cache.misses)
        cache_gauge.labels(field="evictions").set(cache.evictions)
        cache_gauge.labels(field="size").set(cache.size)
        cache_gauge.labels(field="capacity").set(cache.capacity)
        text = registry.render()
        if self._fleet is not None and self._fleet.registry is not registry:
            # An externally-built scheduler keeps its own registry; splice
            # its families in so /v1/metrics stays the one scrape target.
            text += self._fleet.registry.render()
        global_registry = obs.get_registry()
        if global_registry.enabled and global_registry is not registry:
            text += global_registry.render()
        return text

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work and stop the dispatcher.

        ``drain=True`` completes every already-queued request first;
        ``drain=False`` cancels queued requests (their futures raise
        ``CancelledError``).  Idempotent.
        """
        with self._lock:
            already = self._closed
            self._closed = True
        if not already:
            if not drain:
                self._dispatcher.abort.set()
            self._dispatcher.signal_shutdown()
        self._dispatcher.thread.join(timeout)
        if self._pool is not None:
            self._pool.close()
        if self._fleet is not None:
            self._fleet.close()

    def __enter__(self) -> "AlignmentService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)
