"""Bounded, thread-safe LRU cache of alignment results.

Keys are :attr:`~repro.service.request.AlignmentRequest.cache_key` digests;
values are whole :class:`~repro.core.pipeline.FastzResult` objects (treated
as immutable once published).  The cache counts hits, misses and evictions
for the :class:`~repro.service.stats.ServiceStats` snapshot.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "ResultCache"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ResultCache:
    """LRU with an entry-count cap; ``capacity=0`` disables caching."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str):
        """Return the cached value, refreshing recency, or ``None``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: str, value) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )
