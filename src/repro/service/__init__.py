"""Concurrent alignment serving: micro-batching, caching, backpressure.

The serving layer the ROADMAP's "heavy traffic" north star asks for:
:class:`AlignmentService` accepts many concurrent alignment requests,
fuses them into bin-aware lockstep batches over the struct-of-arrays
engine (:mod:`repro.align.batch`), caches results in a keyed LRU, and
degrades predictably under load (bounded queue, admission control,
deadlines, drain-aware shutdown).  With ``pool_workers > 0`` the fused
batches are sharded across a fault-tolerant multiprocess
:class:`~repro.service.pool.WorkerPool` — bit-identical results on
multiple cores.  ``repro serve`` exposes it over versioned JSON/HTTP
(:mod:`repro.service.http`, ``/v1/*``).
"""

from .batcher import BatchPolicy, DeadlineExceeded
from .cache import CacheStats, ResultCache
from .http import ServiceHTTPServer, make_server
from .pool import PoolError, WorkerPool
from .request import AlignmentRequest
from .service import (
    AlignmentService,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
)
from .stats import ServiceStats

__all__ = [
    "AlignmentRequest",
    "AlignmentService",
    "BatchPolicy",
    "CacheStats",
    "DeadlineExceeded",
    "PoolError",
    "ResultCache",
    "ServiceClosed",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceOverloaded",
    "ServiceStats",
    "WorkerPool",
    "make_server",
]
