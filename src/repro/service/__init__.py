"""Concurrent alignment serving: micro-batching, caching, backpressure.

The serving layer the ROADMAP's "heavy traffic" north star asks for:
:class:`AlignmentService` accepts many concurrent alignment requests,
fuses them into bin-aware lockstep batches over the struct-of-arrays
engine (:mod:`repro.align.batch`), caches results in a keyed LRU, and
degrades predictably under load (bounded queue, deadlines, drain-aware
shutdown).  ``repro serve`` exposes it over JSON/HTTP
(:mod:`repro.service.http`).
"""

from .batcher import BatchPolicy, DeadlineExceeded
from .cache import CacheStats, ResultCache
from .http import ServiceHTTPServer, make_server
from .request import AlignmentRequest
from .service import (
    AlignmentService,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
)
from .stats import ServiceStats

__all__ = [
    "AlignmentRequest",
    "AlignmentService",
    "BatchPolicy",
    "CacheStats",
    "DeadlineExceeded",
    "ResultCache",
    "ServiceClosed",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceOverloaded",
    "ServiceStats",
    "make_server",
]
