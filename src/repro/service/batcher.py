"""Dynamic micro-batching: drain, fuse, extend, resolve.

The dispatcher is one daemon thread looping over a bounded request queue:

1. **Drain** — block for the first pending request, then keep collecting
   until either ``max_batch`` requests are in hand or ``max_wait_ms`` has
   elapsed since the first one (the classic latency/throughput dial of
   dynamic batching servers).
2. **Fuse** — group the batch by
   :attr:`~repro.service.request.AlignmentRequest.fuse_key` (scoring
   scheme + options); within a group, prepare each request (anchor
   selection) and concatenate every anchor's left/right extension
   problems into one suffix list.
3. **Extend** — run the fused list through
   :func:`~repro.core.pipeline.extend_suffixes_shard`, which resolves the
   request's configured engine from the :mod:`repro.align.engines`
   registry (lockstep inspector plus the bin-aware executor for the
   batched/wholebin engines), so short and long extensions from
   *different requests* still never share a lockstep batch.  With a :class:`~repro.service.pool.WorkerPool` backend the
   fused list is instead sharded LPT-balanced across persistent worker
   processes — bit-identical records, multiple cores; a broken pool
   (:class:`~repro.service.pool.PoolError`) degrades the batch back to
   the in-process path instead of failing it.  With a
   :class:`~repro.fleet.scheduler.FleetScheduler` attached, the fused
   group is *submitted* rather than run: the scheduler places it on the
   least-loaded backend (in-process, pool, or simulated GPU) and the
   dispatcher moves straight on to draining the next batch — resolution
   happens from the fleet's completion callback.  Because every backend
   ultimately calls the same shard kernel on identical inputs, the
   records stay bit-identical regardless of placement.
4. **Resolve** — split the per-anchor records back per request, fold each
   into a :class:`~repro.core.pipeline.FastzResult` and resolve its
   future.  Results are bit-identical to a direct ``run_fastz`` call
   because every extension task is independent of its batch-mates.

A poisoned request (bad codes, hostile anchors...) must only fail its own
future: preparation failures are caught per request, and if the *fused*
extension itself raises, the group is retried one request at a time so the
exception lands on the culprit alone.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from .. import obs
from ..align.arena import release_thread_arenas
from ..core.pipeline import extend_suffixes_shard, finish_fastz, prepare_fastz
from .cache import ResultCache
from .pool import PoolError, WorkerPool
from .request import AlignmentRequest
from .stats import StatsRecorder

__all__ = ["BatchPolicy", "DeadlineExceeded", "Dispatcher", "Pending"]


class DeadlineExceeded(Exception):
    """The request's deadline passed before it could be dispatched."""


@dataclass(frozen=True)
class BatchPolicy:
    """The dispatcher's latency/throughput dial."""

    #: Most requests fused into one dispatch (1 = no cross-request batching).
    max_batch: int = 32
    #: How long the dispatcher holds an under-full batch open for stragglers.
    max_wait_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")


@dataclass
class Pending:
    """One queued request with its resolution future and timing."""

    request: AlignmentRequest
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    #: Absolute ``time.monotonic()`` deadline, or None.
    deadline: float | None = None
    #: Set by ``AlignmentService.align`` when the caller's result wait
    #: timed out after dispatch began: the work still runs (and is
    #: cached), but it is recorded ``abandoned`` instead of ``completed``.
    abandoned: bool = False
    #: Fleet dispatch class (interactive=0 overtakes batch=1); ordering
    #: only, never results.  Ignored without a fleet scheduler.
    priority: int = 0

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline


#: Queue marker: no further requests will arrive, exit after the queue
#: contents in front of it are handled.
_SENTINEL = object()


class Dispatcher:
    """The dispatcher thread body plus its control flags."""

    def __init__(
        self,
        requests: "queue.Queue",
        policy: BatchPolicy,
        cache: ResultCache,
        recorder: StatsRecorder,
        *,
        pool: WorkerPool | None = None,
        fleet=None,
    ) -> None:
        self._queue = requests
        self._policy = policy
        self._cache = cache
        self._recorder = recorder
        self._pool = pool
        #: A :class:`~repro.fleet.scheduler.FleetScheduler`; when set,
        #: fused extension batches are submitted to it and resolved from
        #: completion callbacks, so the dispatcher pipelines group after
        #: group across the fleet's backends instead of blocking on each.
        self._fleet = fleet
        #: When set, drained requests are cancelled instead of executed.
        self.abort = threading.Event()
        self.thread = threading.Thread(
            target=self._run, name="repro-align-dispatcher", daemon=True
        )

    def start(self) -> None:
        self.thread.start()

    def signal_shutdown(self) -> None:
        """Enqueue the sentinel; everything ahead of it still executes."""
        self._queue.put(_SENTINEL)

    # -- thread body ---------------------------------------------------------

    def _run(self) -> None:
        # The dispatcher thread owns the service's warm lockstep arenas
        # (in-process extension path): every fused batch it runs through
        # the pipeline reuses the same slabs via thread_arena().  Drop
        # them when the thread retires so the memory dies with it.
        try:
            while True:
                item = self._queue.get()
                if item is _SENTINEL:
                    return
                self._recorder.note_dequeued()
                batch, saw_sentinel = self._collect(item)
                try:
                    self._dispatch(batch)
                except BaseException:  # pragma: no cover - last-resort guard
                    for pending in batch:
                        if not pending.future.done():
                            pending.future.cancel()
                    raise
                if saw_sentinel:
                    return
        finally:
            release_thread_arenas()

    def _collect(self, first) -> tuple[list[Pending], bool]:
        """Drain up to ``max_batch`` requests within the ``max_wait`` window."""
        batch = [first]
        horizon = time.monotonic() + self._policy.max_wait_ms / 1e3
        while len(batch) < self._policy.max_batch:
            remaining = horizon - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _SENTINEL:
                return batch, True
            self._recorder.note_dequeued()
            batch.append(item)
        return batch, False

    def _dispatch(self, batch: list[Pending]) -> None:
        """Weed out dead requests, then execute the live ones fused."""
        now = time.monotonic()
        live: list[Pending] = []
        for pending in batch:
            if self.abort.is_set():
                if pending.future.cancel():
                    self._recorder.record_cancelled()
                continue
            if pending.expired:
                self._recorder.record_timed_out()
                if pending.future.set_running_or_notify_cancel():
                    pending.future.set_exception(
                        DeadlineExceeded("request deadline passed while queued")
                    )
                continue
            if pending.future.set_running_or_notify_cancel():
                self._recorder.record_queue_wait(now - pending.enqueued_at)
                live.append(pending)
            else:
                self._recorder.record_cancelled()
        if live:
            self._recorder.record_batch(len(live))
            with obs.span("service.dispatch", requests=len(live)):
                self._execute(live)

    # -- fused execution -----------------------------------------------------

    def _execute(self, batch: list[Pending]) -> None:
        groups: dict[object, list[Pending]] = {}
        for pending in batch:
            groups.setdefault(pending.request.fuse_key, []).append(pending)
        for group in groups.values():
            self._execute_group(group)

    def _execute_group(self, group: list[Pending]) -> None:
        prepared = []
        with obs.span("service.fuse", requests=len(group)) as fuse_span:
            for pending in group:
                request = pending.request
                try:
                    prepared.append(
                        (
                            pending,
                            prepare_fastz(
                                request.target,
                                request.query,
                                request.config,
                                request.options,
                                anchors=request.anchors,
                                seed_table=request.seed_table,
                            ),
                        )
                    )
                except Exception as exc:
                    self._fail(pending, exc)
            fuse_span.set(
                prepared=len(prepared),
                anchors=sum(prep.n_anchors for _, prep in prepared),
            )
        if not prepared:
            return

        scheme = prepared[0][1].scheme
        options = prepared[0][1].options
        tile = prepared[0][1].tile
        if self._fleet is not None:
            self._submit_group_to_fleet(prepared, scheme, options, tile)
            return
        n_tasks = 2 * sum(prep.n_anchors for _, prep in prepared)
        try:
            with obs.span("service.extend", tasks=n_tasks):
                fused = self._extend_fused(
                    group[0].request.fuse_key, prepared, scheme, options, tile
                )
        except Exception:
            # A poisoned request broke the fused batch.  Re-run one request
            # at a time so the exception resolves only the culprit's future.
            for pending, prep in prepared:
                try:
                    per_anchor = extend_suffixes_shard(
                        prep.suffixes(), scheme, options, tile
                    )
                    self._resolve(pending, prep, per_anchor)
                except Exception as exc:
                    self._fail(pending, exc)
            return

        offset = 0
        for pending, prep in prepared:
            per_anchor = fused[offset : offset + prep.n_anchors]
            offset += prep.n_anchors
            try:
                self._resolve(pending, prep, per_anchor)
            except Exception as exc:
                self._fail(pending, exc)

    def _submit_group_to_fleet(self, prepared, scheme, options, tile) -> None:
        """Hand one fused group to the fleet; resolve from its callback.

        The dispatcher thread does not wait: the group's future carries a
        completion callback (running on a fleet worker thread) that
        slices the fused records back per request and resolves each
        future, so consecutive groups pipeline across the fleet's
        backends.  A group with any interactive member dispatches at
        interactive priority — one batch request must not demote the
        interactive requests fused with it.

        Failure degrades, never loses work: a fleet-level failure
        (:class:`~repro.fleet.scheduler.FleetError`, every backend gone)
        or a poisoned fused batch re-runs the group one request at a time
        in-process, so the exception lands on the culprit alone — the
        same isolation contract as the non-fleet path.
        """
        suffixes: list = []
        for _, prep in prepared:
            suffixes.extend(prep.suffixes())
        priority = min(pending.priority for pending, _ in prepared)
        fuse_key = prepared[0][0].request.fuse_key

        def finish(fused) -> None:
            offset = 0
            for pending, prep in prepared:
                per_anchor = fused[offset : offset + prep.n_anchors]
                offset += prep.n_anchors
                try:
                    self._resolve(pending, prep, per_anchor)
                except Exception as exc:
                    self._fail(pending, exc)

        def degrade() -> None:
            for pending, prep in prepared:
                try:
                    per_anchor = extend_suffixes_shard(
                        prep.suffixes(), scheme, options, tile
                    )
                    self._resolve(pending, prep, per_anchor)
                except Exception as exc:
                    self._fail(pending, exc)

        try:
            future = self._fleet.submit(
                suffixes, scheme, options, tile, key=fuse_key, priority=priority
            )
        except Exception:
            degrade()
            return

        def on_done(fut) -> None:
            try:
                fused = fut.result()
            except BaseException:
                degrade()
            else:
                finish(fused)

        future.add_done_callback(on_done)

    def _extend_fused(self, fuse_key, prepared, scheme, options, tile):
        """Run one fused group's extensions on the pool or in-process.

        On the pool path the group is dispatched as a *spec*: one code
        source per distinct sequence — a shared-memory handle for
        store-published references, inline codes otherwise — plus a
        ``(ti, qi, t, q)`` row per anchor.  Workers rebuild the suffix
        views locally, so a store-backed shard message carries digests +
        windows instead of pickled sequence bytes (bit-identical records
        either way).

        A :class:`PoolError` means the *backend* is broken (workers died
        repeatedly mid-shard, or the pool is closed) — not that the batch
        is poisoned — so the batch degrades to the in-process path rather
        than failing.  Any other exception propagates to the caller's
        per-request poison-isolation retry.
        """
        if self._pool is not None:
            sources: list = []
            source_ids: dict = {}

            def source_for(codes, handle) -> int:
                key = ("shm", handle[1]) if handle is not None else ("mem", id(codes))
                idx = source_ids.get(key)
                if idx is None:
                    idx = len(sources)
                    sources.append(handle if handle is not None else ("inline", codes))
                    source_ids[key] = idx
                return idx

            rows = []
            for pending, prep in prepared:
                request = pending.request
                ti = source_for(prep.t_codes, request.target_source)
                qi = source_for(prep.q_codes, request.query_source)
                rows.extend(
                    (ti, qi, t, q) for t, q in zip(prep.t_pos, prep.q_pos)
                )
            try:
                return self._pool.extend_spec(
                    sources, rows, scheme, options, tile, key=fuse_key
                )
            except PoolError:
                self._pool.note_degraded()
        suffixes = []
        for _, prep in prepared:
            suffixes.extend(prep.suffixes())
        return extend_suffixes_shard(suffixes, scheme, options, tile)

    def _resolve(self, pending: Pending, prep, per_anchor) -> None:
        with obs.span("service.resolve", anchors=prep.n_anchors):
            result = finish_fastz(prep, per_anchor)
            self._cache.put(pending.request.cache_key, result)
        if pending.abandoned:
            # The caller's result wait timed out after dispatch began: the
            # result is still cached, but nobody is waiting on it.
            self._recorder.record_abandoned()
            if not pending.future.done():
                pending.future.set_result(result)
            return
        self._recorder.record_completed(time.monotonic() - pending.enqueued_at)
        pending.future.set_result(result)

    def _fail(self, pending: Pending, exc: Exception) -> None:
        self._recorder.record_failed()
        pending.future.set_exception(exc)
