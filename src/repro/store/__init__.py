"""``repro.store`` — zero-copy reference store + persistent seed index.

References are registered once (``ReferenceStore.add`` / ``repro refs
add`` / ``POST /v1/references``) and served forever after by content
digest: 2-bit packed mmap-able files with N/soft-mask runs in a JSON
sidecar, per-reference persisted seed tables keyed by store version +
seeding parameters, and named shared-memory publication so pool dispatch
ships a digest + window instead of pickled sequence bytes.  See
DESIGN.md §14.
"""

from .shm import ShmPublisher, attach_codes, release_attachments
from .store import (
    ReferenceStore,
    StoreCorrupt,
    StoreError,
    StoredReference,
    UnknownReference,
    reference_digest,
)
from .twobit import STORE_VERSION, TwoBitError

__all__ = [
    "ReferenceStore",
    "STORE_VERSION",
    "ShmPublisher",
    "StoreCorrupt",
    "StoreError",
    "StoredReference",
    "TwoBitError",
    "UnknownReference",
    "attach_codes",
    "reference_digest",
    "release_attachments",
]
