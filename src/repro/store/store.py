"""Content-addressed reference store: register once, align by digest.

Every registered sequence lives under its content digest::

    <root>/<digest[:2]>/<digest>.2bit          packed codes (mmap-able)
    <root>/<digest[:2]>/<digest>.meta.json     name, length, N/mask runs
    <root>/<digest[:2]>/<digest>.seeds-<key>.npz  cached seed tables

The digest (:func:`reference_digest`) covers the codes and the soft-mask
runs under a versioned prefix — the same bytes always map to the same
key, so registration is idempotent and clients can align against
``ref:<digest>`` without ever re-uploading the sequence.  Golden digest
values are pinned in ``tests/store/test_digest.py``; changing the recipe
orphans every registered reference and seed cache, so it requires a
:data:`~repro.store.twobit.STORE_VERSION` bump and a deliberate test
update.

Reads are lazy and zero-copy where possible: :class:`StoredReference`
mmaps the packed payload and decodes windows (or the whole sequence) on
demand; nothing is materialised at ``get`` time.  Corrupt files — a
truncated 2-bit, an unreadable sidecar — surface as :class:`StoreCorrupt`
and never as silently wrong codes; re-registering the same sequence
repairs the entry in place.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from .. import obs
from ..genome.sequence import Sequence
from ..seeding import SeedTable, build_seed_table
from . import seedcache, twobit
from .twobit import STORE_VERSION, TwoBitError

__all__ = [
    "ReferenceStore",
    "StoreCorrupt",
    "StoreError",
    "StoredReference",
    "UnknownReference",
    "reference_digest",
]

#: Versioned domain prefix folded into every reference digest.  Part of
#: the pinned digest recipe — see the golden tests before touching it.
_DIGEST_DOMAIN = b"repro-ref-v1\x00"

#: In-memory LRU sizes: decoded references and seed tables are large, so
#: the store keeps only a handful hot; everything else re-reads the mmap.
_REF_CACHE_ENTRIES = 8
_TABLE_CACHE_ENTRIES = 8


class StoreError(RuntimeError):
    """Base class for reference-store failures."""


class UnknownReference(StoreError, KeyError):
    """No reference registered under this digest."""

    def __init__(self, digest: str) -> None:
        super().__init__(f"no reference registered under digest {digest!r}")
        self.digest = digest

    def __str__(self) -> str:
        # KeyError.__str__ reprs the message; keep it human-readable.
        return self.args[0]


class StoreCorrupt(StoreError):
    """A store file exists but cannot be trusted; re-register to repair."""


def reference_digest(codes: np.ndarray, mask_runs=()) -> str:
    """SHA-256 content digest of a reference (hex).

    Covers, in order: the versioned domain prefix, the sequence length,
    the raw code bytes, and each soft-mask ``[start, stop)`` run.  The
    name is deliberately excluded — the same bases registered under two
    names are the same reference.
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    h = hashlib.sha256()
    h.update(_DIGEST_DOMAIN)
    h.update(codes.size.to_bytes(8, "little"))
    h.update(codes.tobytes())
    for start, stop in mask_runs:
        h.update(int(start).to_bytes(8, "little"))
        h.update(int(stop).to_bytes(8, "little"))
    return h.hexdigest()


class StoredReference:
    """Lazy handle over one registered reference.

    Quacks enough like :class:`~repro.genome.sequence.Sequence` (``name``,
    ``codes``, ``__len__``) for the pipeline and the jobs runner to use it
    directly; the codes decode from the mmap on first touch and stay
    cached on the handle.
    """

    def __init__(
        self,
        store: "ReferenceStore",
        digest: str,
        *,
        name: str,
        length: int,
        n_runs,
        mask_runs,
    ) -> None:
        self.store = store
        self.digest = digest
        self.name = name
        self.length = int(length)
        self.n_runs = [(int(a), int(b)) for a, b in n_runs]
        self.mask_runs = [(int(a), int(b)) for a, b in mask_runs]
        self._packed: np.ndarray | None = None
        self._codes: np.ndarray | None = None
        self._mask: np.ndarray | None = None

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (
            f"StoredReference({self.digest[:12]}…, name={self.name!r}, "
            f"length={self.length})"
        )

    @property
    def packed(self) -> np.ndarray:
        """Zero-copy memmap over the 2-bit payload."""
        if self._packed is None:
            path = self.store._twobit_path(self.digest)
            try:
                twobit.read_header(path)
                self._packed = twobit.open_packed(path, self.length)
            except (TwoBitError, OSError) as exc:
                raise StoreCorrupt(str(exc)) from exc
            obs.gauge(
                "repro_store_bytes_mmap",
                "Bytes of packed reference payload currently memory-mapped",
            ).inc(self._packed.nbytes)
        return self._packed

    @property
    def codes(self) -> np.ndarray:
        """Decoded 2-bit codes (N runs restored); cached after first use."""
        if self._codes is None:
            codes = twobit.unpack_codes(self.packed, self.length, n_runs=self.n_runs)
            codes.setflags(write=False)
            self._codes = codes
        return self._codes

    @property
    def mask(self) -> np.ndarray | None:
        """Soft-mask boolean array, or ``None`` when nothing is masked."""
        if not self.mask_runs:
            return None
        if self._mask is None:
            mask = twobit.mask_from_runs(self.mask_runs, self.length)
            mask.setflags(write=False)
            self._mask = mask
        return self._mask

    def codes_window(self, start: int, stop: int) -> np.ndarray:
        """Decode just ``[start, stop)`` — touches only the needed pages."""
        start, stop = int(start), int(stop)
        if not (0 <= start <= stop <= self.length):
            raise IndexError(
                f"window [{start}, {stop}) out of range for length {self.length}"
            )
        if self._codes is not None:
            return self._codes[start:stop]
        lo_byte = start // 4
        hi_byte = (stop + 3) // 4
        chunk = twobit.unpack_codes(
            self.packed[lo_byte:hi_byte], min(hi_byte * 4, self.length) - lo_byte * 4
        )
        window = chunk[start - lo_byte * 4 : stop - lo_byte * 4]
        for run_start, run_stop in self.n_runs:
            lo = max(run_start, start) - start
            hi = min(run_stop, stop) - start
            if lo < hi:
                window[lo:hi] = 4
        return window

    def sequence(self) -> Sequence:
        """Materialise as a plain :class:`Sequence`."""
        return Sequence(self.name, self.codes)


class ReferenceStore:
    """Digest-keyed registry of 2-bit packed references + seed caches."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._refs: dict[str, StoredReference] = {}
        self._tables: dict[tuple[str, str], SeedTable] = {}

    # -- paths -------------------------------------------------------------
    def _shard_dir(self, digest: str) -> Path:
        return self.root / digest[:2]

    def _twobit_path(self, digest: str) -> Path:
        return self._shard_dir(digest) / f"{digest}.2bit"

    def _meta_path(self, digest: str) -> Path:
        return self._shard_dir(digest) / f"{digest}.meta.json"

    def _seeds_path(self, digest: str, key: str) -> Path:
        return self._shard_dir(digest) / f"{digest}.seeds-{key}.npz"

    # -- registration ------------------------------------------------------
    def add(
        self,
        sequence: Sequence | np.ndarray,
        *,
        name: str | None = None,
        mask: np.ndarray | None = None,
    ) -> str:
        """Register a sequence; returns its digest.  Idempotent by content.

        Re-adding an existing digest rewrites the files only when they
        fail validation — registration doubles as the repair path for a
        corrupt entry.
        """
        if isinstance(sequence, Sequence):
            codes = sequence.codes
            name = name if name is not None else sequence.name
        else:
            codes = np.ascontiguousarray(sequence, dtype=np.uint8)
            name = name if name is not None else "reference"
        mask_runs = twobit.runs_from_mask(mask) if mask is not None else []
        digest = reference_digest(codes, mask_runs)
        if self.contains(digest):
            return digest
        n_runs = twobit.runs_from_mask(np.asarray(codes) >= 4)
        shard = self._shard_dir(digest)
        shard.mkdir(parents=True, exist_ok=True)
        twobit.write_twobit(self._twobit_path(digest), codes)
        meta = {
            "digest": digest,
            "name": name,
            "length": int(np.asarray(codes).shape[0]),
            "store_version": STORE_VERSION,
            "n_runs": [[int(a), int(b)] for a, b in n_runs],
            "mask_runs": [[int(a), int(b)] for a, b in mask_runs],
        }
        meta_path = self._meta_path(digest)
        tmp = meta_path.with_name(meta_path.name + ".tmp")
        tmp.write_text(json.dumps(meta, indent=1) + "\n", encoding="ascii")
        tmp.replace(meta_path)
        self._refs.pop(digest, None)
        return digest

    # -- lookup ------------------------------------------------------------
    def contains(self, digest: str) -> bool:
        """True when a *valid* entry exists (corrupt entries read as absent)."""
        try:
            meta = self._read_meta(digest)
            length = twobit.read_header(self._twobit_path(digest))
        except (StoreError, TwoBitError):
            return False
        return length == meta["length"]

    def get(self, digest: str) -> StoredReference:
        """Open a registered reference (lazy; nothing is decoded yet)."""
        cached = self._refs.get(digest)
        if cached is not None:
            self._refs[digest] = self._refs.pop(digest)  # LRU bump
            obs.counter(
                "repro_store_hits_total", "Reference store lookups served"
            ).inc()
            return cached
        meta_path = self._meta_path(digest)
        if not meta_path.exists() and not self._twobit_path(digest).exists():
            obs.counter(
                "repro_store_misses_total", "Reference store lookups that failed"
            ).inc()
            raise UnknownReference(digest)
        meta = self._read_meta(digest)
        try:
            length = twobit.read_header(self._twobit_path(digest))
        except TwoBitError as exc:
            raise StoreCorrupt(str(exc)) from exc
        if length != meta["length"]:
            raise StoreCorrupt(
                f"{digest}: metadata says {meta['length']} bases, 2-bit file "
                f"holds {length}; re-register the reference"
            )
        ref = StoredReference(
            self,
            digest,
            name=meta["name"],
            length=meta["length"],
            n_runs=meta["n_runs"],
            mask_runs=meta["mask_runs"],
        )
        self._refs[digest] = ref
        while len(self._refs) > _REF_CACHE_ENTRIES:
            self._refs.pop(next(iter(self._refs)))
        obs.counter("repro_store_hits_total", "Reference store lookups served").inc()
        return ref

    def _read_meta(self, digest: str) -> dict:
        meta_path = self._meta_path(digest)
        if not meta_path.exists():
            raise UnknownReference(digest)
        try:
            meta = json.loads(meta_path.read_text(encoding="ascii"))
            return {
                "digest": str(meta["digest"]),
                "name": str(meta["name"]),
                "length": int(meta["length"]),
                "n_runs": [(int(a), int(b)) for a, b in meta["n_runs"]],
                "mask_runs": [(int(a), int(b)) for a, b in meta["mask_runs"]],
            }
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreCorrupt(
                f"{digest}: unreadable metadata sidecar ({exc}); "
                "re-register the reference"
            ) from exc

    def list(self) -> list[dict]:
        """All registered references: ``{digest, name, length, valid}``."""
        entries = []
        for meta_path in sorted(self.root.glob("??/*.meta.json")):
            digest = meta_path.name.removesuffix(".meta.json")
            try:
                meta = self._read_meta(digest)
                twobit.read_header(self._twobit_path(digest))
                valid = True
                name, length = meta["name"], meta["length"]
            except StoreError:
                valid, name, length = False, "?", 0
            except TwoBitError:
                meta = self._read_meta(digest)
                valid, name, length = False, meta["name"], meta["length"]
            entries.append(
                {"digest": digest, "name": name, "length": length, "valid": valid}
            )
        return entries

    def remove(self, digest: str) -> None:
        """Delete a reference and all of its cached seed tables."""
        if not self._meta_path(digest).exists() and not self._twobit_path(
            digest
        ).exists():
            raise UnknownReference(digest)
        self._refs.pop(digest, None)
        for key in [k for k in self._tables if k[0] == digest]:
            self._tables.pop(key)
        shard = self._shard_dir(digest)
        for path in shard.glob(f"{digest}.*"):
            path.unlink(missing_ok=True)
        if shard.exists() and not any(shard.iterdir()):
            shard.rmdir()

    def resolve(self, prefix: str) -> str:
        """Expand a unique digest prefix to the full digest."""
        prefix = prefix.lower()
        matches = sorted(
            {
                path.name.removesuffix(".meta.json")
                for path in self.root.glob(f"{prefix[:2]}*/{prefix}*.meta.json")
            }
        )
        if not matches:
            raise UnknownReference(prefix)
        if len(matches) > 1:
            raise StoreError(
                f"digest prefix {prefix!r} is ambiguous: "
                + ", ".join(m[:12] for m in matches)
            )
        return matches[0]

    # -- seed-table cache --------------------------------------------------
    def seed_table(
        self,
        digest: str,
        *,
        k: int = 19,
        spaced_pattern: str | None = None,
        masked: bool = False,
    ) -> SeedTable:
        """The reference's sorted seed table, building + persisting on miss.

        Cache key = store format version + seeding parameters.  By
        default the table is built *without* the reference's soft-mask —
        exactly what the inline pipeline computes, preserving by-ref /
        by-bytes bit-identity; ``masked=True`` bakes the registered mask
        in (separate cache key) for callers that seed mask-aware.
        """
        key = seedcache.seed_params_key(
            k=k, spaced_pattern=spaced_pattern, masked=masked
        )
        span = seedcache.table_span(k=k, spaced_pattern=spaced_pattern)
        cached = self._tables.get((digest, key))
        if cached is not None:
            self._tables[(digest, key)] = self._tables.pop((digest, key))
            obs.counter(
                "repro_store_seed_cache_hits_total",
                "Seed-table lookups served from cache",
            ).inc()
            return cached
        table = self.load_seed_table(
            digest, k=k, spaced_pattern=spaced_pattern, masked=masked
        )
        if table is None:
            obs.counter(
                "repro_store_seed_cache_misses_total",
                "Seed-table lookups that had to build",
            ).inc()
            ref = self.get(digest)
            with obs.span(
                "store.seed_table_build", digest=digest[:12], key=key
            ):
                table = build_seed_table(
                    ref.codes,
                    k=k,
                    spaced_pattern=spaced_pattern,
                    mask=ref.mask if masked else None,
                )
            seedcache.save_table(self._seeds_path(digest, key), table)
        else:
            obs.counter(
                "repro_store_seed_cache_hits_total",
                "Seed-table lookups served from cache",
            ).inc()
        assert table.span == span
        self._tables[(digest, key)] = table
        while len(self._tables) > _TABLE_CACHE_ENTRIES:
            self._tables.pop(next(iter(self._tables)))
        return table

    def load_seed_table(
        self,
        digest: str,
        *,
        k: int = 19,
        spaced_pattern: str | None = None,
        masked: bool = False,
    ) -> SeedTable | None:
        """Pure cache read: the persisted table or ``None``, never a build."""
        key = seedcache.seed_params_key(
            k=k, spaced_pattern=spaced_pattern, masked=masked
        )
        cached = self._tables.get((digest, key))
        if cached is not None:
            return cached
        return seedcache.load_table(
            self._seeds_path(digest, key),
            expect_span=seedcache.table_span(k=k, spaced_pattern=spaced_pattern),
        )
