"""2-bit packed sequence files: the on-disk format of the reference store.

The packing mirrors what faToTwoBit does for KegAlign-style pipelines: four
bases per byte (2 bits each, ``A=0 C=1 G=2 T=3``), with N positions packed
as ``A`` and recorded separately as ``[start, stop)`` interval runs in the
sidecar metadata — the payload itself never needs a fifth symbol, so it
stays exactly ``ceil(len / 4)`` bytes and can be ``np.memmap``-ed read-only.

File layout (all integers little-endian)::

    offset 0   magic   b"R2BT"
    offset 4   uint32  format version (:data:`STORE_VERSION`)
    offset 8   uint64  sequence length in bases
    offset 16  payload ceil(length / 4) bytes, base ``i`` in bits
               ``2*(i % 4)`` of byte ``i // 4`` (low bits first)

Corruption is detectable without reading the payload: the file size must
equal ``HEADER_SIZE + ceil(length / 4)`` exactly, and the magic/version
must match.  :func:`read_header` raises :class:`TwoBitError` otherwise —
a truncated or overwritten file is a clean error, never wrong codes.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from ..genome.alphabet import N_CODE

__all__ = [
    "HEADER_SIZE",
    "MAGIC",
    "STORE_VERSION",
    "TwoBitError",
    "open_packed",
    "pack_codes",
    "read_header",
    "runs_from_mask",
    "mask_from_runs",
    "unpack_codes",
    "write_twobit",
]

#: File magic of the packed-reference format.
MAGIC = b"R2BT"

#: Bump when the packed layout or digest recipe changes; part of the
#: header and of every seed-cache key, so stale files are rejected (or
#: rebuilt) instead of being misread.
STORE_VERSION = 1

#: Fixed header: magic + uint32 version + uint64 length.
HEADER_SIZE = 16

_HEADER = struct.Struct("<4sIQ")


class TwoBitError(ValueError):
    """A 2-bit file is missing, truncated or not in this format."""


def payload_size(length: int) -> int:
    """Packed payload bytes for a sequence of ``length`` bases."""
    return (int(length) + 3) // 4


def pack_codes(codes: np.ndarray) -> np.ndarray:
    """Pack 2-bit codes (N packed as A) into a ``uint8`` payload array."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.ndim != 1:
        raise ValueError("codes must be one-dimensional")
    if codes.size and codes.max() > N_CODE:
        raise ValueError("codes contain values outside [0, 4]")
    safe = np.where(codes >= 4, 0, codes).astype(np.uint8)
    n_bytes = payload_size(safe.size)
    padded = np.zeros(n_bytes * 4, dtype=np.uint8)
    padded[: safe.size] = safe
    packed = (
        padded[0::4]
        | (padded[1::4] << np.uint8(2))
        | (padded[2::4] << np.uint8(4))
        | (padded[3::4] << np.uint8(6))
    )
    return packed.astype(np.uint8)


def unpack_codes(
    packed: np.ndarray, length: int, *, n_runs=()
) -> np.ndarray:
    """Unpack a payload array back into codes, restoring N runs.

    ``packed`` may be a zero-copy :func:`numpy.memmap` view straight off a
    store file; only the output array is materialised.
    """
    packed = np.asarray(packed, dtype=np.uint8)
    length = int(length)
    if packed.size < payload_size(length):
        raise TwoBitError(
            f"payload holds {packed.size * 4} bases, {length} expected"
        )
    out = np.empty(packed.size * 4, dtype=np.uint8)
    out[0::4] = packed & np.uint8(3)
    out[1::4] = (packed >> np.uint8(2)) & np.uint8(3)
    out[2::4] = (packed >> np.uint8(4)) & np.uint8(3)
    out[3::4] = (packed >> np.uint8(6)) & np.uint8(3)
    out = out[:length]
    for start, stop in n_runs:
        out[int(start) : int(stop)] = N_CODE
    return out


def runs_from_mask(flags: np.ndarray) -> list[tuple[int, int]]:
    """Collapse a boolean per-base array into ``[start, stop)`` runs."""
    flags = np.asarray(flags, dtype=bool)
    if flags.ndim != 1:
        raise ValueError("flags must be one-dimensional")
    if not flags.any():
        return []
    edges = np.diff(flags.astype(np.int8))
    starts = (np.flatnonzero(edges == 1) + 1).tolist()
    stops = (np.flatnonzero(edges == -1) + 1).tolist()
    if flags[0]:
        starts.insert(0, 0)
    if flags[-1]:
        stops.append(int(flags.size))
    return [(int(s), int(e)) for s, e in zip(starts, stops)]


def mask_from_runs(runs, length: int) -> np.ndarray:
    """Expand ``[start, stop)`` runs back into a boolean per-base array."""
    flags = np.zeros(int(length), dtype=bool)
    for start, stop in runs:
        flags[int(start) : int(stop)] = True
    return flags


def write_twobit(path: str | Path, codes: np.ndarray) -> None:
    """Write a packed file atomically (tmp + rename)."""
    codes = np.asarray(codes, dtype=np.uint8)
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(_HEADER.pack(MAGIC, STORE_VERSION, codes.size))
        handle.write(pack_codes(codes).tobytes())
        handle.flush()
    tmp.replace(path)


def read_header(path: str | Path) -> int:
    """Validate a packed file's header and size; returns the length.

    Raises :class:`TwoBitError` on any mismatch — wrong magic, unknown
    version, or a file size that disagrees with the recorded length
    (truncation or trailing garbage).
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as handle:
            raw = handle.read(HEADER_SIZE)
    except OSError as exc:
        raise TwoBitError(f"cannot read {path}: {exc}") from exc
    if len(raw) < HEADER_SIZE:
        raise TwoBitError(f"{path} is truncated ({size} bytes, no header)")
    magic, version, length = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise TwoBitError(f"{path} is not a repro 2-bit file (magic {magic!r})")
    if version != STORE_VERSION:
        raise TwoBitError(
            f"{path} has store format v{version}, this build reads "
            f"v{STORE_VERSION}; re-register the reference"
        )
    expected = HEADER_SIZE + payload_size(length)
    if size != expected:
        raise TwoBitError(
            f"{path} is corrupt: {size} bytes on disk, {expected} expected "
            f"for {length} bases; re-register the reference"
        )
    return int(length)


def open_packed(path: str | Path, length: int) -> np.ndarray:
    """Zero-copy read-only ``np.memmap`` over a packed file's payload."""
    return np.memmap(
        Path(path),
        dtype=np.uint8,
        mode="r",
        offset=HEADER_SIZE,
        shape=(payload_size(length),),
    )
