"""Persistent per-reference seed-table cache.

The target half of :func:`repro.seeding.find_seeds` — pack every window
into a word, drop invalid windows, stable-sort — depends only on the
reference and the seeding parameters, so it is pure precomputable state
(Sundram's seed-filter-extend dataflow observation).  The store persists
each :class:`~repro.seeding.SeedTable` as a ``.npz`` beside the 2-bit
file, keyed by:

* the store format version (:data:`~repro.store.twobit.STORE_VERSION`) —
  a format bump orphans every cached table at once, and
* a seeding-parameter key (``k<k>`` or ``p<pattern>``) — tables for
  different seed shapes coexist.

A cached table whose recorded span disagrees with its key's span (a
hand-edited or torn file) is treated as a miss, never served.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np

from .. import obs
from ..seeding import SeedTable
from .twobit import STORE_VERSION

__all__ = ["load_table", "save_table", "seed_params_key", "table_span"]

# One warning per process; every degrade is still counted.
_degrade_warned = False


def _note_degraded(path: Path, reason: str) -> None:
    """Record a cache entry that could not be served (rebuild follows).

    The degrade itself stays silent-by-design — the cache is advisory —
    but it must not be *invisible*: a store on a flaky disk rebuilding
    every table on every run is a real performance bug.  Every degrade
    increments ``repro_store_seed_cache_degraded_total``; the first one
    per process also warns with the path and reason.
    """
    global _degrade_warned
    obs.counter(
        "repro_store_seed_cache_degraded_total",
        "Cached seed tables that failed to load and degraded to a rebuild.",
    ).inc()
    if not _degrade_warned:
        _degrade_warned = True
        warnings.warn(
            f"seed-table cache degraded to a rebuild ({reason}): {path}; "
            "further degrades are counted in "
            "repro_store_seed_cache_degraded_total without warning again",
            RuntimeWarning,
            stacklevel=4,
        )


def seed_params_key(
    *, k: int = 19, spaced_pattern: str | None = None, masked: bool = False
) -> str:
    """Filename-safe cache key for one set of seeding parameters.

    ``masked`` tables bake the reference's soft-mask into the validity
    filter and are keyed apart from unmasked ones — the default pipeline
    (:func:`~repro.lastz.pipeline.select_anchors`) seeds unmasked, and
    serving it a masked table would break by-ref/by-bytes bit-identity.
    """
    if spaced_pattern is not None:
        if not spaced_pattern or any(c not in "01" for c in spaced_pattern):
            raise ValueError("pattern must be a non-empty string of 0s and 1s")
        base = f"v{STORE_VERSION}-p{spaced_pattern}"
    else:
        base = f"v{STORE_VERSION}-k{int(k)}"
    return base + "-m" if masked else base


def table_span(*, k: int = 19, spaced_pattern: str | None = None) -> int:
    """Word footprint in bases for one set of seeding parameters."""
    return len(spaced_pattern) if spaced_pattern is not None else int(k)


def save_table(path: str | Path, table: SeedTable) -> None:
    """Persist a seed table atomically (tmp + rename)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez(
            handle,
            words=np.asarray(table.words, dtype=np.uint64),
            positions=np.asarray(table.positions, dtype=np.int64),
            span=np.int64(table.span),
        )
    tmp.replace(path)


def load_table(
    path: str | Path, *, expect_span: int | None = None
) -> SeedTable | None:
    """Load a cached table; ``None`` on missing/unreadable/mismatched files.

    The cache is advisory — any problem degrades to a rebuild, never an
    error and never a wrong table.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        with np.load(path) as data:
            words = np.asarray(data["words"], dtype=np.uint64)
            positions = np.asarray(data["positions"], dtype=np.int64)
            span = int(data["span"])
    except Exception as exc:
        _note_degraded(path, f"unreadable: {type(exc).__name__}: {exc}")
        return None
    if words.shape != positions.shape or words.ndim != 1:
        _note_degraded(path, "malformed arrays")
        return None
    if expect_span is not None and span != expect_span:
        _note_degraded(path, f"span {span} != expected {expect_span}")
        return None
    return SeedTable(words=words, positions=positions, span=span)
