"""Cross-process reference sharing via ``multiprocessing.shared_memory``.

The worker-pool dispatch path used to pickle every shard's sequence
suffixes into the work queue — megabytes per shard for whole-genome
inputs.  With the store, the parent publishes a registered reference's
codes into one named shared-memory segment and dispatch messages carry
only ``(digest-derived name, length)``; each worker attaches once and
caches the mapping for the life of the process.

Lifecycle: the parent (publisher) owns every segment and unlinks them all
at pool close.  Workers only ever attach.  On POSIX under Python 3.11,
``SharedMemory(name=..., create=False)`` *also* registers the segment
with the ``resource_tracker``, which would unlink it when the first
worker exits — so the attach helper immediately unregisters it again
(``track=False`` exists only from 3.13).  Without this, one worker death
would tear the segment out from under its siblings.
"""

from __future__ import annotations

import warnings
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["ShmPublisher", "attach_codes", "release_attachments"]

# One warning per process; every failed unregister is still counted.
_unregister_warned = False


def _note_unregister_failed(name: str, exc: BaseException) -> None:
    """Count a failed resource-tracker unregister instead of hiding it.

    Attachment still succeeds — the view is valid either way — but a
    tracked attach means this worker's exit may unlink the segment out
    from under its siblings, which then crash on the next dispatch.  The
    counter (``repro_shm_attach_errors_total``) makes that failure mode
    diagnosable; the first occurrence per process also warns.
    """
    global _unregister_warned
    from .. import obs

    obs.counter(
        "repro_shm_attach_errors_total",
        "Shared-memory attaches whose resource-tracker unregister failed.",
    ).inc()
    if not _unregister_warned:
        _unregister_warned = True
        warnings.warn(
            f"could not unregister shared-memory segment {name!r} from the "
            f"resource tracker ({type(exc).__name__}: {exc}); this worker's "
            "exit may unlink the segment under sibling workers (counted in "
            "repro_shm_attach_errors_total)",
            RuntimeWarning,
            stacklevel=3,
        )

#: Soft cap on total published bytes per publisher; past it, publish()
#: declines (returns None) and dispatch falls back to inline codes.
DEFAULT_BYTE_CAP = 1 << 30


class ShmPublisher:
    """Parent-side registry of published reference segments.

    ``publish`` is idempotent per key and returns the ``(name, length)``
    handle a worker needs to attach, or ``None`` when the byte cap would
    be exceeded (callers then ship codes inline — slower, never wrong).
    """

    def __init__(self, *, byte_cap: int = DEFAULT_BYTE_CAP) -> None:
        self._byte_cap = int(byte_cap)
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._lengths: dict[str, int] = {}
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def publish(self, key: str, codes: np.ndarray) -> tuple[str, int] | None:
        """Copy ``codes`` into a named segment; returns ``(name, length)``."""
        if key in self._segments:
            return self._segments[key].name, self._lengths[key]
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        if codes.size == 0 or self._bytes + codes.size > self._byte_cap:
            return None
        try:
            seg = shared_memory.SharedMemory(create=True, size=codes.size)
        except OSError:
            return None
        view = np.ndarray((codes.size,), dtype=np.uint8, buffer=seg.buf)
        view[:] = codes
        del view
        self._segments[key] = seg
        self._lengths[key] = int(codes.size)
        self._bytes += int(codes.size)
        return seg.name, int(codes.size)

    def handle(self, key: str) -> tuple[str, int] | None:
        seg = self._segments.get(key)
        if seg is None:
            return None
        return seg.name, self._lengths[key]

    def close(self) -> None:
        """Unlink every published segment (parent-only teardown)."""
        for seg in self._segments.values():
            try:
                seg.close()
                seg.unlink()
            except OSError:
                pass
        self._segments.clear()
        self._lengths.clear()
        self._bytes = 0


# Worker-side attachment cache: one mapping per (name) per process.  The
# SharedMemory objects must stay referenced for as long as any ndarray
# view into them is alive, so the cache holds both.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def attach_codes(name: str, length: int) -> np.ndarray:
    """Attach to a published segment; returns a read-only codes view.

    Cached per process: repeated shards referencing the same reference
    reuse the first mapping.
    """
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[1]
    seg = shared_memory.SharedMemory(name=name, create=False)
    try:
        # Python 3.11 registers attaches with the resource tracker on
        # POSIX, which would unlink the segment when this process exits.
        # Ownership stays with the publisher; undo the registration.
        resource_tracker.unregister(seg._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception as exc:
        _note_unregister_failed(name, exc)
    view = np.ndarray((int(length),), dtype=np.uint8, buffer=seg.buf)
    view.setflags(write=False)
    _ATTACHED[name] = (seg, view)
    return view


def release_attachments() -> None:
    """Drop this process's attachment cache (worker exit path)."""
    for seg, _view in _ATTACHED.values():
        try:
            seg.close()
        except OSError:
            pass
    _ATTACHED.clear()
