"""Human-readable reports over simulated kernels.

:func:`render_utilization` draws a text histogram of per-SM busy time for
one kernel — the visual counterpart of the bulk-synchronous load-imbalance
argument (§3.3): a kernel that mixes long and short extensions shows a
few tall bars (the SMs stuck with monsters) over a sea of idle ones, and
length binning flattens the profile.
"""

from __future__ import annotations

import numpy as np

from .kernel import KernelTiming

__all__ = ["render_utilization", "utilization_summary"]


def utilization_summary(timing: KernelTiming) -> dict[str, float]:
    """Aggregate utilisation statistics of one kernel."""
    if timing.sm_finish is None or timing.sm_finish.size == 0:
        return {"mean_busy_fraction": 0.0, "idle_sms": 0.0, "imbalance": 0.0}
    finish = timing.sm_finish
    makespan = float(finish.max()) if finish.max() > 0 else 1.0
    return {
        "mean_busy_fraction": float(finish.mean() / makespan),
        "idle_sms": float(np.mean(finish < 0.01 * makespan)),
        "imbalance": timing.imbalance,
    }


def render_utilization(
    timing: KernelTiming,
    *,
    width: int = 60,
    max_rows: int = 16,
) -> str:
    """Text bar chart of per-SM busy times (downsampled to ``max_rows``)."""
    if timing.sm_finish is None or timing.sm_finish.size == 0:
        return "(no per-SM data)"
    finish = timing.sm_finish
    makespan = float(finish.max())
    if makespan <= 0:
        return "(idle kernel)"

    # Downsample SMs into row groups, keeping each group's max (the
    # bulk-synchronous bound) and mean.
    n = finish.size
    groups = np.array_split(np.arange(n), min(max_rows, n))
    lines = [
        f"per-SM busy time (makespan {makespan * 1e3:.3f} ms, "
        f"imbalance {100 * timing.imbalance:.0f}%)"
    ]
    for g in groups:
        gmax = float(finish[g].max())
        gmean = float(finish[g].mean())
        bar_max = int(round(gmax / makespan * width))
        bar_mean = int(round(gmean / makespan * width))
        bar = "#" * bar_mean + "-" * max(bar_max - bar_mean, 0)
        label = f"SM{g[0]:>3}-{g[-1]:<3}" if g.size > 1 else f"SM{g[0]:>3}    "
        lines.append(f"  {label} |{bar:<{width}}| {gmax * 1e3:7.3f} ms")
    return "\n".join(lines)
