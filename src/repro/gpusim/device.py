"""GPU device specifications for the performance-model simulator.

The three devices are the paper's evaluation platforms (§4).  Numbers are
public datasheet values; the derived quantities used by the roofline
analysis in the paper's §6 (e.g. RTX 3080: 29.77 TFLOP/s and 760 GB/s →
39 ops/byte nominal threshold) fall out of these specs, which the tests
check.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DeviceSpec",
    "TITAN_X_PASCAL",
    "QV100_VOLTA",
    "RTX_3080_AMPERE",
    "ALL_DEVICES",
    "device_by_name",
]


@dataclass(frozen=True)
class DeviceSpec:
    """An NVIDIA GPU as seen by the simulator's cost model."""

    name: str
    arch: str
    sms: int
    #: FP32/INT lanes (CUDA cores) per SM.
    lanes_per_sm: int
    clock_ghz: float
    mem_bandwidth_gbs: float
    mem_bytes: int
    shared_mem_per_sm: int
    #: Maximum resident warps per SM (occupancy ceiling).
    max_warps_per_sm: int
    #: Warp schedulers per SM: the per-cycle warp-instruction issue limit.
    #: FastZ's kernels are warp-granular (one seed extension per warp) and
    #: mostly issue-bound, so throughput scales with schedulers x SMs x
    #: clock rather than with lane count.
    warp_schedulers: int = 4
    #: Grid-wide synchronisation latency (used by the Feng et al. baseline,
    #: which syncs all SMs after every anti-diagonal), in microseconds.
    grid_sync_us: float = 1.5
    #: Kernel launch latency in microseconds.
    kernel_launch_us: float = 3.0
    #: Device-side dynamic allocation cost per call, in microseconds (the
    #: slowness FastZ's inspector-executor design exists to avoid).
    dynamic_alloc_us: float = 4.0
    #: Host <-> device transfer bandwidth (PCIe), GB/s.
    pcie_gbs: float = 12.0

    def __post_init__(self) -> None:
        if self.sms <= 0 or self.lanes_per_sm <= 0:
            raise ValueError("device must have positive SMs and lanes")
        if self.lanes_per_sm % 32:
            raise ValueError("lanes_per_sm must be a multiple of the warp width")

    # -- derived quantities --------------------------------------------------
    @property
    def total_lanes(self) -> int:
        return self.sms * self.lanes_per_sm

    @property
    def warp_issue_width(self) -> int:
        """Concurrent warp instructions an SM can issue per cycle."""
        return self.warp_schedulers

    @property
    def peak_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s (FMA counts as 2, as datasheets do)."""
        return 2.0 * self.total_lanes * self.clock_ghz * 1e9

    @property
    def peak_ops(self) -> float:
        """Peak single-op (non-FMA) throughput in op/s."""
        return self.total_lanes * self.clock_ghz * 1e9

    @property
    def ridge_ops_per_byte(self) -> float:
        """Nominal roofline threshold, ops/byte (paper §6 uses FLOPs)."""
        return self.peak_flops / (self.mem_bandwidth_gbs * 1e9)

    def bandwidth_per_sm(self) -> float:
        """Fair-share global-memory bandwidth per SM, bytes/s."""
        return self.mem_bandwidth_gbs * 1e9 / self.sms


#: Titan X (Pascal): 28 SMs x 128 lanes = 3584 cores, 480 GB/s, 12 GB.
#: Clock is the base clock (1.417 GHz); the paper's "1 GHz" is a round-down.
TITAN_X_PASCAL = DeviceSpec(
    name="Titan X",
    arch="Pascal",
    sms=28,
    lanes_per_sm=128,
    clock_ghz=1.417,
    mem_bandwidth_gbs=480.0,
    mem_bytes=12 * 1024**3,
    shared_mem_per_sm=96 * 1024,
    max_warps_per_sm=64,
)

#: Quadro V100 (Volta): 80 SMs x 64 lanes = 5120 cores, 900 GB/s, 32 GB.
QV100_VOLTA = DeviceSpec(
    name="QV100",
    arch="Volta",
    sms=80,
    lanes_per_sm=64,
    clock_ghz=1.245,
    mem_bandwidth_gbs=900.0,
    mem_bytes=32 * 1024**3,
    shared_mem_per_sm=96 * 1024,
    max_warps_per_sm=64,
)

#: RTX 3080 (Ampere): 68 SMs x 128 lanes = 8704 cores @ 1.71 GHz, 760 GB/s, 10 GB.
RTX_3080_AMPERE = DeviceSpec(
    name="RTX 3080",
    arch="Ampere",
    sms=68,
    lanes_per_sm=128,
    clock_ghz=1.71,
    mem_bandwidth_gbs=760.0,
    mem_bytes=10 * 1024**3,
    shared_mem_per_sm=128 * 1024,
    max_warps_per_sm=48,
)

ALL_DEVICES = (TITAN_X_PASCAL, QV100_VOLTA, RTX_3080_AMPERE)


def device_by_name(name: str) -> DeviceSpec:
    """Resolve a device spec by (case/space/underscore-insensitive) name.

    Accepts the display name (``"RTX 3080"``), the arch (``"ampere"``) or
    a squashed form (``"rtx3080"``) — what a CLI flag naturally carries.
    """
    wanted = name.replace(" ", "").replace("_", "").replace("-", "").lower()
    for spec in ALL_DEVICES:
        candidates = {
            spec.name.replace(" ", "").lower(),
            spec.arch.lower(),
        }
        if wanted in candidates:
            return spec
    known = ", ".join(spec.name for spec in ALL_DEVICES)
    raise ValueError(f"unknown device {name!r} (known: {known})")
