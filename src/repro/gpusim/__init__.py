"""GPU performance-model simulator: devices, kernels, streams, calibration."""

from .calibration import (
    Calibration,
    DEFAULT_CALIBRATION,
    DIVERGED_OPS_PER_CELL,
    OPS_PER_CELL,
)
from .device import (
    ALL_DEVICES,
    DeviceSpec,
    QV100_VOLTA,
    RTX_3080_AMPERE,
    TITAN_X_PASCAL,
    device_by_name,
)
from .kernel import KernelTiming, TaskCost, occupancy_factor, simulate_kernel
from .report import render_utilization, utilization_summary
from .streams import StreamSchedule, simulate_stream_schedule

__all__ = [
    "ALL_DEVICES",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "DIVERGED_OPS_PER_CELL",
    "DeviceSpec",
    "KernelTiming",
    "OPS_PER_CELL",
    "QV100_VOLTA",
    "RTX_3080_AMPERE",
    "StreamSchedule",
    "TITAN_X_PASCAL",
    "TaskCost",
    "device_by_name",
    "occupancy_factor",
    "render_utilization",
    "utilization_summary",
    "simulate_kernel",
    "simulate_stream_schedule",
]
