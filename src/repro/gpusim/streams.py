"""CUDA-stream scheduling model (paper §3.4, 'Streams').

Kernels launched on one stream serialise; kernels on different streams may
co-schedule on idle SMs.  The model captures the two regimes FastZ's
Figure 9 compares:

* **single stream** — kernels run back to back; the total is the sum of the
  per-kernel makespans, so every kernel's load imbalance is paid in full;
* **many streams** — the device is work-conserving across kernels; the
  total is the makespan of one merged super-kernel (plus the individual
  launch overheads).

Real hardware lands between the two; the endpoints bound the benefit and
reproduce the measured 1.7x-2.4x single-stream penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec
from .kernel import KernelTiming, TaskCost, simulate_kernel

__all__ = ["StreamSchedule", "simulate_stream_schedule"]


@dataclass
class StreamSchedule:
    """Timing of a group of kernels under a stream configuration."""

    seconds: float
    kernels: list[KernelTiming]
    streams: int

    @property
    def total_tasks(self) -> int:
        return sum(k.tasks for k in self.kernels)


def simulate_stream_schedule(
    kernels: list[list[TaskCost]],
    device: DeviceSpec,
    *,
    streams: int,
    min_warps_full: float = 10.0,
    mem_bytes: float | None = None,
) -> StreamSchedule:
    """Simulate a group of kernels under ``streams`` CUDA streams."""
    if streams <= 0:
        raise ValueError("streams must be positive")
    timings = [
        simulate_kernel(k, device, min_warps_full=min_warps_full, mem_bytes=mem_bytes)
        for k in kernels
    ]
    if streams == 1 or len(kernels) <= 1:
        total = sum(t.seconds for t in timings)
        return StreamSchedule(seconds=total, kernels=timings, streams=streams)

    # Work-conserving co-scheduling: one merged kernel, plus every launch.
    merged: list[TaskCost] = []
    for k in kernels:
        merged.extend(k)
    merged_t = simulate_kernel(
        merged,
        device,
        min_warps_full=min_warps_full,
        mem_bytes=mem_bytes,
        include_launch=False,
    )
    launches = sum(t.launch_seconds for t in timings)
    return StreamSchedule(
        seconds=merged_t.seconds + launches,
        kernels=timings,
        streams=streams,
    )
