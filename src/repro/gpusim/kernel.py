"""Kernel-level cost objects and the SM scheduler.

A *kernel* is a batch of warp-sized tasks (one seed extension per warp,
paper §3.1.1).  The simulator assigns tasks greedily to the least-loaded SM
(mirroring the hardware's dynamic threadblock dispatch) and derives the
kernel's makespan from per-SM compute and memory totals plus each task's
serial critical path.  Bulk-synchronous semantics: the kernel finishes when
its slowest SM does — this is precisely the load-imbalance effect FastZ's
length binning attacks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from .device import DeviceSpec

__all__ = ["TaskCost", "KernelTiming", "simulate_kernel", "occupancy_factor"]


@dataclass(frozen=True)
class TaskCost:
    """Cost of one warp-task, in device-independent units."""

    #: Warp issue-steps (sum over diagonals of ceil(width/32) strips),
    #: multiplied by per-step cycles by the caller — kept in cycles here.
    compute_cycles: float
    #: Serial critical-path cycles of the warp (a single warp retires at
    #: most one instruction per cycle regardless of SM width).
    critical_cycles: float
    #: DRAM bytes moved by this task.
    bytes_dram: float
    #: Device-memory footprint the task occupies while resident.
    footprint_bytes: float = 0.0
    #: Serial post-DP cycles (traceback walk, one thread).
    serial_cycles: float = 0.0


@dataclass
class KernelTiming:
    """Outcome of one simulated kernel launch."""

    seconds: float
    compute_seconds: float
    memory_seconds: float
    critical_seconds: float
    tasks: int
    occupancy: float = 1.0
    launch_seconds: float = 0.0
    #: Idle fraction across SMs: 1 - mean(SM busy)/makespan.
    imbalance: float = 0.0
    #: Per-SM finish times (seconds), for utilisation reports.
    sm_finish: np.ndarray | None = None


def occupancy_factor(
    tasks: list[TaskCost] | tuple[TaskCost, ...],
    device: DeviceSpec,
    min_warps_full: float,
    mem_bytes: float | None = None,
) -> float:
    """Throughput scale in [0, 1] from latency-hiding occupancy.

    Resident warps per SM are limited by (a) the device's architectural
    ceiling and (b) how many task footprints fit in the allocation budget
    (``mem_bytes``, default: the device's memory) at once.  Below
    ``min_warps_full`` resident warps per SM, memory latency is no longer
    hidden and throughput degrades proportionally.
    """
    n = len(tasks)
    if n == 0:
        return 1.0
    budget = float(mem_bytes) if mem_bytes is not None else float(device.mem_bytes)
    mean_footprint = float(np.mean([t.footprint_bytes for t in tasks]))
    if mean_footprint <= 0:
        return 1.0
    # Leave 20% of the budget for sequences and result buffers.  Residency
    # is a *memory* limit: a kernel with fewer tasks than the limit is not
    # penalised (its warps are bounded by their critical paths instead).
    resident = int(0.8 * budget / mean_footprint)
    resident = max(min(resident, device.sms * device.max_warps_per_sm), 1)
    if resident >= n:
        return 1.0
    warps_per_sm = resident / device.sms
    if warps_per_sm >= min_warps_full:
        return 1.0
    return max(warps_per_sm / min_warps_full, 0.02)


def simulate_kernel(
    tasks: list[TaskCost] | tuple[TaskCost, ...],
    device: DeviceSpec,
    *,
    min_warps_full: float = 10.0,
    mem_bytes: float | None = None,
    include_launch: bool = True,
) -> KernelTiming:
    """Makespan of one kernel on ``device``.

    Tasks are dealt greedily (in arrival order) to the least-loaded SM.
    Each SM's finish time is the max of its summed compute time (throttled
    by occupancy), its summed DRAM time (fair-share bandwidth), and the
    longest single-warp critical path + serial tail it hosts.  The kernel
    retires with its slowest SM.
    """
    launch = device.kernel_launch_us * 1e-6 if include_launch else 0.0
    if not tasks:
        return KernelTiming(
            seconds=launch,
            compute_seconds=0.0,
            memory_seconds=0.0,
            critical_seconds=0.0,
            tasks=0,
            launch_seconds=launch,
        )

    occ = occupancy_factor(tasks, device, min_warps_full, mem_bytes)
    clock = device.clock_ghz * 1e9
    issue = device.warp_issue_width * occ
    bw_share = device.bandwidth_per_sm()

    # Greedy list scheduling by projected SM busy time.
    heap = [(0.0, sm) for sm in range(device.sms)]
    heapq.heapify(heap)
    sm_compute = np.zeros(device.sms)
    sm_bytes = np.zeros(device.sms)
    sm_critical = np.zeros(device.sms)
    for task in tasks:
        load, sm = heapq.heappop(heap)
        sm_compute[sm] += task.compute_cycles
        sm_bytes[sm] += task.bytes_dram
        crit = (task.critical_cycles + task.serial_cycles) / clock
        sm_critical[sm] = max(sm_critical[sm], crit)
        busy = max(
            sm_compute[sm] / (issue * clock),
            sm_bytes[sm] / bw_share,
            sm_critical[sm],
        )
        heapq.heappush(heap, (busy, sm))

    compute_t = sm_compute / (issue * clock)
    memory_t = sm_bytes / bw_share
    finish = np.maximum(np.maximum(compute_t, memory_t), sm_critical)
    makespan = float(finish.max())
    busy_mean = float(finish.mean())
    obs.counter(
        "repro_gpusim_kernels_total", "Simulated kernel launches."
    ).labels(device=device.name).inc()
    obs.counter(
        "repro_gpusim_kernel_tasks_total", "Warp tasks across simulated kernels."
    ).labels(device=device.name).inc(len(tasks))
    obs.histogram(
        "repro_gpusim_kernel_seconds", "Simulated kernel makespans."
    ).labels(device=device.name).observe(makespan + launch)
    return KernelTiming(
        seconds=makespan + launch,
        compute_seconds=float(compute_t.max()),
        memory_seconds=float(memory_t.max()),
        critical_seconds=float(sm_critical.max()),
        tasks=len(tasks),
        occupancy=occ,
        launch_seconds=launch,
        imbalance=1.0 - (busy_mean / makespan if makespan > 0 else 1.0),
        sm_finish=finish,
    )
