"""Calibration constants of the GPU performance model.

Everything the simulator cannot derive from device datasheets or from the
paper's own operation counts lives here, in one place, so EXPERIMENTS.md can
document it honestly.  The *structure* of the model (what scales with what)
is fixed by the paper; these constants set absolute magnitudes and were
tuned once so that the modelled configuration ratios land inside the
paper's reported bands (Figures 7-9).  They are deliberately NOT free
per-experiment knobs: every benchmark uses this single set.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Calibration", "DEFAULT_CALIBRATION", "OPS_PER_CELL", "DIVERGED_OPS_PER_CELL"]

#: DP work per cell from the recurrences (5 additions + 4 comparisons), §2.2.
OPS_PER_CELL = 9

#: The same work after SIMD branch-divergence expansion (§6: the 9 ops
#: expand to 23 under divergence, a derating factor of 2.56).
DIVERGED_OPS_PER_CELL = 23


@dataclass(frozen=True)
class Calibration:
    """Tunable constants of the performance model."""

    #: Issue cycles per warp-step (one 32-cell strip of one diagonal) in the
    #: cyclic-buffer kernels.  Covers the 23 diverged ops plus address
    #: arithmetic, y-drop bookkeeping, register-shuffle exchanges and the
    #: dependent-instruction stalls of a warp-serial recurrence chain.
    step_cycles_cyclic: float = 360.0
    #: Same for the naive (memory-spilling) kernels: fewer shuffles but
    #: load/store instructions instead.
    step_cycles_naive: float = 380.0
    #: Executor extra per-step cycles (traceback packing + shared-memory
    #: consolidation), added on top of the base step cost.
    step_cycles_executor_extra: float = 100.0

    #: Score bytes per cell when the DP matrices spill to global memory
    #: (5 reads + 3 writes x 4 bytes, §2.2).
    naive_score_bytes_per_cell: float = 32.0
    #: DRAM traffic amplification of the naive spill pattern: large scan
    #: footprints thrash the caches and partial cache-line accesses waste
    #: line bandwidth, so the effective traffic exceeds the useful bytes.
    naive_traffic_amplification: float = 5.5
    #: Bytes spilled per strip boundary cell under cyclic buffering
    #: (3 scores x 4 bytes, §3.2/§6).
    cyclic_boundary_bytes: float = 12.0
    #: Packed traceback bytes per executor cell (§3.1.3).
    traceback_bytes_per_cell: float = 1.0
    #: Bytes of DP+traceback footprint per allocated cell (3 scores + 1 TB).
    footprint_bytes_per_cell: float = 13.0

    #: Resident warps per SM needed for full latency hiding; below this the
    #: achievable throughput degrades linearly.
    min_warps_full_throughput: float = 10.0
    #: Fraction of a warp's issue cycles that form its serial dependency
    #: chain (the recurrence itself is ~10 instructions deep per step; the
    #: rest of the step's issue slots are independent work that interleaves
    #: with other warps).
    critical_fraction: float = 0.12
    #: Device-memory budget available for per-task DP/traceback allocations
    #: during a kernel, bytes.  None = the device's full memory.  The scaled
    #: benchmark suite overrides this downward in proportion to its scaled
    #: search depths, so allocation-driven occupancy collapse (which the
    #: paper's executor trimming exists to fix) remains visible
    #: (see EXPERIMENTS.md).
    modeled_memory_bytes: float | None = None

    #: Serial traceback-walk cycles per alignment column (one thread of the
    #: warp walks the path, §3.1.3 "Traceback Parallelism").
    traceback_walk_cycles_per_base: float = 24.0

    #: Host-side "other" costs (§5.2): per-seed anchor handling, binning
    #: sort, result readout — microseconds per task.
    host_us_per_task: float = 0.08
    #: Fixed host overhead per run (file reads, allocations), us.
    host_fixed_us: float = 25.0

    #: Effective per-diagonal synchronisation + dispatch cost of the Feng
    #: et al. single-problem GPU baseline, microseconds.
    feng_sync_us: float = 0.28

    #: Number of CUDA streams FastZ uses by default.
    default_streams: int = 32
    #: Number of inspector kernel chunks (one per stream when streamed).
    inspector_chunks: int = 16


DEFAULT_CALIBRATION = Calibration()
