"""FastZ reproduction: gapped whole-genome alignment with an
inspector-executor GPU execution model.

Reproduction of "FastZ: Accelerating Gapped Whole Genome Alignment on GPUs"
(Gundabolu, Vijaykumar, Thottethodi — SC '21).  See README.md for the
architecture overview and DESIGN.md for the system inventory.

Quick start::

    from repro import (
        Sequence, LastzConfig, default_scheme,
        run_gapped_lastz, run_fastz,
    )

    config = LastzConfig(scheme=default_scheme())
    reference = run_gapped_lastz(target, query, config)
    fastz = run_fastz(target, query, config, anchors=reference.anchors)
"""

from . import api
from .align import (
    Alignment,
    banded_extend,
    gotoh_extend,
    ungapped_extend,
    wavefront_extend,
    ydrop_extend,
)
from .core import (
    FASTZ_FULL,
    FastzOptions,
    FastzResult,
    ablation_times,
    run_fastz,
    time_fastz,
    time_fastz_multi_gpu,
    time_feng_baseline,
)
from .genome import GenomePair, SegmentClass, Sequence, build_pair
from .gpusim import (
    ALL_DEVICES,
    DeviceSpec,
    QV100_VOLTA,
    RTX_3080_AMPERE,
    TITAN_X_PASCAL,
)
from .lastz import (
    LastzConfig,
    run_gapped_lastz,
    run_multicore_lastz,
    run_ungapped_lastz,
    write_general,
    write_maf,
)
from .scoring import (
    HOXD70,
    ScoringScheme,
    default_scheme,
    read_score_file,
    unit_scheme,
    write_score_file,
)
from .service import (
    AlignmentService,
    ServiceOverloaded,
    ServiceStats,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_DEVICES",
    "Alignment",
    "AlignmentService",
    "api",
    "ServiceOverloaded",
    "ServiceStats",
    "DeviceSpec",
    "FASTZ_FULL",
    "FastzOptions",
    "FastzResult",
    "GenomePair",
    "HOXD70",
    "LastzConfig",
    "QV100_VOLTA",
    "RTX_3080_AMPERE",
    "ScoringScheme",
    "SegmentClass",
    "Sequence",
    "TITAN_X_PASCAL",
    "ablation_times",
    "banded_extend",
    "build_pair",
    "default_scheme",
    "gotoh_extend",
    "run_fastz",
    "run_gapped_lastz",
    "run_multicore_lastz",
    "run_ungapped_lastz",
    "read_score_file",
    "write_general",
    "write_maf",
    "write_score_file",
    "time_fastz",
    "time_fastz_multi_gpu",
    "time_feng_baseline",
    "ungapped_extend",
    "unit_scheme",
    "wavefront_extend",
    "ydrop_extend",
    "__version__",
]
