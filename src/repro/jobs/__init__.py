"""Durable whole-genome alignment jobs: segment, schedule, checkpoint, merge.

This package scales the FastZ pipeline past what one process (or one
accelerator's memory) can hold, the way SegAlign scales LASTZ: the
genome pair is tiled into overlapping chunks (:mod:`.segmenter`), chunk
pairs are scheduled across a fault-tolerant multiprocess pool
(:mod:`.scheduler`), every completed chunk is checkpointed to an
append-only journal (:mod:`.journal`) so a killed job resumes where it
left off, and per-chunk results are merged deterministically
(:mod:`.merge`) — the final output is byte-identical to an unsegmented
run at any worker count.  :func:`run_wga` in :mod:`.runner` ties the
phases together; the ``repro wga`` CLI subcommand fronts it.
"""

from .journal import Journal, JournalError, replay
from .merge import (
    IncrementalMerger,
    canonical_order,
    dedupe_records,
    ops_from_cigar,
    sort_canonical,
)
from .runner import (
    JobDigestMismatch,
    JobOptions,
    QuarantinedTask,
    WgaReport,
    job_digest,
    run_wga,
)
from .scheduler import TaskOutcome, TaskSpec, plan_balance, run_tasks
from .segmenter import Chunk, ChunkPair, chunk_pairs, segment_sequence

__all__ = [
    "Chunk",
    "ChunkPair",
    "IncrementalMerger",
    "JobDigestMismatch",
    "JobOptions",
    "Journal",
    "JournalError",
    "QuarantinedTask",
    "TaskOutcome",
    "TaskSpec",
    "WgaReport",
    "canonical_order",
    "chunk_pairs",
    "dedupe_records",
    "job_digest",
    "ops_from_cigar",
    "plan_balance",
    "replay",
    "run_tasks",
    "run_wga",
    "segment_sequence",
    "sort_canonical",
]
