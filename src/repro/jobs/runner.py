"""The whole-genome job runner: segmented, checkpointed, fault-tolerant WGA.

``run_wga`` drives a full alignment job through four phases:

1. **Segment** — both sequences are tiled into overlapping chunks
   (:mod:`repro.jobs.segmenter`); work is the chunk-pair cross product.
2. **Seed** — chunk pairs are seeded independently (censored against
   *global* target word counts, so segmentation cannot change which
   repeats are suppressed), then thinned into anchors with one global
   ``collapse_diagonal`` pass — bit-identical to unsegmented
   ``select_anchors``.
3. **Extend** — anchors are grouped by owning chunk pair and extended
   window-bounded through :func:`repro.api.align_window`
   (seam-guarded, so chunking never changes an alignment), scheduled
   heaviest-first across the worker pool with retry / quarantine /
   worker-death re-queue (:mod:`repro.jobs.scheduler`).
4. **Merge** — chunk results are deduplicated in global anchor order and
   canonically sorted (:mod:`repro.jobs.merge`).

Every completed task appends one record to an on-disk journal
(:mod:`repro.jobs.journal`) keyed by a job digest over the sequences,
scoring configuration, pipeline options and segmentation geometry.
Killing a job at any point and re-running it replays the journal and
re-executes only unfinished tasks; the final output is byte-identical to
an uninterrupted run at any worker count.

Test hooks (environment variables, used by the fault-injection tests and
the kill/resume CI job; both are inert unless set):

* ``REPRO_WGA_TEST_FAIL="e:c0x1=2,s:c1x0=-1"`` — the named task raises on
  its first N attempts (``-1`` = always; ``s:``/``e:`` = seed/extend).
* ``REPRO_WGA_TEST_EXIT_AFTER=K`` — hard ``os._exit(137)`` (SIGKILL
  semantics: no cleanup, no atexit) right after the K-th task record is
  journaled by this process.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store import StoredReference

import numpy as np

from .. import obs
from ..align.alignment import Alignment
from ..api import align_window
from ..core.options import FASTZ_FULL, FastzOptions
from ..genome.sequence import Sequence
from ..lastz.config import LastzConfig
from ..seeding import Anchors, collapse_diagonal
from ..seeding.seeds import SeedMatches, find_seeds, overrepresented_words
from ..service.request import scheme_digest
from .journal import Journal, replay
from .merge import IncrementalMerger, ops_from_cigar
from .scheduler import TaskSpec, plan_balance, run_tasks
from .segmenter import Chunk, ChunkPair, chunk_pairs, segment_sequence

__all__ = ["JobOptions", "QuarantinedTask", "WgaReport", "run_wga"]

#: Bump when the journal schema changes; part of the job digest, so stale
#: journals are rejected rather than misread.
JOURNAL_VERSION = 1


@dataclass(frozen=True)
class JobOptions:
    """Knobs of the job runner (orthogonal to :class:`FastzOptions`)."""

    #: Core tile size per sequence, in bases.
    chunk_size: int = 32_768
    #: Window slack past each core, in bases.  Must cover the seed span
    #: (enforced) and should cover the y-drop extension horizon; the
    #: pipeline's seam guard re-extends unbounded when it does not, so
    #: this is a performance knob, never a correctness one.
    overlap: int = 4_096
    #: Worker processes; 0 = run inline in this process.
    workers: int = 0
    #: Attempts per task before quarantine.
    max_attempts: int = 3
    #: Base retry backoff (exponential, capped).
    backoff_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: fsync the journal after every record (off = tests/benchmarks).
    fsync: bool = True

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.overlap < 0:
            raise ValueError("overlap must be non-negative")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")


@dataclass(frozen=True)
class QuarantinedTask:
    """A task that exhausted its attempts; the job completed around it."""

    phase: str
    task_id: str
    attempts: int
    error: str


@dataclass
class WgaReport:
    """Outcome of one whole-genome job."""

    alignments: list[Alignment]
    job_dir: Path
    digest: str
    resumed: bool
    n_anchors: int
    n_seed_tasks: int
    n_extend_tasks: int
    seed_skipped: int
    extend_skipped: int
    retries: int
    worker_deaths: int
    window_fallbacks: int
    quarantined: list[QuarantinedTask] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def complete(self) -> bool:
        """True when no chunk was quarantined (no reported gaps)."""
        return not self.quarantined


class JobDigestMismatch(ValueError):
    """An existing journal belongs to a different job definition."""


# ---------------------------------------------------------------------------
# Job identity
# ---------------------------------------------------------------------------


def _config_digest(config: LastzConfig) -> str:
    h = hashlib.sha256()
    for f in dataclass_fields(config):
        value = getattr(config, f.name)
        if f.name == "scheme":
            h.update(scheme_digest(value).encode())
        else:
            h.update(f"{f.name}={value!r}".encode())
        h.update(b"\x00")
    return h.hexdigest()


def job_digest(
    target: Sequence,
    query: Sequence,
    config: LastzConfig,
    options: FastzOptions,
    chunk_size: int,
    overlap: int,
) -> str:
    """Identity of a job's *result-relevant* inputs.

    Worker count, retry policy and fsync mode are deliberately excluded:
    they change wall-clock, never output, and a journal written at
    ``workers=8`` must resume cleanly at ``workers=1``.  Geometry is
    included — a journal records per-chunk completions, so the chunk grid
    must match.
    """
    h = hashlib.sha256()
    h.update(f"journal-v{JOURNAL_VERSION}".encode())
    for seq in (target, query):
        h.update(seq.name.encode() + b"\x00")
        h.update(np.ascontiguousarray(seq.codes).tobytes())
    h.update(_config_digest(config).encode())
    for f in dataclass_fields(options):
        h.update(f"{f.name}={getattr(options, f.name)!r}".encode() + b"\x00")
    h.update(f"chunk_size={chunk_size},overlap={overlap}".encode())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Test hooks
# ---------------------------------------------------------------------------


def _maybe_inject_fault(task_key: str, attempt: int) -> None:
    """Raise if REPRO_WGA_TEST_FAIL says this task's attempt should fail."""
    spec = os.environ.get("REPRO_WGA_TEST_FAIL", "")
    if not spec:
        return
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry or "=" not in entry:
            continue
        key, _, count = entry.partition("=")
        if key.strip() != task_key:
            continue
        n = int(count)
        if n < 0 or attempt <= n:
            raise RuntimeError(
                f"injected fault for {task_key} (attempt {attempt})"
            )


class _ExitAfter:
    """SIGKILL-style hard exit after N journaled task records."""

    def __init__(self) -> None:
        raw = os.environ.get("REPRO_WGA_TEST_EXIT_AFTER", "")
        self.limit = int(raw) if raw else 0
        self.count = 0

    def tick(self) -> None:
        if not self.limit:
            return
        self.count += 1
        if self.count >= self.limit:
            os._exit(137)


# ---------------------------------------------------------------------------
# Phase handlers (module-level: workers pickle them by reference)
# ---------------------------------------------------------------------------


def _codes_source(seq) -> tuple:
    """How a sequence's codes travel to workers.

    A store-backed sequence (:class:`~repro.store.StoredReference`) ships
    as ``("store", root, digest)`` — a few dozen bytes; each worker mmaps
    and decodes the 2-bit file locally.  Anything else ships the codes
    array itself.
    """
    from ..store.store import StoredReference

    if isinstance(seq, StoredReference):
        return ("store", str(seq.store.root), seq.digest)
    return ("codes", seq.codes)


#: Per-process decode cache for store-shipped codes: every task in one
#: worker resolves the same (root, digest) to the same array.
_RESOLVED_CODES: dict[tuple[str, str], np.ndarray] = {}


def _resolve_codes(source: tuple) -> np.ndarray:
    if source[0] == "codes":
        return source[1]
    _, root, digest = source
    cached = _RESOLVED_CODES.get((root, digest))
    if cached is None:
        from ..store import ReferenceStore

        cached = ReferenceStore(root).get(digest).codes
        _RESOLVED_CODES[(root, digest)] = cached
    return cached


def _seed_handler(state, payload, attempt: int) -> dict:
    """Seed one chunk pair's windows; return globally-owned seed positions."""
    t_src, q_src, config, censored = state
    t_codes = _resolve_codes(t_src)
    q_codes = _resolve_codes(q_src)
    task_id = payload["id"]
    _maybe_inject_fault(f"s:{task_id}", attempt)
    tw, qw = payload["t"], payload["q"]  # (start, end, core_start, core_end)
    seeds = find_seeds(
        t_codes[tw[0] : tw[1]],
        q_codes[qw[0] : qw[1]],
        k=config.seed_length,
        spaced_pattern=config.spaced_pattern,
        censored_words=censored,
    )
    t_pos = seeds.target_pos + tw[0]
    q_pos = seeds.query_pos + qw[0]
    own = (
        (t_pos >= tw[2])
        & (t_pos < tw[3])
        & (q_pos >= qw[2])
        & (q_pos < qw[3])
    )
    return {"t": t_pos[own].tolist(), "q": q_pos[own].tolist()}


def _extend_handler(state, payload, attempt: int) -> dict:
    """Extend one chunk pair's owned anchors, window-bounded."""
    t_src, q_src, config, options = state
    t_codes = _resolve_codes(t_src)
    q_codes = _resolve_codes(q_src)
    task_id = payload["id"]
    _maybe_inject_fault(f"e:{task_id}", attempt)
    result = align_window(
        t_codes,
        q_codes,
        config,
        options,
        anchors=Anchors(
            np.asarray(payload["at"], dtype=np.int64),
            np.asarray(payload["aq"], dtype=np.int64),
        ),
        t_window=tuple(payload["tw"]),
        q_window=tuple(payload["qw"]),
    )
    return {
        "alignments": [
            [t, q, a.target_start, a.target_end, a.query_start, a.query_end, a.score, a.cigar()]
            for t, q, a in result.records
        ],
        "n_anchors": result.n_anchors,
        "eager": result.eager_count,
        "window_fallbacks": result.window_fallbacks,
    }


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


def _owner_index(pos: np.ndarray, chunk_size: int, n_chunks: int) -> np.ndarray:
    """Core-ownership chunk index per position (last core absorbs the tail)."""
    return np.minimum(pos // chunk_size, n_chunks - 1)


def _stale_journal_name(journal_path: Path, digest: str) -> Path:
    """Collision-proof rotation name for a discarded (``fresh=True``) journal.

    A wall-clock-seconds stamp collides when two fresh runs start within
    the same second (the second rename silently targets the first run's
    rotation) and jumps around under clock changes.  The job digest plus
    pid plus a monotonic-nanosecond reading is unique per run: the digest
    ties the rotation to the job it replaced, the pid separates concurrent
    processes, and the monotonic clock never repeats within a process.
    """
    stamp = f"{digest[:12]}-{os.getpid():x}-{time.monotonic_ns():x}"
    return journal_path.with_suffix(f".jsonl.stale-{stamp}")


def _chunk_records(record: dict) -> list[tuple[int, int, Alignment]]:
    """Decode one extend-task journal record into merge records."""
    out: list[tuple[int, int, Alignment]] = []
    for at, aq, ts, te, qs, qe, score, cigar in record["alignments"]:
        out.append(
            (
                at,
                aq,
                Alignment(
                    target_start=ts,
                    target_end=te,
                    query_start=qs,
                    query_end=qe,
                    score=score,
                    ops=ops_from_cigar(cigar),
                ),
            )
        )
    return out


def run_wga(
    target: "Sequence | StoredReference",
    query: "Sequence | StoredReference",
    config: LastzConfig | None = None,
    options: FastzOptions = FASTZ_FULL,
    *,
    job: JobOptions = JobOptions(),
    job_dir: str | Path,
    fresh: bool = False,
    log: Callable[[str], None] | None = None,
    on_alignment: Callable[[Alignment], None] | None = None,
) -> WgaReport:
    """Run (or resume) a segmented whole-genome alignment job.

    Parameters
    ----------
    job:
        Segmentation geometry, worker pool size and fault-tolerance policy.
    job_dir:
        Durable state directory; holds ``journal.jsonl``.  Re-running with
        the same directory resumes: tasks with journal records are
        skipped.  A journal from a *different* job definition raises
        :class:`JobDigestMismatch` unless ``fresh=True`` rotates it away.
    log:
        Progress sink (one line per event); ``None`` disables reporting.
    on_alignment:
        Streaming sink: called once per *finalized* alignment, in global
        anchor order, as soon as the merge watermark proves no unfinished
        chunk task can precede it (``repro wga --follow``).  The final
        report still carries the full canonical output — byte-identical
        to the barrier merge.
    """
    t0 = time.perf_counter()
    config = config or LastzConfig()
    say = log or (lambda _msg: None)
    job_dir = Path(job_dir)
    journal_path = job_dir / "journal.jsonl"
    span = (
        len(config.spaced_pattern) if config.spaced_pattern else config.seed_length
    )
    overlap = max(job.overlap, span)
    digest = job_digest(
        target, query, config, options, job.chunk_size, overlap
    )
    # Store-backed sequences ship to workers as (root, digest) handles,
    # not pickled code arrays; the result is byte-identical either way
    # because job_digest hashes the decoded codes in both cases.
    t_source = _codes_source(target)
    q_source = _codes_source(query)
    exit_after = _ExitAfter()

    with obs.span("jobs.run", workers=job.workers) as run_span:
        # --- journal replay (resume) -----------------------------------
        seed_done: dict[str, dict] = {}
        extend_done: dict[str, dict] = {}
        resumed = False
        if journal_path.exists():
            if fresh:
                journal_path.rename(_stale_journal_name(journal_path, digest))
            else:
                for record in replay(journal_path):
                    kind = record.get("type")
                    if kind == "header":
                        if record.get("digest") != digest:
                            raise JobDigestMismatch(
                                f"{journal_path} was written by a different job "
                                "(sequences, scoring, pipeline options or chunk "
                                "geometry changed); pass fresh=True / --fresh "
                                "to discard it"
                            )
                        resumed = True
                    elif kind == "seeds":
                        seed_done[record["task"]] = record
                    elif kind == "chunk":
                        extend_done[record["task"]] = record
                    # quarantined records: deliberately *not* terminal —
                    # a resume re-queues those tasks.

        journal = Journal(journal_path, fsync=job.fsync)
        try:
            if not resumed:
                journal.append(
                    {
                        "type": "header",
                        "version": JOURNAL_VERSION,
                        "digest": digest,
                        "target": target.name,
                        "query": query.name,
                        "target_bp": len(target),
                        "query_bp": len(query),
                        "chunk_size": job.chunk_size,
                        "overlap": overlap,
                    }
                )

            # --- segment -----------------------------------------------
            with obs.span("jobs.segment"):
                t_chunks = segment_sequence(len(target), job.chunk_size, overlap)
                q_chunks = segment_sequence(len(query), job.chunk_size, overlap)
                pairs = chunk_pairs(t_chunks, q_chunks)
            pair_by_id = {p.task_id: p for p in pairs}
            say(
                f"segmented {target.name} x {query.name} into "
                f"{len(t_chunks)} x {len(q_chunks)} chunks "
                f"({len(pairs)} pair tasks, core {job.chunk_size} bp, "
                f"overlap {overlap} bp)"
            )

            quarantined: list[QuarantinedTask] = []
            counters = {"retries": 0, "deaths": 0}

            def make_events(
                phase: str,
                record_type: str,
                total: int,
                skipped: int,
                on_done: Callable[[str, dict], None] | None = None,
                on_quarantined: Callable[[str], None] | None = None,
            ):
                progress = {"done": skipped}

                def on_event(kind: str, task_id: str, info: dict) -> None:
                    if kind == "done":
                        progress["done"] += 1
                        record = dict(info["value"])
                        record["type"] = record_type
                        record["task"] = task_id
                        record["attempts"] = info["attempts"]
                        journal.append(record)
                        exit_after.tick()
                        if on_done is not None:
                            on_done(task_id, record)
                        say(
                            f"[{phase} {progress['done']}/{total}] {task_id} ok"
                            + (
                                f" (attempt {info['attempts']})"
                                if info["attempts"] > 1
                                else ""
                            )
                        )
                    elif kind == "retry":
                        counters["retries"] += 1
                        say(
                            f"[{phase}] {task_id} failed attempt "
                            f"{info['attempt']} ({info['error']}); retrying"
                        )
                    elif kind == "worker_death":
                        counters["deaths"] += 1
                        counters["retries"] += 1
                        say(
                            f"[{phase}] worker running {task_id} died "
                            f"({info['error']}); re-queued"
                        )
                    elif kind == "quarantined":
                        quarantined.append(
                            QuarantinedTask(
                                phase=phase,
                                task_id=task_id,
                                attempts=info["attempts"],
                                error=str(info.get("error")),
                            )
                        )
                        obs.counter(
                            "repro_jobs_quarantined_total",
                            "Chunk tasks quarantined after exhausting retries.",
                        ).labels(phase=phase).inc()
                        if on_quarantined is not None:
                            on_quarantined(task_id)
                        say(
                            f"[{phase}] {task_id} QUARANTINED after "
                            f"{info['attempts']} attempts: {info['error']}"
                        )

                return on_event

            # --- seed phase --------------------------------------------
            with obs.span("jobs.seed", pairs=len(pairs)) as sp:
                censored = overrepresented_words(
                    target.codes,
                    k=config.seed_length,
                    spaced_pattern=config.spaced_pattern,
                    max_word_count=config.max_word_count,
                )
                seed_tasks = [
                    TaskSpec(
                        task_id=p.task_id,
                        payload={
                            "id": p.task_id,
                            "t": (p.target.start, p.target.end, p.target.core_start, p.target.core_end),
                            "q": (p.query.start, p.query.end, p.query.core_start, p.query.core_end),
                        },
                        weight=p.window_area,
                    )
                    for p in pairs
                    if p.task_id not in seed_done
                ]
                seed_skipped = len(pairs) - len(seed_tasks)
                if seed_skipped:
                    say(f"[seed] resuming: {seed_skipped}/{len(pairs)} chunk pairs already journaled")
                outcomes = run_tasks(
                    seed_tasks,
                    _seed_handler,
                    (t_source, q_source, config, censored),
                    workers=job.workers,
                    max_attempts=job.max_attempts,
                    backoff_s=job.backoff_s,
                    backoff_cap_s=job.backoff_cap_s,
                    on_event=make_events("seed", "seeds", len(pairs), seed_skipped),
                )
                for task_id, outcome in outcomes.items():
                    if outcome.ok:
                        seed_done[task_id] = outcome.value
                sp.set(skipped=seed_skipped, censored_words=int(censored.size))

            # --- collapse into anchors (global, deterministic) ---------
            with obs.span("jobs.collapse") as sp:
                all_t = np.concatenate(
                    [np.asarray(r["t"], dtype=np.int64) for r in seed_done.values()]
                    or [np.zeros(0, dtype=np.int64)]
                )
                all_q = np.concatenate(
                    [np.asarray(r["q"], dtype=np.int64) for r in seed_done.values()]
                    or [np.zeros(0, dtype=np.int64)]
                )
                anchors = collapse_diagonal(
                    SeedMatches(all_t, all_q, span),
                    window=config.collapse_window,
                    diag_band=config.diag_band,
                )
                sp.set(seeds=int(all_t.size), anchors=len(anchors))
            say(f"collapsed {all_t.size} seeds into {len(anchors)} anchors")

            # --- extend phase ------------------------------------------
            with obs.span("jobs.extend", anchors=len(anchors)) as sp:
                t_owner = _owner_index(
                    anchors.target_pos, job.chunk_size, len(t_chunks)
                )
                q_owner = _owner_index(
                    anchors.query_pos, job.chunk_size, len(q_chunks)
                )
                by_pair: dict[str, list[int]] = {}
                for idx in range(len(anchors)):
                    key = f"c{int(t_owner[idx])}x{int(q_owner[idx])}"
                    by_pair.setdefault(key, []).append(idx)

                # Incremental merge: every chunk task can still produce
                # records only at or above its minimum anchor key, so the
                # merger finalizes (and surfaces) alignments below the
                # min-over-pending watermark while extension is running.
                expected: dict[str, tuple[int, int]] = {}
                for task_id, idxs in by_pair.items():
                    expected[task_id] = min(
                        zip(
                            anchors.query_pos[idxs].tolist(),
                            anchors.target_pos[idxs].tolist(),
                        )
                    )
                merger = IncrementalMerger(expected, on_alignment=on_alignment)
                for task_id, record in extend_done.items():
                    merger.complete(task_id, _chunk_records(record))

                extend_tasks = []
                for task_id, idxs in sorted(by_pair.items()):
                    if task_id in extend_done:
                        continue
                    p = pair_by_id[task_id]
                    extend_tasks.append(
                        TaskSpec(
                            task_id=task_id,
                            payload={
                                "id": task_id,
                                "at": anchors.target_pos[idxs].tolist(),
                                "aq": anchors.query_pos[idxs].tolist(),
                                "tw": (p.target.start, p.target.end),
                                "qw": (p.query.start, p.query.end),
                            },
                            weight=len(idxs),
                        )
                    )
                extend_skipped = len(by_pair) - len(extend_tasks)
                if extend_skipped:
                    say(
                        f"[extend] resuming: {extend_skipped}/{len(by_pair)} "
                        "chunk tasks already journaled"
                    )
                if extend_tasks and job.workers:
                    loads = plan_balance(extend_tasks, job.workers)
                    say(
                        f"[extend] {len(extend_tasks)} tasks, "
                        f"{sum(int(l) for l in loads)} anchors across "
                        f"{job.workers} workers (LPT plan: max {int(loads[0])}, "
                        f"min {int(loads[-1])} anchors/worker)"
                    )
                outcomes = run_tasks(
                    extend_tasks,
                    _extend_handler,
                    (t_source, q_source, config, options),
                    workers=job.workers,
                    max_attempts=job.max_attempts,
                    backoff_s=job.backoff_s,
                    backoff_cap_s=job.backoff_cap_s,
                    on_event=make_events(
                        "extend",
                        "chunk",
                        len(by_pair),
                        extend_skipped,
                        # Feed the merger as chunk results land: the
                        # watermark advances and finalized alignments
                        # stream out mid-job.  Quarantined tasks complete
                        # empty so one poisoned chunk cannot dam the rest.
                        on_done=lambda task_id, record: merger.complete(
                            task_id, _chunk_records(record)
                        ),
                        on_quarantined=lambda task_id: merger.complete(
                            task_id, []
                        ),
                    ),
                )
                for task_id, outcome in outcomes.items():
                    if outcome.ok:
                        extend_done[task_id] = outcome.value
                sp.set(tasks=len(by_pair), skipped=extend_skipped)

            # --- merge (already folded incrementally; finalize) --------
            with obs.span("jobs.merge", chunks=len(extend_done)) as sp:
                window_fallbacks = 0
                n_records = 0
                for task_id, record in extend_done.items():
                    window_fallbacks += int(record.get("window_fallbacks", 0))
                    n_records += len(record["alignments"])
                    # Idempotent safety net: a result delivered without a
                    # "done" event (scheduler edge cases) still merges.
                    merger.complete(task_id, _chunk_records(record))
                alignments = merger.finalize()
                sp.set(records=n_records, alignments=len(alignments))

            elapsed = time.perf_counter() - t0
            report = WgaReport(
                alignments=alignments,
                job_dir=job_dir,
                digest=digest,
                resumed=resumed,
                n_anchors=len(anchors),
                n_seed_tasks=len(pairs),
                n_extend_tasks=len(by_pair),
                seed_skipped=seed_skipped,
                extend_skipped=extend_skipped,
                retries=counters["retries"],
                worker_deaths=counters["deaths"],
                window_fallbacks=window_fallbacks,
                quarantined=quarantined,
                elapsed_s=elapsed,
            )
            run_span.set(
                alignments=len(alignments),
                quarantined=len(quarantined),
                resumed=resumed,
            )
            say(
                f"job done in {elapsed:.2f}s: {len(alignments)} alignments, "
                f"{len(anchors)} anchors, {report.retries} retries, "
                f"{report.worker_deaths} worker deaths, "
                f"{len(quarantined)} quarantined"
            )
            for gap in quarantined:
                say(
                    f"GAP: {gap.phase} task {gap.task_id} missing after "
                    f"{gap.attempts} attempts ({gap.error})"
                )
            return report
        finally:
            journal.close()
