"""Fault-tolerant multiprocess task scheduling for WGA jobs.

The unit of work is a :class:`TaskSpec` — an opaque payload plus a weight
(the scheduler is generic; the runner uses it for both seeding and
extension phases).  Scheduling follows the SaLoBa observation that
workload balance across segments dominates scaling:

* tasks are dispatched **heaviest-first** (LPT order) to a demand-driven
  worker pool, so one repeat-dense chunk pair cannot serialise the tail
  of a run;
* :func:`plan_balance` uses :func:`repro.core.multigpu.greedy_partition`
  — the paper's multi-GPU seed partitioner, promoted to a real helper —
  to report the projected per-worker load split.

Fault tolerance:

* a task that raises is retried with exponential backoff
  (``backoff_s * 2**(attempt-1)``, capped) up to ``max_attempts``;
* a task that exhausts its attempts is **quarantined**: the job completes
  and reports the gap instead of crashing;
* a **worker death** (segfault, OOM-kill, ``os._exit``) is detected by
  process liveness, the in-flight task is re-queued (counting as a failed
  attempt, so a task that reliably kills its worker is quarantined rather
  than respawned forever) and a replacement worker is spawned.

``workers=0`` runs everything inline in the calling process with the same
retry/quarantine bookkeeping — the deterministic path tests lean on.
Handlers must be module-level callables (picklable) with signature
``handler(init_arg, payload, attempt)``.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from .. import obs
from ..core.multigpu import partition_loads

__all__ = ["TaskOutcome", "TaskSpec", "plan_balance", "run_tasks"]

#: on_event kinds, in roughly increasing order of concern.
EVENTS = ("done", "retry", "worker_death", "quarantined")


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit of work."""

    task_id: str
    payload: Any
    #: Relative cost estimate (anchor count, window area, ...); only the
    #: ordering matters.
    weight: float = 1.0


@dataclass
class TaskOutcome:
    """Terminal state of one task."""

    task_id: str
    ok: bool
    value: Any = None
    error: str | None = None
    attempts: int = 0
    worker_deaths: int = 0
    elapsed_s: float = 0.0


@dataclass
class _TaskState:
    spec: TaskSpec
    attempts: int = 0
    worker_deaths: int = 0
    elapsed_s: float = 0.0
    last_error: str | None = None
    #: Highest attempt number already resolved (success, retry, death or
    #: quarantine).  ``attempts`` only advances on dispatch, so without
    #: this a dying worker's final message could race the death-reap that
    #: already re-queued the same attempt and be double-counted.
    consumed_attempt: int = 0


def _claim_attempt(state: _TaskState, outcomes: dict, attempt: int) -> bool:
    """Consume one attempt's terminal signal; True exactly once per attempt.

    The death-reap and the dead worker's last queued message can both
    observe the same in-flight attempt; whichever arrives second must be
    dropped as stale — otherwise one failure burns two attempts toward
    quarantine and re-queues the task twice (duplicate dispatch).
    ``attempts`` only advances on dispatch, so an ``attempt ==
    state.attempts`` check alone cannot tell the second observer from the
    first; the ``consumed_attempt`` high-water mark does.
    """
    if state.spec.task_id in outcomes:
        return False
    if attempt != state.attempts or attempt <= state.consumed_attempt:
        return False
    state.consumed_attempt = attempt
    return True


def plan_balance(tasks: list[TaskSpec], n_parts: int) -> list[float]:
    """Projected per-part load under LPT assignment (descending)."""
    if not tasks:
        return [0.0] * max(n_parts, 1)
    _, loads = partition_loads([t.weight for t in tasks], n_parts)
    return sorted(loads, reverse=True)


def _lpt_order(tasks: list[TaskSpec]) -> list[TaskSpec]:
    """Heaviest first; ties keep input order (deterministic)."""
    return sorted(tasks, key=lambda t: -t.weight)


def _backoff(attempt: int, backoff_s: float, cap_s: float) -> float:
    return min(backoff_s * (2 ** (attempt - 1)), cap_s)


def _events_counter():
    return obs.counter(
        "repro_jobs_scheduler_events_total",
        "Scheduler events (done/retry/worker_death/quarantined).",
    )


def _task_seconds():
    return obs.histogram(
        "repro_jobs_task_seconds",
        "Wall time of individual WGA tasks (successful attempts).",
    )


def run_tasks(
    tasks: list[TaskSpec],
    handler: Callable[[Any, Any, int], Any],
    init_arg: Any = None,
    *,
    workers: int = 0,
    max_attempts: int = 3,
    backoff_s: float = 0.05,
    backoff_cap_s: float = 2.0,
    on_event: Callable[[str, str, dict], None] | None = None,
) -> dict[str, TaskOutcome]:
    """Run every task to a terminal state (success or quarantine).

    Returns ``{task_id: TaskOutcome}`` covering every input task.  Raises
    only on programming errors (duplicate ids, bad arguments) — worker
    failures surface as outcomes, never as exceptions.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be at least 1")
    if workers < 0:
        raise ValueError("workers must be non-negative")
    ids = [t.task_id for t in tasks]
    if len(set(ids)) != len(ids):
        raise ValueError("task ids must be unique")
    if not tasks:
        return {}

    def emit(kind: str, task_id: str, **info) -> None:
        _events_counter().labels(kind=kind).inc()
        if on_event is not None:
            on_event(kind, task_id, info)

    if workers == 0:
        return _run_inline(
            tasks, handler, init_arg, max_attempts, backoff_s, backoff_cap_s, emit
        )
    return _run_pool(
        tasks,
        handler,
        init_arg,
        workers,
        max_attempts,
        backoff_s,
        backoff_cap_s,
        emit,
    )


def _run_inline(
    tasks: list[TaskSpec],
    handler,
    init_arg,
    max_attempts: int,
    backoff_s: float,
    backoff_cap_s: float,
    emit,
) -> dict[str, TaskOutcome]:
    outcomes: dict[str, TaskOutcome] = {}
    for spec in _lpt_order(tasks):
        state = _TaskState(spec)
        while True:
            state.attempts += 1
            t0 = time.perf_counter()
            try:
                value = handler(init_arg, spec.payload, state.attempts)
            except Exception as exc:  # noqa: BLE001 - fault isolation boundary
                state.elapsed_s += time.perf_counter() - t0
                state.last_error = f"{type(exc).__name__}: {exc}"
                if state.attempts >= max_attempts:
                    outcomes[spec.task_id] = _quarantine(state, emit)
                    break
                emit(
                    "retry",
                    spec.task_id,
                    attempt=state.attempts,
                    error=state.last_error,
                )
                time.sleep(_backoff(state.attempts, backoff_s, backoff_cap_s))
            else:
                state.elapsed_s += time.perf_counter() - t0
                outcomes[spec.task_id] = _success(state, value, emit)
                break
    return outcomes


def _success(state: _TaskState, value, emit) -> TaskOutcome:
    _task_seconds().observe(state.elapsed_s)
    # The value rides on the event so callers can checkpoint each task the
    # moment it completes, not at end of phase.
    emit("done", state.spec.task_id, attempts=state.attempts, value=value)
    return TaskOutcome(
        task_id=state.spec.task_id,
        ok=True,
        value=value,
        attempts=state.attempts,
        worker_deaths=state.worker_deaths,
        elapsed_s=state.elapsed_s,
    )


def _quarantine(state: _TaskState, emit) -> TaskOutcome:
    emit(
        "quarantined",
        state.spec.task_id,
        attempts=state.attempts,
        error=state.last_error,
    )
    return TaskOutcome(
        task_id=state.spec.task_id,
        ok=False,
        error=state.last_error,
        attempts=state.attempts,
        worker_deaths=state.worker_deaths,
        elapsed_s=state.elapsed_s,
    )


# ---------------------------------------------------------------------------
# Multiprocess pool
# ---------------------------------------------------------------------------


def _worker_main(handler, init_arg, task_q, result_q) -> None:
    """Worker loop: one task at a time, failures reported not raised.

    Polls with a timeout so an orphaned worker — its coordinator hard-
    killed (``os._exit``), which skips the atexit hook that reaps daemon
    children — notices the re-parenting and exits instead of blocking on
    the queue forever.
    """
    parent = os.getppid()
    while True:
        try:
            item = task_q.get(timeout=2.0)
        except queue_mod.Empty:
            if os.getppid() != parent:
                return
            continue
        if item is None:
            return
        task_id, payload, attempt = item
        t0 = time.perf_counter()
        try:
            value = handler(init_arg, payload, attempt)
        except Exception as exc:  # noqa: BLE001 - fault isolation boundary
            result_q.put(
                (
                    "fail",
                    task_id,
                    attempt,
                    f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - t0,
                )
            )
        else:
            result_q.put(("done", task_id, attempt, value, time.perf_counter() - t0))


@dataclass
class _WorkerHandle:
    proc: multiprocessing.Process
    task_q: Any
    #: (task_id, attempt) in flight, or None when idle.
    current: tuple[str, int] | None = None


def _run_pool(
    tasks: list[TaskSpec],
    handler,
    init_arg,
    workers: int,
    max_attempts: int,
    backoff_s: float,
    backoff_cap_s: float,
    emit,
) -> dict[str, TaskOutcome]:
    ctx = multiprocessing.get_context()
    result_q = ctx.Queue()
    states = {t.task_id: _TaskState(t) for t in tasks}
    outcomes: dict[str, TaskOutcome] = {}
    # Ready heap: (ready_at, seq, task_id); seq follows LPT rank so the
    # initial drain dispatches heaviest-first.
    seq = itertools.count()
    ready: list[tuple[float, int, str]] = []
    for spec in _lpt_order(tasks):
        heapq.heappush(ready, (0.0, next(seq), spec.task_id))

    def spawn() -> _WorkerHandle:
        task_q = ctx.Queue()
        proc = ctx.Process(
            target=_worker_main,
            args=(handler, init_arg, task_q, result_q),
            daemon=True,
        )
        proc.start()
        return _WorkerHandle(proc=proc, task_q=task_q)

    handles = [spawn() for _ in range(min(workers, len(tasks)))]

    def fail_attempt(state: _TaskState, error: str, *, death: bool) -> None:
        """Shared retry/quarantine bookkeeping for failures and deaths."""
        state.last_error = error
        if death:
            state.worker_deaths += 1
            emit(
                "worker_death",
                state.spec.task_id,
                attempt=state.attempts,
                error=error,
            )
        if state.attempts >= max_attempts:
            outcomes[state.spec.task_id] = _quarantine(state, emit)
            return
        if not death:
            emit(
                "retry",
                state.spec.task_id,
                attempt=state.attempts,
                error=error,
            )
        delay = _backoff(state.attempts, backoff_s, backoff_cap_s)
        heapq.heappush(
            ready, (time.monotonic() + delay, next(seq), state.spec.task_id)
        )

    def handle_for(task_id: str) -> _WorkerHandle | None:
        for h in handles:
            if h.current is not None and h.current[0] == task_id:
                return h
        return None

    try:
        while len(outcomes) < len(tasks):
            # 1. Drain results.
            try:
                msg = result_q.get(timeout=0.02)
            except queue_mod.Empty:
                msg = None
            while msg is not None:
                kind, task_id, attempt, *rest = msg
                state = states[task_id]
                h = handle_for(task_id)
                if h is not None and h.current == (task_id, attempt):
                    h.current = None
                # Stale messages (task already resolved, a newer attempt
                # dispatched, or this attempt already consumed by the
                # death-reap) are dropped.
                if _claim_attempt(state, outcomes, attempt):
                    if kind == "done":
                        value, elapsed = rest
                        state.elapsed_s += elapsed
                        outcomes[task_id] = _success(state, value, emit)
                    else:
                        error, elapsed = rest
                        state.elapsed_s += elapsed
                        fail_attempt(state, error, death=False)
                try:
                    msg = result_q.get_nowait()
                except queue_mod.Empty:
                    msg = None

            # 2. Reap dead workers; re-queue their in-flight tasks.
            for idx, h in enumerate(handles):
                if h.proc.is_alive():
                    continue
                if h.current is not None:
                    task_id, attempt = h.current
                    h.current = None
                    state = states[task_id]
                    if _claim_attempt(state, outcomes, attempt):
                        fail_attempt(
                            state,
                            f"worker died (exit code {h.proc.exitcode})",
                            death=True,
                        )
                if len(outcomes) < len(tasks):
                    handles[idx] = spawn()

            # 3. Dispatch ready tasks to idle workers.
            now = time.monotonic()
            for h in handles:
                if h.current is not None:
                    continue
                while ready and ready[0][2] in outcomes:
                    heapq.heappop(ready)  # cancelled by quarantine
                if not ready or ready[0][0] > now:
                    break
                _, _, task_id = heapq.heappop(ready)
                state = states[task_id]
                state.attempts += 1
                h.current = (task_id, state.attempts)
                h.task_q.put((task_id, state.spec.payload, state.attempts))
    finally:
        for h in handles:
            try:
                h.task_q.put_nowait(None)
            except Exception:  # noqa: BLE001 - best-effort shutdown
                pass
        deadline = time.monotonic() + 2.0
        for h in handles:
            h.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if h.proc.is_alive():
                h.proc.terminate()
                h.proc.join(timeout=1.0)
        result_q.close()
        result_q.cancel_join_thread()

    return outcomes
