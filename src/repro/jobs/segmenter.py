"""Genome segmentation for the whole-genome job runner (SegAlign-style).

Both sequences are cut into *cores* — disjoint tiles of ``chunk_size``
bases — each wrapped in a *window* that extends ``overlap`` bases past the
core on either side.  Work is the cross product of target and query
chunks, exactly SegAlign's shape:

* **Seeding** runs per chunk pair over the windows; a seed belongs to the
  pair whose cores contain its (target, query) start, so every global
  seed is found exactly once (the window slack covers words that start in
  a core but spill past its edge — ``overlap`` must be at least the seed
  span).
* **Extension** runs per chunk pair over the anchors its cores own, with
  suffixes clipped to the windows.  ``overlap`` should cover the y-drop
  extension horizon; the pipeline's seam guard
  (:func:`repro.core.pipeline.run_fastz_chunk`) makes correctness
  unconditional regardless.

Because cores tile each sequence disjointly, chunk ownership partitions
both the seed set and the anchor set — no cross-chunk reconciliation is
needed beyond the overlap-region *alignment* dedup done by
:mod:`repro.jobs.merge`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Chunk", "ChunkPair", "chunk_pairs", "segment_sequence"]


@dataclass(frozen=True)
class Chunk:
    """One tile of a sequence: a disjoint core plus an overlap window."""

    index: int
    #: Disjoint ownership interval ``[core_start, core_end)``.
    core_start: int
    core_end: int
    #: Window interval ``[start, end)`` = core extended by the overlap,
    #: clamped to the sequence.
    start: int
    end: int

    def __post_init__(self) -> None:
        if not (self.start <= self.core_start < self.core_end <= self.end):
            raise ValueError("chunk window must contain its non-empty core")

    @property
    def core_span(self) -> int:
        return self.core_end - self.core_start

    def owns(self, pos: int) -> bool:
        """Is ``pos`` inside this chunk's ownership core?"""
        return self.core_start <= pos < self.core_end


def segment_sequence(length: int, chunk_size: int, overlap: int) -> list[Chunk]:
    """Tile ``[0, length)`` into cores of ``chunk_size`` with overlap windows.

    The last core absorbs the remainder (it may be up to
    ``2 * chunk_size - 1`` long) so no core is shorter than
    ``chunk_size`` — a stub tail chunk would be pure scheduling overhead.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if overlap < 0:
        raise ValueError("overlap must be non-negative")
    n_chunks = max(1, length // chunk_size)
    chunks: list[Chunk] = []
    for i in range(n_chunks):
        core_start = i * chunk_size
        core_end = (i + 1) * chunk_size if i + 1 < n_chunks else length
        chunks.append(
            Chunk(
                index=i,
                core_start=core_start,
                core_end=core_end,
                start=max(0, core_start - overlap),
                end=min(length, core_end + overlap),
            )
        )
    return chunks


@dataclass(frozen=True)
class ChunkPair:
    """One unit of distributable work: a (target chunk, query chunk) pair."""

    target: Chunk
    query: Chunk

    @property
    def task_id(self) -> str:
        return f"c{self.target.index}x{self.query.index}"

    @property
    def window_area(self) -> int:
        """Seeding work estimate: the product of the window spans."""
        return (self.target.end - self.target.start) * (
            self.query.end - self.query.start
        )

    def owns(self, t_pos: int, q_pos: int) -> bool:
        return self.target.owns(t_pos) and self.query.owns(q_pos)


def chunk_pairs(
    target_chunks: list[Chunk], query_chunks: list[Chunk]
) -> list[ChunkPair]:
    """The full cross product, in (target index, query index) order."""
    return [ChunkPair(t, q) for t in target_chunks for q in query_chunks]
