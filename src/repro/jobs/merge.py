"""Deterministic merging of chunk-pair alignment results.

Chunk windows overlap, and an anchor's extension is free to run past its
chunk's core, so the same genomic alignment can be discovered by anchors
owned by different chunk pairs.  The merge reproduces exactly what an
unsegmented :meth:`~repro.core.pipeline.FastzResult.unique_alignments`
pass would keep:

1. every record carries its source anchor ``(query_pos, target_pos)``;
   records are sorted in global anchor order — the pipeline's
   ``lexsort((target_pos, query_pos))``, query-major — regardless of
   which chunk produced them or in what order chunks finished;
2. duplicates are dropped by (target, query) interval, keeping the
   first in anchor order.

The result is then put in canonical output order — (target, query,
strand) coordinates — so two runs with different worker counts, chunk
geometries or resume histories serialise byte-identically.
"""

from __future__ import annotations

import re
from typing import Iterable

from ..align.alignment import Alignment

__all__ = [
    "canonical_order",
    "dedupe_records",
    "ops_from_cigar",
    "sort_canonical",
]

_CIGAR_RUN = re.compile(r"(\d+)([MID])")


def ops_from_cigar(cigar: str) -> tuple[tuple[str, int], ...]:
    """Parse a CIGAR string (``"120M2D87M"``) back into an edit script.

    Inverse of :meth:`~repro.align.alignment.Alignment.cigar`; the journal
    stores edit scripts as CIGAR text.
    """
    ops: list[tuple[str, int]] = []
    pos = 0
    for match in _CIGAR_RUN.finditer(cigar):
        if match.start() != pos:
            raise ValueError(f"malformed CIGAR {cigar!r}")
        ops.append((match.group(2), int(match.group(1))))
        pos = match.end()
    if pos != len(cigar):
        raise ValueError(f"malformed CIGAR {cigar!r}")
    return tuple(ops)


def dedupe_records(
    records: Iterable[tuple[int, int, Alignment]],
) -> list[Alignment]:
    """Deduplicate ``(anchor_t, anchor_q, alignment)`` records globally.

    Sorts by source anchor in pipeline order (query-major) and keeps the
    first alignment per (target, query) interval — bit-compatible with
    ``unique_alignments()`` on an unsegmented run over the same anchors.
    """
    ordered = sorted(records, key=lambda r: (r[1], r[0]))
    seen: set[tuple[int, int, int, int]] = set()
    out: list[Alignment] = []
    for _t, _q, a in ordered:
        key = (a.target_start, a.target_end, a.query_start, a.query_end)
        if key not in seen:
            seen.add(key)
            out.append(a)
    return out


def canonical_order(alignment: Alignment) -> tuple:
    """Total output order: (target, query, strand) coordinates, then score.

    Strand is constant ('+') in this library; it sits in the key so the
    contract is explicit and survives a reverse-complement extension.
    """
    return (
        alignment.target_start,
        alignment.target_end,
        alignment.query_start,
        alignment.query_end,
        "+",
        -alignment.score,
        alignment.cigar(),
    )


def sort_canonical(alignments: Iterable[Alignment]) -> list[Alignment]:
    """Sort alignments into the canonical (target, query, strand) order."""
    return sorted(alignments, key=canonical_order)
