"""Deterministic merging of chunk-pair alignment results.

Chunk windows overlap, and an anchor's extension is free to run past its
chunk's core, so the same genomic alignment can be discovered by anchors
owned by different chunk pairs.  The merge reproduces exactly what an
unsegmented :meth:`~repro.core.pipeline.FastzResult.unique_alignments`
pass would keep:

1. every record carries its source anchor ``(query_pos, target_pos)``;
   records are sorted in global anchor order — the pipeline's
   ``lexsort((target_pos, query_pos))``, query-major — regardless of
   which chunk produced them or in what order chunks finished;
2. duplicates are dropped by (target, query) interval, keeping the
   first in anchor order.

The result is then put in canonical output order — (target, query,
strand) coordinates — so two runs with different worker counts, chunk
geometries or resume histories serialise byte-identically.
"""

from __future__ import annotations

import heapq
import re
from typing import Callable, Iterable, Mapping

from .. import obs
from ..align.alignment import Alignment

__all__ = [
    "IncrementalMerger",
    "canonical_order",
    "dedupe_records",
    "ops_from_cigar",
    "sort_canonical",
]

_CIGAR_RUN = re.compile(r"(\d+)([MID])")


def ops_from_cigar(cigar: str) -> tuple[tuple[str, int], ...]:
    """Parse a CIGAR string (``"120M2D87M"``) back into an edit script.

    Inverse of :meth:`~repro.align.alignment.Alignment.cigar`; the journal
    stores edit scripts as CIGAR text.
    """
    ops: list[tuple[str, int]] = []
    pos = 0
    for match in _CIGAR_RUN.finditer(cigar):
        if match.start() != pos:
            raise ValueError(f"malformed CIGAR {cigar!r}")
        ops.append((match.group(2), int(match.group(1))))
        pos = match.end()
    if pos != len(cigar):
        raise ValueError(f"malformed CIGAR {cigar!r}")
    return tuple(ops)


def dedupe_records(
    records: Iterable[tuple[int, int, Alignment]],
) -> list[Alignment]:
    """Deduplicate ``(anchor_t, anchor_q, alignment)`` records globally.

    Sorts by source anchor in pipeline order (query-major) and keeps the
    first alignment per (target, query) interval — bit-compatible with
    ``unique_alignments()`` on an unsegmented run over the same anchors.
    """
    ordered = sorted(records, key=lambda r: (r[1], r[0]))
    seen: set[tuple[int, int, int, int]] = set()
    out: list[Alignment] = []
    for _t, _q, a in ordered:
        key = (a.target_start, a.target_end, a.query_start, a.query_end)
        if key not in seen:
            seen.add(key)
            out.append(a)
    return out


class IncrementalMerger:
    """Watermark-driven incremental version of :func:`dedupe_records`.

    The barrier merge needs every chunk result in hand before it can
    dedupe, because a record's keep/drop decision depends on whether an
    *earlier-anchored* task rediscovered the same interval.  But "earlier"
    is bounded: each pending task ``T`` can only still produce records at
    or above its minimum anchor key ``min_key(T)`` (anchors are fixed at
    planning time), so every buffered record strictly below the
    **watermark** ``min(min_key(T) for pending T)`` is already final —
    no unfinished task can precede it in anchor order.

    Feed results with :meth:`complete` as tasks finish (any order,
    duplicate deliveries ignored; quarantined tasks complete with no
    records so the watermark keeps advancing); finalized alignments fire
    ``on_alignment`` immediately in ascending anchor order — this is what
    makes a whole-genome run show alignments seconds in.
    :meth:`finalize` returns the full canonical output,
    byte-identical to ``sort_canonical(dedupe_records(all_records))``.
    """

    def __init__(
        self,
        expected: Mapping[str, tuple[int, int]],
        *,
        on_alignment: Callable[[Alignment], None] | None = None,
    ) -> None:
        #: task_id -> minimum (anchor_q, anchor_t) the task can still emit.
        self._pending = dict(expected)
        self._on_alignment = on_alignment
        self._heap: list[tuple[tuple[int, int], int, Alignment]] = []
        self._serial = 0
        self._seen: set[tuple[int, int, int, int]] = set()
        self._emitted: list[Alignment] = []

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def emitted(self) -> int:
        return len(self._emitted)

    def watermark(self) -> tuple[int, int] | None:
        """Anchor key below which every buffered record is final."""
        if not self._pending:
            return None
        return min(self._pending.values())

    def complete(
        self, task_id: str, records: Iterable[tuple[int, int, Alignment]]
    ) -> None:
        """Deliver one finished task's records (idempotent per task)."""
        if task_id not in self._pending:
            return
        del self._pending[task_id]
        for t, q, a in records:
            self._serial += 1
            heapq.heappush(self._heap, ((q, t), self._serial, a))
        self._advance()
        obs.gauge(
            "repro_jobs_merge_buffered",
            "Alignment records buffered above the merge watermark.",
        ).set(len(self._heap))

    def _advance(self) -> None:
        wm = self.watermark()
        merged = obs.counter(
            "repro_jobs_merged_alignments_total",
            "Alignments finalized by the incremental merge.",
        )
        while self._heap and (wm is None or self._heap[0][0] < wm):
            _key, _serial, a = heapq.heappop(self._heap)
            key = (a.target_start, a.target_end, a.query_start, a.query_end)
            if key in self._seen:
                continue
            self._seen.add(key)
            self._emitted.append(a)
            merged.inc()
            if self._on_alignment is not None:
                self._on_alignment(a)

    def finalize(self) -> list[Alignment]:
        """Canonical merged output; requires every expected task completed."""
        if self._pending:
            raise RuntimeError(
                f"cannot finalize: {len(self._pending)} tasks still pending"
            )
        return sort_canonical(self._emitted)


def canonical_order(alignment: Alignment) -> tuple:
    """Total output order: (target, query, strand) coordinates, then score.

    Strand is constant ('+') in this library; it sits in the key so the
    contract is explicit and survives a reverse-complement extension.
    """
    return (
        alignment.target_start,
        alignment.target_end,
        alignment.query_start,
        alignment.query_end,
        "+",
        -alignment.score,
        alignment.cigar(),
    )


def sort_canonical(alignments: Iterable[Alignment]) -> list[Alignment]:
    """Sort alignments into the canonical (target, query, strand) order."""
    return sorted(alignments, key=canonical_order)
