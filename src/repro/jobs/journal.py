"""Append-only job journal: crash-safe checkpointing for WGA jobs.

One JSON record per line.  The first record is a header carrying the job
digest (sequences + config + options + segmentation geometry); every
completed task appends exactly one record *after* its work is done, so a
record's presence proves the work it describes is finished.  Durability
is write + flush + ``fsync`` per record (configurable off for tests and
benchmarks).

A process killed mid-append leaves at most one torn line at the end of
the file.  Both recovery paths handle it: :class:`Journal` truncates a
torn tail before reopening for append (otherwise the resumed run's first
record would be glued onto the partial line, corrupting the file mid-way
for every later replay), and :func:`replay` treats an undecodable *final*
line as the crash tear and drops it.  An undecodable line in the middle
of the file — which append-only writing plus tail truncation cannot
produce — raises :class:`JournalError`.  Resume-ability follows:
re-running a job replays the journal, skips every task with a completion
record, and re-executes only the rest.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

from .. import obs

__all__ = ["Journal", "JournalError", "replay"]


class JournalError(RuntimeError):
    """The journal is corrupt beyond the recoverable crash-tear case."""


def replay(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield the journal's records, dropping a torn final line if present."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for lineno, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                obs.counter(
                    "repro_jobs_journal_torn_total",
                    "Torn trailing journal lines dropped during replay.",
                ).inc()
                return
            raise JournalError(
                f"{path}: undecodable record at line {lineno + 1} "
                "(not the final line — journal corrupt)"
            ) from None
        if not isinstance(record, dict):
            raise JournalError(f"{path}: line {lineno + 1} is not an object")
        yield record


class Journal:
    """Append-only JSONL writer with per-record durability."""

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._truncate_torn_tail()
        self._handle = self.path.open("a", encoding="utf-8")
        self.appended = 0

    def _truncate_torn_tail(self) -> None:
        """Cut a torn final line left by a crash mid-append.

        Appending to a file whose last byte is not a newline would glue
        the new record onto the partial line; that composite line would
        then sit in the *middle* of the journal once further records
        follow, making every later replay raise :class:`JournalError`.
        Truncating back to the last newline keeps the append-only
        invariant: torn data only ever exists at the very end of the
        file, and only until the next reopen.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        cut = data.rfind(b"\n") + 1  # 0 when the only line is torn
        with self.path.open("r+b") as handle:
            handle.truncate(cut)
            if self.fsync:
                os.fsync(handle.fileno())
        obs.counter(
            "repro_jobs_journal_torn_total",
            "Torn trailing journal lines dropped during replay.",
        ).inc()

    def append(self, record: dict[str, Any]) -> None:
        """Durably append one record (the commit point of a task)."""
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.appended += 1
        obs.counter(
            "repro_jobs_journal_records_total",
            "Records appended to WGA job journals.",
        ).inc()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
