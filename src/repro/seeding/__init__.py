"""Seeding: exact-match seed discovery and seed filtering."""

from .filtering import (
    Anchors,
    IncrementalCollapser,
    collapse_diagonal,
    ungapped_filter,
)
from .seeds import (
    LASTZ_SPACED_SEED,
    SeedMatches,
    SeedTable,
    build_seed_table,
    censored_from_table,
    find_seeds,
    overrepresented_words,
    pack_kmers,
    pack_spaced,
    pack_words,
)

__all__ = [
    "Anchors",
    "IncrementalCollapser",
    "LASTZ_SPACED_SEED",
    "SeedMatches",
    "SeedTable",
    "build_seed_table",
    "censored_from_table",
    "collapse_diagonal",
    "find_seeds",
    "overrepresented_words",
    "pack_kmers",
    "pack_spaced",
    "pack_words",
    "ungapped_filter",
]
