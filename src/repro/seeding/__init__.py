"""Seeding: exact-match seed discovery and seed filtering."""

from .filtering import Anchors, collapse_diagonal, ungapped_filter
from .seeds import (
    LASTZ_SPACED_SEED,
    SeedMatches,
    SeedTable,
    build_seed_table,
    find_seeds,
    pack_kmers,
    pack_spaced,
)

__all__ = [
    "Anchors",
    "LASTZ_SPACED_SEED",
    "SeedMatches",
    "SeedTable",
    "build_seed_table",
    "collapse_diagonal",
    "find_seeds",
    "pack_kmers",
    "pack_spaced",
    "ungapped_filter",
]
