"""Seed discovery: exact k-mer matches between target and query.

Stage 1 of the WGA pipeline (paper §2): find short exact matches (19 bp by
default, LASTZ's seed length) to serve as anchor candidates for gapped
extension.  Both contiguous k-mers and LASTZ-style spaced seeds (a pattern
of care/don't-care positions, default ``12-of-19``) are supported.

Everything is vectorised: k-mer words are packed into ``uint64`` with a
Horner scan (k passes over the sequence), and matching is sort +
``searchsorted`` rather than a Python-dict hash table.  Words that occur too
often in the target are *censored* (dropped), mirroring LASTZ's treatment of
high-frequency repeat words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs

__all__ = [
    "SeedMatches",
    "SeedTable",
    "LASTZ_SPACED_SEED",
    "build_seed_table",
    "censored_from_table",
    "pack_kmers",
    "pack_spaced",
    "pack_words",
    "find_seeds",
    "overrepresented_words",
]

#: LASTZ's default 12-of-19 spaced seed pattern (1 = care, 0 = don't care).
LASTZ_SPACED_SEED = "1110100110010101111"


@dataclass(frozen=True)
class SeedMatches:
    """Parallel arrays of seed hits: ``target_pos[k]`` pairs ``query_pos[k]``.

    Positions are the start offsets of the matched word; ``span`` is the
    word footprint in bases (= k for contiguous seeds, pattern length for
    spaced seeds).
    """

    target_pos: np.ndarray
    query_pos: np.ndarray
    span: int

    def __post_init__(self) -> None:
        if self.target_pos.shape != self.query_pos.shape:
            raise ValueError("seed position arrays must have equal shape")

    def __len__(self) -> int:
        return int(self.target_pos.shape[0])

    def diagonals(self) -> np.ndarray:
        """Seed diagonals ``target_pos - query_pos`` (used for collapsing)."""
        return self.target_pos.astype(np.int64) - self.query_pos.astype(np.int64)


def _window_has_n(codes: np.ndarray, span: int) -> np.ndarray:
    """Boolean per window start: does the window contain an N?"""
    n = codes.shape[0]
    if n < span:
        return np.zeros(0, dtype=bool)
    is_n = (codes >= 4).astype(np.int32)
    csum = np.concatenate(([0], np.cumsum(is_n)))
    return (csum[span:] - csum[:-span]) > 0


def pack_kmers(codes: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Pack every k-window into a base-4 word.

    Returns ``(words, valid)``: ``words[i]`` encodes ``codes[i:i+k]`` and
    ``valid[i]`` is False where the window contains an N.
    """
    if not 1 <= k <= 31:
        raise ValueError("k must be in [1, 31] to fit a uint64 word")
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.shape[0]
    if n < k:
        return np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=bool)
    safe = np.where(codes >= 4, 0, codes).astype(np.uint64)
    words = np.zeros(n - k + 1, dtype=np.uint64)
    for offset in range(k):
        words = (words << np.uint64(2)) | safe[offset : n - k + 1 + offset]
    return words, ~_window_has_n(codes, k)


def pack_spaced(codes: np.ndarray, pattern: str) -> tuple[np.ndarray, np.ndarray]:
    """Pack windows under a spaced-seed pattern (only '1' positions count)."""
    if not pattern or any(c not in "01" for c in pattern):
        raise ValueError("pattern must be a non-empty string of 0s and 1s")
    care = [i for i, c in enumerate(pattern) if c == "1"]
    if not care:
        raise ValueError("pattern must have at least one care position")
    if len(care) > 31:
        raise ValueError("too many care positions to fit a uint64 word")
    span = len(pattern)
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.shape[0]
    if n < span:
        return np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=bool)
    safe = np.where(codes >= 4, 0, codes).astype(np.uint64)
    words = np.zeros(n - span + 1, dtype=np.uint64)
    for offset in care:
        words = (words << np.uint64(2)) | safe[offset : n - span + 1 + offset]
    # N handling: any N inside the *whole span* invalidates the window (a
    # conservative simplification; LASTZ checks only care positions).
    return words, ~_window_has_n(codes, span)


def pack_words(
    codes: np.ndarray, *, k: int = 19, spaced_pattern: str | None = None
) -> tuple[np.ndarray, np.ndarray, int]:
    """Pack windows under either seeding mode; returns ``(words, valid, span)``.

    The one dispatch point between contiguous and spaced seeds, shared by
    :func:`find_seeds`, :func:`build_seed_table` and the streaming
    producer so every caller packs identically.
    """
    if spaced_pattern is not None:
        words, valid = pack_spaced(codes, spaced_pattern)
        return words, valid, len(spaced_pattern)
    words, valid = pack_kmers(codes, k)
    return words, valid, k


def _window_masked(mask: np.ndarray, span: int) -> np.ndarray:
    """Boolean per window start: does the window touch a masked base?"""
    n = mask.shape[0]
    if n < span:
        return np.zeros(0, dtype=bool)
    csum = np.concatenate(([0], np.cumsum(mask.astype(np.int32))))
    return (csum[span:] - csum[:-span]) > 0


@dataclass(frozen=True)
class SeedTable:
    """Sorted target-side word table, the precomputable half of seeding.

    ``words`` is sorted ascending and ``positions[i]`` is the start offset
    of ``words[i]`` in the target; ``span`` is the word footprint in bases.
    Building this table (pack + stable argsort over the whole target) is
    the expensive part of :func:`find_seeds` and depends only on the
    target and the seeding parameters, so the reference store persists it
    per registered sequence and hands it back on every request.
    """

    words: np.ndarray
    positions: np.ndarray
    span: int

    def __post_init__(self) -> None:
        if self.words.shape != self.positions.shape:
            raise ValueError("seed table arrays must have equal shape")

    def __len__(self) -> int:
        return int(self.words.shape[0])


def build_seed_table(
    codes: np.ndarray,
    *,
    k: int = 19,
    spaced_pattern: str | None = None,
    mask: np.ndarray | None = None,
) -> SeedTable:
    """Build the sorted target-side word table used by :func:`find_seeds`.

    Replicates the target half of :func:`find_seeds` exactly (same packing,
    same validity rules, same stable sort), so matching against a prebuilt
    table is bit-identical to the inline path.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    words, valid, span = pack_words(codes, k=k, spaced_pattern=spaced_pattern)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != codes.shape:
            raise ValueError("mask must match the sequence's length")
        valid = valid & ~_window_masked(mask, span)
    pos_all = np.flatnonzero(valid)
    w = words[pos_all]
    order = np.argsort(w, kind="stable")
    return SeedTable(
        words=w[order],
        positions=pos_all[order].astype(np.int64),
        span=span,
    )


def censored_from_table(
    table: SeedTable, *, max_word_count: int = 64
) -> np.ndarray:
    """Sorted words occurring more than ``max_word_count`` times in ``table``.

    A :class:`SeedTable` indexes exactly the valid (N-free, unmasked)
    windows :func:`overrepresented_words` would count, with ``words``
    already sorted — so the censor set falls out of a run-length scan,
    letting the streaming producer derive the *global* censoring decision
    from a cached table without touching the raw sequence.
    """
    words = table.words
    if words.size == 0:
        return np.zeros(0, dtype=np.uint64)
    starts = np.flatnonzero(np.concatenate(([True], words[1:] != words[:-1])))
    counts = np.diff(np.concatenate((starts, [words.size])))
    return words[starts[counts > max_word_count]].copy()


def find_seeds(
    target: np.ndarray,
    query: np.ndarray,
    *,
    k: int = 19,
    spaced_pattern: str | None = None,
    max_word_count: int = 64,
    target_mask: np.ndarray | None = None,
    query_mask: np.ndarray | None = None,
    censored_words: np.ndarray | None = None,
    target_table: SeedTable | None = None,
) -> SeedMatches:
    """All exact word matches between ``target`` and ``query``.

    Parameters
    ----------
    k:
        Contiguous seed length (ignored when ``spaced_pattern`` is given).
    spaced_pattern:
        Optional spaced-seed pattern, e.g. :data:`LASTZ_SPACED_SEED`.
    max_word_count:
        Censoring threshold: words occurring more than this many times in
        the target are dropped entirely (repeat suppression).
    target_mask, query_mask:
        Optional soft-mask boolean arrays (True = masked, e.g. lowercase
        repeats in FASTA).  Windows touching a masked base never seed —
        LASTZ's repeat handling — though extensions may still align
        *through* masked regions.
    censored_words:
        Pre-computed censor set (sorted ``uint64`` words).  When given it
        *replaces* the local ``max_word_count`` counting: a match is kept
        unless its word is in the set.  The whole-genome job runner seeds
        chunk pairs independently but must censor against *global* target
        word counts (a chunk sees only a fraction of each repeat family),
        so it computes :func:`overrepresented_words` once over the full
        target and passes the set to every chunk-local call.
    target_table:
        Prebuilt sorted target table (see :func:`build_seed_table`).  When
        given, the target-side pack + sort — the expensive, per-reference
        half of this function — is skipped entirely; the table must have
        been built with the same seeding parameters (``span`` is checked;
        ``target_mask`` must then be None because masking is baked into
        the table at build time).  The result is bit-identical to the
        inline path.
    """
    target = np.asarray(target, dtype=np.uint8)
    query = np.asarray(query, dtype=np.uint8)
    q_words, q_valid, span = pack_words(query, k=k, spaced_pattern=spaced_pattern)

    if target_table is not None:
        if target_mask is not None:
            raise ValueError(
                "target_mask cannot be combined with target_table; masking "
                "is baked into the table when it is built"
            )
        if target_table.span != span:
            raise ValueError(
                f"target_table was built with span {target_table.span}, "
                f"these seeding parameters need span {span}"
            )
        t_w_sorted = target_table.words
        t_pos_sorted = target_table.positions
    else:
        # Build the sorted target table inline.  The span makes the cost
        # visible in traces; on the store path it disappears because a
        # cached table is passed in instead.
        with obs.span("fastz.seed_table", target_bp=int(target.shape[0])):
            t_words, t_valid, _ = pack_words(
                target, k=k, spaced_pattern=spaced_pattern
            )
            if target_mask is not None:
                target_mask = np.asarray(target_mask, dtype=bool)
                if target_mask.shape != target.shape:
                    raise ValueError("target_mask must match the target's length")
                t_valid = t_valid & ~_window_masked(target_mask, span)
            t_pos_all = np.flatnonzero(t_valid)
            t_w = t_words[t_pos_all]
            # Sort target words once; stream query words through searchsorted.
            order = np.argsort(t_w, kind="stable")
            t_w_sorted = t_w[order]
            t_pos_sorted = t_pos_all[order]

    if query_mask is not None:
        query_mask = np.asarray(query_mask, dtype=bool)
        if query_mask.shape != query.shape:
            raise ValueError("query_mask must match the query's length")
        q_valid = q_valid & ~_window_masked(query_mask, span)

    q_pos_all = np.flatnonzero(q_valid)
    if t_pos_sorted.size == 0 or q_pos_all.size == 0:
        return SeedMatches(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), span
        )
    q_w = q_words[q_pos_all]

    left = np.searchsorted(t_w_sorted, q_w, side="left")
    right = np.searchsorted(t_w_sorted, q_w, side="right")
    counts = right - left

    # Censor high-frequency words and non-matches.
    if censored_words is not None:
        keep = counts > 0
        if censored_words.size:
            keep &= ~np.isin(q_w, censored_words)
    else:
        keep = (counts > 0) & (counts <= max_word_count)
    if not keep.any():
        return SeedMatches(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), span
        )
    left = left[keep]
    counts = counts[keep]
    q_hit_pos = q_pos_all[keep]

    # Expand (query hit, count) pairs into flat index lists.
    total = int(counts.sum())
    q_rep = np.repeat(q_hit_pos, counts)
    # Offsets into t_pos_sorted: left[i] .. left[i]+counts[i]-1 for each hit.
    starts = np.repeat(left, counts)
    within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    t_rep = t_pos_sorted[starts + within]

    # Canonical order: by query position, then target position.
    order = np.lexsort((t_rep, q_rep))
    return SeedMatches(
        target_pos=t_rep[order].astype(np.int64),
        query_pos=q_rep[order].astype(np.int64),
        span=span,
    )


def overrepresented_words(
    codes: np.ndarray,
    *,
    k: int = 19,
    spaced_pattern: str | None = None,
    max_word_count: int = 64,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Sorted ``uint64`` words occurring more than ``max_word_count`` times.

    Counts valid (N-free, unmasked) windows of ``codes`` exactly as
    :func:`find_seeds` counts the target side, so passing the result as
    ``censored_words`` to chunk-local ``find_seeds`` calls reproduces the
    global censoring decision regardless of how the target is segmented.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    words, valid, span = pack_words(codes, k=k, spaced_pattern=spaced_pattern)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != codes.shape:
            raise ValueError("mask must match the sequence's length")
        valid = valid & ~_window_masked(mask, span)
    words = words[valid]
    if words.size == 0:
        return np.zeros(0, dtype=np.uint64)
    unique, counts = np.unique(words, return_counts=True)
    return np.sort(unique[counts > max_word_count])
