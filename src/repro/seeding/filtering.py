"""Seed filtering: stage 2 of the WGA pipeline.

Two filters are provided:

* :func:`collapse_diagonal` — LASTZ-style anchor thinning: seeds on the same
  diagonal within ``window`` bases of a previously kept seed are dropped.
  This is what turns a run of overlapping word hits inside one homologous
  segment into a handful of anchor points, and it is the filter used by the
  *gapped* (high-sensitivity) pipeline.

* :func:`ungapped_filter` — the 'ungapped LASTZ' filter: each anchor is
  ungapped-x-drop extended and kept only if its HSP score clears
  ``scheme.hsp_threshold``.  Faster downstream (fewer anchors) but less
  sensitive — exactly the trade-off of the paper's Figure 2.

Anchors are the (target, query) coordinate pairs handed to gapped
extension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.ungapped import ungapped_extend
from ..scoring import ScoringScheme
from .seeds import SeedMatches

__all__ = [
    "Anchors",
    "IncrementalCollapser",
    "collapse_diagonal",
    "ungapped_filter",
]


@dataclass(frozen=True)
class Anchors:
    """Filtered anchor points for gapped extension (parallel arrays)."""

    target_pos: np.ndarray
    query_pos: np.ndarray

    def __post_init__(self) -> None:
        if self.target_pos.shape != self.query_pos.shape:
            raise ValueError("anchor arrays must have equal shape")

    def __len__(self) -> int:
        return int(self.target_pos.shape[0])

    def take(self, indices: np.ndarray) -> "Anchors":
        return Anchors(self.target_pos[indices], self.query_pos[indices])

    def pairs(self) -> list[tuple[int, int]]:
        return list(zip(self.target_pos.tolist(), self.query_pos.tolist()))


class IncrementalCollapser:
    """Diagonal thinning with an advancing *diagonal frontier*.

    The collapse scan visits seeds in (diagonal, query-position) order, and
    each keep/drop decision depends only on seeds *earlier* in that order
    (kept seeds at diagonals ``<= d``).  So the scan can be segmented: once
    every future seed is guaranteed to lie at diagonal ``>= frontier``, all
    buffered seeds with ``diagonal < frontier`` can be decided *finally* —
    the persistent per-diagonal / per-bucket state carries across drains
    and reproduces the one-shot :func:`collapse_diagonal` scan bit for bit.
    The streaming pipeline exploits exactly this: seeding the target in
    ascending chunks against a query-side table means every undiscovered
    seed has ``diagonal >= next_chunk_start - len(query) + 1``.

    Contract: seeds passed to :meth:`add` after a :meth:`drain` call must
    all lie at diagonals ``>=`` that drain's frontier (drains take strictly
    increasing frontiers).  Violating this re-orders the global scan and
    the result is no longer identical to the barrier pipeline.

    :func:`collapse_diagonal` is implemented on top of this class (one
    ``add`` + one unbounded ``drain``), so there is a single collapse state
    machine to trust.
    """

    def __init__(self, *, window: int = 500, diag_band: int = 0, span: int) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if diag_band < 0:
            raise ValueError("diag_band must be non-negative")
        self.window = window
        self.diag_band = diag_band
        self.span = span
        self._pending_t: list[np.ndarray] = []
        self._pending_q: list[np.ndarray] = []
        # Exact-diagonal state: last kept query position per diagonal.
        self._last_q: dict[int, int] = {}
        # Banded state: every kept (diag, q) per diagonal bucket, in keep
        # order (the scan probes them first-to-last, so order matters).
        self._last_kept: dict[int, list[tuple[int, int]]] = {}

    @property
    def pending(self) -> int:
        return sum(int(a.shape[0]) for a in self._pending_t)

    def add(self, target_pos: np.ndarray, query_pos: np.ndarray) -> None:
        """Buffer a batch of seed hits (start positions, any order)."""
        t = np.asarray(target_pos, dtype=np.int64)
        q = np.asarray(query_pos, dtype=np.int64)
        if t.shape != q.shape:
            raise ValueError("seed position arrays must have equal shape")
        if t.size:
            self._pending_t.append(t)
            self._pending_q.append(q)

    def drain(self, frontier: int | None = None) -> Anchors:
        """Decide every buffered seed with ``diagonal < frontier``.

        ``None`` decides everything left.  Returns the *kept* seeds as
        centre-anchored :class:`Anchors`, in scan order — concatenating the
        anchors of successive drains reproduces the one-shot collapse
        output exactly.
        """
        if not self._pending_t:
            return Anchors(
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
            )
        t_all = np.concatenate(self._pending_t)
        q_all = np.concatenate(self._pending_q)
        d_all = t_all - q_all
        if frontier is None:
            ready = np.ones(t_all.shape[0], dtype=bool)
        else:
            ready = d_all < frontier
        t_rest, q_rest = t_all[~ready], q_all[~ready]
        self._pending_t = [t_rest] if t_rest.size else []
        self._pending_q = [q_rest] if q_rest.size else []

        t_sel, q_sel, d_sel = t_all[ready], q_all[ready], d_all[ready]
        if t_sel.size == 0:
            return Anchors(
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
            )
        order = np.lexsort((q_sel, d_sel))
        d_sorted = d_sel[order]
        q_sorted = q_sel[order]
        n = d_sorted.shape[0]
        keep = np.zeros(n, dtype=bool)

        if self.diag_band == 0:
            last_q = self._last_q
            window = self.window
            for idx in range(n):
                d = int(d_sorted[idx])
                q = int(q_sorted[idx])
                prev = last_q.get(d)
                if prev is None or q - prev >= window:
                    keep[idx] = True
                    last_q[d] = q
        else:
            diag_band = self.diag_band
            window = self.window
            last_kept = self._last_kept
            for idx in range(n):
                d = int(d_sorted[idx])
                q = int(q_sorted[idx])
                b = d // diag_band
                clear = True
                for bb in (b - 1, b, b + 1):
                    for kd, kq in last_kept.get(bb, ()):
                        if abs(d - kd) <= diag_band and abs(q - kq) < window:
                            clear = False
                            break
                    if not clear:
                        break
                if clear:
                    keep[idx] = True
                    last_kept.setdefault(b, []).append((d, q))

        kept = order[keep]
        half = self.span // 2
        return Anchors(
            target_pos=(t_sel[kept] + half).astype(np.int64),
            query_pos=(q_sel[kept] + half).astype(np.int64),
        )


def collapse_diagonal(
    seeds: SeedMatches, *, window: int = 500, diag_band: int = 0
) -> Anchors:
    """Thin seeds: keep one per diagonal band per ``window`` bases.

    Seeds are scanned in (diagonal band, query-position) order; a seed is
    kept if no previously kept seed lies within ``diag_band`` diagonals and
    ``window`` query bases of it.  ``diag_band=0`` collapses per exact
    diagonal; a positive band additionally merges seeds whose diagonals are
    shifted by small indels (LASTZ's chaining performs the equivalent
    merge).  The anchor point is placed at the *centre* of the seed word,
    which is where LASTZ anchors its gapped extension.

    One-shot wrapper over :class:`IncrementalCollapser` (a single unbounded
    drain), so the barrier and streaming pipelines share one scan.
    """
    collapser = IncrementalCollapser(
        window=window, diag_band=diag_band, span=seeds.span
    )
    collapser.add(seeds.target_pos, seeds.query_pos)
    return collapser.drain(None)


def ungapped_filter(
    anchors: Anchors,
    target: np.ndarray,
    query: np.ndarray,
    scheme: ScoringScheme,
) -> tuple[Anchors, np.ndarray]:
    """Keep anchors whose ungapped HSP clears ``scheme.hsp_threshold``.

    Returns the surviving anchors and the HSP scores of *all* input anchors
    (callers use the scores for sensitivity analysis).
    """
    n = len(anchors)
    scores = np.zeros(n, dtype=np.int64)
    for idx in range(n):
        hsp = ungapped_extend(
            target,
            query,
            int(anchors.target_pos[idx]),
            int(anchors.query_pos[idx]),
            scheme,
        )
        scores[idx] = hsp.score
    keep = scores >= scheme.hsp_threshold
    return anchors.take(np.flatnonzero(keep)), scores
