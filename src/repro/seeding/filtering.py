"""Seed filtering: stage 2 of the WGA pipeline.

Two filters are provided:

* :func:`collapse_diagonal` — LASTZ-style anchor thinning: seeds on the same
  diagonal within ``window`` bases of a previously kept seed are dropped.
  This is what turns a run of overlapping word hits inside one homologous
  segment into a handful of anchor points, and it is the filter used by the
  *gapped* (high-sensitivity) pipeline.

* :func:`ungapped_filter` — the 'ungapped LASTZ' filter: each anchor is
  ungapped-x-drop extended and kept only if its HSP score clears
  ``scheme.hsp_threshold``.  Faster downstream (fewer anchors) but less
  sensitive — exactly the trade-off of the paper's Figure 2.

Anchors are the (target, query) coordinate pairs handed to gapped
extension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.ungapped import ungapped_extend
from ..scoring import ScoringScheme
from .seeds import SeedMatches

__all__ = ["Anchors", "collapse_diagonal", "ungapped_filter"]


@dataclass(frozen=True)
class Anchors:
    """Filtered anchor points for gapped extension (parallel arrays)."""

    target_pos: np.ndarray
    query_pos: np.ndarray

    def __post_init__(self) -> None:
        if self.target_pos.shape != self.query_pos.shape:
            raise ValueError("anchor arrays must have equal shape")

    def __len__(self) -> int:
        return int(self.target_pos.shape[0])

    def take(self, indices: np.ndarray) -> "Anchors":
        return Anchors(self.target_pos[indices], self.query_pos[indices])

    def pairs(self) -> list[tuple[int, int]]:
        return list(zip(self.target_pos.tolist(), self.query_pos.tolist()))


def collapse_diagonal(
    seeds: SeedMatches, *, window: int = 500, diag_band: int = 0
) -> Anchors:
    """Thin seeds: keep one per diagonal band per ``window`` bases.

    Seeds are scanned in (diagonal band, query-position) order; a seed is
    kept if no previously kept seed lies within ``diag_band`` diagonals and
    ``window`` query bases of it.  ``diag_band=0`` collapses per exact
    diagonal; a positive band additionally merges seeds whose diagonals are
    shifted by small indels (LASTZ's chaining performs the equivalent
    merge).  The anchor point is placed at the *centre* of the seed word,
    which is where LASTZ anchors its gapped extension.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if diag_band < 0:
        raise ValueError("diag_band must be non-negative")
    n = len(seeds)
    if n == 0:
        return Anchors(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))

    diag = seeds.diagonals()
    order = np.lexsort((seeds.query_pos, diag))
    d_sorted = diag[order]
    q_sorted = seeds.query_pos[order]

    keep = np.zeros(n, dtype=bool)
    if diag_band == 0:
        # Exact-diagonal runs: linear sweep over sorted groups.
        last_q = 0
        for idx in range(n):
            if idx == 0 or d_sorted[idx] != d_sorted[idx - 1]:
                keep[idx] = True
                last_q = q_sorted[idx]
            elif q_sorted[idx] - last_q >= window:
                keep[idx] = True
                last_q = q_sorted[idx]
    else:
        # Banded collapse: remember the last kept seed per diagonal bucket;
        # a new seed must clear every bucket within the band.
        bucket_of = (d_sorted // max(diag_band, 1)).astype(np.int64)
        last_kept: dict[int, list[tuple[int, int]]] = {}
        for idx in range(n):
            d = int(d_sorted[idx])
            q = int(q_sorted[idx])
            b = int(bucket_of[idx])
            clear = True
            for bb in (b - 1, b, b + 1):
                for kd, kq in last_kept.get(bb, ()):
                    if abs(d - kd) <= diag_band and abs(q - kq) < window:
                        clear = False
                        break
                if not clear:
                    break
            if clear:
                keep[idx] = True
                last_kept.setdefault(b, []).append((d, q))

    kept = order[keep]
    half = seeds.span // 2
    return Anchors(
        target_pos=(seeds.target_pos[kept] + half).astype(np.int64),
        query_pos=(seeds.query_pos[kept] + half).astype(np.int64),
    )


def ungapped_filter(
    anchors: Anchors,
    target: np.ndarray,
    query: np.ndarray,
    scheme: ScoringScheme,
) -> tuple[Anchors, np.ndarray]:
    """Keep anchors whose ungapped HSP clears ``scheme.hsp_threshold``.

    Returns the surviving anchors and the HSP scores of *all* input anchors
    (callers use the scores for sensitivity analysis).
    """
    n = len(anchors)
    scores = np.zeros(n, dtype=np.int64)
    for idx in range(n):
        hsp = ungapped_extend(
            target,
            query,
            int(anchors.target_pos[idx]),
            int(anchors.query_pos[idx]),
            scheme,
        )
        scores[idx] = hsp.score
    keep = scores >= scheme.hsp_threshold
    return anchors.take(np.flatnonzero(keep)), scores
