"""Configuration for the LASTZ pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..scoring import ScoringScheme, default_scheme

__all__ = ["LastzConfig"]


@dataclass(frozen=True)
class LastzConfig:
    """Knobs shared by the sequential, multicore and FastZ pipelines.

    Attributes
    ----------
    scheme:
        Scoring scheme (substitution matrix, gaps, y-drop, thresholds).
    seed_length:
        Contiguous seed word length (LASTZ default 19).
    spaced_pattern:
        Optional spaced-seed pattern; overrides ``seed_length`` when set.
    collapse_window:
        Diagonal thinning window for anchor selection (stage 2).
    diag_band:
        Diagonal tolerance of the thinning: seeds within this many
        diagonals of a kept seed are merged with it (chaining across small
        indels).  0 = exact-diagonal collapse.
    max_word_count:
        Seed-word censoring threshold (repeat suppression).
    traceback:
        Whether pipelines reconstruct full edit scripts (needed for final
        output; can be disabled for pure work-profiling runs).
    """

    scheme: ScoringScheme = field(default_factory=default_scheme)
    seed_length: int = 19
    spaced_pattern: str | None = None
    collapse_window: int = 500
    diag_band: int = 0
    max_word_count: int = 64
    traceback: bool = True

    def __post_init__(self) -> None:
        if self.seed_length < 4:
            raise ValueError("seed_length must be at least 4")
        if self.collapse_window <= 0:
            raise ValueError("collapse_window must be positive")
        if self.diag_band < 0:
            raise ValueError("diag_band must be non-negative")
        if self.max_word_count <= 0:
            raise ValueError("max_word_count must be positive")
