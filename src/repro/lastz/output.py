"""Alignment output formats: LASTZ ``--format=general`` TSV and MAF.

LASTZ users consume alignments in a handful of standard encodings; a
drop-in replacement must speak at least the tabular general format and
MAF (the multiple-alignment format that downstream tools like multiz
expect).  Both writers work from :class:`~repro.align.alignment.Alignment`
objects plus the two sequences.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO

from ..align.alignment import Alignment
from ..genome.alphabet import decode
from ..genome.sequence import Sequence

__all__ = [
    "general_header",
    "format_general_row",
    "output_order",
    "write_general",
    "write_maf",
]

_GENERAL_COLUMNS = (
    "score",
    "name1",
    "start1",
    "end1",
    "name2",
    "start2",
    "end2",
    "identity",
    "cigar",
)


def general_header() -> str:
    """The ``--format=general`` header row."""
    return "#" + "\t".join(_GENERAL_COLUMNS)


def format_general_row(
    alignment: Alignment, target: Sequence, query: Sequence
) -> str:
    """One TSV row of the general format."""
    if alignment.ops:
        ident = f"{100 * alignment.identity(target.codes, query.codes):.1f}%"
        cigar = alignment.cigar()
    else:
        ident = cigar = "-"
    return "\t".join(
        str(v)
        for v in (
            alignment.score,
            target.name,
            alignment.target_start,
            alignment.target_end,
            query.name,
            alignment.query_start,
            alignment.query_end,
            ident,
            cigar,
        )
    )


def _open(path: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(path, io.TextIOBase):
        return path, False
    return open(path, "w", encoding="ascii"), True


def output_order(alignment: Alignment) -> tuple:
    """Writer sort key: best score first, then a total positional order.

    Score ties are broken by (target, query, strand) coordinates — never
    by input order — so any two runs that produce the same *set* of
    alignments (e.g. a segmented whole-genome job at different worker
    counts vs. a single-pass run) serialise to byte-identical files.
    Strand is constant ('+') in this library but kept in the key so the
    contract survives a reverse-complement extension.
    """
    return (
        -alignment.score,
        alignment.target_start,
        alignment.target_end,
        alignment.query_start,
        alignment.query_end,
        "+",
        alignment.cigar(),
    )


def write_general(
    path: str | Path | TextIO,
    alignments: Iterable[Alignment],
    target: Sequence,
    query: Sequence,
) -> None:
    """Write the general TSV format (highest score first)."""
    handle, own = _open(path)
    try:
        handle.write(general_header() + "\n")
        for a in sorted(alignments, key=output_order):
            handle.write(format_general_row(a, target, query) + "\n")
    finally:
        if own:
            handle.close()


def _gapped_strings(
    alignment: Alignment, target: Sequence, query: Sequence
) -> tuple[str, str]:
    """Render the two gapped alignment rows (with '-' fill)."""
    t_parts: list[str] = []
    q_parts: list[str] = []
    ti, qj = alignment.target_start, alignment.query_start
    for op, n in alignment.ops:
        if op == "M":
            t_parts.append(decode(target.codes[ti : ti + n]))
            q_parts.append(decode(query.codes[qj : qj + n]))
            ti += n
            qj += n
        elif op == "I":
            t_parts.append("-" * n)
            q_parts.append(decode(query.codes[qj : qj + n]))
            qj += n
        else:  # D
            t_parts.append(decode(target.codes[ti : ti + n]))
            q_parts.append("-" * n)
            ti += n
    return "".join(t_parts), "".join(q_parts)


def write_maf(
    path: str | Path | TextIO,
    alignments: Iterable[Alignment],
    target: Sequence,
    query: Sequence,
    *,
    program: str = "fastz-repro",
) -> None:
    """Write alignments as MAF blocks.

    Requires edit scripts (run the pipeline with traceback enabled).
    Strand is always '+' — the library models same-strand alignment, like
    the paper's seed-extension stage.
    """
    handle, own = _open(path)
    try:
        handle.write(f"##maf version=1 program={program}\n\n")
        name_w = max(len(target.name), len(query.name))
        for a in sorted(alignments, key=output_order):
            if not a.ops:
                raise ValueError(
                    "MAF output needs edit scripts; run with traceback enabled"
                )
            t_row, q_row = _gapped_strings(a, target, query)
            handle.write(f"a score={a.score}\n")
            handle.write(
                f"s {target.name:<{name_w}} {a.target_start:>10} "
                f"{a.target_length:>8} + {len(target):>10} {t_row}\n"
            )
            handle.write(
                f"s {query.name:<{name_w}} {a.query_start:>10} "
                f"{a.query_length:>8} + {len(query):>10} {q_row}\n\n"
            )
    finally:
        if own:
            handle.close()
