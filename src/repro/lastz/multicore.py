"""Multicore LASTZ: functional multi-process partitioning + timing model.

The paper's multicore baseline partitions the seed list across 32 processes,
each running the default sequential DP (paper §3.4: none of FastZ's GPU
innovations apply to multicores).  Two things are provided here:

* :func:`run_multicore_lastz` — a *functional* partitioned run: anchors are
  dealt round-robin to ``processes`` logical workers, each worker runs the
  sequential pipeline with its own (partition-local) work-reduction index,
  and results are merged.  Cross-partition work reduction is lost, exactly
  as in the real multi-process implementation.
* the timing model lives in :mod:`repro.lastz.cpu_model` and consumes this
  run's per-worker work profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..genome.sequence import Sequence
from ..seeding import Anchors
from .config import LastzConfig
from .cpu_model import CpuSpec, RYZEN_3950X, multicore_seconds, sequential_seconds
from .pipeline import LastzResult, run_gapped_lastz, select_anchors

__all__ = ["MulticoreResult", "run_multicore_lastz"]


@dataclass
class MulticoreResult:
    """Merged output of the partitioned run."""

    worker_results: list[LastzResult]
    processes: int

    @property
    def alignments(self):
        out = []
        for res in self.worker_results:
            out.extend(res.alignments)
        return out

    @property
    def cells_per_task(self) -> np.ndarray:
        parts = [r.cells_per_task for r in self.worker_results]
        return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)

    @property
    def total_cells(self) -> int:
        return int(self.cells_per_task.sum())

    def worker_loads(self) -> np.ndarray:
        """DP cells per worker — the load-balance view."""
        return np.array([r.total_cells for r in self.worker_results], dtype=np.int64)

    def modelled_seconds(self, cpu: CpuSpec = RYZEN_3950X) -> float:
        return multicore_seconds(self.cells_per_task, cpu, processes=self.processes)

    def modelled_speedup(
        self, sequential_cells: np.ndarray, cpu: CpuSpec = RYZEN_3950X
    ) -> float:
        """Speedup over a sequential run with the given work profile."""
        seq = sequential_seconds(sequential_cells, cpu)
        par = self.modelled_seconds(cpu)
        return seq / par if par > 0 else float("inf")


def _run_partition(args: tuple) -> LastzResult:
    """Top-level worker entry (must be picklable for process pools)."""
    t_codes, q_codes, config, t_pos, q_pos = args
    return run_gapped_lastz(
        t_codes, q_codes, config, anchors=Anchors(t_pos, q_pos)
    )


def run_multicore_lastz(
    target: Sequence | np.ndarray,
    query: Sequence | np.ndarray,
    config: LastzConfig | None = None,
    *,
    anchors: Anchors | None = None,
    processes: int = 32,
    use_os_processes: bool = False,
) -> MulticoreResult:
    """Functional partitioned run.

    By default workers execute in-process (deterministic and cheap): the
    point is the *partitioning semantics* — who extends what, which work
    reduction survives.  With ``use_os_processes=True`` the partitions run
    on a real :class:`concurrent.futures.ProcessPoolExecutor`, which is the
    actual deployment shape of the paper's multicore baseline (results are
    identical; wall-clock depends on the host, which is why speedups come
    from the cost model rather than from timing this Python code).
    """
    if processes <= 0:
        raise ValueError("processes must be positive")
    config = config or LastzConfig()
    t_codes = np.asarray(target.codes if isinstance(target, Sequence) else target)
    q_codes = np.asarray(query.codes if isinstance(query, Sequence) else query)

    if anchors is None:
        anchors = select_anchors(t_codes, q_codes, config)

    n = len(anchors)
    partitions = []
    for w in range(processes):
        idx = np.arange(w, n, processes)
        part = anchors.take(idx)
        partitions.append(
            (t_codes, q_codes, config, part.target_pos, part.query_pos)
        )

    if use_os_processes:
        import concurrent.futures

        max_workers = min(processes, 8)  # don't oversubscribe the host
        with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
            worker_results = list(pool.map(_run_partition, partitions))
    else:
        worker_results = [_run_partition(p) for p in partitions]
    return MulticoreResult(worker_results=worker_results, processes=processes)
