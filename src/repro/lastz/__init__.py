"""LASTZ baselines: sequential gapped, ungapped-filter, and multicore."""

from .config import LastzConfig
from .cpu_model import (
    CpuSpec,
    RYZEN_3950X,
    multicore_seconds,
    sequential_seconds,
)
from .multicore import MulticoreResult, run_multicore_lastz
from .output import (
    format_general_row,
    general_header,
    output_order,
    write_general,
    write_maf,
)
from .pipeline import (
    AlignmentIndex,
    LastzResult,
    TaskRecord,
    run_gapped_lastz,
    select_anchors,
)
from .ungapped import UngappedLastzResult, run_ungapped_lastz

__all__ = [
    "AlignmentIndex",
    "CpuSpec",
    "LastzConfig",
    "LastzResult",
    "MulticoreResult",
    "RYZEN_3950X",
    "TaskRecord",
    "UngappedLastzResult",
    "format_general_row",
    "general_header",
    "output_order",
    "write_general",
    "write_maf",
    "multicore_seconds",
    "run_gapped_lastz",
    "run_multicore_lastz",
    "run_ungapped_lastz",
    "select_anchors",
    "sequential_seconds",
]
