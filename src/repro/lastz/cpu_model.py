"""CPU cost model for sequential and multicore LASTZ.

The paper's baselines run on an AMD Ryzen 3950x (16 cores, 3.5 GHz, 64 MB
L3).  We have no such machine; instead, the *work profile* measured by the
functional pipeline (DP cells per seed extension) is mapped through a
calibrated cycles-per-cell constant.  Speedups in the paper are time ratios
against this baseline, so the single constant cancels out of every
within-machine comparison and only shapes the CPU-vs-GPU ratio; its value
(and the multicore bandwidth cap) are documented calibration parameters
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CpuSpec", "RYZEN_3950X", "sequential_seconds", "multicore_seconds"]


@dataclass(frozen=True)
class CpuSpec:
    """A multicore CPU for the LASTZ baselines."""

    name: str
    cores: int
    freq_ghz: float
    #: Average cycles LASTZ spends per DP cell (calibrated; includes the
    #: memory-system stalls of the pointer-heavy row loop).
    cycles_per_cell: float
    #: Fixed per-seed overhead (anchor handling, bookkeeping) in cycles.
    anchor_overhead_cycles: float
    #: SMT throughput factor when running 2 processes per core (the paper's
    #: multicore config runs 32 processes on 16 cores).
    smt_factor: float
    #: Upper bound on multicore speedup imposed by memory bandwidth
    #: saturation (the paper measures ~20x for 32 processes).
    bandwidth_speedup_cap: float

    def cell_seconds(self, cells: float) -> float:
        return cells * self.cycles_per_cell / (self.freq_ghz * 1e9)


#: The paper's baseline machine.
RYZEN_3950X = CpuSpec(
    name="AMD Ryzen 3950x",
    cores=16,
    freq_ghz=3.5,
    cycles_per_cell=30.0,
    anchor_overhead_cycles=3000.0,
    smt_factor=1.30,
    bandwidth_speedup_cap=20.8,
)


def sequential_seconds(cells_per_task: np.ndarray, cpu: CpuSpec = RYZEN_3950X) -> float:
    """Modelled wall-clock of sequential LASTZ over a work profile."""
    cells_per_task = np.asarray(cells_per_task, dtype=np.float64)
    total = float(cells_per_task.sum())
    overhead = cells_per_task.shape[0] * cpu.anchor_overhead_cycles
    return (total * cpu.cycles_per_cell + overhead) / (cpu.freq_ghz * 1e9)


def multicore_seconds(
    cells_per_task: np.ndarray,
    cpu: CpuSpec = RYZEN_3950X,
    *,
    processes: int = 32,
) -> float:
    """Modelled wall-clock of the multi-process LASTZ variant.

    Tasks are dealt round-robin to ``processes`` workers (the paper's
    partitioning); the slowest worker sets the parallel time, and memory
    bandwidth saturation caps the speedup (:attr:`CpuSpec.bandwidth_speedup_cap`).
    """
    if processes <= 0:
        raise ValueError("processes must be positive")
    cells_per_task = np.asarray(cells_per_task, dtype=np.float64)
    seq = sequential_seconds(cells_per_task, cpu)
    if cells_per_task.size == 0:
        return 0.0

    # Round-robin partition: worker w gets tasks w, w+P, w+2P, ...
    loads = np.zeros(processes, dtype=np.float64)
    for w in range(processes):
        part = cells_per_task[w::processes]
        loads[w] = part.sum() * cpu.cycles_per_cell + part.size * cpu.anchor_overhead_cycles
    # When processes oversubscribe the cores they timeshare: each process
    # runs at cores*smt/processes core-equivalents.
    rate = min(1.0, cpu.cores * cpu.smt_factor / processes)
    parallel = float(loads.max()) / (rate * cpu.freq_ghz * 1e9)
    return max(parallel, seq / cpu.bandwidth_speedup_cap)
