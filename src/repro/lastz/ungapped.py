"""The 'ungapped LASTZ' pipeline: ungapped filtering before gapped extension.

This is the faster-but-less-sensitive variant of the paper's Figure 2:
anchors must first survive an x-drop *ungapped* extension scoring at least
``hsp_threshold``; only survivors receive the (expensive) gapped extension.
Seeds sitting in gap-interrupted homology never reach a high ungapped score
and are dropped — exactly the sensitivity loss the figure quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..genome.sequence import Sequence
from ..seeding import Anchors, ungapped_filter
from .config import LastzConfig
from .pipeline import LastzResult, run_gapped_lastz, select_anchors

__all__ = ["UngappedLastzResult", "run_ungapped_lastz"]


@dataclass
class UngappedLastzResult:
    """Ungapped-filter pipeline output."""

    result: LastzResult
    #: HSP score per input anchor (before filtering).
    hsp_scores: np.ndarray
    #: Number of anchors that survived the ungapped filter.
    survivors: int
    #: Number of anchors before filtering.
    candidates: int

    @property
    def alignments(self):
        return self.result.alignments

    @property
    def filter_rate(self) -> float:
        """Fraction of anchors removed by the ungapped filter."""
        if self.candidates == 0:
            return 0.0
        return 1.0 - self.survivors / self.candidates


def run_ungapped_lastz(
    target: Sequence | np.ndarray,
    query: Sequence | np.ndarray,
    config: LastzConfig | None = None,
    *,
    anchors: Anchors | None = None,
    work_reduction: bool = True,
) -> UngappedLastzResult:
    """Run seed -> ungapped filter -> gapped extension."""
    config = config or LastzConfig()
    t_codes = np.asarray(target.codes if isinstance(target, Sequence) else target)
    q_codes = np.asarray(query.codes if isinstance(query, Sequence) else query)

    if anchors is None:
        anchors = select_anchors(t_codes, q_codes, config)
    candidates = len(anchors)

    surviving, hsp_scores = ungapped_filter(anchors, t_codes, q_codes, config.scheme)
    result = run_gapped_lastz(
        t_codes,
        q_codes,
        config,
        anchors=surviving,
        work_reduction=work_reduction,
    )
    return UngappedLastzResult(
        result=result,
        hsp_scores=hsp_scores,
        survivors=len(surviving),
        candidates=candidates,
    )
