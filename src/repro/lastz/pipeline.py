"""The sequential gapped LASTZ pipeline (the paper's baseline).

Stages: seed discovery -> diagonal thinning -> per-anchor two-sided y-drop
gapped extension (row engine).  Includes LASTZ's *sequential work
reduction* (paper §2.1): an anchor falling inside a previously discovered
alignment is not re-extended — "if combining were profitable, the prior
alignment would have expanded to include it".  FastZ deliberately forgoes
this optimisation (it is inherently sequential), which is why its binning
counts cover every seed.

The pipeline doubles as the *work profiler*: every task records the DP
cells it explored, and those cell counts drive the CPU timing model.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..align.alignment import Alignment
from ..align.extend import AnchorExtension, extend_anchor
from ..align.ydrop import ydrop_extend
from ..genome.sequence import Sequence
from ..seeding import Anchors, collapse_diagonal, find_seeds
from .config import LastzConfig

__all__ = ["TaskRecord", "LastzResult", "AlignmentIndex", "run_gapped_lastz", "select_anchors"]

_DIAG_BUCKET = 256


@dataclass(frozen=True)
class TaskRecord:
    """Per-anchor work record (the unit of the CPU work profile)."""

    anchor_t: int
    anchor_q: int
    score: int
    target_span: int
    query_span: int
    cells: int
    rows: int
    skipped: bool

    @property
    def extent(self) -> int:
        return max(self.target_span, self.query_span)


class AlignmentIndex:
    """Diagonal-bucketed index of discovered alignments.

    Supports the two queries the sequential pipeline needs: "does this
    anchor fall inside a known alignment?" (work reduction) and
    registration of new alignments.  Buckets are keyed by
    ``(t - q) // bucket`` so a containment probe touches at most three
    buckets.
    """

    def __init__(self, bucket: int = _DIAG_BUCKET):
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        self._bucket = bucket
        self._boxes: dict[int, list[tuple[int, int, int, int]]] = defaultdict(list)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, alignment: Alignment) -> None:
        box = (
            alignment.target_start,
            alignment.target_end,
            alignment.query_start,
            alignment.query_end,
        )
        d_lo = (alignment.target_start - alignment.query_end) // self._bucket
        d_hi = (alignment.target_end - alignment.query_start) // self._bucket
        for b in range(d_lo, d_hi + 1):
            self._boxes[b].append(box)
        self._count += 1

    def contains(self, t: int, q: int) -> bool:
        b = (t - q) // self._bucket
        for bb in (b - 1, b, b + 1):
            for ts, te, qs, qe in self._boxes.get(bb, ()):
                if ts <= t < te and qs <= q < qe:
                    return True
        return False


@dataclass
class LastzResult:
    """Output of a pipeline run: alignments plus the work profile."""

    alignments: list[Alignment]
    tasks: list[TaskRecord]
    anchors: Anchors
    extensions: list[AnchorExtension] = field(default_factory=list, repr=False)

    @property
    def cells_per_task(self) -> np.ndarray:
        return np.array([t.cells for t in self.tasks], dtype=np.int64)

    @property
    def total_cells(self) -> int:
        return int(self.cells_per_task.sum())

    @property
    def skipped_count(self) -> int:
        return sum(1 for t in self.tasks if t.skipped)

    def scores(self) -> np.ndarray:
        return np.array([a.score for a in self.alignments], dtype=np.int64)

    def lengths(self) -> np.ndarray:
        return np.array([a.length for a in self.alignments], dtype=np.int64)


def select_anchors(
    target: Sequence | np.ndarray,
    query: Sequence | np.ndarray,
    config: LastzConfig,
    *,
    target_table=None,
) -> Anchors:
    """Stage 1+2: discover seeds and thin them into anchors.

    ``target_table`` is an optional prebuilt
    :class:`~repro.seeding.SeedTable` (e.g. from the reference store's
    persistent cache); when given, the target-side table build inside
    :func:`find_seeds` is skipped, bit-identically.
    """
    t_codes = target.codes if isinstance(target, Sequence) else target
    q_codes = query.codes if isinstance(query, Sequence) else query
    seeds = find_seeds(
        t_codes,
        q_codes,
        k=config.seed_length,
        spaced_pattern=config.spaced_pattern,
        max_word_count=config.max_word_count,
        target_table=target_table,
    )
    return collapse_diagonal(
        seeds, window=config.collapse_window, diag_band=config.diag_band
    )


def run_gapped_lastz(
    target: Sequence | np.ndarray,
    query: Sequence | np.ndarray,
    config: LastzConfig | None = None,
    *,
    anchors: Anchors | None = None,
    work_reduction: bool = True,
    keep_extensions: bool = False,
) -> LastzResult:
    """Run the full sequential gapped pipeline.

    Parameters
    ----------
    anchors:
        Pre-selected anchors (lets FastZ and LASTZ share the exact same
        task list).  Computed from the config when omitted.
    work_reduction:
        Enable the sequential skip of anchors inside known alignments.
    keep_extensions:
        Retain the raw per-anchor extension objects (tests use them).
    """
    config = config or LastzConfig()
    t_codes = np.asarray(target.codes if isinstance(target, Sequence) else target)
    q_codes = np.asarray(query.codes if isinstance(query, Sequence) else query)

    if anchors is None:
        anchors = select_anchors(t_codes, q_codes, config)

    # Sequential scan order: by query position then target position.
    order = np.lexsort((anchors.target_pos, anchors.query_pos))
    anchors = anchors.take(order)

    index = AlignmentIndex()
    alignments: list[Alignment] = []
    tasks: list[TaskRecord] = []
    extensions: list[AnchorExtension] = []
    scheme = config.scheme

    for t, q in zip(anchors.target_pos.tolist(), anchors.query_pos.tolist()):
        if work_reduction and index.contains(t, q):
            tasks.append(
                TaskRecord(
                    anchor_t=t,
                    anchor_q=q,
                    score=0,
                    target_span=0,
                    query_span=0,
                    cells=0,
                    rows=0,
                    skipped=True,
                )
            )
            continue

        ext = extend_anchor(
            t_codes,
            q_codes,
            t,
            q,
            scheme,
            ydrop_extend,
            traceback=config.traceback,
        )
        tasks.append(
            TaskRecord(
                anchor_t=t,
                anchor_q=q,
                score=ext.score,
                target_span=ext.target_span,
                query_span=ext.query_span,
                cells=ext.left.stats.cells + ext.right.stats.cells,
                rows=ext.left.stats.rows + ext.right.stats.rows,
                skipped=False,
            )
        )
        if keep_extensions:
            extensions.append(ext)

        if ext.score >= scheme.gapped_threshold:
            if config.traceback:
                alignment = ext.alignment()
            else:
                alignment = Alignment(
                    target_start=t - ext.left.end_i,
                    target_end=t + ext.right.end_i,
                    query_start=q - ext.left.end_j,
                    query_end=q + ext.right.end_j,
                    score=ext.score,
                )
            alignments.append(alignment)
            index.add(alignment)

    return LastzResult(
        alignments=alignments,
        tasks=tasks,
        anchors=anchors,
        extensions=extensions,
    )
