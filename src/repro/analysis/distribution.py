"""Alignment-length distribution analysis (paper Table 2).

Table 2 bins the 1M seed extensions of each benchmark into the eager class
plus the four load-balancing bins, and observes 75-80% eager with a thin
tail; the bin-4 tail ordering across benchmarks explains the Figure 7/8
trends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pipeline import FastzResult

__all__ = ["DistributionRow", "distribution_row", "format_distribution_table"]


@dataclass(frozen=True)
class DistributionRow:
    """One benchmark's Table-2 row."""

    benchmark: str
    counts: tuple[int, ...]  # [eager, bin1, .., binN]

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def eager_fraction(self) -> float:
        return self.counts[0] / self.total if self.total else 0.0

    @property
    def bin4_count(self) -> int:
        return self.counts[-1]

    def fractions(self) -> tuple[float, ...]:
        total = self.total or 1
        return tuple(c / total for c in self.counts)


def distribution_row(benchmark: str, result: FastzResult) -> DistributionRow:
    """Bin a FastZ run's tasks (Table 2 semantics: every seed counted)."""
    counts = result.bin_counts()
    return DistributionRow(benchmark=benchmark, counts=tuple(int(c) for c in counts))


def format_distribution_table(rows: list[DistributionRow]) -> str:
    """Plain-text rendering in the paper's layout (sorted by bin-4 count)."""
    rows = sorted(rows, key=lambda r: (-r.bin4_count, r.benchmark))
    n_bins = max(len(r.counts) for r in rows) - 1
    header = (
        f"{'Benchmark':<12} {'Eager':>8} "
        + " ".join(f"{'bin' + str(b):>7}" for b in range(1, n_bins + 1))
        + f" {'eager%':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        bins = " ".join(f"{c:>7}" for c in r.counts[1:])
        lines.append(
            f"{r.benchmark:<12} {r.counts[0]:>8} {bins} {100 * r.eager_fraction:>6.1f}%"
        )
    return "\n".join(lines)
