"""Gapped vs ungapped sensitivity analysis (paper Figure 2).

The figure scatters every alignment by (length, score) for the two LASTZ
variants and reports that the gapped pipeline finds more, longer,
higher-scoring alignments — e.g. more than twice as many alignments with
score exceeding 10,000 (41 vs 17 at the paper's scale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lastz.pipeline import LastzResult
from ..lastz.ungapped import UngappedLastzResult

__all__ = ["SensitivityPoint", "SensitivityReport", "compare_sensitivity"]


@dataclass(frozen=True)
class SensitivityPoint:
    """One alignment in the scatter."""

    length: int
    score: int


@dataclass
class SensitivityReport:
    """Figure-2 data: both scatters plus the headline counts."""

    gapped: list[SensitivityPoint]
    ungapped: list[SensitivityPoint]
    #: Score threshold used for the headline count (10,000 in the paper at
    #: full scale; scaled suites pass their own).
    high_score_threshold: int

    @property
    def gapped_high(self) -> int:
        return sum(1 for p in self.gapped if p.score > self.high_score_threshold)

    @property
    def ungapped_high(self) -> int:
        return sum(1 for p in self.ungapped if p.score > self.high_score_threshold)

    @property
    def high_score_ratio(self) -> float:
        """Gapped / ungapped count of high-scoring alignments."""
        if self.ungapped_high == 0:
            return float("inf") if self.gapped_high else 1.0
        return self.gapped_high / self.ungapped_high

    def total_counts(self) -> tuple[int, int]:
        return len(self.gapped), len(self.ungapped)

    def max_lengths(self) -> tuple[int, int]:
        g = max((p.length for p in self.gapped), default=0)
        u = max((p.length for p in self.ungapped), default=0)
        return g, u


def _points(result: LastzResult) -> list[SensitivityPoint]:
    return [
        SensitivityPoint(length=a.length, score=a.score) for a in result.alignments
    ]


def compare_sensitivity(
    gapped: LastzResult,
    ungapped: UngappedLastzResult,
    *,
    high_score_threshold: int = 10_000,
) -> SensitivityReport:
    """Build the Figure-2 comparison from two pipeline runs."""
    return SensitivityReport(
        gapped=_points(gapped),
        ungapped=_points(ungapped.result),
        high_score_threshold=high_score_threshold,
    )


def scatter_arrays(points: list[SensitivityPoint]) -> tuple[np.ndarray, np.ndarray]:
    """(lengths, scores) arrays for plotting/binning."""
    if not points:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    lengths = np.array([p.length for p in points], dtype=np.int64)
    scores = np.array([p.score for p in points], dtype=np.int64)
    return lengths, scores
