"""Operational-intensity analysis (paper §6, "Remaining bottlenecks").

The paper's arithmetic, reproduced verbatim:

* inspector: 12 bytes of output per 32 x 9 = 288 ops -> 24 ops/byte;
* executor: (12 + 32) bytes per 288 ops -> ~6.5 ops/byte;
* RTX 3080 nominal ridge: 29.77 TFLOP/s / 760 GB/s = 39 ops/byte, derated
  by 2.56 for branch divergence (9 ops expand to 23) -> ~15.2 ops/byte;
* hence the inspector is slightly compute-bound, the executor slightly
  memory-bound;
* without FastZ's optimisations the kernels would sit at ~0.75 (inspector)
  and ~0.69 (executor) ops/byte — deeply memory-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.calibration import DIVERGED_OPS_PER_CELL, OPS_PER_CELL
from ..gpusim.device import DeviceSpec

__all__ = [
    "RooflinePoint",
    "DIVERGENCE_DERATE",
    "inspector_intensity",
    "executor_intensity",
    "naive_inspector_intensity",
    "naive_executor_intensity",
    "nominal_ridge",
    "derated_ridge",
    "classify",
    "roofline_report",
]

#: §6's derating factor: 9 ops expand to 23 under SIMD divergence.
DIVERGENCE_DERATE = DIVERGED_OPS_PER_CELL / OPS_PER_CELL

_WARP = 32
_OPS_PER_STRIP = _WARP * OPS_PER_CELL  # 288
_CYCLIC_BYTES_PER_STRIP = 12.0  # 3 scores x 4 B, boundary lane only
_TRACEBACK_BYTES_PER_STRIP = float(_WARP)  # 1 B per cell


def inspector_intensity() -> float:
    """FastZ inspector: 288 ops per 12 bytes -> 24 ops/byte."""
    return _OPS_PER_STRIP / _CYCLIC_BYTES_PER_STRIP


def executor_intensity() -> float:
    """FastZ executor: 288 ops per 44 bytes -> ~6.5 ops/byte."""
    return _OPS_PER_STRIP / (_CYCLIC_BYTES_PER_STRIP + _TRACEBACK_BYTES_PER_STRIP)


def naive_inspector_intensity() -> float:
    """Without cyclic buffering: 9 ops per 12 bytes written -> 0.75."""
    return OPS_PER_CELL / 12.0


def naive_executor_intensity() -> float:
    """Without cyclic buffering, with traceback: 9 ops per 13 bytes -> ~0.69."""
    return OPS_PER_CELL / 13.0


def nominal_ridge(device: DeviceSpec) -> float:
    """Peak FLOPs / peak bandwidth, ops per byte."""
    return device.ridge_ops_per_byte


def derated_ridge(device: DeviceSpec) -> float:
    """Ridge after the 2.56x branch-divergence derate (§6)."""
    return nominal_ridge(device) / DIVERGENCE_DERATE


@dataclass(frozen=True)
class RooflinePoint:
    """A kernel placed on a device's roofline."""

    phase: str
    intensity: float
    ridge: float

    @property
    def bound(self) -> str:
        return "compute" if self.intensity >= self.ridge else "memory"

    @property
    def headroom(self) -> float:
        """intensity / ridge: >1 means compute-bound by that factor."""
        return self.intensity / self.ridge


def classify(intensity: float, device: DeviceSpec) -> str:
    """'compute' or 'memory' bound against the derated ridge."""
    return "compute" if intensity >= derated_ridge(device) else "memory"


def roofline_report(device: DeviceSpec) -> list[RooflinePoint]:
    """The four §6 points (inspector/executor, optimised/naive)."""
    ridge = derated_ridge(device)
    return [
        RooflinePoint("inspector", inspector_intensity(), ridge),
        RooflinePoint("executor", executor_intensity(), ridge),
        RooflinePoint("inspector-naive", naive_inspector_intensity(), ridge),
        RooflinePoint("executor-naive", naive_executor_intensity(), ridge),
    ]
