"""Memory-traffic accounting: the paper's §3.2 reduction claims.

The paper quantifies cyclic use-and-discard buffering three ways:

* the executor's score-matrix traffic drops by **92%** — the remaining 8%
  is the traceback state, which *must* reach memory;
* only the strip-boundary lane spills, so the score-traffic reduction is
  effectively **more than 96%** (31/32 lanes);
* overall, the optimisation "eliminates a vast majority (97%) of memory
  accesses".

This module recomputes those percentages from a measured workload profile
(the real per-task cell/boundary/traceback counts), so the claims can be
checked against this reproduction's own workloads rather than taken on
faith.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.task import TaskArrays
from ..gpusim.calibration import Calibration, DEFAULT_CALIBRATION

__all__ = ["TrafficReport", "traffic_report", "format_traffic_report"]


@dataclass(frozen=True)
class TrafficReport:
    """Byte-level traffic of one workload under naive vs cyclic buffering."""

    #: Score bytes if every cell spilled to memory (naive, useful bytes).
    naive_score_bytes: float
    #: Score bytes actually spilled by cyclic buffering (boundary lanes).
    cyclic_score_bytes: float
    #: Traceback bytes the executor must write (trimmed regions).
    traceback_bytes: float
    #: Inspector-only naive score bytes (the search space).
    inspector_naive_bytes: float
    inspector_cyclic_bytes: float

    # -- the paper's §3.2 headline numbers ---------------------------------
    @property
    def score_traffic_reduction(self) -> float:
        """Fraction of score traffic eliminated by cyclic buffering
        (paper: effectively more than 96%, i.e. 31/32 lanes)."""
        if self.naive_score_bytes == 0:
            return 0.0
        return 1.0 - self.cyclic_score_bytes / self.naive_score_bytes

    @property
    def executor_bandwidth_reduction(self) -> float:
        """Executor demand drop when scores stop spilling: the remaining
        traffic is the traceback (paper: 92% reduction, 8% traceback)."""
        before = self.naive_score_bytes + self.traceback_bytes
        after = self.cyclic_score_bytes + self.traceback_bytes
        if before == 0:
            return 0.0
        return 1.0 - after / before

    @property
    def traceback_share_after(self) -> float:
        """Traceback share of the remaining traffic (paper: ~8% -> here the
        share of what still reaches memory)."""
        total = self.cyclic_score_bytes + self.traceback_bytes
        return self.traceback_bytes / total if total else 0.0

    @property
    def overall_access_reduction(self) -> float:
        """All phases combined (paper: 'a vast majority (97%)')."""
        before = (
            self.inspector_naive_bytes + self.naive_score_bytes + self.traceback_bytes
        )
        after = (
            self.inspector_cyclic_bytes
            + self.cyclic_score_bytes
            + self.traceback_bytes
        )
        if before == 0:
            return 0.0
        return 1.0 - after / before


def traffic_report(
    arrays: TaskArrays,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> TrafficReport:
    """Recompute the §3.2 traffic numbers from a measured profile.

    Executor terms use the trimmed executor regions (what FastZ actually
    recomputes); inspector terms use the full search space.
    """
    score_b = calib.naive_score_bytes_per_cell
    boundary_b = calib.cyclic_boundary_bytes
    tb_b = calib.traceback_bytes_per_cell

    exec_cells = float(arrays.exec_cells.sum())
    exec_boundary = float(arrays.exec_boundary.sum())
    insp_cells = float(arrays.insp_cells.sum())
    insp_boundary = float(arrays.insp_boundary.sum())

    return TrafficReport(
        naive_score_bytes=exec_cells * score_b,
        cyclic_score_bytes=exec_boundary * boundary_b,
        traceback_bytes=exec_cells * tb_b,
        inspector_naive_bytes=insp_cells * score_b,
        inspector_cyclic_bytes=insp_boundary * boundary_b,
    )


def format_traffic_report(report: TrafficReport) -> str:
    """Plain-text rendering with the paper's reference numbers."""
    lines = [
        "Section 3.2 — memory-traffic reduction from cyclic use-and-discard",
        f"  executor score bytes:   naive {report.naive_score_bytes:,.0f}  ->  "
        f"cyclic {report.cyclic_score_bytes:,.0f}",
        f"  traceback bytes (must be written): {report.traceback_bytes:,.0f}",
        f"  score-traffic reduction:     {100 * report.score_traffic_reduction:5.1f}%"
        "   (paper: >96%, 31/32 lanes)",
        f"  executor bandwidth reduction: {100 * report.executor_bandwidth_reduction:4.1f}%"
        "   (paper: 92%; the rest is traceback)",
        f"  traceback share of remainder: {100 * report.traceback_share_after:4.1f}%",
        f"  overall access reduction:     {100 * report.overall_access_reduction:4.1f}%"
        "   (paper: ~97%)",
    ]
    return "\n".join(lines)
