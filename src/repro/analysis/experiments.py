"""Experiment assembly: regenerate every table and figure of the paper.

Each ``figure*/table*`` function returns structured rows plus a plain-text
rendering, consuming the cached workload profiles.  The benchmark harness
(``benchmarks/``) is a thin wrapper around these functions, so examples and
tests can regenerate any experiment programmatically too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.options import SCALED_BIN_EDGES
from ..core.perfmodel import FastzTiming, ablation_times, time_fastz, time_feng_baseline
from ..gpusim.device import ALL_DEVICES, DeviceSpec, RTX_3080_AMPERE
from ..lastz.cpu_model import multicore_seconds, sequential_seconds
from ..workloads.profiles import (
    BENCH_OPTIONS,
    WorkloadProfile,
    bench_calibration,
    build_profile,
    build_sensitivity_run,
)
from ..workloads.registry import (
    CROSS_GENUS_BENCHMARKS,
    GENOMES,
    SAME_GENUS_BENCHMARKS,
    SENSITIVITY_BENCHMARK,
    bench_scale,
)
from .distribution import DistributionRow, distribution_row, format_distribution_table
from .sensitivity import SensitivityReport, compare_sensitivity

__all__ = [
    "SpeedupRow",
    "table1_text",
    "figure2_report",
    "figure7_rows",
    "figure7_text",
    "figure8_rows",
    "figure8_text",
    "figure9_table",
    "figure9_text",
    "figure11_rows",
    "figure11_text",
    "table2_rows",
    "table2_text",
]


# --------------------------------------------------------------------------
# Table 1 — genomes
# --------------------------------------------------------------------------

def table1_text() -> str:
    """Table 1: the seven species / fifteen chromosomes (real + scaled bp)."""
    lines = [
        f"{'Label':<6} {'Species':<18} {'Chromosome':<10} {'Basepairs':>12} {'Scaled':>9}",
    ]
    lines.append("-" * len(lines[0]))
    for g in GENOMES.values():
        lines.append(
            f"{g.label:<6} {g.species:<18} {g.chromosome:<10} "
            f"{g.real_basepairs:>12,} {g.scaled_basepairs:>9,}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Figure 2 — gapped vs ungapped sensitivity
# --------------------------------------------------------------------------

def figure2_report(
    *, scale: float | None = None, high_score_threshold: int = 8000
) -> SensitivityReport:
    """Figure 2: run both pipelines on the sensitivity pair and compare.

    The high-score threshold plays the role of the paper's 10,000-score
    cut: high enough that only multi-hundred-bp alignments qualify.
    """
    scale = bench_scale() if scale is None else scale
    gapped, ungapped = build_sensitivity_run(SENSITIVITY_BENCHMARK, scale=scale)
    return compare_sensitivity(
        gapped, ungapped, high_score_threshold=high_score_threshold
    )


def figure2_text(report: SensitivityReport) -> str:
    g_total, u_total = report.total_counts()
    g_max, u_max = report.max_lengths()
    return "\n".join(
        [
            "Figure 2 — gapped vs ungapped sensitivity",
            f"  alignments found:        gapped={g_total}  ungapped={u_total}",
            f"  longest alignment:       gapped={g_max}  ungapped={u_max}",
            f"  score > {report.high_score_threshold}:           gapped={report.gapped_high}  "
            f"ungapped={report.ungapped_high}  (ratio {report.high_score_ratio:.2f}; "
            "paper: >2x at its scale)",
        ]
    )


# --------------------------------------------------------------------------
# Figure 7 / 11 — speedups over sequential LASTZ
# --------------------------------------------------------------------------

@dataclass
class SpeedupRow:
    """One benchmark's bar group in Figure 7/11."""

    benchmark: str
    cpu_seconds: float
    gpu_baseline: dict[str, float] = field(default_factory=dict)  # speedups
    multicore: float = 0.0
    fastz: dict[str, float] = field(default_factory=dict)
    fastz_timings: dict[str, FastzTiming] = field(default_factory=dict)
    bin4_count: int = 0


def _speedup_row(profile: WorkloadProfile, devices=ALL_DEVICES) -> SpeedupRow:
    calib = bench_calibration()
    cpu = sequential_seconds(profile.cpu_cells)
    row = SpeedupRow(
        benchmark=profile.name,
        cpu_seconds=cpu,
        bin4_count=int(profile.fastz.bin_counts()[-1]),
    )
    row.multicore = cpu / multicore_seconds(profile.cpu_cells)
    arrays = profile.arrays
    for dev in devices:
        row.gpu_baseline[dev.name] = cpu / time_feng_baseline(arrays, dev, calib)
        timing = time_fastz(
            arrays, dev, BENCH_OPTIONS, calib, transfer_bytes=profile.transfer_bytes
        )
        row.fastz[dev.name] = cpu / timing.total_seconds
        row.fastz_timings[dev.name] = timing
    return row


def figure7_rows(*, scale: float | None = None) -> list[SpeedupRow]:
    """Figure 7: speedups for the nine same-genus benchmarks.

    Rows are ordered by decreasing bin-4 count, as in the paper.
    """
    scale = bench_scale() if scale is None else scale
    rows = [
        _speedup_row(build_profile(spec, scale=scale))
        for spec in SAME_GENUS_BENCHMARKS
    ]
    rows.sort(key=lambda r: (-r.bin4_count, r.benchmark))
    return rows


def _speedup_text(rows: list[SpeedupRow], title: str) -> str:
    devices = [d.name for d in ALL_DEVICES]
    header = (
        f"{'Benchmark':<12} "
        + " ".join(f"{'GPUbase/' + d:>14}" for d in devices)
        + f" {'Multicore':>10} "
        + " ".join(f"{'FastZ/' + d:>14}" for d in devices)
    )
    lines = [title, header, "-" * len(header)]
    for r in rows:
        base = " ".join(f"{r.gpu_baseline[d]:>13.2f}x" for d in devices)
        fz = " ".join(f"{r.fastz[d]:>13.1f}x" for d in devices)
        lines.append(f"{r.benchmark:<12} {base} {r.multicore:>9.1f}x {fz}")
    means = "MEAN"
    base = " ".join(
        f"{np.mean([r.gpu_baseline[d] for r in rows]):>13.2f}x" for d in devices
    )
    fz = " ".join(f"{np.mean([r.fastz[d] for r in rows]):>13.1f}x" for d in devices)
    mc = np.mean([r.multicore for r in rows])
    lines.append("-" * len(header))
    lines.append(f"{means:<12} {base} {mc:>9.1f}x {fz}")
    return "\n".join(lines)


def figure7_text(rows: list[SpeedupRow] | None = None) -> str:
    rows = figure7_rows() if rows is None else rows
    return _speedup_text(
        rows,
        "Figure 7 — speedup over sequential LASTZ "
        "(paper means: GPU baseline 0.57-0.82x, multicore 20x, "
        "FastZ 43x/93x/111x on Pascal/Volta/Ampere)",
    )


def figure11_rows(*, scale: float | None = None) -> list[SpeedupRow]:
    """Figure 11: cross-genus (dissimilar) benchmarks on Ampere."""
    scale = bench_scale() if scale is None else scale
    return [
        _speedup_row(build_profile(spec, scale=scale), devices=(RTX_3080_AMPERE,))
        for spec in CROSS_GENUS_BENCHMARKS
    ]


def figure11_text(
    rows: list[SpeedupRow] | None = None,
    same_genus_mean: float | None = None,
) -> str:
    rows = figure11_rows() if rows is None else rows
    lines = [
        "Figure 11 — FastZ on Ampere, cross-genus (dissimilar) pairs "
        "(paper: mean 137x vs 111x for similar pairs)",
        f"{'Benchmark':<12} {'FastZ/Ampere':>14}",
    ]
    for r in rows:
        lines.append(f"{r.benchmark:<12} {r.fastz['RTX 3080']:>13.1f}x")
    mean = np.mean([r.fastz["RTX 3080"] for r in rows])
    lines.append(f"{'MEAN':<12} {mean:>13.1f}x")
    if same_genus_mean is not None:
        lines.append(
            f"(same-genus mean: {same_genus_mean:.1f}x; dissimilar/similar = "
            f"{mean / same_genus_mean:.2f}, paper: 137/111 = 1.23)"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Figure 8 — execution-time breakdown
# --------------------------------------------------------------------------

def figure8_rows(
    *, scale: float | None = None, device: DeviceSpec = RTX_3080_AMPERE
) -> list[tuple[str, dict[str, float]]]:
    """Figure 8: per-benchmark (inspector, executor, other) fractions."""
    scale = bench_scale() if scale is None else scale
    calib = bench_calibration()
    rows = []
    for spec in SAME_GENUS_BENCHMARKS:
        profile = build_profile(spec, scale=scale)
        timing = time_fastz(
            profile.arrays,
            device,
            BENCH_OPTIONS,
            calib,
            transfer_bytes=profile.transfer_bytes,
        )
        rows.append((spec.name, timing.breakdown()))
    return rows


def figure8_text(rows=None) -> str:
    rows = figure8_rows() if rows is None else rows
    lines = [
        "Figure 8 — execution-time breakdown on Ampere "
        "(paper: inspector ~2/3, executor ~10%, other the rest)",
        f"{'Benchmark':<12} {'inspector':>10} {'executor':>10} {'other':>8}",
    ]
    for name, bd in rows:
        lines.append(
            f"{name:<12} {100 * bd['inspector']:>9.1f}% "
            f"{100 * bd['executor']:>9.1f}% {100 * bd['other']:>7.1f}%"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Figure 9 — ablation ladder
# --------------------------------------------------------------------------

def figure9_table(*, scale: float | None = None) -> dict[str, dict[str, float]]:
    """Figure 9: mean speedup per ablation step per device."""
    scale = bench_scale() if scale is None else scale
    calib = bench_calibration()
    sums: dict[str, dict[str, list[float]]] = {}
    for spec in SAME_GENUS_BENCHMARKS:
        profile = build_profile(spec, scale=scale)
        cpu = sequential_seconds(profile.cpu_cells)
        for dev in ALL_DEVICES:
            table = ablation_times(
                profile.arrays,
                dev,
                calib,
                bin_edges=SCALED_BIN_EDGES,
                transfer_bytes=profile.transfer_bytes,
            )
            for label, timing in table.items():
                sums.setdefault(dev.name, {}).setdefault(label, []).append(
                    cpu / timing.total_seconds
                )
    return {
        dev: {label: float(np.mean(vals)) for label, vals in by_label.items()}
        for dev, by_label in sums.items()
    }


_PAPER_FIG9 = {
    "Titan X": (0.92, 4.7, 15.0, 43.0, 25.0),
    "QV100": (None, 6.1, 21.0, 93.0, 55.0),
    "RTX 3080": (2.8, 17.0, 46.0, 111.0, 46.0),
}


def figure9_text(table=None) -> str:
    table = figure9_table() if table is None else table
    lines = ["Figure 9 — progressive optimisation ladder (mean over benchmarks)"]
    for dev, by_label in table.items():
        paper = _PAPER_FIG9.get(dev)
        lines.append(f"  {dev}:")
        for idx, (label, speedup) in enumerate(by_label.items()):
            ref = ""
            if paper and idx < len(paper) and paper[idx] is not None:
                ref = f"  (paper ~{paper[idx]}x)"
            lines.append(f"    {label:<22} {speedup:>8.1f}x{ref}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Table 2 — alignment-length distribution
# --------------------------------------------------------------------------

def table2_rows(*, scale: float | None = None) -> list[DistributionRow]:
    scale = bench_scale() if scale is None else scale
    return [
        distribution_row(spec.name, build_profile(spec, scale=scale).fastz)
        for spec in SAME_GENUS_BENCHMARKS
    ]


def table2_text(rows: list[DistributionRow] | None = None) -> str:
    rows = table2_rows() if rows is None else rows
    return (
        "Table 2 — alignment-length distribution "
        "(paper: 75-80% eager; bins thin out 1>2>3>4)\n"
        + format_distribution_table(rows)
    )
