"""Workload characterisation: the paper's §1/§2 observations, recomputed.

The introduction motivates the design with measured workload facts:

* "over 97% of seed sites result in alignments no longer than 128 base
  pairs" — the alignment-length CDF is extremely front-loaded;
* "more than 90% of searches explore alignments as long as 5700 base
  pairs (including gaps)" — the y-drop search space is nearly the same,
  large size for everyone;
* the Smith-Waterman stage accounts for ">99%" of gapped LASTZ's runtime.

This module recomputes the equivalents from a measured workload profile
(with this suite's scaled units) so the motivating premises of the design
can be validated, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.task import TaskArrays
from ..lastz.cpu_model import CpuSpec, RYZEN_3950X

__all__ = [
    "WorkloadCharacterization",
    "characterize",
    "format_characterization",
]


@dataclass(frozen=True)
class WorkloadCharacterization:
    """§1/§2-style workload statistics of one benchmark profile."""

    n_tasks: int
    #: Fraction of alignments no longer than the short cutoff.
    short_alignment_fraction: float
    short_cutoff: int
    #: Alignment-extent percentiles (50/90/99/100).
    extent_percentiles: tuple[float, float, float, float]
    #: Search-depth (explored anti-diagonal span per side) percentiles.
    search_depth_p10: float
    search_depth_median: float
    #: Ratio of total explored cells to optimal-region cells.
    search_to_alignment_cells: float
    #: Fraction of modelled sequential runtime spent in the DP stage.
    dp_runtime_fraction: float

    @property
    def search_dwarfs_alignment(self) -> bool:
        return self.search_to_alignment_cells > 2.0


def characterize(
    arrays: TaskArrays,
    *,
    short_cutoff: int = 32,
    cpu: CpuSpec = RYZEN_3950X,
) -> WorkloadCharacterization:
    """Compute workload statistics from a profile.

    ``short_cutoff`` defaults to twice the eager tile (extents are
    two-sided: left span + right span); the suite's lengths sit 8x below
    the paper's, so the paper's 128 bp corresponds to ~16 per side here.
    """
    extents = arrays.extent.astype(np.float64)
    n = extents.shape[0]
    if n == 0:
        raise ValueError("empty workload profile")

    # Search depth: explored diagonals per side (both sides recorded).
    depths = arrays.insp_diagonals.astype(np.float64) / 2.0

    exec_cells = float(arrays.exec_cells.sum())
    insp_cells = float(arrays.insp_cells.sum())
    # Eager tasks never ran the executor; approximate their optimal region
    # by the extent rectangle (tiny).
    eager_cells = float(((arrays.extent[arrays.eager] + 1) ** 2).sum())
    alignment_cells = exec_cells + eager_cells

    # DP runtime share: per-task fixed overhead vs cell work.
    cell_cycles = insp_cells * cpu.cycles_per_cell
    overhead_cycles = n * cpu.anchor_overhead_cycles
    dp_fraction = cell_cycles / (cell_cycles + overhead_cycles)

    return WorkloadCharacterization(
        n_tasks=n,
        short_alignment_fraction=float(np.mean(extents <= short_cutoff)),
        short_cutoff=short_cutoff,
        extent_percentiles=tuple(
            float(np.percentile(extents, p)) for p in (50, 90, 99, 100)
        ),
        search_depth_p10=float(np.percentile(depths, 10)),
        search_depth_median=float(np.median(depths)),
        search_to_alignment_cells=(
            insp_cells / alignment_cells if alignment_cells else float("inf")
        ),
        dp_runtime_fraction=float(dp_fraction),
    )


def format_characterization(c: WorkloadCharacterization) -> str:
    p50, p90, p99, p100 = c.extent_percentiles
    return "\n".join(
        [
            "Workload characterisation (paper §1/§2 premises, scaled units)",
            f"  tasks: {c.n_tasks}",
            f"  alignments <= {c.short_cutoff} bp: "
            f"{100 * c.short_alignment_fraction:5.1f}%   "
            "(paper: >97% <= 128 bp at its scale)",
            f"  alignment extent p50/p90/p99/max: "
            f"{p50:.0f} / {p90:.0f} / {p99:.0f} / {p100:.0f} bp",
            f"  search depth per side p10/median: "
            f"{c.search_depth_p10:.0f} / {c.search_depth_median:.0f} diagonals   "
            "(paper: >90% of searches explore ~5700 bp)",
            f"  explored cells / optimal-region cells: "
            f"{c.search_to_alignment_cells:.1f}x   (the inspector-executor premise)",
            f"  DP share of sequential runtime: "
            f"{100 * c.dp_runtime_fraction:5.1f}%   (paper: >99%)",
        ]
    )
