"""Figures 10/11: FastZ on cross-genus (dissimilar) genome pairs.

Paper shape: dissimilar genomes have no alignments in the two largest
bins, spend relatively more time in the fast inspector, and therefore see
*higher* speedups than same-genus pairs (mean 137x vs 111x on Ampere).
"""

import numpy as np
import pytest

from repro.analysis.experiments import figure7_rows, figure11_rows, figure11_text
from repro.core import time_fastz
from repro.gpusim import RTX_3080_AMPERE
from repro.workloads.profiles import BENCH_OPTIONS, bench_calibration, build_profile
from repro.workloads import CROSS_GENUS_BENCHMARKS, bench_scale


@pytest.fixture(scope="module")
def cross_rows():
    return figure11_rows()


@pytest.fixture(scope="module")
def same_rows():
    return figure7_rows()


def test_figure11(benchmark, emit, cross_rows, same_rows):
    same_mean = float(np.mean([r.fastz["RTX 3080"] for r in same_rows]))
    emit("figure11_dissimilar", figure11_text(cross_rows, same_genus_mean=same_mean))

    profile = build_profile(CROSS_GENUS_BENCHMARKS[0], scale=bench_scale())
    calib = bench_calibration()
    benchmark(
        time_fastz,
        profile.arrays,
        RTX_3080_AMPERE,
        BENCH_OPTIONS,
        calib,
        transfer_bytes=profile.transfer_bytes,
    )

    cross_mean = float(np.mean([r.fastz["RTX 3080"] for r in cross_rows]))
    benchmark.extra_info["cross_genus_mean"] = round(cross_mean, 1)
    benchmark.extra_info["same_genus_mean"] = round(same_mean, 1)

    # Dissimilar pairs are faster than similar pairs (paper: 137x vs 111x).
    assert cross_mean > same_mean
    # No deep-bin alignments on dissimilar pairs.
    for r in cross_rows:
        assert r.bin4_count == 0, r.benchmark
