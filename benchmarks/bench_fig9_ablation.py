"""Figure 9: isolating the impact of FastZ's optimisations.

Paper shape (mean speedups, progressively composed): the base
inspector-executor with binning manages 0.92x-2.8x; cyclic use-and-discard
lifts it to 4.7x/6.1x/17x; eager traceback to 15x/21x/46x; executor
trimming completes FastZ at 43x/93x/111x; dropping to a single CUDA stream
costs 1.7x-2.4x.
"""

import pytest

from repro.analysis.experiments import figure9_table, figure9_text
from repro.core import ablation_times
from repro.core.options import SCALED_BIN_EDGES
from repro.gpusim import RTX_3080_AMPERE
from repro.workloads import build_profile, get_benchmark, bench_scale
from repro.workloads.profiles import bench_calibration

_LADDER = [
    "insp-exec+binning",
    "+cyclic",
    "+eager",
    "+trim (FastZ)",
    "FastZ-single-stream",
]


@pytest.fixture(scope="module")
def table():
    return figure9_table()


def test_figure9(benchmark, emit, table):
    emit("figure9_ablation", figure9_text(table))

    profile = build_profile(get_benchmark("C1_1,1"), scale=bench_scale())
    calib = bench_calibration()
    benchmark(
        ablation_times,
        profile.arrays,
        RTX_3080_AMPERE,
        calib,
        bin_edges=SCALED_BIN_EDGES,
        transfer_bytes=profile.transfer_bytes,
    )

    for dev, by_label in table.items():
        speedups = [by_label[l] for l in _LADDER]
        for label in _LADDER:
            benchmark.extra_info[f"{dev}/{label}"] = round(by_label[label], 1)
        # Progressive composition: every added optimisation helps.
        assert speedups[0] < speedups[1] < speedups[2] < speedups[3], dev
        # Single stream costs a meaningful factor (paper: 1.7x-2.4x).
        penalty = speedups[3] / speedups[4]
        assert penalty > 1.2, (dev, penalty)
        # The full config reaches a large net speedup.
        assert speedups[3] > 25.0, dev
