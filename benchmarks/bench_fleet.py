"""Front-door + fleet sweep: async vs threaded serving, single vs fleet.

Not a paper figure: this measures what the serving topology buys.  Two
axes are swept against real subprocess servers (`repro.cli serve`):

* **front door** — the thread-per-connection HTTP server vs the asyncio
  event loop (``--fleet``), at 16/64/256 concurrent connections.  Both
  complete every request; what separates them is the resource cost of
  concurrency, so each point records the server process's peak OS thread
  count (from ``/proc/<pid>/status``) alongside RPS and latency
  percentiles.  The gate is **connections sustained per server thread:
  async >= 4x threaded at the top concurrency** — a resource ratio, so
  it holds on any core count (RPS parity on 1 CPU is recorded as the
  documented caveat, not gated).
* **backends** — the plain in-process service vs a fleet of
  cpu + 2 simulated GPUs, at 64 connections.  Throughput is recorded;
  the gate is **byte-identity**: the response bodies for a fixed probe
  set must be identical across every door and every backend mix.

Results append a trajectory point to ``bench_results/BENCH_fleet.json``.
Run directly: ``PYTHONPATH=src python benchmarks/bench_fleet.py``.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS = REPO / "bench_results"

#: Concurrency levels of the front-door sweep (the gate reads the last).
CONCURRENCY = (16, 64, 256)

#: Requests whose bodies are compared byte-for-byte across configurations.
IDENTITY_PROBES = 8

_READY = re.compile(r"http://([\d.]+):(\d+)/v1")


def build_bodies(n: int) -> list[bytes]:
    """``n`` distinct small request bodies over mixed lengths (2-4 kb)."""
    sys.path.insert(0, str(REPO / "src"))
    from repro.genome import SegmentClass, build_pair

    bodies = []
    for i in range(n):
        length = 2_000 + (i % 8) * 250
        pair = build_pair(
            f"fleetbench{i}",
            target_length=length,
            query_length=length,
            classes=[SegmentClass("s", 2, 60, 200, divergence=0.05)],
            rng=7_000 + i,
        )
        bodies.append(
            json.dumps(
                {"target": pair.target.text(), "query": pair.query.text()}
            ).encode()
        )
    return bodies


class Server:
    """One ``repro.cli serve`` subprocess; parses the ready line."""

    def __init__(self, extra_args: list[str]):
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        self.proc = subprocess.Popen(
            [
                sys.executable, "-c",
                "from repro.cli import main; raise SystemExit(main())",
                "serve", "--port", "0", "--cache-entries", "0",
                "--gap-extend", "60", "--ydrop", "2400",
                *extra_args,
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        line = self.proc.stderr.readline()
        match = _READY.search(line)
        if match is None:
            self.proc.kill()
            raise RuntimeError(f"server did not start: {line!r}")
        self.host, self.port = match.group(1), int(match.group(2))

    def peak_threads(self) -> int:
        status = Path(f"/proc/{self.proc.pid}/status").read_text()
        return int(re.search(r"Threads:\s*(\d+)", status).group(1))

    def stop(self) -> None:
        self.proc.send_signal(signal.SIGTERM)
        try:
            self.proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            self.proc.kill()


def drive(server: Server, bodies: list[bytes], concurrency: int) -> dict:
    """One connection per worker; measures RPS, latency, peak threads."""
    latencies: list[float] = []
    responses: dict[int, bytes] = {}
    errors: list[str] = []
    lock = threading.Lock()
    peak = [server.peak_threads()]
    stop_sampling = threading.Event()

    def sample() -> None:
        while not stop_sampling.wait(0.05):
            try:
                peak[0] = max(peak[0], server.peak_threads())
            except (OSError, AttributeError):
                return

    retries = [0]

    def worker(indices: list[int]) -> None:
        # A fresh-connection retry absorbs accept-backlog RSTs under the
        # connect burst (the thread-per-connection door's listen queue is
        # tiny); retries are counted — they are part of the result.
        conn = None
        try:
            for i in indices:
                start = time.perf_counter()
                for attempt in range(6):
                    if conn is None:
                        conn = http.client.HTTPConnection(
                            server.host, server.port, timeout=600
                        )
                    try:
                        conn.request(
                            "POST", "/v1/align", body=bodies[i],
                            headers={"Content-Type": "application/json"},
                        )
                        resp = conn.getresponse()
                        raw = resp.read()
                        break
                    except (ConnectionError, http.client.HTTPException, OSError):
                        conn.close()
                        conn = None
                        with lock:
                            retries[0] += 1
                        if attempt == 5:
                            raise
                        time.sleep(0.05 * (attempt + 1))
                elapsed = time.perf_counter() - start
                with lock:
                    if resp.status != 200:
                        errors.append(f"request {i}: HTTP {resp.status}")
                    latencies.append(elapsed)
                    if i < IDENTITY_PROBES:
                        responses[i] = raw
        except Exception as exc:  # noqa: BLE001 - recorded, not raised
            with lock:
                errors.append(f"{type(exc).__name__}: {exc}")
        finally:
            if conn is not None:
                conn.close()

    shards = [list(range(w, len(bodies), concurrency)) for w in range(concurrency)]
    threads = [threading.Thread(target=worker, args=(s,)) for s in shards if s]
    sampler = threading.Thread(target=sample, daemon=True)
    start = time.perf_counter()
    sampler.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    stop_sampling.set()
    sampler.join(timeout=2)
    assert not errors, f"{len(errors)} request(s) failed: {errors[:3]}"
    latencies.sort()
    return {
        "concurrency": concurrency,
        "requests": len(bodies),
        "seconds": round(elapsed, 4),
        "requests_per_second": round(len(bodies) / elapsed, 2),
        "p50_ms": round(latencies[len(latencies) // 2] * 1e3, 1),
        "p95_ms": round(latencies[int(len(latencies) * 0.95) - 1] * 1e3, 1),
        "server_peak_threads": peak[0],
        "connections_per_thread": round(concurrency / peak[0], 2),
        "connect_retries": retries[0],
        "_responses": responses,
    }


def main() -> dict:
    doors = {
        "threaded": [],
        "async": ["--fleet", "--fleet-gpus", "0"],
    }
    front_sweep: dict[str, list[dict]] = {name: [] for name in doors}
    identity: dict[int, bytes] = {}

    for name, extra in doors.items():
        for concurrency in CONCURRENCY:
            bodies = build_bodies(concurrency)
            server = Server(extra)
            try:
                point = drive(server, bodies, concurrency)
            finally:
                server.stop()
            responses = point.pop("_responses")
            for i, raw in responses.items():
                if i in identity:
                    assert raw == identity[i], (
                        f"door {name!r} diverged on probe {i} "
                        f"at concurrency {concurrency}"
                    )
                else:
                    identity[i] = raw
            front_sweep[name].append(point)
            print(
                f"{name:>8} door, {concurrency:>3} conns: "
                f"{point['seconds']:.2f}s ({point['requests_per_second']}/s, "
                f"p95 {point['p95_ms']}ms, {point['server_peak_threads']} "
                f"server threads)"
            )

    backend_sweep = []
    for label, extra in (
        ("single", []),
        ("fleet-cpu+2gpu", ["--fleet", "--fleet-gpus", "2"]),
    ):
        bodies = build_bodies(64)
        server = Server(extra)
        try:
            point = drive(server, bodies, 64)
        finally:
            server.stop()
        responses = point.pop("_responses")
        for i, raw in responses.items():
            assert raw == identity[i], f"backend mix {label!r} diverged on probe {i}"
        point["backends"] = label
        backend_sweep.append(point)
        print(
            f"{label:>15}: {point['seconds']:.2f}s "
            f"({point['requests_per_second']}/s)"
        )

    cpus = os.cpu_count() or 1
    entry = {
        "cpu_count": cpus,
        "identity_probes": len(identity),
        "front_door": front_sweep,
        "backends": backend_sweep,
    }
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "BENCH_fleet.json"
    history = json.loads(out.read_text()) if out.exists() else []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"wrote {out}")

    # Gate: concurrency sustained per server thread.  The threaded door
    # pays ~1 OS thread per connection; the async door multiplexes every
    # connection on one loop (plus a bounded executor), so its ratio must
    # be >= 4x better at the top concurrency.  This is a resource ratio,
    # not a speed race, so it is meaningful on any core count; RPS parity
    # on few-core machines is the recorded caveat (cpu_count above).
    top_threaded = front_sweep["threaded"][-1]
    top_async = front_sweep["async"][-1]
    ratio = (
        top_async["connections_per_thread"]
        / top_threaded["connections_per_thread"]
    )
    entry["concurrency_per_thread_ratio"] = round(ratio, 2)
    out.write_text(json.dumps(history, indent=2) + "\n")
    assert ratio >= 4.0, (
        f"async door sustains only {ratio:.1f}x the threaded door's "
        f"connections-per-thread at {top_async['concurrency']} connections "
        "(gate: >= 4x)"
    )
    if cpus < 4:
        print(
            f"RPS comparison caveat: {cpus} CPU(s) visible — both doors are "
            "compute-bound on the same engine, so throughput parity is "
            "expected here; the identity gate and the concurrency-per-thread "
            "gate are the binding checks on this machine."
        )
    return entry


if __name__ == "__main__":
    main()
