"""Table 2: alignment-length distribution of every benchmark's seeds.

Paper shape: 75-80% of extensions resolve in the eager-traceback tile, the
vast majority of the rest land in bin 1, and the deep bins thin out with
C1_5,5 carrying the heaviest bin-4 tail and D1_2R,2 none.
"""

import numpy as np
import pytest

from repro.analysis.experiments import table2_rows, table2_text
from repro.core import assign_bins


@pytest.fixture(scope="module")
def rows():
    return table2_rows()


def test_table2(benchmark, emit, rows):
    emit("table2_distribution", table2_text(rows))

    # Benchmark the vectorised binning kernel itself.
    rng = np.random.default_rng(0)
    extents = rng.integers(0, 5000, size=200_000)
    eager = rng.random(200_000) < 0.78
    out = benchmark(assign_bins, extents, eager, (64, 256, 1024, 4096))
    assert out.shape == extents.shape

    by_name = {r.benchmark: r for r in rows}
    for r in rows:
        benchmark.extra_info[r.benchmark] = list(r.counts)
        # Eager dominates, bins thin out monotonically through bin 2.
        assert 0.6 < r.eager_fraction < 0.9, r.benchmark
        assert r.counts[1] > r.counts[2] >= r.counts[3], r.benchmark

    # Tail ordering: C1_5,5 heaviest bin-4, D1 empty (paper's Table 2).
    assert by_name["C1_5,5"].bin4_count >= max(
        row.bin4_count for row in rows
    ) - 1
    assert by_name["D1_2R,2"].bin4_count == 0
