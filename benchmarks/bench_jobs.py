"""Worker-count sweep of the whole-genome job runner (implementation health).

Not a paper figure: this measures what the segmented job layer itself
costs and buys.  One synthetic chromosome pair is aligned three ways:

* **single-pass** — plain ``run_fastz``, the pre-jobs baseline;
* **chunked** — ``run_wga`` at 1/2/4/8 workers over the same pair,
  verifying byte-identity against the single-pass alignments each time;
* **resume** — a completed job re-run from its journal, measuring the
  pure replay-and-skip overhead.

Results append a trajectory point to ``bench_results/BENCH_jobs.json``
(including ``cpu_count`` — worker scaling is only meaningful with cores
to scale onto; on a single-core box the sweep measures pure orchestration
overhead).  The gates this repo tracks are **byte-identical output at
every worker count** and **resume overhead under 10% of the single-pass
time** (it is typically well under 1%).

Run directly: ``PYTHONPATH=src python benchmarks/bench_jobs.py``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.core.pipeline import run_fastz
from repro.genome import SegmentClass, build_pair
from repro.jobs import JobOptions, run_wga
from repro.jobs.merge import sort_canonical
from repro.lastz.config import LastzConfig
from repro.scoring import default_scheme

RESULTS = Path(__file__).resolve().parent.parent / "bench_results"

WORKER_COUNTS = (1, 2, 4, 8)
LENGTH = 120_000
CHUNK_SIZE = 16_384
OVERLAP = 3_072

CONFIG = LastzConfig(
    scheme=default_scheme(gap_extend=60, ydrop=2400), diag_band=150
)


def build_workload():
    return build_pair(
        "bench-jobs",
        target_length=LENGTH,
        query_length=LENGTH,
        classes=[
            SegmentClass("mid", 40, 80, 300, divergence=0.06, indel_rate=0.004),
            SegmentClass("long", 4, 400, 900, divergence=0.08, indel_rate=0.003),
        ],
        rng=42,
    )


def job_options(workers: int) -> JobOptions:
    return JobOptions(
        chunk_size=CHUNK_SIZE, overlap=OVERLAP, workers=workers, fsync=False
    )


def main() -> dict:
    pair = build_workload()

    start = time.perf_counter()
    reference = sort_canonical(
        run_fastz(pair.target, pair.query, CONFIG).unique_alignments()
    )
    single_pass_s = time.perf_counter() - start
    print(
        f"single-pass: {single_pass_s:.2f}s "
        f"({len(reference)} alignments, {LENGTH:,} bp x {LENGTH:,} bp)"
    )

    sweep = []
    resume = None
    for workers in WORKER_COUNTS:
        with tempfile.TemporaryDirectory() as job_dir:
            start = time.perf_counter()
            report = run_wga(
                pair.target, pair.query, CONFIG,
                job=job_options(workers), job_dir=job_dir,
            )
            elapsed = time.perf_counter() - start
            assert report.alignments == reference, (
                f"workers={workers} diverged from single-pass output"
            )
            sweep.append(
                {
                    "workers": workers,
                    "seconds": round(elapsed, 3),
                    "vs_single_pass": round(single_pass_s / elapsed, 2),
                    "chunk_tasks": report.n_extend_tasks,
                    "window_fallbacks": report.window_fallbacks,
                }
            )
            print(
                f"workers {workers}: {elapsed:.2f}s "
                f"({single_pass_s / elapsed:.2f}x single-pass, "
                f"{report.n_extend_tasks} chunk tasks, "
                f"{report.window_fallbacks} fallbacks) output identical"
            )

            if workers == WORKER_COUNTS[-1]:
                start = time.perf_counter()
                resumed = run_wga(
                    pair.target, pair.query, CONFIG,
                    job=job_options(workers), job_dir=job_dir,
                )
                resume_s = time.perf_counter() - start
                assert resumed.resumed and resumed.alignments == reference
                assert resumed.seed_skipped == resumed.n_seed_tasks
                assert resumed.extend_skipped == resumed.n_extend_tasks
                resume = {
                    "seconds": round(resume_s, 4),
                    "fraction_of_single_pass": round(resume_s / single_pass_s, 4),
                }
                print(
                    f"resume: {resume_s:.3f}s "
                    f"({100 * resume_s / single_pass_s:.1f}% of single-pass)"
                )

    entry = {
        "genome_bp": LENGTH,
        "chunk_size": CHUNK_SIZE,
        "overlap": OVERLAP,
        "cpu_count": os.cpu_count(),
        "alignments": len(reference),
        "single_pass_seconds": round(single_pass_s, 3),
        "sweep": sweep,
        "resume": resume,
    }
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "BENCH_jobs.json"
    history = json.loads(out.read_text()) if out.exists() else []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"wrote {out}")

    assert resume is not None
    assert resume["fraction_of_single_pass"] < 0.10, (
        f"resume overhead {100 * resume['fraction_of_single_pass']:.1f}% of "
        "single-pass (gate: < 10%)"
    )
    return entry


if __name__ == "__main__":
    main()
