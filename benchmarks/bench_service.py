"""Offered-load sweep of the alignment service (implementation health).

Not a paper figure: this measures what the serving layer itself buys.
A fleet of small, mixed-length alignment requests is thrown at
:class:`repro.service.AlignmentService` under two dispatch policies:

* **naive** — ``max_batch=1``: every request runs the pipeline alone,
  exactly the pre-service one-``run_fastz``-per-caller path;
* **batched** — ``max_batch=64``: concurrent requests are fused into
  bin-aware lockstep batches over the struct-of-arrays engine.

Throughput is requests/second with all requests offered up front (the
queue is the concurrency).  The cache experiment times the same request
cold and then hot.  A third sweep scales the multiprocess backend
(``pool_workers`` 0/1/2/4) over one fixed request fleet, asserting
bit-identical outputs at every worker count.  Results append a
trajectory point to ``bench_results/BENCH_service.json``; the gates this
repo tracks are **batched >= 2x naive at >= 64 concurrent requests**,
**cache hits >= 10x faster than cold runs**, and — only on machines with
>= 4 cores, since worker scaling is meaningless without them
(``cpu_count`` is recorded alongside the sweep) — **4 pool workers
>= 1.5x one worker**.

Run directly: ``PYTHONPATH=src python benchmarks/bench_service.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.genome import SegmentClass, build_pair
from repro.lastz.config import LastzConfig
from repro.scoring import default_scheme
from repro.service import AlignmentService

RESULTS = Path(__file__).resolve().parent.parent / "bench_results"

#: Concurrency levels of the sweep (the acceptance gate reads the last).
OFFERED_LOADS = (16, 64)

CONFIG = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))


def build_requests(n: int):
    """``n`` small requests over mixed sequence lengths (2.5-8 kb)."""
    requests = []
    for i in range(n):
        length = 2_500 + (i % 12) * 500
        pair = build_pair(
            f"load{i}",
            target_length=length,
            query_length=length,
            classes=[SegmentClass("s", 3, 60, 200, divergence=0.05)],
            rng=1_000 + i,
        )
        requests.append((pair.target, pair.query))
    return requests


def run_offered_load(requests, *, max_batch: int, max_wait_ms: float) -> dict:
    """Offer every request at once; measure wall-clock to full completion."""
    with AlignmentService(
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        max_queue=len(requests) + 1,
        cache_entries=0,  # throughput run must not be flattered by caching
        config=CONFIG,
    ) as service:
        start = time.perf_counter()
        futures = [service.submit(t, q) for t, q in requests]
        for future in futures:
            future.result(timeout=600)
        elapsed = time.perf_counter() - start
        stats = service.stats()
    return {
        "seconds": round(elapsed, 4),
        "requests_per_second": round(len(requests) / elapsed, 2),
        "mean_batch_size": round(stats.mean_batch_size, 2),
        "p50_ms": round(stats.latency_p50_ms, 1),
        "p95_ms": round(stats.latency_p95_ms, 1),
    }


def run_pool_point(requests, workers: int) -> tuple[dict, list]:
    """Time the fleet on one backend size; returns (point, outputs)."""
    with AlignmentService(
        max_batch=64,
        max_wait_ms=5.0,
        max_queue=len(requests) + 1,
        cache_entries=0,
        pool_workers=workers,
        config=CONFIG,
    ) as service:
        start = time.perf_counter()
        futures = [service.submit(t, q) for t, q in requests]
        results = [future.result(timeout=600) for future in futures]
        elapsed = time.perf_counter() - start
        stats = service.stats()
    outputs = [
        [
            (a.score, a.target_start, a.target_end,
             a.query_start, a.query_end, a.cigar())
            for a in result.unique_alignments()
        ]
        for result in results
    ]
    point = {
        "pool_workers": workers,
        "seconds": round(elapsed, 4),
        "requests_per_second": round(len(requests) / elapsed, 2),
    }
    if stats.pool is not None:
        point["dispatches"] = stats.pool["dispatches"]
        point["respawns"] = stats.pool["respawns"]
    return point, outputs


def run_pool_sweep(n_requests: int = 24) -> list[dict]:
    """Multiprocess-backend scaling over one fixed fleet, 0/1/2/4 workers."""
    requests = build_requests(n_requests)
    sweep = []
    baseline = None
    for workers in (0, 1, 2, 4):
        point, outputs = run_pool_point(requests, workers)
        if baseline is None:
            baseline = outputs
            point["vs_inprocess"] = 1.0
        else:
            assert outputs == baseline, (
                f"pool_workers={workers} changed the alignments"
            )
            point["vs_inprocess"] = round(sweep[0]["seconds"] / point["seconds"], 2)
        sweep.append(point)
        print(
            f"pool {workers} worker(s): {point['seconds']:.2f}s "
            f"({point['requests_per_second']}/s, "
            f"{point['vs_inprocess']}x vs in-process)"
        )
    return sweep


def run_cache_experiment() -> dict:
    """Cold-vs-hot latency of one repeated request."""
    target, query = build_requests(1)[0]
    with AlignmentService(config=CONFIG) as service:
        cold_start = time.perf_counter()
        service.align(target, query, timeout_s=600)
        cold = time.perf_counter() - cold_start
        hot_start = time.perf_counter()
        service.align(target, query, timeout_s=600)
        hot = time.perf_counter() - hot_start
        hits = service.stats().cache.hits
    assert hits == 1, "second align must be a cache hit"
    return {
        "cold_ms": round(cold * 1e3, 3),
        "hit_ms": round(hot * 1e3, 3),
        "speedup": round(cold / hot, 1),
    }


def main() -> dict:
    sweep = []
    for load in OFFERED_LOADS:
        requests = build_requests(load)
        naive = run_offered_load(requests, max_batch=1, max_wait_ms=0.0)
        batched = run_offered_load(requests, max_batch=64, max_wait_ms=5.0)
        speedup = round(naive["seconds"] / batched["seconds"], 2)
        sweep.append(
            {
                "concurrent_requests": load,
                "naive": naive,
                "batched": batched,
                "speedup": speedup,
            }
        )
        print(
            f"load {load:>3}: naive {naive['seconds']:.2f}s "
            f"({naive['requests_per_second']}/s)  "
            f"batched {batched['seconds']:.2f}s "
            f"({batched['requests_per_second']}/s, "
            f"mean batch {batched['mean_batch_size']})  -> {speedup}x"
        )

    pool_sweep = run_pool_sweep()

    cache = run_cache_experiment()
    print(
        f"cache: cold {cache['cold_ms']:.1f}ms  hit {cache['hit_ms']:.3f}ms  "
        f"-> {cache['speedup']}x"
    )

    entry = {
        "sweep": sweep,
        "pool": {"cpu_count": os.cpu_count(), "sweep": pool_sweep},
        "cache": cache,
    }
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "BENCH_service.json"
    history = json.loads(out.read_text()) if out.exists() else []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"wrote {out}")

    top = sweep[-1]
    assert top["speedup"] >= 2.0, (
        f"batched dispatch only {top['speedup']}x naive at "
        f"{top['concurrent_requests']} concurrent requests (gate: >= 2x)"
    )
    assert cache["speedup"] >= 10.0, (
        f"cache hit only {cache['speedup']}x faster than cold (gate: >= 10x)"
    )
    # Worker scaling needs actual cores: on < 4 CPUs the sweep is recorded
    # (with cpu_count) as the documented caveat but the gate is skipped —
    # N python processes time-slicing one core cannot beat one process.
    cpus = os.cpu_count() or 1
    one = next(p for p in pool_sweep if p["pool_workers"] == 1)
    four = next(p for p in pool_sweep if p["pool_workers"] == 4)
    if cpus >= 4:
        scaling = one["seconds"] / four["seconds"]
        assert scaling >= 1.5, (
            f"4 pool workers only {scaling:.2f}x one worker (gate: >= 1.5x)"
        )
    else:
        print(
            f"pool-scaling gate skipped: {cpus} CPU(s) visible "
            "(recorded in the entry; needs >= 4 cores to be meaningful)"
        )
    return entry


if __name__ == "__main__":
    main()
