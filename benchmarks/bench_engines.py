"""Micro-benchmarks of the DP engines themselves (implementation health).

Not a paper figure: these time this library's extension engines on fixed
homologous extensions so regressions in the hot loops are visible, and
compare the scalar per-anchor loop against the lockstep struct-of-arrays
batch engine on a full >=500-anchor pipeline run (the host-side analogue
of the paper's inter-task parallelism).  The engine comparison appends a
trajectory point to ``bench_results/BENCH_engines.json``.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.align import (
    LockstepArena,
    batch_wavefront_extend,
    gotoh_extend,
    wavefront_extend,
    wholebin_wavefront_extend,
    ydrop_extend,
)
from repro.genome import mutate, random_codes
from repro.scoring import default_scheme


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(99)
    core = random_codes(rng, 400)
    q_core = mutate(core, rng, divergence=0.07, indel_rate=0.005)
    target = np.concatenate([core, random_codes(rng, 800)])
    query = np.concatenate([q_core, random_codes(rng, 800)])
    scheme = default_scheme(gap_extend=60, ydrop=2400)
    return target, query, scheme


def test_ydrop_row_engine(benchmark, workload):
    target, query, scheme = workload
    result = benchmark(ydrop_extend, target, query, scheme)
    benchmark.extra_info["cells"] = result.stats.cells
    benchmark.extra_info["rows"] = result.stats.rows
    assert result.end_i > 300


def test_wavefront_engine(benchmark, workload):
    target, query, scheme = workload
    result = benchmark(wavefront_extend, target, query, scheme)
    benchmark.extra_info["cells"] = result.stats.cells
    benchmark.extra_info["diagonals"] = result.stats.diagonals
    assert result.end_i > 300


def test_wavefront_with_traceback(benchmark, workload):
    target, query, scheme = workload
    result = benchmark(wavefront_extend, target, query, scheme, traceback=True)
    assert result.ops is not None


def test_gotoh_reference_small(benchmark, workload):
    target, query, scheme = workload
    result = benchmark(gotoh_extend, target[:80], query[:80], scheme)
    assert result.score > 0


def test_engines_agree(workload):
    target, query, scheme = workload
    w = wavefront_extend(target, query, scheme)
    y = ydrop_extend(target, query, scheme)
    assert (w.score, w.end_i, w.end_j) == (y.score, y.end_i, y.end_j)


# ---------------------------------------------------------------------------
# Scalar vs batched engine on a full pipeline workload
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def suffix_batch():
    """A few hundred independent extension problems for the batch engine."""
    rng = np.random.default_rng(7)
    scheme = default_scheme(gap_extend=60, ydrop=2400)
    pairs = []
    for _ in range(256):
        core = random_codes(rng, int(rng.integers(20, 200)))
        q_core = mutate(core, rng, divergence=0.08, indel_rate=0.01)
        pairs.append(
            (
                np.concatenate([core, random_codes(rng, 300)]),
                np.concatenate([q_core, random_codes(rng, 300)]),
            )
        )
    return pairs, scheme


def test_batch_wavefront_engine(benchmark, suffix_batch):
    pairs, scheme = suffix_batch
    results = benchmark(
        batch_wavefront_extend, pairs, scheme, eager_tile=16, batch_size=256
    )
    benchmark.extra_info["tasks"] = len(results)
    assert len(results) == len(pairs)


def test_wholebin_wavefront_engine(benchmark, suffix_batch):
    """The whole-bin engine on the same workload: one SoA block, one step
    loop, rows swept in cache tiles — no ``batch_size`` chunking at all."""
    pairs, scheme = suffix_batch
    results = benchmark(wholebin_wavefront_extend, pairs, scheme, eager_tile=16)
    benchmark.extra_info["tasks"] = len(results)
    assert len(results) == len(pairs)


def test_wholebin_wavefront_engine_warm_arena(benchmark, suffix_batch):
    """Steady-state whole-bin path: a warm arena and presorted tasks, the
    exact shape the executor feeds it; spot-checked against scalar."""
    pairs, scheme = suffix_batch
    arena = LockstepArena()
    ordered = sorted(pairs, key=lambda p: len(p[0]) + len(p[1]))
    wholebin_wavefront_extend(
        ordered, scheme, eager_tile=16, arena=arena, presorted=True
    )
    results = benchmark(
        wholebin_wavefront_extend,
        ordered,
        scheme,
        eager_tile=16,
        arena=arena,
        presorted=True,
    )
    benchmark.extra_info["arena_reuses"] = arena.reuses
    assert arena.reuses > 0
    for (t, q), got in zip(ordered[:32], results[:32]):
        ref = wavefront_extend(t, q, scheme, eager_tile=16)
        assert (got.score, got.end_i, got.end_j) == (ref.score, ref.end_i, ref.end_j)
        assert got.stats == ref.stats


def test_batch_wavefront_engine_warm_arena(benchmark, suffix_batch):
    """The steady-state service path: every sweep reuses one warm arena.

    One untimed pass warms the slabs, so the benchmark measures the
    allocation-free path the dispatcher thread and pool workers run;
    results must match the scalar engine exactly.
    """
    pairs, scheme = suffix_batch
    arena = LockstepArena()
    batch_wavefront_extend(
        pairs, scheme, eager_tile=16, batch_size=256, arena=arena
    )
    results = benchmark(
        batch_wavefront_extend,
        pairs,
        scheme,
        eager_tile=16,
        batch_size=256,
        arena=arena,
    )
    benchmark.extra_info["arena_allocs"] = arena.allocations
    benchmark.extra_info["arena_reuses"] = arena.reuses
    assert arena.reuses > 0
    for (t, q), got in zip(pairs[:32], results[:32]):
        ref = wavefront_extend(t, q, scheme, eager_tile=16)
        assert (got.score, got.end_i, got.end_j) == (ref.score, ref.end_i, ref.end_j)
        assert got.stats == ref.stats


def test_scalar_vs_batched_pipeline(emit, results_dir):
    """Acceptance gate: the batched engine must beat the per-anchor loop by
    >=3x on a >=500-anchor workload while staying bit-identical, and the
    whole-bin engine must beat warm batched by >=2x (same-session A/B,
    skipped with a recorded caveat on <2-core boxes).

    Appends the measurement as a trajectory point to BENCH_engines.json so
    engine regressions are visible across sessions.

    ``REPRO_ENGINE_SMOKE=1`` (CI) shrinks the workload and keeps only the
    bit-identity assertions: shared runners make timing gates meaningless,
    and a smoke run must not pollute the recorded trajectory.
    """
    from dataclasses import replace

    from repro.core import run_fastz
    from repro.lastz import run_gapped_lastz
    from repro.workloads import build_benchmark_pair, get_benchmark
    from repro.workloads.profiles import BENCH_OPTIONS, bench_config

    smoke = os.environ.get("REPRO_ENGINE_SMOKE") == "1"
    spec = get_benchmark("D1_2R,2")
    pair = build_benchmark_pair(spec, 0.25 if smoke else 1.0)
    config = bench_config()
    anchors = run_gapped_lastz(pair.target, pair.query, config).anchors

    def timed(options, workers=None):
        start = time.perf_counter()
        result = run_fastz(
            pair.target, pair.query, config, options, anchors=anchors, workers=workers
        )
        return time.perf_counter() - start, result

    t_scalar, scalar = timed(replace(BENCH_OPTIONS, engine="scalar"))
    t_batched, batched = timed(replace(BENCH_OPTIONS, engine="batched"))
    # Repeat batched runs: the pipeline's thread-local arenas are warm
    # after the first pass, so these measure the steady-state
    # allocation-free sweep a long-lived service reaches
    # (`arena_seconds`, min-of-2 against single-core scheduler noise).
    t_arena, arena_run = timed(replace(BENCH_OPTIONS, engine="batched"))
    t_arena2, _ = timed(replace(BENCH_OPTIONS, engine="batched"))
    t_arena = min(t_arena, t_arena2)
    t_pool, pooled = timed(replace(BENCH_OPTIONS, engine="batched"), workers=2)
    # Whole-bin engine, same warm-arena min-of-2 treatment as batched.
    timed(replace(BENCH_OPTIONS, engine="wholebin"))  # warm the arenas
    t_whole, whole = timed(replace(BENCH_OPTIONS, engine="wholebin"))
    t_whole2, _ = timed(replace(BENCH_OPTIONS, engine="wholebin"))
    t_whole = min(t_whole, t_whole2)

    n = len(scalar.tasks)
    if not smoke:
        assert n >= 500, f"workload too small for the acceptance gate ({n} anchors)"
    for ref, alt in (
        (batched, "batched"),
        (arena_run, "batched+warm-arena"),
        (pooled, "batched+pool"),
        (whole, "wholebin"),
    ):
        assert ref.tasks == scalar.tasks, f"{alt}: task profiles diverged"
        assert [
            (a.target_start, a.target_end, a.query_start, a.query_end, a.score)
            for a in ref.alignments
        ] == [
            (a.target_start, a.target_end, a.query_start, a.query_end, a.score)
            for a in scalar.alignments
        ], f"{alt}: alignments diverged"

    if smoke:
        emit(
            "bench_engines_smoke",
            f"engine smoke on {spec.name} @ scale 0.25 ({n} anchors): "
            "scalar/batched/warm-arena/pool/wholebin bit-identical "
            "(timing gates skipped)",
        )
        return

    trajectory_path = results_dir / "BENCH_engines.json"
    trajectory = (
        json.loads(trajectory_path.read_text()) if trajectory_path.exists() else []
    )
    prior = trajectory[-1] if trajectory else None

    cpus = os.cpu_count() or 1
    speedup = t_scalar / t_batched
    point = {
        "benchmark": spec.name,
        "n_tasks": n,
        "cpu_count": cpus,
        "scalar_seconds": round(t_scalar, 4),
        "batched_seconds": round(t_batched, 4),
        "arena_seconds": round(t_arena, 4),
        "pool_seconds": round(t_pool, 4),
        "speedup": round(speedup, 2),
        "arena_speedup": round(t_scalar / t_arena, 2),
        "pool_speedup": round(t_scalar / t_pool, 2),
        "wholebin_seconds": round(t_whole, 4),
        "wholebin_speedup": round(t_scalar / t_whole, 2),
        "wholebin_vs_batched": round(t_arena / t_whole, 2),
        "batch_size": BENCH_OPTIONS.batch_size,
    }
    lines = [
        f"engine comparison on {spec.name} @ scale 1.0 ({n} anchors)",
        f"  scalar per-anchor loop: {t_scalar * 1e3:9.1f} ms",
        f"  batched lockstep:       {t_batched * 1e3:9.1f} ms  "
        f"({speedup:.1f}x)",
        f"  warm-arena lockstep:    {t_arena * 1e3:9.1f} ms  "
        f"({t_scalar / t_arena:.1f}x)",
        f"  batched + pool(2):      {t_pool * 1e3:9.1f} ms  "
        f"({t_scalar / t_pool:.1f}x)",
        f"  whole-bin lockstep:     {t_whole * 1e3:9.1f} ms  "
        f"({t_scalar / t_whole:.1f}x, {t_arena / t_whole:.1f}x vs warm batched)",
        "  results bit-identical across engines",
    ]
    # In-session A/B gate: whole-bin against the warm batched engine.
    # Both legs run in this process on this machine, so the ratio is
    # meaningful whenever real cores back it; on a <2-core box wall-clock
    # is scheduler-noise-bound and the gate is skipped with the caveat
    # recorded (same policy as the cross-session arena gate below).
    vs_batched = t_arena / t_whole
    if cpus >= 2:
        assert vs_batched >= 2.0, (
            f"wholebin engine only {vs_batched:.2f}x over warm batched "
            f"(gate: >= 2x)"
        )
        lines.append(
            f"  wholebin vs batched: {vs_batched:.1f}x (gate >= 2x passed)"
        )
    else:
        point["wholebin_gate"] = (
            f"skipped: {cpus} cpu visible; single-core wall-clock is "
            "scheduler-noise-bound, the measured wholebin_vs_batched ratio "
            "is recorded but not asserted"
        )
        lines.append(
            f"  wholebin vs batched: {vs_batched:.1f}x (gate skipped: {cpus} cpu)"
        )
    # Cross-session gate: the arena engine against the previous entry's
    # batched time.  Prior entries were recorded on earlier sessions'
    # machines, so the ratio is only meaningful with real cores under it;
    # on a <2-core box the gate is skipped and the caveat recorded, as
    # BENCH_jobs/BENCH_service do for their scaling gates.
    if prior and "batched_seconds" in prior:
        vs_prior = prior["batched_seconds"] / t_arena
        point["arena_vs_prior_batched"] = round(vs_prior, 2)
        if cpus >= 2:
            assert vs_prior >= 2.0, (
                f"arena engine only {vs_prior:.2f}x over the prior session's "
                f"batched engine (gate: >= 2x)"
            )
            lines.append(
                f"  arena vs prior batched: {vs_prior:.1f}x (gate >= 2x passed)"
            )
        else:
            point["arena_gate"] = (
                f"skipped: {cpus} cpu visible; prior batched_seconds came from "
                "a different machine, single-core wall-clock ratios are not "
                "comparable (same-machine engine A/B is tracked in-session)"
            )
            lines.append(
                f"  arena vs prior batched: {vs_prior:.1f}x "
                f"(gate skipped: {cpus} cpu)"
            )
    trajectory.append(point)
    trajectory_path.write_text(json.dumps(trajectory, indent=2) + "\n")

    emit("bench_engines", "\n".join(lines))
    assert speedup >= 3.0, f"batched engine only {speedup:.2f}x vs scalar"
