"""Micro-benchmarks of the DP engines themselves (implementation health).

Not a paper figure: these time this library's three extension engines on a
fixed homologous extension so regressions in the hot loops are visible.
"""

import numpy as np
import pytest

from repro.align import gotoh_extend, wavefront_extend, ydrop_extend
from repro.genome import mutate, random_codes
from repro.scoring import default_scheme


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(99)
    core = random_codes(rng, 400)
    q_core = mutate(core, rng, divergence=0.07, indel_rate=0.005)
    target = np.concatenate([core, random_codes(rng, 800)])
    query = np.concatenate([q_core, random_codes(rng, 800)])
    scheme = default_scheme(gap_extend=60, ydrop=2400)
    return target, query, scheme


def test_ydrop_row_engine(benchmark, workload):
    target, query, scheme = workload
    result = benchmark(ydrop_extend, target, query, scheme)
    benchmark.extra_info["cells"] = result.stats.cells
    benchmark.extra_info["rows"] = result.stats.rows
    assert result.end_i > 300


def test_wavefront_engine(benchmark, workload):
    target, query, scheme = workload
    result = benchmark(wavefront_extend, target, query, scheme)
    benchmark.extra_info["cells"] = result.stats.cells
    benchmark.extra_info["diagonals"] = result.stats.diagonals
    assert result.end_i > 300


def test_wavefront_with_traceback(benchmark, workload):
    target, query, scheme = workload
    result = benchmark(wavefront_extend, target, query, scheme, traceback=True)
    assert result.ops is not None


def test_gotoh_reference_small(benchmark, workload):
    target, query, scheme = workload
    result = benchmark(gotoh_extend, target[:80], query[:80], scheme)
    assert result.score > 0


def test_engines_agree(workload):
    target, query, scheme = workload
    w = wavefront_extend(target, query, scheme)
    y = ydrop_extend(target, query, scheme)
    assert (w.score, w.end_i, w.end_j) == (y.score, y.end_i, y.end_j)
