"""What the reference store buys (implementation health, not a figure).

Three measurements over the D1 benchmark pair:

* **Dispatch payload** — bytes pickled into a pool work message for one
  fused batch: the old path (every anchor's target/query suffix views,
  megabytes) against the store path (one shared-memory handle per
  sequence plus ``(ti, qi, t, q)`` anchor rows, a few hundred bytes).
  Gate: **digest dispatch >= 100x smaller**.
* **Registration cost** — one-time ``ReferenceStore.add`` (2-bit pack +
  fsync-free atomic writes), amortised across every later use.
* **Seed-table cache** — ``store.seed_table`` cold (build + persist)
  against a fresh process-equivalent warm load of the persisted table.
  Gate: **warm load >= 2x faster than the cold build**.

Results append a trajectory point to ``bench_results/BENCH_store.json``.
Run directly: ``PYTHONPATH=src python benchmarks/bench_store.py``.
"""

from __future__ import annotations

import json
import pickle
import time
from pathlib import Path

from repro.core.pipeline import prepare_fastz
from repro.lastz.config import LastzConfig
from repro.scoring import default_scheme
from repro.store import ReferenceStore
from repro.workloads import build_benchmark_pair, get_benchmark

RESULTS = Path(__file__).resolve().parent.parent / "bench_results"

SCALE = 0.05
CONFIG = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))


def measure_payloads(pair) -> dict:
    """Pickled work-message bytes: suffix shipping vs spec dispatch."""
    prep = prepare_fastz(pair.target.codes, pair.query.codes, CONFIG)
    suffix_payload = len(pickle.dumps(prep.suffixes(), protocol=5))
    # The spec message the pool sends for store-published sequences:
    # handles + anchor rows, no sequence bytes at all.
    sources = [("shm", "psm_deadbeef", len(pair.target)),
               ("shm", "psm_cafef00d", len(pair.query))]
    rows = [(0, 1, int(t), int(q)) for t, q in zip(prep.t_pos, prep.q_pos)]
    spec_payload = len(pickle.dumps(("spec", sources, rows), protocol=5))
    return {
        "anchors": prep.n_anchors,
        "suffix_bytes": suffix_payload,
        "spec_bytes": spec_payload,
        "reduction": round(suffix_payload / spec_payload, 1),
    }


def measure_registration(store: ReferenceStore, pair) -> dict:
    start = time.perf_counter()
    digest = store.add(pair.target, name="D1.target")
    add_s = time.perf_counter() - start
    start = time.perf_counter()
    again = store.add(pair.target, name="D1.target")
    readd_s = time.perf_counter() - start
    assert again == digest
    return {
        "target_bp": len(pair.target),
        "add_ms": round(add_s * 1e3, 2),
        "idempotent_readd_ms": round(readd_s * 1e3, 3),
        "digest": digest,
    }


def measure_seed_cache(store: ReferenceStore, digest: str) -> dict:
    k = CONFIG.seed_length
    start = time.perf_counter()
    cold_table = store.seed_table(digest, k=k)
    cold_s = time.perf_counter() - start
    # A fresh store instance models a new process: only the persisted
    # .npz is warm, not the in-memory LRU.
    fresh = ReferenceStore(store.root)
    start = time.perf_counter()
    warm_table = fresh.load_seed_table(digest, k=k)
    warm_s = time.perf_counter() - start
    assert warm_table is not None
    assert (warm_table.words == cold_table.words).all()
    return {
        "seed_positions": len(cold_table),
        "cold_build_ms": round(cold_s * 1e3, 2),
        "warm_load_ms": round(warm_s * 1e3, 3),
        "speedup": round(cold_s / warm_s, 1),
    }


def main() -> dict:
    import tempfile

    pair = build_benchmark_pair(get_benchmark("D1_2R,2"), SCALE)
    print(
        f"D1 @ scale {SCALE}: target {len(pair.target):,} bp, "
        f"query {len(pair.query):,} bp"
    )

    payloads = measure_payloads(pair)
    print(
        f"dispatch payload: suffixes {payloads['suffix_bytes']:,} B  "
        f"spec {payloads['spec_bytes']:,} B  "
        f"-> {payloads['reduction']}x smaller "
        f"({payloads['anchors']} anchors)"
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        store = ReferenceStore(tmp)
        registration = measure_registration(store, pair)
        print(
            f"registration: {registration['add_ms']:.1f}ms for "
            f"{registration['target_bp']:,} bp "
            f"(re-add {registration['idempotent_readd_ms']:.2f}ms)"
        )
        seed_cache = measure_seed_cache(store, registration["digest"])
        print(
            f"seed table: cold build {seed_cache['cold_build_ms']:.1f}ms  "
            f"warm load {seed_cache['warm_load_ms']:.2f}ms  "
            f"-> {seed_cache['speedup']}x"
        )
    registration.pop("digest")

    entry = {
        "scale": SCALE,
        "payloads": payloads,
        "registration": registration,
        "seed_cache": seed_cache,
    }
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "BENCH_store.json"
    history = json.loads(out.read_text()) if out.exists() else []
    history.append(entry)
    out.write_text(json.dumps(history, indent=2) + "\n")
    print(f"wrote {out}")

    assert payloads["reduction"] >= 100.0, (
        f"spec dispatch only {payloads['reduction']}x smaller than suffix "
        "shipping (gate: >= 100x)"
    )
    assert seed_cache["speedup"] >= 2.0, (
        f"warm seed-table load only {seed_cache['speedup']}x faster than "
        "the cold build (gate: >= 2x)"
    )
    return entry


if __name__ == "__main__":
    main()
