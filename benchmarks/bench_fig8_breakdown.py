"""Figure 8: FastZ execution-time breakdown on the Ampere GPU.

Paper shape: the inspector dominates (around two thirds, up to 79%), the
executor is a small slice (~10%), and the host-side 'other' work is only
visible because the GPU phases got so fast.
"""

import pytest

from repro.analysis.experiments import figure8_rows, figure8_text
from repro.core import time_fastz
from repro.gpusim import RTX_3080_AMPERE
from repro.workloads import build_profile, get_benchmark, bench_scale
from repro.workloads.profiles import BENCH_OPTIONS, bench_calibration


@pytest.fixture(scope="module")
def rows():
    return figure8_rows()


def test_figure8(benchmark, emit, rows):
    emit("figure8_breakdown", figure8_text(rows))

    profile = build_profile(get_benchmark("C1_1,1"), scale=bench_scale())
    calib = bench_calibration()
    timing = benchmark(
        time_fastz,
        profile.arrays,
        RTX_3080_AMPERE,
        BENCH_OPTIONS,
        calib,
        transfer_bytes=profile.transfer_bytes,
    )
    for phase, frac in timing.breakdown().items():
        benchmark.extra_info[phase] = round(frac, 3)

    for name, bd in rows:
        # Inspector is the largest component on every benchmark.
        assert bd["inspector"] >= bd["executor"], name
        assert bd["inspector"] >= bd["other"], name
        assert 0.3 < bd["inspector"] < 0.95, name
        # Executor stays a minor slice; 'other' is visible but not dominant.
        assert bd["executor"] < 0.45, name
        assert bd["other"] < 0.5, name
