"""Figure 7: speedups over sequential LASTZ for all nine benchmarks.

Paper shape: the Feng-style GPU baseline *loses* to sequential LASTZ
(0.57-0.82x), the 32-process multicore gets ~20x, FastZ gets ~43x/93x/111x
on Pascal/Volta/Ampere, and speedups fall as the bin-4 tail grows.
"""

import numpy as np
import pytest

from repro.analysis.experiments import figure7_rows, figure7_text, _speedup_row
from repro.workloads import build_profile, get_benchmark, bench_scale


@pytest.fixture(scope="module")
def rows():
    return figure7_rows()


def test_figure7(benchmark, emit, rows):
    emit("figure7_speedup", figure7_text(rows))

    # Benchmark the model-evaluation step on one profile.
    profile = build_profile(get_benchmark("C1_1,1"), scale=bench_scale())
    row = benchmark(_speedup_row, profile)

    means = {d: float(np.mean([r.fastz[d] for r in rows])) for d in row.fastz}
    for dev, mean in means.items():
        benchmark.extra_info[f"fastz_mean_{dev}"] = round(mean, 1)
    benchmark.extra_info["multicore_mean"] = round(
        float(np.mean([r.multicore for r in rows])), 1
    )

    # --- shape assertions --------------------------------------------------
    for r in rows:
        # GPU baseline loses to sequential LASTZ on every device.
        assert all(s < 1.0 for s in r.gpu_baseline.values()), r.benchmark
        # FastZ wins big everywhere.
        assert all(s > 10.0 for s in r.fastz.values()), r.benchmark
        # FastZ beats the multicore everywhere.
        assert all(s > r.multicore for s in r.fastz.values()), r.benchmark

    # Cross-device ordering of the means: Pascal slowest, Ampere fastest.
    assert means["Titan X"] < means["QV100"]
    assert means["Titan X"] < means["RTX 3080"]

    # Multicore lands in the paper's neighbourhood.
    mc = float(np.mean([r.multicore for r in rows]))
    assert 10.0 < mc <= 21.0

    # Benchmarks with a heavy bin-4 tail are slower than the tail-free one.
    heavy = next(r for r in rows if r.benchmark == "C1_5,5")
    light = next(r for r in rows if r.benchmark == "D1_2R,2")
    assert light.fastz["RTX 3080"] > heavy.fastz["RTX 3080"]
