"""Quantitative claims of §1/§2/§3.2, checked against the measured workload.

Not a figure, but the paper's load-bearing numbers: the front-loaded
alignment-length CDF, the search-space-dwarfs-alignment premise, the >99%
DP runtime share, and the cyclic-buffer traffic reductions (92% executor
bandwidth, >96% score traffic, ~97% overall).
"""

import pytest

from repro.analysis import (
    characterize,
    format_characterization,
    format_traffic_report,
    traffic_report,
)
from repro.workloads import build_profile, get_benchmark, bench_scale
from repro.workloads.profiles import bench_calibration


@pytest.fixture(scope="module")
def profile():
    return build_profile(get_benchmark("C1_1,1"), scale=bench_scale())


def test_workload_characterization(benchmark, emit, profile):
    char = benchmark(characterize, profile.arrays)
    emit("claims_characterization", format_characterization(char))

    benchmark.extra_info["short_fraction"] = round(char.short_alignment_fraction, 3)
    benchmark.extra_info["search_to_alignment"] = round(
        char.search_to_alignment_cells, 1
    )

    # §1: short alignments dominate (paper: >97% <= 128bp at its scale).
    assert char.short_alignment_fraction > 0.7
    # §1: the search space is explored far beyond the optimum for everyone.
    assert char.search_dwarfs_alignment
    assert char.search_depth_p10 > char.extent_percentiles[0]
    # §2.1: the DP is essentially all of sequential LASTZ's time.
    assert char.dp_runtime_fraction > 0.95


def test_traffic_reductions(benchmark, emit, profile):
    calib = bench_calibration()
    report = benchmark(traffic_report, profile.arrays, calib)
    emit("claims_traffic", format_traffic_report(report))

    benchmark.extra_info["score_reduction"] = round(
        report.score_traffic_reduction, 3
    )
    benchmark.extra_info["executor_reduction"] = round(
        report.executor_bandwidth_reduction, 3
    )

    # §3.2: cyclic buffering removes the vast majority of score traffic...
    assert report.score_traffic_reduction > 0.9
    # ...and most of the executor's bandwidth demand; the remainder is the
    # traceback state that must be written (paper: 92% / 8%).
    assert report.executor_bandwidth_reduction > 0.85
    assert report.traceback_share_after > 0.5
    assert report.overall_access_reduction > 0.9
