"""Shared infrastructure for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper:
it prints the regenerated rows/series (also written to ``bench_results/``)
and times a representative step with pytest-benchmark.

Scale: profiles default to ``REPRO_BENCH_SCALE`` (1.0 ~ 1000 anchors per
benchmark, a 1000x reduction from the paper's 1M seeds).  The first run
builds profiles with the real DP engines (several minutes for the whole
suite) and caches them under ``.repro_cache/``; later runs are fast.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a rendered experiment and persist it under bench_results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{'=' * 78}\n{text}\n{'=' * 78}")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
