"""Table 1: the genome registry, plus synthetic-pair synthesis throughput."""

from repro.analysis import table1_text
from repro.workloads import build_benchmark_pair, get_benchmark


def test_table1(benchmark, emit):
    emit("table1_genomes", table1_text())

    spec = get_benchmark("C1_1,1")
    pair = benchmark(build_benchmark_pair, spec, 0.05)
    benchmark.extra_info["target_bp"] = len(pair.target)
    benchmark.extra_info["query_bp"] = len(pair.query)
    benchmark.extra_info["planted_segments"] = len(pair.segments)
    assert len(pair.segments) > 0
