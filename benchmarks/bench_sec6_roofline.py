"""Section 6: operational-intensity (roofline) analysis.

Paper numbers: inspector 24 ops/byte (slightly compute-bound), executor
6.5 ops/byte (slightly memory-bound), RTX 3080 ridge 39 ops/byte nominal
and 15.2 after the 2.56x divergence derate; the unoptimised kernels would
sit at 0.75/0.69 ops/byte — deeply memory-bound.
"""

import pytest

from repro.analysis import (
    derated_ridge,
    executor_intensity,
    inspector_intensity,
    naive_executor_intensity,
    naive_inspector_intensity,
    nominal_ridge,
    roofline_report,
)
from repro.gpusim import ALL_DEVICES, RTX_3080_AMPERE


def _text() -> str:
    lines = ["Section 6 — operational intensity (ops/byte)"]
    lines.append(
        f"  FastZ inspector: {inspector_intensity():.1f}   "
        f"executor: {executor_intensity():.2f}   "
        f"naive: {naive_inspector_intensity():.2f}/{naive_executor_intensity():.2f}"
    )
    for dev in ALL_DEVICES:
        report = roofline_report(dev)
        ridge = derated_ridge(dev)
        bounds = ", ".join(f"{p.phase}={p.bound}" for p in report)
        lines.append(
            f"  {dev.name:<10} nominal ridge {nominal_ridge(dev):5.1f}, "
            f"derated {ridge:5.1f}  ->  {bounds}"
        )
    return "\n".join(lines)


def test_roofline(benchmark, emit):
    emit("sec6_roofline", _text())
    report = benchmark(roofline_report, RTX_3080_AMPERE)

    points = {p.phase: p for p in report}
    benchmark.extra_info["inspector_oi"] = points["inspector"].intensity
    benchmark.extra_info["executor_oi"] = round(points["executor"].intensity, 2)
    benchmark.extra_info["derated_ridge"] = round(points["inspector"].ridge, 1)

    # Paper's §6 conclusions.
    assert points["inspector"].intensity == pytest.approx(24.0)
    assert points["executor"].intensity == pytest.approx(6.5, abs=0.1)
    assert points["inspector"].ridge == pytest.approx(15.2, rel=0.02)
    assert points["inspector"].bound == "compute"
    assert points["executor"].bound == "memory"
    assert points["inspector-naive"].bound == "memory"
    assert points["executor-naive"].bound == "memory"
