"""Figure 2: gapped vs ungapped sensitivity on the nematode-like pair.

Paper shape: the gapped pipeline finds more, longer, higher-scoring
alignments — more than twice the number above the high-score threshold.
"""

import pytest

from repro.analysis import compare_sensitivity
from repro.analysis.experiments import figure2_text
from repro.workloads import SENSITIVITY_BENCHMARK, bench_scale
from repro.workloads.profiles import build_sensitivity_run


@pytest.fixture(scope="module")
def runs():
    return build_sensitivity_run(SENSITIVITY_BENCHMARK, scale=bench_scale())


def test_figure2(benchmark, emit, runs):
    gapped, ungapped = runs
    report = benchmark(
        compare_sensitivity, gapped, ungapped, high_score_threshold=8000
    )
    emit("figure2_sensitivity", figure2_text(report))

    g_total, u_total = report.total_counts()
    benchmark.extra_info["gapped_alignments"] = g_total
    benchmark.extra_info["ungapped_alignments"] = u_total
    benchmark.extra_info["high_score_ratio"] = report.high_score_ratio

    # Shape assertions (paper: gapped strictly more sensitive).
    assert g_total > u_total
    assert report.gapped_high >= report.ungapped_high
    assert report.high_score_ratio >= 1.5 or report.ungapped_high == 0
