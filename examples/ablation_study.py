#!/usr/bin/env python
"""Ablation study: isolate the impact of each FastZ optimisation (Figure 9).

Starts from the bare inspector-executor design with load-balancing bins
and progressively adds cyclic use-and-discard buffering, eager traceback,
and executor trimming; finally shows the cost of dropping CUDA streams.

Run:  python examples/ablation_study.py  [--scale 0.25] [--benchmark C1_1,1]
"""

import argparse

from repro import ALL_DEVICES
from repro.core import ablation_times
from repro.lastz import sequential_seconds
from repro.workloads import build_profile, get_benchmark
from repro.workloads.profiles import BENCH_OPTIONS, bench_calibration

PAPER = {
    "Titan X": ("0.92x", "4.7x", "15x", "43x", "~25x"),
    "QV100": ("-", "6.1x", "21x", "93x", "~55x"),
    "RTX 3080": ("2.8x", "17x", "46x", "111x", "~46x"),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="C1_1,1")
    parser.add_argument("--scale", type=float, default=0.25)
    args = parser.parse_args()

    profile = build_profile(get_benchmark(args.benchmark), scale=args.scale)
    cpu_s = sequential_seconds(profile.cpu_cells)
    calib = bench_calibration()

    print(f"{args.benchmark} at scale {args.scale}: "
          f"{profile.n_anchors} anchors, sequential LASTZ {cpu_s * 1e3:.1f} ms\n")

    for dev in ALL_DEVICES:
        table = ablation_times(
            profile.arrays,
            dev,
            calib,
            bin_edges=BENCH_OPTIONS.bin_edges,
            transfer_bytes=profile.transfer_bytes,
        )
        print(f"{dev.name} ({dev.arch}):")
        prev = None
        for idx, (label, timing) in enumerate(table.items()):
            speedup = cpu_s / timing.total_seconds
            step = f" ({speedup / prev:.2f}x step)" if prev else ""
            paper = PAPER[dev.name][idx]
            print(f"  {label:<22} {speedup:7.1f}x{step:<15} paper: {paper}")
            prev = speedup
        print()

    # Bonus: the configuration the paper refused to even plot — binning off,
    # per-problem device mallocs on ("we do not include a configuration that
    # excludes load balancing which would result in high slowdowns").
    from dataclasses import replace as _replace
    from repro import FASTZ_FULL, time_fastz
    from repro.gpusim import RTX_3080_AMPERE

    no_binning = _replace(
        FASTZ_FULL, binning=False, bin_edges=BENCH_OPTIONS.bin_edges
    )
    t = time_fastz(profile.arrays, RTX_3080_AMPERE, no_binning, calib,
                   transfer_bytes=profile.transfer_bytes)
    print(f"(bonus) FastZ without binning on RTX 3080: "
          f"{cpu_s / t.total_seconds:.1f}x — per-problem device mallocs "
          "erase much of the win, as §3.3 warns.\n")

    print("reading: every optimisation should help; the penultimate row is\n"
          "full FastZ; the last shows the single-stream penalty (paper 1.7-2.4x).")


if __name__ == "__main__":
    main()
