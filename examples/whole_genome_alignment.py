#!/usr/bin/env python
"""Whole-genome alignment walk-through on a registry benchmark.

Reproduces, for one benchmark pair (*C. elegans* chr4 vs *C. briggsae*
chr4, synthesised), the paper's full comparison: sequential LASTZ,
multicore LASTZ, the Feng et al. GPU baseline, and FastZ on all three
GPUs — plus the Figure 8 style execution-time breakdown.

Run:  python examples/whole_genome_alignment.py  [--scale 0.25]
"""

import argparse

from repro import ALL_DEVICES, time_fastz, time_feng_baseline
from repro.lastz import multicore_seconds, sequential_seconds
from repro.workloads import build_profile, get_benchmark
from repro.workloads.profiles import BENCH_OPTIONS, bench_calibration


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="C1_4,4")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload scale (1.0 ~ 1000 anchors)")
    args = parser.parse_args()

    spec = get_benchmark(args.benchmark)
    print(f"building workload profile for {spec.name} at scale {args.scale} "
          f"(cached under .repro_cache/) ...")
    profile = build_profile(spec, scale=args.scale)

    fz = profile.fastz
    print(f"\n{spec.name}: {profile.n_anchors} anchors")
    print(f"  alignment-length bins [eager, 1-4]: {fz.bin_counts().tolist()}")
    print(f"  eager-traceback rate: {100 * fz.eager_fraction:.1f}% "
          f"(paper: 75-80%)")
    arr = profile.arrays
    print(f"  inspector search cells: {arr.insp_cells.sum():,}")
    print(f"  trimmed executor cells: {arr.exec_cells.sum():,} "
          f"({100 * arr.exec_cells.sum() / arr.insp_cells.sum():.1f}% of search)")

    calib = bench_calibration()
    cpu_s = sequential_seconds(profile.cpu_cells)
    mc_s = multicore_seconds(profile.cpu_cells)
    print(f"\nmodelled times (speedup over sequential LASTZ = {cpu_s * 1e3:.1f} ms):")
    print(f"  {'multicore LASTZ (32 proc)':<28} {cpu_s / mc_s:7.1f}x")
    for dev in ALL_DEVICES:
        feng = time_feng_baseline(arr, dev, calib)
        print(f"  {'GPU baseline on ' + dev.name:<28} {cpu_s / feng:7.2f}x")
    for dev in ALL_DEVICES:
        t = time_fastz(arr, dev, BENCH_OPTIONS, calib,
                       transfer_bytes=profile.transfer_bytes)
        bd = t.breakdown()
        print(f"  {'FastZ on ' + dev.name:<28} {cpu_s / t.total_seconds:7.1f}x   "
              f"(inspector {100 * bd['inspector']:.0f}%, "
              f"executor {100 * bd['executor']:.0f}%, "
              f"other {100 * bd['other']:.0f}%)")

    print("\npaper reference points: multicore 20x; GPU baseline 0.57-0.82x;"
          "\nFastZ 43x (Pascal), 93x (Volta), 111x (Ampere); inspector ~2/3 of time.")


if __name__ == "__main__":
    main()
