#!/usr/bin/env python
"""Visualising the load-balancing argument for length binning (§3.3).

Renders per-SM busy-time histograms for the executor under two schedules:
one kernel that intermingles every alignment length (what FastZ avoids),
and one kernel per length bin (what FastZ does).  The mixed kernel's
makespan is set by the few SMs stuck behind monster alignments while the
rest idle — the bulk-synchronous waste the paper's binning eliminates.

Run:  python examples/load_balance_visualization.py  [--scale 0.25]
"""

import argparse

import numpy as np

from repro.core.binning import assign_bins
from repro.core.perfmodel import _executor_costs
from repro.gpusim import RTX_3080_AMPERE, render_utilization, simulate_kernel
from repro.workloads import build_profile, get_benchmark
from repro.workloads.profiles import BENCH_OPTIONS, bench_calibration


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="C1_5,5")  # heaviest bin-4 tail
    parser.add_argument("--scale", type=float, default=0.25)
    args = parser.parse_args()

    profile = build_profile(get_benchmark(args.benchmark), scale=args.scale)
    calib = bench_calibration()
    costs, include = _executor_costs(profile.arrays, BENCH_OPTIONS, calib)
    bins = assign_bins(
        profile.arrays.side_extent[include],
        np.zeros(include.shape[0], dtype=bool),
        BENCH_OPTIONS.bin_edges,
    )

    print(f"{args.benchmark}: {len(costs)} executor warp-tasks "
          f"(bins {np.bincount(bins, minlength=5)[1:].tolist()})\n")

    mixed = simulate_kernel(costs, RTX_3080_AMPERE, include_launch=False)
    print("WITHOUT binning — one kernel, lengths intermingled:")
    print(render_utilization(mixed, max_rows=10))

    print("\nWITH binning — one kernel per length bin:")
    total = 0.0
    for b in range(1, len(BENCH_OPTIONS.bin_edges) + 1):
        kernel = [costs[k] for k in np.flatnonzero(bins == b)]
        if not kernel:
            continue
        timing = simulate_kernel(kernel, RTX_3080_AMPERE, include_launch=False)
        total += timing.seconds
        print(f"\n  bin {b} ({len(kernel)} tasks):")
        print("  " + render_utilization(timing, max_rows=6).replace("\n", "\n  "))

    print(f"\nmixed-kernel makespan: {mixed.seconds * 1e3:.3f} ms "
          f"(imbalance {100 * mixed.imbalance:.0f}%)")
    print(f"sum of per-bin kernels: {total * 1e3:.3f} ms "
          "(and bins overlap across CUDA streams in FastZ)")


if __name__ == "__main__":
    main()
