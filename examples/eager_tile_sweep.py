#!/usr/bin/env python
"""Design-choice ablation: sweeping the eager-traceback tile size.

The paper fixes the tile at 16x16 ("extremely short alignments") because
75-80% of seed extensions fit there while the tile still fits in shared
memory.  This sweep re-runs the FastZ pipeline with tiles from 4 to 32 to
show the trade-off the authors navigated: small tiles push tasks back to
the executor; big tiles capture little extra (the length distribution is
front-loaded) while growing the shared-memory footprint quadratically.

Run:  python examples/eager_tile_sweep.py
"""

from dataclasses import replace

from repro import FastzOptions, RTX_3080_AMPERE, run_fastz, time_fastz
from repro.core.options import SCALED_BIN_EDGES
from repro.genome import SegmentClass, build_pair
from repro.lastz import run_gapped_lastz
from repro.workloads.profiles import bench_calibration, bench_config


def main() -> None:
    pair = build_pair(
        "tile-sweep",
        target_length=60_000,
        query_length=60_000,
        classes=[
            SegmentClass("eager", 160, 19, 21, divergence=0.01),
            SegmentClass("bin1", 12, 30, 55, divergence=0.07, indel_rate=0.003),
            SegmentClass("bin2", 3, 90, 230, divergence=0.08, indel_rate=0.002),
        ],
        rng=21,
    )
    config = bench_config()
    anchors = run_gapped_lastz(pair.target, pair.query, config).anchors
    calib = bench_calibration()

    print(f"{len(anchors)} anchors; paper tile = 16\n")
    print(f"{'tile':>5} {'eager rate':>11} {'executor tasks':>15} "
          f"{'tile bytes':>11} {'modelled time':>14}")
    for tile in (4, 8, 16, 24, 32):
        options = FastzOptions(eager_tile=tile, bin_edges=SCALED_BIN_EDGES)
        result = run_fastz(pair.target, pair.query, config, options,
                           anchors=anchors)
        timing = time_fastz(result.arrays, RTX_3080_AMPERE, options, calib)
        exec_tasks = len(result.tasks) - result.eager_count
        tile_bytes = (tile + 1) ** 2  # packed traceback bytes per extension
        print(f"{tile:>5} {100 * result.eager_fraction:>10.1f}% "
              f"{exec_tasks:>15} {tile_bytes:>11} "
              f"{timing.total_seconds * 1e6:>11.1f} us")

    print("\nreading: the eager rate saturates around the paper's 16 — the "
          "\nalignment-length distribution is front-loaded — while the tile's "
          "\nshared-memory cost grows quadratically. 16x16 is the knee.")


if __name__ == "__main__":
    main()
