#!/usr/bin/env python
"""FASTA-based workflow: persist synthetic chromosomes and align from disk.

Shows the file-facing half of the API: write a synthesised pair to FASTA,
read it back (as a user with real chromosome files would), align, and
report per-alignment identity/CIGAR.

Run:  python examples/fasta_workflow.py
"""

import tempfile
from dataclasses import replace
from pathlib import Path

from repro import LastzConfig, default_scheme, run_gapped_lastz
from repro.genome import SegmentClass, build_pair, read_fasta, write_fasta


def main() -> None:
    pair = build_pair(
        "fasta-demo",
        target_length=50_000,
        query_length=50_000,
        classes=[
            SegmentClass("seedlets", 80, 19, 21, divergence=0.01),
            SegmentClass("blocks", 10, 100, 400, divergence=0.06, indel_rate=0.004),
        ],
        rng=5,
    )

    with tempfile.TemporaryDirectory() as tmp:
        target_path = Path(tmp) / "target.fa"
        query_path = Path(tmp) / "query.fa"
        write_fasta(target_path, [pair.target])
        write_fasta(query_path, [pair.query])
        print(f"wrote {target_path.stat().st_size:,} + "
              f"{query_path.stat().st_size:,} bytes of FASTA")

        target = read_fasta(target_path)[0]
        query = read_fasta(query_path)[0]
        assert target == pair.target and query == pair.query

        config = replace(
            LastzConfig(
                scheme=default_scheme(gap_extend=60, ydrop=2400),
                collapse_window=3000,
                diag_band=150,
            ),
            traceback=True,  # we want CIGARs for the report below
        )
        result = run_gapped_lastz(target, query, config)

    print(f"\n{len(result.alignments)} alignments "
          f"(threshold {config.scheme.gapped_threshold}):")
    print(f"{'target interval':<22} {'query interval':<22} "
          f"{'score':>7} {'ident':>6}  cigar")
    for a in sorted(result.alignments, key=lambda a: -a.score)[:10]:
        ident = a.identity(target.codes, query.codes)
        cigar = a.cigar()
        if len(cigar) > 28:
            cigar = cigar[:25] + "..."
        print(f"[{a.target_start:>7},{a.target_end:>7})   "
              f"[{a.query_start:>7},{a.query_end:>7})   "
              f"{a.score:>7} {100 * ident:>5.1f}%  {cigar}")


if __name__ == "__main__":
    main()
