#!/usr/bin/env python
"""Gapped vs ungapped sensitivity (Figure 2) on a gap-rich genome pair.

Builds a pair whose homology includes gap-interrupted segments (conserved
blocks separated by short indels), then compares the high-sensitivity
gapped pipeline against the faster ungapped-filter variant.  The ungapped
filter cannot see past the gaps, so it misses exactly the alignments the
paper's Figure 2 shows the gapped pipeline winning.

Run:  python examples/sensitivity_study.py
"""

import numpy as np

from repro import LastzConfig, default_scheme, run_gapped_lastz, run_ungapped_lastz
from repro.analysis import compare_sensitivity, scatter_arrays
from repro.genome import SegmentClass, build_pair


def ascii_scatter(lengths, scores, width=60, height=12, mark="g") -> list[str]:
    """A tiny length-vs-score ASCII scatter (stand-in for the paper's plot)."""
    grid = [[" "] * width for _ in range(height)]
    if len(lengths):
        lmax = max(int(lengths.max()), 1)
        smax = max(int(scores.max()), 1)
        for l, s in zip(lengths, scores):
            x = min(int(l / lmax * (width - 1)), width - 1)
            y = min(int(s / smax * (height - 1)), height - 1)
            grid[height - 1 - y][x] = mark
    return ["".join(row) for row in grid]


def main() -> None:
    pair = build_pair(
        "fig2",
        target_length=120_000,
        query_length=120_000,
        classes=[
            SegmentClass("clean", 60, 60, 260, divergence=0.06),
            SegmentClass(
                "gappy", 40, 200, 900,
                divergence=0.09, indel_rate=0.03, mean_indel_len=8.0,
            ),
        ],
        rng=31,
    )
    config = LastzConfig(
        scheme=default_scheme(gap_extend=60, ydrop=2400),
        collapse_window=3000,
        diag_band=150,
    )

    print("running gapped pipeline ...")
    gapped = run_gapped_lastz(pair.target, pair.query, config)
    print("running ungapped-filter pipeline ...")
    ungapped = run_ungapped_lastz(
        pair.target, pair.query, config, anchors=gapped.anchors
    )

    report = compare_sensitivity(gapped, ungapped, high_score_threshold=3000)
    g_total, u_total = report.total_counts()
    g_max, u_max = report.max_lengths()

    print(f"\nungapped filter dropped {100 * ungapped.filter_rate:.0f}% "
          f"of {ungapped.candidates} anchors")
    print(f"alignments found:   gapped {g_total}  vs  ungapped {u_total}")
    print(f"longest alignment:  gapped {g_max}  vs  ungapped {u_max}")
    print(f"score > 3000:       gapped {report.gapped_high}  vs  "
          f"ungapped {report.ungapped_high} "
          f"(ratio {report.high_score_ratio:.1f}; paper reports >2x)")

    lengths, scores = scatter_arrays(report.gapped)
    print("\nlength-vs-score scatter (gapped pipeline):")
    for row in ascii_scatter(np.asarray(lengths), np.asarray(scores)):
        print("  |" + row)
    print("  +" + "-" * 60)


if __name__ == "__main__":
    main()
