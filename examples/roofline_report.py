#!/usr/bin/env python
"""Operational-intensity (roofline) analysis of FastZ's kernels (paper §6).

Places the inspector and executor — optimised and naive — on each
evaluation GPU's roofline, reproducing the paper's arithmetic: the
inspector ends up slightly compute-bound, the executor slightly
memory-bound, and both would be deeply memory-bound without cyclic
use-and-discard buffering.

Run:  python examples/roofline_report.py
"""

from repro import ALL_DEVICES
from repro.analysis import (
    DIVERGENCE_DERATE,
    derated_ridge,
    nominal_ridge,
    roofline_report,
)


def main() -> None:
    print(f"branch-divergence derate: {DIVERGENCE_DERATE:.2f} "
          "(9 DP ops expand to 23 under SIMD divergence)\n")

    for dev in ALL_DEVICES:
        print(f"{dev.name} ({dev.arch}): "
              f"{dev.peak_flops / 1e12:.2f} TFLOP/s, "
              f"{dev.mem_bandwidth_gbs:.0f} GB/s")
        print(f"  nominal ridge {nominal_ridge(dev):5.1f} ops/byte, "
              f"derated {derated_ridge(dev):5.1f} ops/byte")
        for point in roofline_report(dev):
            marker = ">" if point.bound == "compute" else "<"
            print(f"    {point.phase:<17} {point.intensity:6.2f} ops/byte "
                  f"{marker} ridge  ->  {point.bound}-bound "
                  f"(headroom {point.headroom:.2f}x)")
        print()

    print("paper §6 (RTX 3080): inspector 24 ops/byte vs threshold 15.2 ->\n"
          "slightly compute-bound; executor 6.5 -> slightly memory-bound;\n"
          "without the optimisations: 0.75/0.69 ops/byte, deeply memory-bound.")


if __name__ == "__main__":
    main()
