#!/usr/bin/env python
"""Quickstart: align two small synthetic chromosomes with FastZ.

Builds a pair of related chromosomes, runs the sequential gapped LASTZ
reference and the FastZ inspector-executor pipeline on the same anchors,
verifies they agree, and models FastZ's execution time on the paper's
three GPUs.

Run:  python examples/quickstart.py
"""

from repro import (
    LastzConfig,
    RTX_3080_AMPERE,
    SegmentClass,
    build_pair,
    default_scheme,
    run_fastz,
    run_gapped_lastz,
    time_fastz,
)
from repro.lastz import sequential_seconds


def main() -> None:
    # 1. Synthesise a pair of related chromosomes: mostly short homologies
    #    (like real WGA seeds) plus a few long conserved segments.
    pair = build_pair(
        "quickstart",
        target_length=60_000,
        query_length=60_000,
        classes=[
            SegmentClass("short", 120, 19, 21, divergence=0.01),
            SegmentClass("medium", 15, 40, 200, divergence=0.07, indel_rate=0.004),
            SegmentClass("long", 2, 600, 900, divergence=0.06, indel_rate=0.002),
        ],
        rng=7,
    )
    print(f"pair: target {len(pair.target):,} bp, query {len(pair.query):,} bp, "
          f"{len(pair.segments)} planted homologies")

    # 2. Sequential gapped LASTZ (the paper's baseline).
    config = LastzConfig(
        scheme=default_scheme(gap_extend=60, ydrop=2400),
        collapse_window=3000,
        diag_band=150,
    )
    reference = run_gapped_lastz(pair.target, pair.query, config)
    print(f"LASTZ: {len(reference.anchors)} anchors, "
          f"{len(reference.alignments)} alignments, "
          f"{reference.total_cells:,} DP cells explored")

    # 3. FastZ on the same anchors (inspector -> eager traceback/executor).
    fastz = run_fastz(pair.target, pair.query, config, anchors=reference.anchors)
    print(f"FastZ: eager-resolved {fastz.eager_count}/{len(fastz.tasks)} tasks "
          f"({100 * fastz.eager_fraction:.0f}%), bins {fastz.bin_counts().tolist()}")

    # 4. Correctness: same alignments (or occasionally longer, §3.4).
    ref_boxes = {
        (a.target_start, a.target_end, a.query_start, a.query_end)
        for a in reference.alignments
    }
    fz_boxes = {
        (a.target_start, a.target_end, a.query_start, a.query_end)
        for a in fastz.alignments
    }
    assert ref_boxes <= fz_boxes, "FastZ must find every reference alignment"
    print(f"correctness: all {len(ref_boxes)} reference alignments reproduced")

    best = max(fastz.alignments, key=lambda a: a.score)
    print(f"best alignment: target[{best.target_start}:{best.target_end}] ~ "
          f"query[{best.query_start}:{best.query_end}] score={best.score} "
          f"cigar={best.cigar()[:60]}...")

    # 5. Modelled performance on the paper's Ampere GPU.
    cpu_s = sequential_seconds(reference.cells_per_task)
    timing = time_fastz(fastz.arrays, RTX_3080_AMPERE)
    print(f"modelled: sequential LASTZ {cpu_s * 1e3:.1f} ms, "
          f"FastZ on {RTX_3080_AMPERE.name} {timing.total_seconds * 1e3:.2f} ms "
          f"-> {cpu_s / timing.total_seconds:.0f}x speedup")


if __name__ == "__main__":
    main()
