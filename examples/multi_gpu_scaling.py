#!/usr/bin/env python
"""Multi-GPU scaling study (the paper's §6 'future work', implemented).

Partitions a benchmark's seed extensions round-robin across 1-8 simulated
RTX 3080s and reports the modelled strong-scaling curve.  The curve bends
where per-device task counts get small (launch overheads, load imbalance)
and where the sequence broadcast starts to matter — the practical limits
the paper's one-sentence sketch glosses over.

Run:  python examples/multi_gpu_scaling.py  [--scale 0.25]
"""

import argparse

from repro.core import time_fastz, time_fastz_multi_gpu
from repro.gpusim import RTX_3080_AMPERE
from repro.lastz import sequential_seconds
from repro.workloads import build_profile, get_benchmark
from repro.workloads.profiles import BENCH_OPTIONS, bench_calibration


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="C1_1,1")
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    profile = build_profile(get_benchmark(args.benchmark), scale=args.scale)
    calib = bench_calibration()
    cpu_s = sequential_seconds(profile.cpu_cells)
    single = time_fastz(
        profile.arrays,
        RTX_3080_AMPERE,
        BENCH_OPTIONS,
        calib,
        transfer_bytes=profile.transfer_bytes,
    )

    print(f"{args.benchmark} @ scale {args.scale}: {profile.n_anchors} anchors; "
          f"sequential LASTZ {cpu_s * 1e3:.1f} ms\n")
    print(f"{'GPUs':>5} {'time':>10} {'speedup/LASTZ':>14} "
          f"{'vs 1 GPU':>9} {'efficiency':>11}")
    for n in (1, 2, 4, 8):
        multi = time_fastz_multi_gpu(
            profile.arrays,
            RTX_3080_AMPERE,
            n,
            BENCH_OPTIONS,
            calib,
            transfer_bytes=profile.transfer_bytes,
        )
        eff = multi.scaling_efficiency(single)
        print(f"{n:>5} {multi.total_seconds * 1e3:>8.3f}ms "
              f"{cpu_s / multi.total_seconds:>13.1f}x "
              f"{single.total_seconds / multi.total_seconds:>8.2f}x "
              f"{100 * eff:>10.0f}%")

    print("\nreading: speedup grows sub-linearly — the serial critical path of"
          "\nthe longest extensions and the per-device sequence broadcast cap"
          "\nthe benefit, so efficiency falls as GPUs are added.")


if __name__ == "__main__":
    main()
