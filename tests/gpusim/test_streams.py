"""Unit tests for the CUDA-stream scheduling model."""

import pytest

from repro.gpusim import RTX_3080_AMPERE, TaskCost, simulate_stream_schedule

DEV = RTX_3080_AMPERE


def _task(compute=1e6, critical=1e4):
    return TaskCost(
        compute_cycles=compute,
        critical_cycles=critical,
        bytes_dram=0.0,
    )


def _kernels(n_kernels=8, tasks_per_kernel=50):
    return [[_task() for _ in range(tasks_per_kernel)] for _ in range(n_kernels)]


class TestSingleStream:
    def test_sum_of_kernels(self):
        kernels = _kernels()
        sched = simulate_stream_schedule(kernels, DEV, streams=1)
        total = sum(k.seconds for k in sched.kernels)
        assert sched.seconds == pytest.approx(total)

    def test_task_count(self):
        sched = simulate_stream_schedule(_kernels(3, 10), DEV, streams=1)
        assert sched.total_tasks == 30


class TestMultiStream:
    def test_never_slower_than_serial(self):
        kernels = _kernels()
        serial = simulate_stream_schedule(kernels, DEV, streams=1)
        overlap = simulate_stream_schedule(kernels, DEV, streams=32)
        assert overlap.seconds <= serial.seconds

    def test_imbalanced_kernels_benefit(self):
        # One kernel with a monster task, many light kernels: serial
        # execution pays the monster's idle time in full.
        monster = [[TaskCost(5e8, 2e8, 0.0)]]
        light = [[_task() for _ in range(3500)] for _ in range(16)]
        kernels = monster + light
        serial = simulate_stream_schedule(kernels, DEV, streams=1)
        overlap = simulate_stream_schedule(kernels, DEV, streams=32)
        assert serial.seconds / overlap.seconds > 1.2

    def test_single_kernel_no_merge_effect(self):
        kernels = [[_task() for _ in range(100)]]
        a = simulate_stream_schedule(kernels, DEV, streams=1)
        b = simulate_stream_schedule(kernels, DEV, streams=32)
        assert a.seconds == pytest.approx(b.seconds)

    def test_launch_overheads_counted(self):
        kernels = [[_task()] for _ in range(10)]
        sched = simulate_stream_schedule(kernels, DEV, streams=32)
        assert sched.seconds >= 10 * DEV.kernel_launch_us * 1e-6


class TestValidation:
    def test_positive_streams(self):
        with pytest.raises(ValueError):
            simulate_stream_schedule([], DEV, streams=0)

    def test_empty_kernel_list(self):
        sched = simulate_stream_schedule([], DEV, streams=4)
        assert sched.seconds == 0.0
        assert sched.total_tasks == 0
