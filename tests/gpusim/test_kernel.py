"""Unit tests for the kernel scheduler and occupancy model."""

import pytest

from repro.gpusim import (
    RTX_3080_AMPERE,
    TaskCost,
    occupancy_factor,
    simulate_kernel,
)

DEV = RTX_3080_AMPERE
CLOCK = DEV.clock_ghz * 1e9


def _task(compute=1e6, critical=None, bytes_dram=0.0, footprint=0.0, serial=0.0):
    return TaskCost(
        compute_cycles=compute,
        critical_cycles=compute if critical is None else critical,
        bytes_dram=bytes_dram,
        footprint_bytes=footprint,
        serial_cycles=serial,
    )


class TestEmptyAndSingle:
    def test_empty_kernel_costs_launch(self):
        t = simulate_kernel([], DEV)
        assert t.seconds == pytest.approx(DEV.kernel_launch_us * 1e-6)
        assert t.tasks == 0

    def test_single_compute_task(self):
        t = simulate_kernel([_task(compute=1e6, critical=1e5)], DEV, include_launch=False)
        # One warp on one SM: bounded by its compute at issue width 4... but
        # never below the critical path.
        expected = max(1e6 / (4 * CLOCK), 1e5 / CLOCK)
        assert t.seconds == pytest.approx(expected, rel=1e-6)

    def test_critical_path_floor(self):
        t = simulate_kernel([_task(compute=1e6, critical=9e5)], DEV, include_launch=False)
        assert t.seconds == pytest.approx(9e5 / CLOCK, rel=1e-6)

    def test_memory_bound_task(self):
        big = 1e9  # 1 GB through one SM's share
        t = simulate_kernel(
            [_task(compute=1.0, critical=1.0, bytes_dram=big)],
            DEV,
            include_launch=False,
        )
        assert t.seconds == pytest.approx(big / DEV.bandwidth_per_sm(), rel=1e-6)

    def test_serial_tail_added_to_critical(self):
        t = simulate_kernel(
            [_task(compute=100.0, critical=100.0, serial=5e6)],
            DEV,
            include_launch=False,
        )
        assert t.seconds >= 5e6 / CLOCK


class TestBalance:
    def test_uniform_tasks_balance(self):
        n = DEV.sms * 8
        tasks = [_task(compute=1e6, critical=1e4) for _ in range(n)]
        t = simulate_kernel(tasks, DEV, include_launch=False)
        balanced = 8 * 1e6 / (4 * CLOCK)
        assert t.seconds == pytest.approx(balanced, rel=0.01)
        assert t.imbalance < 0.01

    def test_monster_task_sets_makespan(self):
        tasks = [_task(compute=1e4, critical=1e3) for _ in range(DEV.sms)]
        tasks.append(_task(compute=1e9, critical=5e8))
        t = simulate_kernel(tasks, DEV, include_launch=False)
        assert t.seconds >= 5e8 / CLOCK
        assert t.imbalance > 0.5

    def test_more_tasks_take_longer(self):
        few = simulate_kernel([_task() for _ in range(100)], DEV, include_launch=False)
        many = simulate_kernel([_task() for _ in range(1000)], DEV, include_launch=False)
        assert many.seconds > few.seconds


class TestOccupancy:
    def test_no_footprint_no_penalty(self):
        tasks = [_task(footprint=0.0) for _ in range(5000)]
        assert occupancy_factor(tasks, DEV, 10.0) == 1.0

    def test_small_kernel_not_penalised(self):
        # Even with big footprints, 4 tasks fit: no penalty.
        tasks = [_task(footprint=1e6) for _ in range(4)]
        assert occupancy_factor(tasks, DEV, 10.0, mem_bytes=32e6) == 1.0

    def test_memory_pressure_penalises(self):
        # 5000 tasks of 1 MB against a 16 MB budget: ~12 resident.
        tasks = [_task(footprint=1e6) for _ in range(5000)]
        occ = occupancy_factor(tasks, DEV, 10.0, mem_bytes=16e6)
        assert occ < 0.1

    def test_penalty_floor(self):
        tasks = [_task(footprint=1e9) for _ in range(5000)]
        occ = occupancy_factor(tasks, DEV, 10.0, mem_bytes=1e6)
        assert occ == pytest.approx(0.02)

    def test_occupancy_slows_kernel(self):
        tasks = [_task(compute=1e6, critical=1e3, footprint=1e6) for _ in range(5000)]
        fast = simulate_kernel(tasks, DEV, include_launch=False)
        slow = simulate_kernel(tasks, DEV, include_launch=False, mem_bytes=16e6)
        assert slow.seconds > 2 * fast.seconds

    def test_empty_tasks(self):
        assert occupancy_factor([], DEV, 10.0) == 1.0


class TestReporting:
    def test_fields_populated(self):
        t = simulate_kernel([_task(bytes_dram=1e6)], DEV)
        assert t.compute_seconds >= 0
        assert t.memory_seconds > 0
        assert t.critical_seconds > 0
        assert t.launch_seconds > 0
        assert 0.0 <= t.imbalance <= 1.0
