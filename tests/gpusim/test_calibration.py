"""Unit tests for the calibration constants."""

import dataclasses

from repro.gpusim import Calibration, DEFAULT_CALIBRATION
from repro.gpusim.calibration import DIVERGED_OPS_PER_CELL, OPS_PER_CELL


class TestPaperBookkeeping:
    def test_nine_ops_per_cell(self):
        # §2.2: five additions + four comparisons.
        assert OPS_PER_CELL == 9

    def test_divergence_expansion(self):
        # §6: the 9 ops expand to 23 under SIMD divergence.
        assert DIVERGED_OPS_PER_CELL == 23

    def test_naive_score_traffic(self):
        # §2.2: 5 reads + 3 writes of 4-byte scores.
        assert DEFAULT_CALIBRATION.naive_score_bytes_per_cell == 32.0

    def test_cyclic_boundary_spill(self):
        # §3.2/§6: three 4-byte scores from the boundary lane.
        assert DEFAULT_CALIBRATION.cyclic_boundary_bytes == 12.0

    def test_packed_traceback_byte(self):
        # §3.1.3: 2+1+1 bits packed into one byte per cell.
        assert DEFAULT_CALIBRATION.traceback_bytes_per_cell == 1.0


class TestStructure:
    def test_frozen(self):
        try:
            DEFAULT_CALIBRATION.step_cycles_cyclic = 1.0
            assert False, "calibration must be immutable"
        except dataclasses.FrozenInstanceError:
            pass

    def test_default_memory_unbounded(self):
        assert DEFAULT_CALIBRATION.modeled_memory_bytes is None

    def test_override(self):
        calib = Calibration(modeled_memory_bytes=1e6)
        assert calib.modeled_memory_bytes == 1e6
        # Everything else keeps defaults.
        assert calib.step_cycles_cyclic == DEFAULT_CALIBRATION.step_cycles_cyclic

    def test_executor_costs_more_than_inspector(self):
        c = DEFAULT_CALIBRATION
        assert c.step_cycles_executor_extra > 0

    def test_critical_fraction_sane(self):
        assert 0.0 < DEFAULT_CALIBRATION.critical_fraction < 1.0
