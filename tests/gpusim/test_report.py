"""Unit tests for the per-SM utilisation report."""

import numpy as np

from repro.gpusim import (
    KernelTiming,
    RTX_3080_AMPERE,
    TaskCost,
    render_utilization,
    simulate_kernel,
    utilization_summary,
)


def _kernel(tasks):
    return simulate_kernel(tasks, RTX_3080_AMPERE, include_launch=False)


class TestUtilizationSummary:
    def test_balanced_kernel(self):
        tasks = [TaskCost(1e6, 1e4, 0.0) for _ in range(68 * 4)]
        summary = utilization_summary(_kernel(tasks))
        assert summary["mean_busy_fraction"] > 0.95
        assert summary["idle_sms"] == 0.0

    def test_monster_kernel_imbalanced(self):
        tasks = [TaskCost(1e4, 1e3, 0.0) for _ in range(10)]
        tasks.append(TaskCost(1e9, 5e8, 0.0))
        summary = utilization_summary(_kernel(tasks))
        assert summary["imbalance"] > 0.5
        assert summary["idle_sms"] > 0.5  # most SMs got nothing

    def test_no_data(self):
        timing = KernelTiming(0, 0, 0, 0, tasks=0)
        assert utilization_summary(timing)["mean_busy_fraction"] == 0.0


class TestRender:
    def test_contains_bars(self):
        tasks = [TaskCost(1e6, 1e4, 0.0) for _ in range(200)]
        text = render_utilization(_kernel(tasks))
        assert "per-SM busy time" in text
        assert "#" in text
        assert "ms" in text

    def test_row_count_capped(self):
        tasks = [TaskCost(1e6, 1e4, 0.0) for _ in range(200)]
        text = render_utilization(_kernel(tasks), max_rows=8)
        assert len(text.splitlines()) <= 9

    def test_no_data(self):
        assert "no per-SM data" in render_utilization(
            KernelTiming(0, 0, 0, 0, tasks=0)
        )
