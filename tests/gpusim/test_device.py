"""Unit tests for GPU device specs."""

import pytest

from repro.gpusim import (
    ALL_DEVICES,
    DeviceSpec,
    QV100_VOLTA,
    RTX_3080_AMPERE,
    TITAN_X_PASCAL,
)


class TestPaperSpecs:
    def test_sm_counts(self):
        # §3.1.3: 28-way Pascal, 68-way Ampere, 80-way Volta.
        assert TITAN_X_PASCAL.sms == 28
        assert RTX_3080_AMPERE.sms == 68
        assert QV100_VOLTA.sms == 80

    def test_core_counts(self):
        assert TITAN_X_PASCAL.total_lanes == 3584
        assert QV100_VOLTA.total_lanes == 5120
        assert RTX_3080_AMPERE.total_lanes == 8704

    def test_ampere_peak_flops(self):
        # §6: nominal peak compute of the RTX 3080 is 29.77 TFLOP/s.
        assert RTX_3080_AMPERE.peak_flops == pytest.approx(29.77e12, rel=0.01)

    def test_ampere_ridge(self):
        # §6: 29.77 TFLOP/s over 760 GB/s -> 39 ops/byte.
        assert RTX_3080_AMPERE.ridge_ops_per_byte == pytest.approx(39.0, rel=0.02)

    def test_memory_sizes(self):
        assert TITAN_X_PASCAL.mem_bytes == 12 * 1024**3
        assert QV100_VOLTA.mem_bytes == 32 * 1024**3
        assert RTX_3080_AMPERE.mem_bytes == 10 * 1024**3

    def test_bandwidths(self):
        assert TITAN_X_PASCAL.mem_bandwidth_gbs == 480.0
        assert QV100_VOLTA.mem_bandwidth_gbs == 900.0
        assert RTX_3080_AMPERE.mem_bandwidth_gbs == 760.0


class TestDerived:
    def test_issue_width_is_schedulers(self):
        for dev in ALL_DEVICES:
            assert dev.warp_issue_width == dev.warp_schedulers == 4

    def test_bandwidth_per_sm(self):
        share = RTX_3080_AMPERE.bandwidth_per_sm()
        assert share == pytest.approx(760e9 / 68)

    def test_peak_ops_half_of_flops(self):
        for dev in ALL_DEVICES:
            assert dev.peak_flops == pytest.approx(2 * dev.peak_ops)


class TestValidation:
    def test_positive_sms(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="x", arch="x", sms=0, lanes_per_sm=32, clock_ghz=1.0,
                mem_bandwidth_gbs=1.0, mem_bytes=1, shared_mem_per_sm=1,
                max_warps_per_sm=1,
            )

    def test_lane_multiple_of_warp(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="x", arch="x", sms=1, lanes_per_sm=33, clock_ghz=1.0,
                mem_bandwidth_gbs=1.0, mem_bytes=1, shared_mem_per_sm=1,
                max_warps_per_sm=1,
            )
