"""Property-based tests of the kernel scheduler's invariants."""

from hypothesis import given, settings, strategies as st

from repro.gpusim import RTX_3080_AMPERE, TaskCost, simulate_kernel

DEV = RTX_3080_AMPERE
CLOCK = DEV.clock_ghz * 1e9

_task = st.builds(
    TaskCost,
    compute_cycles=st.floats(1e3, 1e8),
    critical_cycles=st.floats(1e2, 1e7),
    bytes_dram=st.floats(0, 1e8),
)
_tasks = st.lists(_task, min_size=1, max_size=80)


@settings(max_examples=60, deadline=None)
@given(_tasks)
def test_makespan_at_least_balanced_lower_bound(tasks):
    """No schedule beats perfectly balanced compute and memory."""
    t = simulate_kernel(tasks, DEV, include_launch=False)
    compute_lb = sum(x.compute_cycles for x in tasks) / (
        DEV.sms * DEV.warp_issue_width * CLOCK
    )
    memory_lb = sum(x.bytes_dram for x in tasks) / (DEV.mem_bandwidth_gbs * 1e9)
    assert t.seconds >= compute_lb * (1 - 1e-9)
    assert t.seconds >= memory_lb * (1 - 1e-9)


@settings(max_examples=60, deadline=None)
@given(_tasks)
def test_makespan_at_least_critical_path(tasks):
    t = simulate_kernel(tasks, DEV, include_launch=False)
    worst = max((x.critical_cycles + x.serial_cycles) / CLOCK for x in tasks)
    assert t.seconds >= worst * (1 - 1e-9)


@settings(max_examples=60, deadline=None)
@given(_tasks)
def test_makespan_at_most_serial_execution(tasks):
    """Greedy dispatch can never be slower than one SM doing everything."""
    t = simulate_kernel(tasks, DEV, include_launch=False)
    serial_compute = sum(x.compute_cycles for x in tasks) / (
        DEV.warp_issue_width * CLOCK
    )
    serial_memory = sum(x.bytes_dram for x in tasks) / DEV.bandwidth_per_sm()
    worst_crit = max((x.critical_cycles + x.serial_cycles) / CLOCK for x in tasks)
    assert t.seconds <= serial_compute + serial_memory + worst_crit + 1e-12


@settings(max_examples=40, deadline=None)
@given(_tasks)
def test_adding_a_task_never_speeds_the_kernel(tasks):
    base = simulate_kernel(tasks, DEV, include_launch=False)
    extra = tasks + [TaskCost(1e7, 1e6, 1e6)]
    bigger = simulate_kernel(extra, DEV, include_launch=False)
    assert bigger.seconds >= base.seconds * (1 - 1e-9)


@settings(max_examples=40, deadline=None)
@given(_tasks)
def test_sm_finish_consistent_with_makespan(tasks):
    t = simulate_kernel(tasks, DEV, include_launch=False)
    assert t.sm_finish is not None
    assert t.sm_finish.shape == (DEV.sms,)
    assert abs(float(t.sm_finish.max()) - t.seconds) < 1e-12
