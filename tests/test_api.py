"""Tests of the repro.api v1 facade: local entry points and HTTP client."""

import threading

import numpy as np
import pytest

from repro import api
from repro.core.options import FASTZ_FULL, FastzOptions
from repro.core.pipeline import run_fastz
from repro.genome import SegmentClass, build_pair
from repro.lastz.config import LastzConfig
from repro.scoring import default_scheme
from repro.service import AlignmentService, make_server

CONFIG = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))


def _pair(seed=31, length=10_000):
    return build_pair(
        f"api{seed}",
        target_length=length,
        query_length=length,
        classes=[SegmentClass("s", 5, 80, 250, divergence=0.05)],
        rng=seed,
    )


class TestResolveOptions:
    def test_none_is_full_pipeline(self):
        assert api.resolve_options(None) is FASTZ_FULL

    def test_instance_passthrough(self):
        options = FastzOptions(engine="batched")
        assert api.resolve_options(options) is options

    def test_mapping_validated(self):
        assert api.resolve_options({"engine": "batched"}).engine == "batched"
        with pytest.raises(ValueError, match="unknown"):
            api.resolve_options({"engin": "batched"})


class TestAlign:
    def test_matches_run_fastz(self):
        pair = _pair()
        facade = api.align(pair.target, pair.query, CONFIG)
        direct = run_fastz(pair.target, pair.query, CONFIG, FASTZ_FULL)
        assert facade.alignments == direct.alignments

    def test_mapping_options(self):
        pair = _pair()
        scalar = api.align(pair.target, pair.query, CONFIG)
        batched = api.align(
            pair.target, pair.query, CONFIG, {"engine": "batched"}
        )
        assert batched.alignments == scalar.alignments

    def test_align_window_matches_unbounded(self):
        pair = _pair()
        full = api.align(pair.target, pair.query, CONFIG, keep_extensions=True)
        windowed = api.align_window(
            pair.target.codes,
            pair.query.codes,
            CONFIG,
            anchors=full.anchors,
        )
        assert {a.cigar() for _, _, a in windowed.records} >= {
            a.cigar() for a in full.unique_alignments()
        }

    def test_streaming_matches_barrier(self):
        pair = _pair(seed=53)
        barrier = api.align(pair.target, pair.query, CONFIG)
        partials = []
        streamed = api.align(
            pair.target,
            pair.query,
            CONFIG,
            streaming=True,
            on_partial=partials.append,
            stream_chunk_bp=2048,
        )
        assert streamed.alignments == barrier.alignments
        assert len(partials) >= 1
        assert partials[-1].done_anchors == len(streamed.tasks)

    def test_align_chunked_temp_job_dir(self):
        pair = _pair(seed=37, length=20_000)
        report = api.align_chunked(
            pair.target,
            pair.query,
            CONFIG,
            {"engine": "scalar"},
            log=lambda _msg: None,
        )
        direct = api.align(pair.target, pair.query, CONFIG)
        assert report.complete
        assert {a.cigar() for a in report.alignments} == {
            a.cigar() for a in direct.unique_alignments()
        }


class TestParseRetryAfter:
    """RFC 9110 Retry-After: delta-seconds and HTTP-date, never an error."""

    def test_delta_seconds(self):
        assert api._parse_retry_after("120") == 120.0
        assert api._parse_retry_after("0") == 0.0
        assert api._parse_retry_after(" 2.5 ") == 2.5

    def test_negative_delta_clamped(self):
        assert api._parse_retry_after("-30") == 0.0

    def test_http_date_in_future(self):
        from datetime import datetime, timedelta, timezone
        from email.utils import format_datetime

        when = datetime.now(timezone.utc) + timedelta(seconds=90)
        parsed = api._parse_retry_after(format_datetime(when, usegmt=True))
        assert parsed is not None
        assert 80.0 <= parsed <= 91.0

    def test_http_date_in_past_clamped_to_zero(self):
        assert (
            api._parse_retry_after("Sun, 06 Nov 1994 08:49:37 GMT") == 0.0
        )

    def test_naive_date_treated_as_utc(self):
        from datetime import datetime, timedelta, timezone

        when = datetime.now(timezone.utc) + timedelta(seconds=60)
        # asctime form carries no zone; RFC 9110 says it is GMT.
        parsed = api._parse_retry_after(when.strftime("%a %b %d %H:%M:%S %Y"))
        assert parsed is not None
        assert 50.0 <= parsed <= 61.0

    @pytest.mark.parametrize(
        "value", [None, "", "soon", "Banday, 99 Foo 12345", "1e", "inf days"]
    )
    def test_garbage_yields_none(self, value):
        assert api._parse_retry_after(value) is None


@pytest.fixture(scope="module")
def endpoint():
    service = AlignmentService(max_wait_ms=1.0, config=CONFIG)
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.shutdown(timeout=60)


class TestClient:
    def test_healthz(self, endpoint):
        assert api.Client(endpoint).healthz() == {"status": "ok"}

    def test_align_accepts_str_sequence_and_codes(self, endpoint):
        client = api.Client(endpoint)
        pair = _pair(seed=41)
        by_seq = client.align(pair.target, pair.query, timeout_s=300)
        by_str = client.align(
            pair.target.text(), pair.query.text(), timeout_s=300
        )
        by_codes = client.align(pair.target.codes, pair.query.codes, timeout_s=300)
        assert by_seq == by_str == by_codes
        assert by_seq["count"] >= 1

    def test_align_with_options(self, endpoint):
        client = api.Client(endpoint)
        pair = _pair(seed=43)
        base = client.align(pair.target, pair.query, timeout_s=300)
        mapped = client.align(
            pair.target,
            pair.query,
            options={"engine": "batched"},
            timeout_s=300,
        )
        typed = client.align(
            pair.target,
            pair.query,
            options=FastzOptions(engine="batched"),
            timeout_s=300,
        )
        assert mapped["alignments"] == base["alignments"]
        assert typed["alignments"] == base["alignments"]

    def test_align_stream_matches_align(self, endpoint):
        client = api.Client(endpoint)
        pair = _pair(seed=47)
        barrier = client.align(pair.target, pair.query, timeout_s=300)
        records = list(client.align_stream(pair.target, pair.query))
        assert records, "stream yielded nothing"
        partials = [r for r in records if r["type"] == "partial"]
        summary = records[-1]
        assert summary["type"] == "summary"
        assert len(partials) >= 1
        # The terminal summary is exactly the barrier endpoint's payload.
        assert {k: v for k, v in summary.items() if k != "type"} == barrier
        streamed_rows = [a for p in partials for a in p["alignments"]]
        assert sorted(map(repr, streamed_rows)) == sorted(
            map(repr, barrier["alignments"])
        )

    def test_stats_and_metrics(self, endpoint):
        client = api.Client(endpoint)
        stats = client.stats()
        assert stats["submitted"] >= 1
        assert "repro_service_events_total" in client.metrics()

    def test_error_envelope_raises_api_error(self, endpoint):
        client = api.Client(endpoint)
        with pytest.raises(api.ApiError) as excinfo:
            client.align("ACGT", "NOT DNA!", timeout_s=30)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"

        with pytest.raises(api.ApiError) as excinfo:
            client.align("ACGT", "ACGT", options={"bogus": 1}, timeout_s=30)
        assert excinfo.value.code == "bad_request"
        assert "bogus" in str(excinfo.value)
