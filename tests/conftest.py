"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.genome import build_pair, mutate, random_codes, SegmentClass
from repro.scoring import default_scheme, unit_scheme


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def small_scheme():
    """Tiny hand-checkable scheme."""
    return unit_scheme()


@pytest.fixture()
def exact_scheme():
    """Unit scheme with pruning effectively disabled (exact DP)."""
    return unit_scheme(ydrop=10**6)


@pytest.fixture()
def bench_scheme():
    """The scaled HOXD70 scheme the benchmark suite uses."""
    return default_scheme(gap_extend=60, ydrop=2400)


@pytest.fixture(scope="session")
def session_cache_dir(tmp_path_factory):
    """Isolated profile cache for tests that exercise workloads."""
    return tmp_path_factory.mktemp("repro_cache")


def make_homologous_pair(rng, *, core=120, flank=150, divergence=0.08, indel=0.01):
    """A (target, query) suffix pair sharing a mutated core then random tails."""
    base = random_codes(rng, core)
    q_core = mutate(base, rng, divergence=divergence, indel_rate=indel)
    target = np.concatenate([base, random_codes(rng, flank)])
    query = np.concatenate([q_core, random_codes(rng, flank)])
    return target, query


@pytest.fixture()
def homologous_pair(rng):
    return make_homologous_pair(rng)


@pytest.fixture(scope="session")
def tiny_genome_pair():
    """A small synthetic chromosome pair with known planted homology."""
    return build_pair(
        "tiny",
        target_length=40_000,
        query_length=40_000,
        classes=[
            SegmentClass("eager", 60, 19, 21, divergence=0.01),
            SegmentClass("bin1", 12, 30, 55, divergence=0.07, indel_rate=0.003),
            SegmentClass("bin2", 2, 90, 200, divergence=0.08, indel_rate=0.002),
        ],
        rng=77,
    )
