"""Token-bucket quota tests: refill arithmetic, tenancy, spec parsing."""

import pytest

from repro.fleet import QuotaExceeded, TenantQuotas, TokenBucket


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3)
        now = 100.0
        for _ in range(3):
            assert bucket.try_acquire(now) == 0.0
        wait = bucket.try_acquire(now)
        assert wait == pytest.approx(1.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        assert bucket.try_acquire(100.0) == 0.0
        assert bucket.try_acquire(100.0) > 0.0
        # Half a second at 2 tokens/s refills the one token.
        assert bucket.try_acquire(100.5) == 0.0

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        # A long idle period must not bank more than `burst` tokens.
        for _ in range(2):
            assert bucket.try_acquire(1000.0) == 0.0
        assert bucket.try_acquire(1000.0) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestTenantQuotas:
    def test_disabled_admits_everything(self):
        quotas = TenantQuotas()
        assert not quotas.enabled
        for _ in range(1000):
            quotas.check("anyone")

    def test_default_policy_applies_per_tenant(self):
        quotas = TenantQuotas(default=(1000.0, 1))
        quotas.check("alice")
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.check("alice")
        assert excinfo.value.tenant == "alice"
        assert excinfo.value.retry_after_s > 0
        # Buckets are per tenant: bob still has his burst.
        quotas.check("bob")

    def test_named_policy_overrides_default(self):
        quotas = TenantQuotas(default=(1000.0, 1), tenants={"vip": (1000.0, 3)})
        for _ in range(3):
            quotas.check("vip")
        with pytest.raises(QuotaExceeded):
            quotas.check("vip")

    def test_no_default_means_unnamed_unlimited(self):
        quotas = TenantQuotas(tenants={"metered": (1000.0, 1)})
        assert quotas.enabled
        for _ in range(10):
            quotas.check(None)  # anonymous, no policy -> admitted
        quotas.check("metered")
        with pytest.raises(QuotaExceeded):
            quotas.check("metered")

    def test_anonymous_shares_one_bucket(self):
        quotas = TenantQuotas(default=(1000.0, 1))
        quotas.check(None)
        with pytest.raises(QuotaExceeded) as excinfo:
            quotas.check("")
        assert excinfo.value.tenant == "anonymous"


class TestFromSpec:
    def test_full_spec(self):
        quotas = TenantQuotas.from_spec("default=10/20, alice=100/200,bob=5")
        assert quotas.default == (10.0, 20.0)
        assert quotas.policies["alice"] == (100.0, 200.0)
        # Burst defaults to the rate when omitted.
        assert quotas.policies["bob"] == (5.0, 5.0)

    def test_empty_entries_skipped(self):
        quotas = TenantQuotas.from_spec("alice=1/2,,")
        assert quotas.policies == {"alice": (1.0, 2.0)}
        assert quotas.default is None

    @pytest.mark.parametrize(
        "spec", ["alice", "=1/2", "alice=fast/2", "alice=0/2", "alice=1/-3"]
    )
    def test_bad_specs(self, spec):
        with pytest.raises(ValueError):
            TenantQuotas.from_spec(spec)
