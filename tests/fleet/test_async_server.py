"""Async front-door tests: the /v1 contract, byte for byte, plus tenancy.

The fixture boots the real :class:`FleetHTTPServer` (asyncio, one event
loop) over a fleet-backed service, in a daemon thread; requests go
through raw :mod:`http.client` sockets or :class:`repro.api.Client`, so
keep-alive framing, chunked streams and error envelopes are exercised
exactly as a network client sees them.
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.api import ApiError, Client
from repro.fleet import (
    FleetApp,
    FleetHTTPServer,
    InProcessBackend,
    SimGpuBackend,
    TenantQuotas,
)
from repro.genome import SegmentClass, build_pair
from repro.lastz.config import LastzConfig
from repro.scoring import default_scheme
from repro.service import AlignmentService, make_server

CONFIG = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))


class _Door:
    """One FleetHTTPServer running on its own loop thread."""

    def __init__(self, service, *, quotas=None, grace_s=30.0, stream_chunk=None):
        self.service = service
        self.draining = threading.Event()
        self.app = FleetApp(service, draining=self.draining, quotas=quotas)
        self.server = None
        ready = threading.Event()

        def run():
            async def main():
                self.server = FleetHTTPServer(
                    self.app, "127.0.0.1", 0,
                    draining=self.draining, grace_s=grace_s,
                )
                await self.server.start()
                ready.set()
                await self.server.serve_forever()

            asyncio.run(main())

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        if not ready.wait(10):
            raise RuntimeError("fleet server did not start")
        self.host, self.port = self.server.address

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    def stop(self):
        self.server.initiate_shutdown()
        self.thread.join(timeout=30)


@pytest.fixture(scope="module")
def pair():
    p = build_pair(
        "door0",
        target_length=6_000,
        query_length=6_000,
        classes=[SegmentClass("s", 3, 80, 250, divergence=0.05)],
        rng=7,
    )
    return p.target.text(), p.query.text()


@pytest.fixture(scope="module")
def door():
    service = AlignmentService(
        max_wait_ms=1.0,
        config=CONFIG,
        fleet=[InProcessBackend("cpu0"), SimGpuBackend("gpu0")],
    )
    d = _Door(service)
    yield d
    d.stop()
    service.shutdown(timeout=60)


def _request(door, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection(door.host, door.port, timeout=300)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload, headers=headers or {})
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, dict(resp.getheaders()), raw
    finally:
        conn.close()


class TestRoutes:
    def test_healthz(self, door):
        status, _, raw = _request(door, "GET", "/v1/healthz")
        assert status == 200
        assert json.loads(raw) == {"status": "ok"}

    def test_head_healthz(self, door):
        status, headers, raw = _request(door, "HEAD", "/v1/healthz")
        assert status == 200
        assert raw == b""

    def test_stats_has_fleet_section(self, door):
        status, _, raw = _request(door, "GET", "/v1/stats")
        payload = json.loads(raw)
        assert status == 200
        names = {b["name"] for b in payload["fleet"]["backends"]}
        assert names == {"cpu0", "gpu0"}

    def test_metrics_exposes_fleet_families(self, door):
        status, headers, raw = _request(door, "GET", "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = raw.decode()
        assert "repro_fleet_redispatched_total" in text
        assert "repro_service_queue_depth" in text

    def test_unknown_path_enveloped_404(self, door):
        status, _, raw = _request(door, "GET", "/v1/nope")
        assert status == 404
        assert json.loads(raw)["error"]["code"] == "not_found"

    def test_method_not_allowed(self, door):
        status, _, raw = _request(door, "DELETE", "/v1/align")
        assert status == 405
        assert json.loads(raw)["error"]["code"] == "bad_request"

    def test_legacy_path_redirects(self, door):
        status, headers, _ = _request(door, "GET", "/healthz")
        assert status == 307
        assert headers["Location"] == "/v1/healthz"
        assert headers["Deprecation"] == "true"

    def test_references_400_without_store(self, door):
        status, _, raw = _request(door, "GET", "/v1/references")
        assert status == 400
        assert json.loads(raw)["error"]["code"] == "bad_request"


class TestAlignContract:
    def test_byte_identical_to_threaded_server(self, door, pair):
        target, query = pair
        body = {"target": target, "query": query}
        status, _, fleet_raw = _request(
            door, "POST", "/v1/align", body,
            headers={"Content-Type": "application/json"},
        )
        assert status == 200

        # Same request against the threaded front end over an identical
        # (fleet-free) service: the response bodies must match byte for
        # byte — the /v1 contract is shared code, not a lookalike.
        service = AlignmentService(max_wait_ms=1.0, config=CONFIG)
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=300)
            conn.request(
                "POST", "/v1/align", body=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            threaded_raw = resp.read()
            conn.close()
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(timeout=60)
        assert fleet_raw == threaded_raw

    def test_stream_summary_equals_barrier_payload(self, door, pair):
        target, query = pair
        body = {"target": target, "query": query}
        _, _, barrier_raw = _request(
            door, "POST", "/v1/align", body,
            headers={"Content-Type": "application/json"},
        )
        status, headers, raw = _request(
            door, "POST", "/v1/align?stream=1", body,
            headers={"Content-Type": "application/json"},
        )
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        records = [json.loads(line) for line in raw.splitlines() if line.strip()]
        assert records, "stream produced no records"
        assert all(r["type"] == "partial" for r in records[:-1])
        summary = records[-1]
        assert summary.pop("type") == "summary"
        assert summary == json.loads(barrier_raw)

    def test_invalid_json_400(self, door):
        conn = http.client.HTTPConnection(door.host, door.port, timeout=30)
        try:
            conn.request(
                "POST", "/v1/align", body=b"not json",
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 400
            assert json.loads(resp.read())["error"]["code"] == "bad_request"
        finally:
            conn.close()

    def test_empty_body_400(self, door):
        status, _, raw = _request(
            door, "POST", "/v1/align", headers={"Content-Type": "application/json"}
        )
        assert status == 400
        assert json.loads(raw)["error"]["code"] == "bad_request"

    def test_oversize_body_413_closes_connection(self, pair):
        service = AlignmentService(max_wait_ms=1.0, config=CONFIG)
        d = _Door(service)
        d.app.max_align_body = 64
        try:
            status, headers, raw = _request(
                d, "POST", "/v1/align", {"target": "A" * 200, "query": "ACGT"},
                headers={"Content-Type": "application/json"},
            )
            assert status == 413
            assert json.loads(raw)["error"]["code"] == "payload_too_large"
            # Refused before the body was read: the server must advertise
            # the close so clients reconnect instead of reusing the socket.
            assert headers.get("Connection") == "close"
        finally:
            d.stop()
            service.shutdown(timeout=60)

    def test_keep_alive_reuses_one_socket(self, door, pair):
        target, query = pair
        conn = http.client.HTTPConnection(door.host, door.port, timeout=300)
        try:
            sock_ids = []
            for _ in range(3):
                conn.request(
                    "POST", "/v1/align",
                    body=json.dumps({"target": target, "query": query}).encode(),
                    headers={"Content-Type": "application/json"},
                )
                resp = conn.getresponse()
                assert resp.status == 200
                resp.read()
                assert not resp.will_close
                sock_ids.append(id(conn.sock))
            assert len(set(sock_ids)) == 1, "connection was not reused"
        finally:
            conn.close()

    def test_api_client_end_to_end(self, door, pair):
        target, query = pair
        with Client(door.url) as client:
            barrier = client.align(target, query)
            records = list(client.align_stream(target, query))
            assert records[-1]["type"] == "summary"
            summary = dict(records[-1])
            summary.pop("type")
            assert summary == barrier
            # The persistent connection survives the (closed) stream.
            assert client.align(target, query) == barrier


class TestAdmission:
    def test_unknown_priority_400(self, door, pair):
        target, query = pair
        status, _, raw = _request(
            door, "POST", "/v1/align", {"target": target, "query": query},
            headers={"Content-Type": "application/json", "X-Priority": "urgent"},
        )
        assert status == 400
        assert "X-Priority" in json.loads(raw)["error"]["message"]

    def test_priority_classes_accepted(self, door, pair):
        target, query = pair
        for name in ("interactive", "batch", "Batch"):
            status, _, raw = _request(
                door, "POST", "/v1/align", {"target": target, "query": query},
                headers={"Content-Type": "application/json", "X-Priority": name},
            )
            assert status == 200, raw

    def test_bad_deadline_400(self, door, pair):
        target, query = pair
        for bad in ("soon", "-5"):
            status, _, raw = _request(
                door, "POST", "/v1/align", {"target": target, "query": query},
                headers={"Content-Type": "application/json", "X-Deadline-Ms": bad},
            )
            assert status == 400
            assert "X-Deadline-Ms" in json.loads(raw)["error"]["message"]

    def test_hopeless_deadline_refused_504(self, door, pair):
        target, query = pair
        fleet = door.service.fleet
        original = fleet.estimated_wait_s
        # A saturated fleet: the model predicts minutes of backlog.
        fleet.estimated_wait_s = lambda weight=0.0: 120.0
        try:
            status, _, raw = _request(
                door, "POST", "/v1/align", {"target": target, "query": query},
                headers={"Content-Type": "application/json", "X-Deadline-Ms": "50"},
            )
        finally:
            fleet.estimated_wait_s = original
        assert status == 504
        assert json.loads(raw)["error"]["code"] == "deadline_exceeded"

    def test_feasible_deadline_admitted(self, door, pair):
        target, query = pair
        status, _, raw = _request(
            door, "POST", "/v1/align", {"target": target, "query": query},
            headers={"Content-Type": "application/json", "X-Deadline-Ms": "600000"},
        )
        assert status == 200, raw


class TestQuotas:
    @pytest.fixture()
    def metered(self):
        service = AlignmentService(max_wait_ms=1.0, config=CONFIG)
        d = _Door(service, quotas=TenantQuotas(default=(0.5, 2)))
        yield d
        d.stop()
        service.shutdown(timeout=60)

    def test_burst_then_429_with_retry_after(self, metered, pair):
        target, query = pair
        body = {"target": target, "query": query}
        headers = {"Content-Type": "application/json", "X-API-Key": "alice"}
        for _ in range(2):
            status, _, _raw = _request(metered, "POST", "/v1/align", body, headers)
            assert status == 200
        status, resp_headers, raw = _request(
            metered, "POST", "/v1/align", body, headers
        )
        assert status == 429
        envelope = json.loads(raw)["error"]
        assert envelope["code"] == "quota_exceeded"
        assert "alice" in envelope["message"]
        assert int(resp_headers["Retry-After"]) >= 1

    def test_tenants_are_isolated(self, metered, pair):
        target, query = pair
        body = {"target": target, "query": query}
        for key in ("carol", "dave"):
            status, _, _raw = _request(
                metered, "POST", "/v1/align", body,
                {"Content-Type": "application/json", "X-API-Key": key},
            )
            assert status == 200

    def test_api_client_surfaces_retry_after(self, metered, pair):
        target, query = pair
        with Client(metered.url, api_key="eve") as client:
            client.align(target, query)
            client.align(target, query)
            with pytest.raises(ApiError) as excinfo:
                client.align(target, query)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s >= 1


class TestDrain:
    def test_shed_during_stream_keeps_ndjson_wellformed(self, pair):
        """Satellite: a drain mid-stream must not corrupt the NDJSON.

        Every line the client ever sees — before and after the shed —
        must parse as a standalone JSON record, and the last one must be
        the terminal error record; the chunked framing must end cleanly
        (EOF after the 0-chunk, no truncation mid-line).
        """
        p = build_pair(
            "door-drain",
            target_length=30_000,
            query_length=30_000,
            classes=[SegmentClass("s", 12, 80, 250, divergence=0.05)],
            rng=17,
        )
        service = AlignmentService(
            max_wait_ms=1.0, config=CONFIG, stream_chunk_bp=1024
        )
        d = _Door(service)
        probes = {}
        try:
            conn = http.client.HTTPConnection(d.host, d.port, timeout=300)
            conn.request(
                "POST", "/v1/align?stream=1",
                body=json.dumps(
                    {"target": p.target.text(), "query": p.query.text()}
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            assert resp.status == 200
            records = []
            for line in resp:
                if not line.strip():
                    continue
                assert line.endswith(b"\n"), "record truncated mid-line"
                records.append(json.loads(line))
                if len(records) == 1:
                    # First partial arrived: begin the graceful drain and
                    # probe the mid-drain server state over a second socket.
                    d.server.initiate_shutdown()
                    probes["healthz"] = json.loads(
                        _request(d, "GET", "/v1/healthz")[2]
                    )
                    status, _, raw = _request(
                        d, "POST", "/v1/align",
                        {"target": "ACGT", "query": "ACGT"},
                        {"Content-Type": "application/json"},
                    )
                    probes["align"] = (status, json.loads(raw))
            # Chunked stream ended cleanly: EOF, not an exception.
            assert resp.read() == b""
            conn.close()
        finally:
            d.thread.join(timeout=30)
            service.shutdown(timeout=60)

        assert records[0]["type"] == "partial"
        assert records[-1]["type"] == "error"
        assert records[-1]["error"]["code"] == "shutting_down"
        assert probes["healthz"] == {"status": "draining"}
        status, envelope = probes["align"]
        assert status == 503
        assert envelope["error"]["code"] == "shutting_down"
        assert not d.thread.is_alive()

    def test_sigterm_style_drain_completes_inflight(self, pair):
        target, query = pair
        service = AlignmentService(max_wait_ms=1.0, config=CONFIG)
        d = _Door(service)
        try:
            status, _, raw = _request(
                d, "POST", "/v1/align", {"target": target, "query": query},
                headers={"Content-Type": "application/json"},
            )
            assert status == 200
        finally:
            d.stop()
            service.shutdown(timeout=60)
        assert not d.thread.is_alive()
