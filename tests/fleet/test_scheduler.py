"""Fleet scheduler tests: identity, placement, priority, hedging, failure.

The load-bearing property is the same one the worker pool pins: whatever
backend (or sequence of backends, after hedges and re-dispatches) runs a
fused extension batch, the records — and therefore every alignment a
fleet-backed service returns — must match the in-process engine byte for
byte.
"""

import threading
import time

import pytest

from repro.core.options import FastzOptions
from repro.core.pipeline import extend_suffixes_batched, prepare_fastz
from repro.fleet import (
    BackendUnavailable,
    FleetError,
    FleetScheduler,
    InProcessBackend,
    PoolBackend,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    SimGpuBackend,
)
from repro.fleet.backends import _SLOW_ENV
from repro.genome import SegmentClass, build_pair
from repro.lastz.config import LastzConfig
from repro.scoring import default_scheme
from repro.service import AlignmentService

CONFIG = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))


def _pairs(n=3, length=8_000, seed=41):
    out = []
    for i in range(n):
        pair = build_pair(
            f"fleet{i}",
            target_length=length,
            query_length=length,
            classes=[SegmentClass("s", 4, 80, 250, divergence=0.05)],
            rng=seed + i,
        )
        out.append((pair.target, pair.query))
    return out


@pytest.fixture(scope="module")
def prep():
    target, query = _pairs(n=1, length=12_000)[0]
    return prepare_fastz(
        target.codes, query.codes, CONFIG, FastzOptions(engine="batched")
    )


@pytest.fixture(scope="module")
def expected(prep):
    return extend_suffixes_batched(
        prep.suffixes(), prep.scheme, prep.options, prep.tile
    )


def _submit(fleet, prep, **kwargs):
    return fleet.submit(
        prep.suffixes(), prep.scheme, prep.options, prep.tile,
        key="k", **kwargs,
    )


class TestIdentity:
    @pytest.mark.parametrize(
        "make_backend",
        [
            lambda: InProcessBackend("cpu0"),
            lambda: SimGpuBackend("gpu0"),
        ],
        ids=["inprocess", "gpusim"],
    )
    def test_single_backend_matches_in_process(self, prep, expected, make_backend):
        with FleetScheduler([make_backend()], hedge_after_s=None) as fleet:
            got = _submit(fleet, prep).result(timeout=300)
        assert got == expected

    def test_mixed_fleet_matches_in_process(self, prep, expected):
        backends = [
            InProcessBackend("cpu0"),
            SimGpuBackend("gpu0"),
            SimGpuBackend("gpu1"),
        ]
        with FleetScheduler(backends, hedge_after_s=None) as fleet:
            futures = [_submit(fleet, prep) for _ in range(6)]
            results = [f.result(timeout=300) for f in futures]
        assert all(r == expected for r in results)

    def test_pool_backend_matches_in_process(self, prep, expected):
        with FleetScheduler(
            [PoolBackend("pool0", workers=2)], hedge_after_s=None
        ) as fleet:
            got = _submit(fleet, prep).result(timeout=300)
        assert got == expected


class TestPlacement:
    def test_prefers_idle_lane(self, prep):
        backends = [InProcessBackend("cpu0"), InProcessBackend("cpu1")]
        with FleetScheduler(backends, hedge_after_s=None) as fleet:
            lane0, lane1 = fleet._lanes
            # Pretend cpu0 has a deep queue: the model must route around it.
            with lane0.lock:
                lane0.queued_weight = 1e9
            unit_weight = 100.0
            chosen = fleet._place(
                type("U", (), {"weight": unit_weight})()
            )
            assert chosen is lane1
            with lane0.lock:
                lane0.queued_weight = 0.0

    def test_faster_device_wins_ties(self):
        from repro.gpusim import QV100_VOLTA, TITAN_X_PASCAL

        backends = [
            SimGpuBackend("slowgpu", device=TITAN_X_PASCAL),
            SimGpuBackend("fastgpu", device=QV100_VOLTA),
        ]
        with FleetScheduler(backends, hedge_after_s=None) as fleet:
            chosen = fleet._place(type("U", (), {"weight": 1e6})())
            assert chosen.name == "fastgpu"

    def test_estimated_wait_inf_when_all_retired(self, prep):
        with FleetScheduler([InProcessBackend("cpu0")], hedge_after_s=None) as fleet:
            assert fleet.estimated_wait_s(100.0) < float("inf")
            fleet.kill_backend("cpu0")
            assert fleet.estimated_wait_s(100.0) == float("inf")


class TestPriority:
    def test_interactive_overtakes_batch(self, prep, expected, monkeypatch):
        # One single-slot backend, held busy long enough for both classes
        # to queue behind the running unit: the interactive unit must be
        # dequeued before the batch unit that was submitted first.
        monkeypatch.setenv(_SLOW_ENV, "cpu0:0.6")
        order = []
        with FleetScheduler([InProcessBackend("cpu0")], hedge_after_s=None) as fleet:
            blocker = _submit(fleet, prep)
            time.sleep(0.1)  # let the blocker start running
            batch = _submit(fleet, prep, priority=PRIORITY_BATCH)
            interactive = _submit(fleet, prep, priority=PRIORITY_INTERACTIVE)
            batch.add_done_callback(lambda f: order.append("batch"))
            interactive.add_done_callback(lambda f: order.append("interactive"))
            results = [
                f.result(timeout=300) for f in (blocker, batch, interactive)
            ]
        assert all(r == expected for r in results)
        assert order == ["interactive", "batch"]


class TestHedging:
    def test_straggler_is_hedged_to_idle_lane(self, prep, expected, monkeypatch):
        monkeypatch.setenv(_SLOW_ENV, "slow0:30.0")
        backends = [InProcessBackend("slow0"), InProcessBackend("fast0")]
        # Declaration order breaks the placement tie, so the unit lands on
        # slow0; after hedge_after_s it must be cloned onto idle fast0 and
        # resolve from there (the loser's cancel event ends its sleep).
        with FleetScheduler(
            backends, hedge_after_s=0.2, poll_s=0.02
        ) as fleet:
            start = time.monotonic()
            got = _submit(fleet, prep).result(timeout=300)
            elapsed = time.monotonic() - start
            stats = fleet.stats()
        assert got == expected
        assert elapsed < 25.0, "result should come from the hedge, not the sleep"
        assert stats["hedges"] >= 1
        assert stats["redispatched"] >= 1

    def test_no_hedge_when_disabled(self, prep, expected):
        backends = [InProcessBackend("cpu0"), InProcessBackend("cpu1")]
        with FleetScheduler(backends, hedge_after_s=None) as fleet:
            assert fleet._monitor is None
            got = _submit(fleet, prep).result(timeout=300)
            assert fleet.stats()["hedges"] == 0
        assert got == expected


class TestFailure:
    def test_killed_backend_mid_batch_redispatches(self, prep, expected, monkeypatch):
        monkeypatch.setenv(_SLOW_ENV, "victim:0.5")
        backends = [InProcessBackend("victim"), InProcessBackend("survivor")]
        with FleetScheduler(backends, hedge_after_s=None) as fleet:
            future = _submit(fleet, prep)
            time.sleep(0.1)  # unit is inside victim's injected delay
            fleet.kill_backend("victim")
            got = future.result(timeout=300)
            stats = fleet.stats()
        assert got == expected
        assert stats["redispatched"] >= 1
        by_name = {b["name"]: b for b in stats["backends"]}
        assert by_name["victim"]["open"] is False
        assert by_name["survivor"]["completed"] >= 1

    def test_queued_units_survive_backend_death(self, prep, expected, monkeypatch):
        # Several units stacked behind a single-slot backend: killing it
        # must re-place the queued ones, not strand them.
        monkeypatch.setenv(_SLOW_ENV, "victim:0.5")
        backends = [InProcessBackend("victim"), InProcessBackend("survivor")]
        with FleetScheduler(backends, hedge_after_s=None) as fleet:
            with fleet._lanes[1].lock:
                fleet._lanes[1].queued_weight = 1e9  # force placement on victim
            futures = [_submit(fleet, prep) for _ in range(3)]
            with fleet._lanes[1].lock:
                fleet._lanes[1].queued_weight = 0.0
            time.sleep(0.1)
            fleet.kill_backend("victim")
            results = [f.result(timeout=300) for f in futures]
        assert all(r == expected for r in results)

    def test_all_backends_dead_fails_with_fleet_error(self, prep, monkeypatch):
        monkeypatch.setenv(_SLOW_ENV, "only:0.5")
        with FleetScheduler([InProcessBackend("only")], hedge_after_s=None) as fleet:
            future = _submit(fleet, prep)
            time.sleep(0.1)
            fleet.kill_backend("only")
            with pytest.raises(FleetError):
                future.result(timeout=60)
            with pytest.raises(FleetError):
                _submit(fleet, prep)

    def test_poisoned_unit_fails_alone(self, prep, expected):
        with FleetScheduler([InProcessBackend("cpu0")], hedge_after_s=None) as fleet:
            bad = fleet.submit(
                [object(), object()], prep.scheme, prep.options, prep.tile,
                key="bad", weight=1.0,
            )
            with pytest.raises(Exception) as excinfo:
                bad.result(timeout=60)
            assert not isinstance(excinfo.value, FleetError)
            # The backend survives a poisoned batch.
            got = _submit(fleet, prep).result(timeout=300)
        assert got == expected

    def test_closed_backend_raises_unavailable(self, prep):
        backend = InProcessBackend("cpu0")
        backend.close()
        with pytest.raises(BackendUnavailable):
            backend.run(prep.suffixes(), prep.scheme, prep.options, prep.tile, key="k")


class TestValidationAndLifecycle:
    def test_needs_backends_and_unique_names(self):
        with pytest.raises(ValueError):
            FleetScheduler([])
        with pytest.raises(ValueError):
            FleetScheduler(
                [InProcessBackend("x"), InProcessBackend("x")],
                hedge_after_s=None,
            )

    def test_submit_after_close_raises(self, prep):
        fleet = FleetScheduler([InProcessBackend("cpu0")], hedge_after_s=None)
        fleet.close()
        fleet.close()  # idempotent
        with pytest.raises(FleetError):
            _submit(fleet, prep)

    def test_stats_shape(self, prep):
        with FleetScheduler(
            [InProcessBackend("cpu0"), SimGpuBackend("gpu0")], hedge_after_s=None
        ) as fleet:
            _submit(fleet, prep).result(timeout=300)
            stats = fleet.stats()
        assert set(stats) == {
            "submitted", "hedges", "redispatched", "hedge_wasted", "backends",
        }
        assert stats["submitted"] == 1
        names = {b["name"]: b["kind"] for b in stats["backends"]}
        assert names == {"cpu0": "inprocess", "gpu0": "gpusim"}
        gpu = next(b for b in stats["backends"] if b["name"] == "gpu0")
        assert "device" in gpu and "sim_seconds" in gpu

    def test_metrics_families_rendered(self, prep):
        with FleetScheduler([InProcessBackend("cpu0")], hedge_after_s=None) as fleet:
            _submit(fleet, prep).result(timeout=300)
            text = fleet.registry.render()
        for family in (
            "repro_fleet_completed_total",
            "repro_fleet_redispatched_total",
            "repro_fleet_hedges_total",
            "repro_fleet_queue_depth",
        ):
            assert family in text


class TestServiceEquivalence:
    """The acceptance gate: fleet-routed service results are bit-identical."""

    def _run(self, pairs, **kwargs):
        outs = []
        with AlignmentService(max_wait_ms=1.0, config=CONFIG, **kwargs) as service:
            for target, query in pairs:
                result = service.align(target, query, timeout_s=300)
                outs.append(
                    [
                        (a.score, a.target_start, a.target_end,
                         a.query_start, a.query_end, a.cigar())
                        for a in result.unique_alignments()
                    ]
                )
            stats = service.stats()
        return outs, stats

    def test_bit_identical_across_backend_mixes(self):
        pairs = _pairs(n=3)
        baseline, base_stats = self._run(pairs)
        assert base_stats.fleet is None
        mixes = {
            "inprocess": lambda: [InProcessBackend("cpu0")],
            "gpus": lambda: [SimGpuBackend("gpu0"), SimGpuBackend("gpu1")],
            "mixed": lambda: [
                InProcessBackend("cpu0"),
                SimGpuBackend("gpu0"),
                SimGpuBackend("gpu1"),
            ],
            "pool+gpu": lambda: [
                PoolBackend("pool0", workers=2),
                SimGpuBackend("gpu0"),
            ],
        }
        for label, make in mixes.items():
            outs, stats = self._run(pairs, fleet=make())
            assert outs == baseline, f"fleet mix {label!r} diverged"
            assert stats.failed == 0
            assert stats.fleet is not None
            assert stats.fleet["submitted"] >= 1

    def test_backend_killed_mid_service_degrades_gracefully(self, monkeypatch):
        monkeypatch.setenv(_SLOW_ENV, "victim:0.5")
        pairs = _pairs(n=2)
        baseline, _ = self._run(pairs)
        fleet = FleetScheduler(
            [InProcessBackend("victim"), InProcessBackend("survivor")],
            hedge_after_s=None,
        )
        outs = []
        with AlignmentService(max_wait_ms=1.0, config=CONFIG, fleet=fleet) as service:
            killer = threading.Timer(0.15, fleet.kill_backend, args=("victim",))
            killer.start()
            try:
                for target, query in pairs:
                    result = service.align(target, query, timeout_s=300)
                    outs.append(
                        [
                            (a.score, a.target_start, a.target_end,
                             a.query_start, a.query_end, a.cigar())
                            for a in result.unique_alignments()
                        ]
                    )
            finally:
                killer.cancel()
            stats = service.stats()
        assert outs == baseline
        assert stats.failed == 0
        # Either the kill landed mid-unit (redispatch) or between units
        # (survivor just takes over); both count as graceful.
        by_name = {b["name"]: b for b in stats.fleet["backends"]}
        assert by_name["victim"]["open"] is False
        assert by_name["survivor"]["open"] is True
