"""Unit tests for the ungapped-filtering pipeline (Figure 2 mechanism)."""

import pytest

from repro.genome import SegmentClass, build_pair
from repro.lastz import run_gapped_lastz, run_ungapped_lastz
from repro.workloads.profiles import bench_config


@pytest.fixture(scope="module")
def gappy_pair():
    """Pair with clean homology AND gap-interrupted homology."""
    return build_pair(
        "gappy",
        target_length=50_000,
        query_length=50_000,
        classes=[
            SegmentClass("clean", 10, 120, 260, divergence=0.05),
            SegmentClass(
                "gappy",
                10,
                200,
                500,
                divergence=0.09,
                indel_rate=0.03,
                mean_indel_len=8.0,
            ),
        ],
        rng=404,
    )


@pytest.fixture(scope="module")
def runs(gappy_pair):
    config = bench_config()
    gapped = run_gapped_lastz(gappy_pair.target, gappy_pair.query, config)
    ungapped = run_ungapped_lastz(
        gappy_pair.target, gappy_pair.query, config, anchors=gapped.anchors
    )
    return gapped, ungapped


class TestUngappedFiltering:
    def test_filter_drops_anchors(self, runs):
        _, ungapped = runs
        assert 0 < ungapped.survivors < ungapped.candidates
        assert 0.0 < ungapped.filter_rate < 1.0

    def test_hsp_scores_shape(self, runs):
        _, ungapped = runs
        assert ungapped.hsp_scores.shape[0] == ungapped.candidates

    def test_gapped_finds_at_least_as_many(self, runs):
        gapped, ungapped = runs
        assert len(gapped.alignments) >= len(ungapped.alignments)

    def test_gapped_finds_strictly_more_on_gappy_homology(self, runs):
        gapped, ungapped = runs
        assert len(gapped.alignments) > len(ungapped.alignments)

    def test_ungapped_alignments_subset_of_gapped_regions(self, runs):
        gapped, ungapped = runs
        for ua in ungapped.alignments:
            assert any(ua.overlaps(ga) for ga in gapped.alignments)

    def test_gapped_top_score_at_least_ungapped(self, runs):
        gapped, ungapped = runs
        g_best = max((a.score for a in gapped.alignments), default=0)
        u_best = max((a.score for a in ungapped.alignments), default=0)
        assert g_best >= u_best
