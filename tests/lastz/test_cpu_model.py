"""Unit tests for the CPU cost model."""

import numpy as np
import pytest

from repro.lastz import CpuSpec, RYZEN_3950X, multicore_seconds, sequential_seconds


@pytest.fixture()
def cpu():
    return RYZEN_3950X


class TestSequential:
    def test_linear_in_cells(self, cpu):
        a = sequential_seconds(np.array([1000] * 10), cpu)
        b = sequential_seconds(np.array([2000] * 10), cpu)
        assert b > a
        # Dominated by cells: roughly doubles.
        assert 1.5 < b / a < 2.1

    def test_empty_profile(self, cpu):
        assert sequential_seconds(np.zeros(0), cpu) == 0.0

    def test_anchor_overhead_counts(self, cpu):
        zero_cells = sequential_seconds(np.zeros(100), cpu)
        assert zero_cells > 0.0

    def test_paper_machine(self, cpu):
        assert cpu.cores == 16
        assert cpu.freq_ghz == 3.5


class TestMulticore:
    def test_faster_than_sequential(self, cpu):
        cells = np.full(3200, 10_000)
        seq = sequential_seconds(cells, cpu)
        par = multicore_seconds(cells, cpu, processes=32)
        assert par < seq

    def test_speedup_near_paper_on_uniform_load(self, cpu):
        cells = np.full(32_000, 10_000)
        seq = sequential_seconds(cells, cpu)
        par = multicore_seconds(cells, cpu, processes=32)
        speedup = seq / par
        # The paper reports ~20x for 32 processes on this machine.
        assert 15.0 < speedup <= cpu.bandwidth_speedup_cap + 0.5

    def test_bandwidth_cap_respected(self, cpu):
        cells = np.full(100_000, 1_000)
        seq = sequential_seconds(cells, cpu)
        par = multicore_seconds(cells, cpu, processes=256)
        assert seq / par <= cpu.bandwidth_speedup_cap + 1e-9

    def test_skew_hurts(self, cpu):
        uniform = np.full(3200, 10_000)
        skewed = uniform.copy()
        skewed[0] = 10_000 * 3200  # one monster task
        su = sequential_seconds(uniform, cpu) / multicore_seconds(uniform, cpu)
        ss = sequential_seconds(skewed, cpu) / multicore_seconds(skewed, cpu)
        assert ss < su

    def test_single_process_matches_sequential(self, cpu):
        cells = np.full(100, 5_000)
        assert multicore_seconds(cells, cpu, processes=1) == pytest.approx(
            sequential_seconds(cells, cpu), rel=1e-9
        )

    def test_validation(self, cpu):
        with pytest.raises(ValueError):
            multicore_seconds(np.zeros(1), cpu, processes=0)

    def test_empty(self, cpu):
        assert multicore_seconds(np.zeros(0), cpu) == 0.0


class TestCustomSpec:
    def test_cell_seconds(self):
        spec = CpuSpec(
            name="x",
            cores=4,
            freq_ghz=2.0,
            cycles_per_cell=10.0,
            anchor_overhead_cycles=0.0,
            smt_factor=1.0,
            bandwidth_speedup_cap=4.0,
        )
        assert spec.cell_seconds(2e9) == pytest.approx(10.0)
