"""Unit tests for the sequential gapped LASTZ pipeline."""

import numpy as np
import pytest

from repro.align import Alignment
from repro.lastz import LastzConfig, run_gapped_lastz, select_anchors
from repro.lastz.pipeline import AlignmentIndex
from repro.scoring import default_scheme
from repro.workloads.profiles import bench_config


@pytest.fixture(scope="module")
def tiny_result(tiny_genome_pair):
    return run_gapped_lastz(
        tiny_genome_pair.target, tiny_genome_pair.query, bench_config()
    )


class TestAlignmentIndex:
    def test_contains_inside(self):
        idx = AlignmentIndex()
        idx.add(Alignment(100, 200, 150, 250, score=10))
        assert idx.contains(150, 200)
        assert len(idx) == 1

    def test_outside(self):
        idx = AlignmentIndex()
        idx.add(Alignment(100, 200, 150, 250, score=10))
        assert not idx.contains(300, 350)
        assert not idx.contains(150, 500)  # right target, wrong query

    def test_boundaries_half_open(self):
        idx = AlignmentIndex()
        idx.add(Alignment(100, 200, 100, 200, score=10))
        assert idx.contains(100, 100)
        assert not idx.contains(200, 200)

    def test_wide_diagonal_range(self):
        idx = AlignmentIndex(bucket=64)
        # An alignment whose diagonal spans many buckets.
        idx.add(Alignment(0, 1000, 0, 2000, score=10))
        assert idx.contains(500, 1500)

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            AlignmentIndex(bucket=0)


class TestSelectAnchors:
    def test_finds_planted_segments(self, tiny_genome_pair):
        anchors = select_anchors(
            tiny_genome_pair.target, tiny_genome_pair.query, bench_config()
        )
        # Most of the 74 planted segments should yield an anchor.
        assert 40 <= len(anchors) <= 120


class TestPipeline:
    def test_produces_alignments(self, tiny_result):
        assert len(tiny_result.alignments) > 0

    def test_all_reported_clear_threshold(self, tiny_result):
        threshold = bench_config().scheme.gapped_threshold
        assert all(a.score >= threshold for a in tiny_result.alignments)

    def test_tasks_cover_all_anchors(self, tiny_result):
        assert len(tiny_result.tasks) == len(tiny_result.anchors)

    def test_anchors_in_scan_order(self, tiny_result):
        q = tiny_result.anchors.query_pos
        assert np.all(np.diff(q) >= 0)

    def test_cells_counted(self, tiny_result):
        assert tiny_result.total_cells > 0
        active = [t for t in tiny_result.tasks if not t.skipped]
        assert all(t.cells > 0 for t in active)

    def test_skipped_tasks_have_no_cells(self, tiny_result):
        assert all(t.cells == 0 for t in tiny_result.tasks if t.skipped)

    def test_alignments_land_on_planted_segments(
        self, tiny_genome_pair, tiny_result
    ):
        # Every strong alignment should overlap a planted bin2 segment.
        bin2 = tiny_genome_pair.segments_of("bin2")
        for seg in bin2:
            hit = any(
                a.target_start < seg.target_end
                and seg.target_start < a.target_end
                and a.query_start < seg.query_end
                and seg.query_start < a.query_end
                for a in tiny_result.alignments
            )
            assert hit, f"planted segment {seg} not recovered"

    def test_work_reduction_skips(self, tiny_genome_pair):
        config = bench_config()
        # Narrow the collapse window so long segments yield several anchors,
        # making the sequential skip observable.
        from dataclasses import replace

        config = replace(config, collapse_window=40, diag_band=20)
        with_wr = run_gapped_lastz(
            tiny_genome_pair.target, tiny_genome_pair.query, config
        )
        without_wr = run_gapped_lastz(
            tiny_genome_pair.target,
            tiny_genome_pair.query,
            config,
            work_reduction=False,
        )
        assert with_wr.skipped_count > 0
        assert without_wr.skipped_count == 0
        assert with_wr.total_cells < without_wr.total_cells

    def test_traceback_mode_produces_edit_scripts(self, tiny_genome_pair):
        from dataclasses import replace

        config = replace(bench_config(), traceback=True)
        res = run_gapped_lastz(tiny_genome_pair.target, tiny_genome_pair.query, config)
        assert all(a.ops for a in res.alignments)
        t = tiny_genome_pair.target.codes
        q = tiny_genome_pair.query.codes
        for a in res.alignments[:5]:
            assert a.rescore(t, q, config.scheme) == a.score

    def test_scores_and_lengths_accessors(self, tiny_result):
        assert tiny_result.scores().shape[0] == len(tiny_result.alignments)
        assert tiny_result.lengths().min() > 0


class TestConfigValidation:
    def test_bad_seed_length(self):
        with pytest.raises(ValueError):
            LastzConfig(seed_length=2)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            LastzConfig(collapse_window=0)

    def test_bad_band(self):
        with pytest.raises(ValueError):
            LastzConfig(diag_band=-2)

    def test_bad_word_count(self):
        with pytest.raises(ValueError):
            LastzConfig(max_word_count=0)

    def test_default_scheme_attached(self):
        assert LastzConfig().scheme.gap_open == default_scheme().gap_open
