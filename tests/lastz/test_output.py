"""Unit tests for alignment output formats (general TSV, MAF)."""

import io
import random

import pytest

from repro.align import Alignment
from repro.genome import Sequence
from repro.lastz import (
    format_general_row,
    general_header,
    output_order,
    write_general,
    write_maf,
)


@pytest.fixture()
def pair():
    target = Sequence.from_text("tgt", "ACGTACGTAC")
    query = Sequence.from_text("qry", "ACGTTACGTAC")
    return target, query


@pytest.fixture()
def alignment():
    # tgt[0:10] vs qry[0:11]: 4M 1I 6M (query has an extra T at offset 4).
    return Alignment(0, 10, 0, 11, score=500, ops=(("M", 4), ("I", 1), ("M", 6)))


class TestGeneral:
    def test_header(self):
        assert general_header().startswith("#score\tname1")

    def test_row_fields(self, pair, alignment):
        target, query = pair
        row = format_general_row(alignment, target, query).split("\t")
        assert row[0] == "500"
        assert row[1] == "tgt" and row[4] == "qry"
        assert row[2:4] == ["0", "10"]
        assert row[5:7] == ["0", "11"]
        assert row[7] == "100.0%"
        assert row[8] == "4M1I6M"

    def test_row_without_ops(self, pair):
        target, query = pair
        a = Alignment(0, 10, 0, 10, score=7)
        row = format_general_row(a, target, query).split("\t")
        assert row[7] == "-" and row[8] == "-"

    def test_write_sorted_by_score(self, pair, alignment):
        target, query = pair
        low = Alignment(0, 2, 0, 2, score=10, ops=(("M", 2),))
        buf = io.StringIO()
        write_general(buf, [low, alignment], target, query)
        lines = buf.getvalue().splitlines()
        assert lines[0].startswith("#")
        assert lines[1].split("\t")[0] == "500"
        assert lines[2].split("\t")[0] == "10"


class TestMaf:
    def test_block_structure(self, pair, alignment):
        target, query = pair
        buf = io.StringIO()
        write_maf(buf, [alignment], target, query)
        text = buf.getvalue()
        assert text.startswith("##maf version=1")
        assert "a score=500" in text
        s_lines = [l for l in text.splitlines() if l.startswith("s ")]
        assert len(s_lines) == 2

    def test_gapped_rows_align(self, pair, alignment):
        target, query = pair
        buf = io.StringIO()
        write_maf(buf, [alignment], target, query)
        s_lines = [l for l in buf.getvalue().splitlines() if l.startswith("s ")]
        t_row = s_lines[0].split()[-1]
        q_row = s_lines[1].split()[-1]
        assert len(t_row) == len(q_row) == alignment.length
        # The insertion appears as a dash in the target row.
        assert "-" in t_row and "-" not in q_row
        assert t_row == "ACGT-ACGTAC"
        assert q_row == "ACGTTACGTAC"

    def test_sizes_and_src_lengths(self, pair, alignment):
        target, query = pair
        buf = io.StringIO()
        write_maf(buf, [alignment], target, query)
        s_lines = [l for l in buf.getvalue().splitlines() if l.startswith("s ")]
        t_fields = s_lines[0].split()
        assert t_fields[2] == "0"  # start
        assert t_fields[3] == "10"  # aligned size
        assert t_fields[4] == "+"
        assert t_fields[5] == "10"  # source length

    def test_requires_ops(self, pair):
        target, query = pair
        buf = io.StringIO()
        with pytest.raises(ValueError):
            write_maf(buf, [Alignment(0, 1, 0, 1, score=1)], target, query)

    def test_file_output(self, tmp_path, pair, alignment):
        target, query = pair
        path = tmp_path / "out.maf"
        write_maf(path, [alignment], target, query)
        assert path.read_text().startswith("##maf")


class TestRoundTrip:
    """Output rows must reconstruct exactly what the alignments say."""

    def test_general_row_reports_alignment_verbatim(self, pair, alignment):
        target, query = pair
        buf = io.StringIO()
        write_general(buf, [alignment], target, query)
        header, row = buf.getvalue().splitlines()
        assert header == general_header()
        fields = row.split("\t")
        assert [int(f) for f in (fields[0], *fields[2:4], *fields[5:7])] == [
            alignment.score,
            alignment.target_start,
            alignment.target_end,
            alignment.query_start,
            alignment.query_end,
        ]
        assert fields[8] == alignment.cigar()

    def test_maf_rows_reconstruct_sequences(self, pair, alignment):
        # Dropping the dashes from each gapped row must give back exactly
        # the aligned slice of the corresponding sequence.
        target, query = pair
        buf = io.StringIO()
        write_maf(buf, [alignment], target, query)
        s_lines = [l for l in buf.getvalue().splitlines() if l.startswith("s ")]
        t_row = s_lines[0].split()[-1].replace("-", "")
        q_row = s_lines[1].split()[-1].replace("-", "")
        assert t_row == target.text()[alignment.target_start : alignment.target_end]
        assert q_row == query.text()[alignment.query_start : alignment.query_end]

    def test_write_general_file_and_textio_identical(self, tmp_path, pair, alignment):
        target, query = pair
        buf = io.StringIO()
        write_general(buf, [alignment], target, query)
        path = tmp_path / "out.tsv"
        write_general(path, [alignment], target, query)
        assert path.read_text() == buf.getvalue()
        # A path argument opens and closes its own handle; TextIO is left
        # open for the caller.
        assert not buf.closed

    def test_write_maf_file_and_textio_identical(self, tmp_path, pair, alignment):
        target, query = pair
        buf = io.StringIO()
        write_maf(buf, [alignment], target, query)
        path = tmp_path / "out.maf"
        write_maf(path, [alignment], target, query)
        assert path.read_text() == buf.getvalue()
        assert not buf.closed


class TestDeterministicOrder:
    """Writers must not leak producer ordering into the files."""

    @pytest.fixture()
    def long_pair(self):
        target = Sequence.from_text("tgt", "ACGTACGTACGTACGTACGTACGTACGT")
        query = Sequence.from_text("qry", "ACGTACGTACGTACGTACGTACGTACGT")
        return target, query

    def alignments(self):
        # Deliberate score ties at distinct coordinates: input order used
        # to decide their file order, which broke workers=N byte-identity.
        return [
            Alignment(20, 24, 0, 4, score=100, ops=(("M", 4),)),
            Alignment(0, 4, 20, 24, score=100, ops=(("M", 4),)),
            Alignment(0, 4, 0, 4, score=100, ops=(("M", 4),)),
            Alignment(5, 9, 5, 9, score=300, ops=(("M", 4),)),
        ]

    def test_output_order_breaks_score_ties_positionally(self):
        keys = sorted(self.alignments(), key=output_order)
        assert keys[0].score == 300
        assert [(a.target_start, a.query_start) for a in keys[1:]] == [
            (0, 0),
            (0, 20),
            (20, 0),
        ]

    def test_general_bytes_invariant_under_shuffle(self, long_pair):
        target, query = long_pair
        rng = random.Random(3)
        baseline = None
        for _ in range(5):
            items = self.alignments()
            rng.shuffle(items)
            buf = io.StringIO()
            write_general(buf, items, target, query)
            if baseline is None:
                baseline = buf.getvalue()
            assert buf.getvalue() == baseline

    def test_maf_bytes_invariant_under_shuffle(self, long_pair):
        target, query = long_pair
        rng = random.Random(3)
        baseline = None
        for _ in range(5):
            items = self.alignments()
            rng.shuffle(items)
            buf = io.StringIO()
            write_maf(buf, items, target, query)
            if baseline is None:
                baseline = buf.getvalue()
            assert buf.getvalue() == baseline
