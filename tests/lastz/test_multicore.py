"""Unit tests for the multicore LASTZ variant."""

import numpy as np
import pytest

from repro.lastz import run_gapped_lastz, run_multicore_lastz
from repro.workloads.profiles import bench_config


@pytest.fixture(scope="module")
def runs(tiny_genome_pair):
    config = bench_config()
    seq = run_gapped_lastz(tiny_genome_pair.target, tiny_genome_pair.query, config)
    multi = run_multicore_lastz(
        tiny_genome_pair.target,
        tiny_genome_pair.query,
        config,
        anchors=seq.anchors,
        processes=8,
    )
    return seq, multi


class TestFunctional:
    def test_worker_count(self, runs):
        _, multi = runs
        assert multi.processes == 8
        assert len(multi.worker_results) == 8

    def test_all_anchors_processed(self, runs):
        seq, multi = runs
        total = sum(len(r.tasks) for r in multi.worker_results)
        assert total == len(seq.tasks)

    def test_finds_same_alignment_regions(self, runs):
        """Partitioning must not lose alignments (it may duplicate them:
        cross-partition work reduction is lost)."""
        seq, multi = runs
        multi_alignments = multi.alignments
        for a in seq.alignments:
            assert any(a.overlaps(m) for m in multi_alignments)

    def test_loses_cross_partition_reduction(self, runs):
        seq, multi = runs
        # Without cross-partition skipping, total work can only grow.
        assert multi.total_cells >= seq.total_cells

    def test_worker_loads(self, runs):
        _, multi = runs
        loads = multi.worker_loads()
        assert loads.shape == (8,)
        assert loads.sum() == multi.total_cells


class TestModel:
    def test_modelled_speedup_positive(self, runs):
        seq, multi = runs
        speedup = multi.modelled_speedup(seq.cells_per_task)
        assert speedup > 1.0

    def test_modelled_seconds_scale_with_processes(self, tiny_genome_pair):
        config = bench_config()
        seq = run_gapped_lastz(
            tiny_genome_pair.target, tiny_genome_pair.query, config
        )
        few = run_multicore_lastz(
            tiny_genome_pair.target,
            tiny_genome_pair.query,
            config,
            anchors=seq.anchors,
            processes=2,
        )
        many = run_multicore_lastz(
            tiny_genome_pair.target,
            tiny_genome_pair.query,
            config,
            anchors=seq.anchors,
            processes=16,
        )
        assert many.modelled_seconds() < few.modelled_seconds()

    def test_validation(self, tiny_genome_pair):
        with pytest.raises(ValueError):
            run_multicore_lastz(
                tiny_genome_pair.target,
                tiny_genome_pair.query,
                bench_config(),
                processes=0,
            )

    def test_cells_per_task_concatenation(self, runs):
        _, multi = runs
        cells = multi.cells_per_task
        assert cells.dtype == np.int64
        assert cells.sum() == multi.total_cells


class TestOsProcesses:
    def test_real_processes_match_inprocess(self, tiny_genome_pair, runs):
        """ProcessPoolExecutor execution must produce identical results."""
        seq, inproc = runs
        config = bench_config()
        osproc = run_multicore_lastz(
            tiny_genome_pair.target,
            tiny_genome_pair.query,
            config,
            anchors=seq.anchors,
            processes=4,
            use_os_processes=True,
        )
        key = lambda a: (a.target_start, a.target_end, a.query_start, a.score)
        expected = run_multicore_lastz(
            tiny_genome_pair.target,
            tiny_genome_pair.query,
            config,
            anchors=seq.anchors,
            processes=4,
        )
        assert sorted(map(key, osproc.alignments)) == sorted(
            map(key, expected.alignments)
        )
        assert osproc.total_cells == expected.total_cells
