"""Unit tests for the workload characterisation (§1/§2 premises)."""

import pytest

from repro.analysis import characterize, format_characterization
from repro.core import tasks_to_arrays

from ..core.test_perfmodel import _make_tasks


@pytest.fixture(scope="module")
def char():
    return characterize(_make_tasks(n_eager=400, n_short=100, n_long=4))


class TestPremises:
    def test_short_alignments_dominate(self, char):
        # The synthetic suite mirrors the paper's front-loaded CDF.
        assert char.short_alignment_fraction > 0.7

    def test_search_dwarfs_alignment(self, char):
        assert char.search_dwarfs_alignment
        assert char.search_to_alignment_cells > 3.0

    def test_dp_dominates_runtime(self, char):
        # Paper: >99% of sequential time in the DP.
        assert char.dp_runtime_fraction > 0.95

    def test_percentiles_ordered(self, char):
        p50, p90, p99, p100 = char.extent_percentiles
        assert p50 <= p90 <= p99 <= p100

    def test_search_depth_uniformly_large(self, char):
        # Even the 10th-percentile search is much deeper than the median
        # alignment (the paper's "90% of searches explore ~5700bp" shape).
        p50_extent = char.extent_percentiles[0]
        assert char.search_depth_p10 > 2 * p50_extent


class TestValidation:
    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            characterize(tasks_to_arrays([]))


class TestFormatting:
    def test_render(self, char):
        text = format_characterization(char)
        assert "97%" in text  # paper reference
        assert "5700" in text
        assert ">99%" in text
