"""Unit tests for the §3.2 memory-traffic analysis."""

import pytest

from repro.analysis import format_traffic_report, traffic_report
from repro.gpusim import Calibration

from ..core.test_perfmodel import _make_tasks


@pytest.fixture(scope="module")
def report():
    return traffic_report(_make_tasks())


class TestReductions:
    def test_score_reduction_large(self, report):
        # Paper: effectively more than 96% (31/32 lanes); our diagonals are
        # often narrower than a warp, so the reduction is even higher.
        assert report.score_traffic_reduction > 0.9

    def test_executor_reduction_band(self, report):
        # Paper: 92% — the remainder is the traceback byte per cell.
        assert 0.85 < report.executor_bandwidth_reduction < 0.99

    def test_traceback_dominates_remainder(self, report):
        assert report.traceback_share_after > 0.5

    def test_overall_reduction(self, report):
        # Paper: "a vast majority (97%)".
        assert report.overall_access_reduction > 0.9

    def test_bytes_positive(self, report):
        # Synthetic tasks have narrow diagonals, so boundary spills can be
        # zero; the ordering is what matters.
        assert report.naive_score_bytes > report.cyclic_score_bytes >= 0
        assert report.traceback_bytes > 0


class TestCalibrationCoupling:
    def test_custom_calibration_scales_bytes(self):
        arrays = _make_tasks(n_eager=10, n_short=5, n_long=0)
        base = traffic_report(arrays)
        double = traffic_report(
            arrays, Calibration(naive_score_bytes_per_cell=64.0)
        )
        assert double.naive_score_bytes == pytest.approx(2 * base.naive_score_bytes)


class TestFormatting:
    def test_mentions_paper_numbers(self, report):
        text = format_traffic_report(report)
        assert "92%" in text
        assert "96%" in text
        assert "97%" in text
        assert "%" in text.splitlines()[3]
