"""Unit tests for the §6 roofline analysis — pinned to the paper's numbers."""

import pytest

from repro.analysis import (
    DIVERGENCE_DERATE,
    classify,
    derated_ridge,
    executor_intensity,
    inspector_intensity,
    naive_executor_intensity,
    naive_inspector_intensity,
    nominal_ridge,
    roofline_report,
)
from repro.gpusim import RTX_3080_AMPERE


class TestPaperNumbers:
    def test_divergence_derate(self):
        assert DIVERGENCE_DERATE == pytest.approx(2.56, abs=0.01)

    def test_inspector_24_ops_per_byte(self):
        assert inspector_intensity() == pytest.approx(24.0)

    def test_executor_6_5_ops_per_byte(self):
        assert executor_intensity() == pytest.approx(6.5, abs=0.1)

    def test_nominal_ridge_39(self):
        assert nominal_ridge(RTX_3080_AMPERE) == pytest.approx(39.0, rel=0.02)

    def test_derated_ridge_15_2(self):
        assert derated_ridge(RTX_3080_AMPERE) == pytest.approx(15.2, rel=0.02)

    def test_naive_intensities(self):
        assert naive_inspector_intensity() == pytest.approx(0.75)
        assert naive_executor_intensity() == pytest.approx(0.69, abs=0.01)


class TestClassification:
    def test_inspector_compute_bound(self):
        assert classify(inspector_intensity(), RTX_3080_AMPERE) == "compute"

    def test_executor_memory_bound(self):
        assert classify(executor_intensity(), RTX_3080_AMPERE) == "memory"

    def test_naive_deeply_memory_bound(self):
        assert classify(naive_inspector_intensity(), RTX_3080_AMPERE) == "memory"


class TestReport:
    def test_four_points(self):
        report = roofline_report(RTX_3080_AMPERE)
        assert [p.phase for p in report] == [
            "inspector",
            "executor",
            "inspector-naive",
            "executor-naive",
        ]

    def test_bounds(self):
        report = {p.phase: p for p in roofline_report(RTX_3080_AMPERE)}
        assert report["inspector"].bound == "compute"
        assert report["executor"].bound == "memory"
        assert report["inspector"].headroom > 1.0
        assert report["executor-naive"].headroom < 0.1
