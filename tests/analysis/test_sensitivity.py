"""Unit tests for the sensitivity (Figure 2) analysis."""

import numpy as np

from repro.analysis import SensitivityPoint, SensitivityReport, scatter_arrays


def _points(pairs):
    return [SensitivityPoint(length=l, score=s) for l, s in pairs]


class TestReport:
    def test_high_score_counts(self):
        report = SensitivityReport(
            gapped=_points([(100, 500), (200, 1500), (300, 2000)]),
            ungapped=_points([(100, 500), (150, 1200)]),
            high_score_threshold=1000,
        )
        assert report.gapped_high == 2
        assert report.ungapped_high == 1
        assert report.high_score_ratio == 2.0

    def test_ratio_with_zero_ungapped(self):
        report = SensitivityReport(
            gapped=_points([(10, 2000)]),
            ungapped=[],
            high_score_threshold=1000,
        )
        assert report.high_score_ratio == float("inf")

    def test_ratio_both_zero(self):
        report = SensitivityReport(gapped=[], ungapped=[], high_score_threshold=1000)
        assert report.high_score_ratio == 1.0

    def test_totals_and_max_lengths(self):
        report = SensitivityReport(
            gapped=_points([(100, 1), (900, 2)]),
            ungapped=_points([(50, 1)]),
            high_score_threshold=10,
        )
        assert report.total_counts() == (2, 1)
        assert report.max_lengths() == (900, 50)

    def test_empty_max_lengths(self):
        report = SensitivityReport(gapped=[], ungapped=[], high_score_threshold=1)
        assert report.max_lengths() == (0, 0)


class TestScatterArrays:
    def test_arrays(self):
        lengths, scores = scatter_arrays(_points([(1, 10), (2, 20)]))
        assert np.array_equal(lengths, [1, 2])
        assert np.array_equal(scores, [10, 20])

    def test_empty(self):
        lengths, scores = scatter_arrays([])
        assert lengths.shape == (0,) and scores.shape == (0,)
