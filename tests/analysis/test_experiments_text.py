"""Unit tests for the experiment text renderers (no profile builds)."""

from repro.analysis import figure7_text, figure8_text, figure9_text, figure11_text, table1_text
from repro.analysis.experiments import SpeedupRow


def _row(name, bin4=0, fz=100.0):
    row = SpeedupRow(benchmark=name, cpu_seconds=1.0, bin4_count=bin4)
    row.multicore = 18.0
    for dev in ("Titan X", "QV100", "RTX 3080"):
        row.gpu_baseline[dev] = 0.7
        row.fastz[dev] = fz
    return row


class TestTable1Text:
    def test_contains_all_species(self):
        text = table1_text()
        for species in ("C. elegans", "C. briggsae", "D. melanogaster",
                        "D. pseudoobscura", "A. albimanus", "A. atroparvus",
                        "A. gambiae"):
            assert species in text

    def test_contains_paper_sizes(self):
        assert "15,072,434" in table1_text()


class TestFigure7Text:
    def test_renders_rows_and_mean(self):
        text = figure7_text([_row("B1", fz=50.0), _row("B2", fz=150.0)])
        assert "B1" in text and "B2" in text
        assert "MEAN" in text
        assert "100.0x" in text  # mean of 50 and 150

    def test_includes_multicore(self):
        text = figure7_text([_row("B1")])
        assert "18.0x" in text


class TestFigure11Text:
    def test_ratio_line(self):
        text = figure11_text([_row("X1", fz=130.0)], same_genus_mean=100.0)
        assert "1.30" in text
        assert "137/111" in text

    def test_without_reference(self):
        text = figure11_text([_row("X1", fz=130.0)])
        assert "X1" in text


class TestFigure8Text:
    def test_percentages(self):
        rows = [("B1", {"inspector": 0.6, "executor": 0.1, "other": 0.3})]
        text = figure8_text(rows)
        assert "60.0%" in text and "10.0%" in text and "30.0%" in text


class TestFigure9Text:
    def test_includes_paper_references(self):
        table = {
            "RTX 3080": {
                "insp-exec+binning": 3.0,
                "+cyclic": 20.0,
                "+eager": 40.0,
                "+trim (FastZ)": 110.0,
                "FastZ-single-stream": 60.0,
            }
        }
        text = figure9_text(table)
        assert "paper ~111.0x" in text
        assert "110.0x" in text
