"""Unit tests for the Table-2 distribution analysis."""

from repro.analysis import DistributionRow, format_distribution_table


class TestRow:
    def test_fractions(self):
        row = DistributionRow("B", (80, 15, 3, 1, 1))
        assert row.total == 100
        assert row.eager_fraction == 0.8
        assert row.bin4_count == 1
        assert sum(row.fractions()) == 1.0

    def test_empty(self):
        row = DistributionRow("B", (0, 0, 0, 0, 0))
        assert row.eager_fraction == 0.0


class TestFormatting:
    def test_sorted_by_bin4(self):
        rows = [
            DistributionRow("light", (90, 9, 1, 0, 0)),
            DistributionRow("heavy", (80, 15, 3, 1, 5)),
        ]
        text = format_distribution_table(rows)
        assert text.index("heavy") < text.index("light")

    def test_contains_counts(self):
        rows = [DistributionRow("X", (777, 200, 20, 2, 1))]
        text = format_distribution_table(rows)
        assert "777" in text and "77.7%" in text
