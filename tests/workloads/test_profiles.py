"""Unit tests for workload profile building and caching."""

import pytest

from repro.workloads import build_profile, get_benchmark
from repro.workloads.profiles import BENCH_OPTIONS, bench_calibration, bench_config


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, session_cache_dir):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(session_cache_dir))


SPEC = get_benchmark("D1_2R,2")  # lightest benchmark (no bins 3/4)
SCALE = 0.05


class TestBuildProfile:
    def test_profile_contents(self):
        p = build_profile(SPEC, scale=SCALE)
        assert p.name == SPEC.name
        assert p.n_anchors > 20
        assert p.cpu_cells.shape[0] == p.n_anchors
        assert p.transfer_bytes > 0
        assert len(p.arrays) == p.n_anchors

    def test_disk_cache_roundtrip(self, session_cache_dir):
        p1 = build_profile(SPEC, scale=SCALE)
        # Drop the in-memory cache, force a disk read.
        from repro.workloads import profiles

        profiles._MEMORY_CACHE.clear()
        p2 = build_profile(SPEC, scale=SCALE)
        assert p2.n_anchors == p1.n_anchors
        assert (p2.cpu_cells == p1.cpu_cells).all()
        assert any(session_cache_dir.glob("profile-*.pkl"))

    def test_memory_cache_identity(self):
        p1 = build_profile(SPEC, scale=SCALE)
        p2 = build_profile(SPEC, scale=SCALE)
        assert p1 is p2

    def test_no_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        p = build_profile(SPEC, scale=SCALE, use_cache=False)
        assert p.n_anchors > 0


class TestCorruptCacheRecovery:
    """Corrupt pickles must be discarded and rebuilt, never crash callers."""

    def _cache_path(self, session_cache_dir):
        from repro.workloads import profiles

        key = profiles._cache_key(SPEC, SCALE)
        return session_cache_dir / f"profile-{SPEC.name.replace('/', '_')}-{key}.pkl"

    @pytest.mark.parametrize(
        "payload",
        [
            pytest.param(b"\x04not a pickle at all", id="garbage-bytes"),
            pytest.param(b"", id="truncated-empty"),
            pytest.param(
                b"\x80\x05\x95\x10\x00\x00\x00\x00\x00\x00\x00", id="truncated-header"
            ),
        ],
    )
    def test_corrupt_pickle_recovers(self, session_cache_dir, payload):
        from repro.workloads import profiles

        good = build_profile(SPEC, scale=SCALE)
        path = self._cache_path(session_cache_dir)
        assert path.exists()
        path.write_bytes(payload)
        profiles._MEMORY_CACHE.clear()
        with pytest.warns(UserWarning, match="corrupt profile cache"):
            rebuilt = build_profile(SPEC, scale=SCALE)
        assert rebuilt.n_anchors == good.n_anchors
        # The recompute rewrote a loadable cache entry.
        profiles._MEMORY_CACHE.clear()
        reloaded = build_profile(SPEC, scale=SCALE)
        assert reloaded.n_anchors == good.n_anchors

    def test_stale_schema_pickle_recovers(self, session_cache_dir):
        """An AttributeError during unpickling (renamed class/field) is
        treated exactly like corruption."""
        from repro.workloads import profiles

        build_profile(SPEC, scale=SCALE)
        path = self._cache_path(session_cache_dir)
        # A pickle whose GLOBAL opcode references a class that no longer
        # exists — what a schema rename leaves behind.
        stale = b"crepro.workloads.profiles\nNoSuchProfileClass\n."
        path.write_bytes(stale)
        profiles._MEMORY_CACHE.clear()
        with pytest.warns(UserWarning, match="corrupt profile cache"):
            rebuilt = build_profile(SPEC, scale=SCALE)
        assert rebuilt.n_anchors > 0
        assert path.read_bytes() != stale

    def test_cache_format_in_key(self, monkeypatch):
        """Bumping the format version changes every cache key."""
        from repro.workloads import profiles

        before = profiles._cache_key(SPEC, SCALE)
        monkeypatch.setattr(profiles, "_CACHE_FORMAT", profiles._CACHE_FORMAT + 1)
        assert profiles._cache_key(SPEC, SCALE) != before


class TestBenchDefaults:
    def test_bench_config_scaling(self):
        config = bench_config()
        assert config.scheme.ydrop == 2400
        assert config.scheme.gap_extend == 60
        assert config.diag_band > 0
        assert config.traceback is False

    def test_bench_options(self):
        assert BENCH_OPTIONS.bin_edges == (64, 256, 1024, 4096)
        assert BENCH_OPTIONS.eager_traceback

    def test_bench_calibration(self):
        calib = bench_calibration()
        assert calib.modeled_memory_bytes is not None


class TestProfileShape:
    def test_distribution_is_table2_like(self):
        p = build_profile(SPEC, scale=SCALE)
        counts = p.fastz.bin_counts()
        # Eager dominates; D1 has no bin-3/4 tail at this scale.
        assert counts[0] > counts[1] > counts[2]
        assert p.fastz.eager_fraction > 0.5
