"""Unit tests for workload profile building and caching."""

import pytest

from repro.workloads import build_profile, get_benchmark
from repro.workloads.profiles import BENCH_OPTIONS, bench_calibration, bench_config


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, session_cache_dir):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(session_cache_dir))


SPEC = get_benchmark("D1_2R,2")  # lightest benchmark (no bins 3/4)
SCALE = 0.05


class TestBuildProfile:
    def test_profile_contents(self):
        p = build_profile(SPEC, scale=SCALE)
        assert p.name == SPEC.name
        assert p.n_anchors > 20
        assert p.cpu_cells.shape[0] == p.n_anchors
        assert p.transfer_bytes > 0
        assert len(p.arrays) == p.n_anchors

    def test_disk_cache_roundtrip(self, session_cache_dir):
        p1 = build_profile(SPEC, scale=SCALE)
        # Drop the in-memory cache, force a disk read.
        from repro.workloads import profiles

        profiles._MEMORY_CACHE.clear()
        p2 = build_profile(SPEC, scale=SCALE)
        assert p2.n_anchors == p1.n_anchors
        assert (p2.cpu_cells == p1.cpu_cells).all()
        assert any(session_cache_dir.glob("profile-*.pkl"))

    def test_memory_cache_identity(self):
        p1 = build_profile(SPEC, scale=SCALE)
        p2 = build_profile(SPEC, scale=SCALE)
        assert p1 is p2

    def test_no_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        p = build_profile(SPEC, scale=SCALE, use_cache=False)
        assert p.n_anchors > 0


class TestCorruptCacheRecovery:
    """Corrupt pickles must be discarded and rebuilt, never crash callers."""

    def _cache_path(self, session_cache_dir):
        from repro.workloads import profiles

        key = profiles._cache_key(SPEC, SCALE)
        return session_cache_dir / f"profile-{SPEC.name.replace('/', '_')}-{key}.pkl"

    @pytest.mark.parametrize(
        "payload",
        [
            pytest.param(b"\x04not a pickle at all", id="garbage-bytes"),
            pytest.param(b"", id="truncated-empty"),
            pytest.param(
                b"\x80\x05\x95\x10\x00\x00\x00\x00\x00\x00\x00", id="truncated-header"
            ),
        ],
    )
    def test_corrupt_pickle_recovers(self, session_cache_dir, payload):
        from repro.workloads import profiles

        good = build_profile(SPEC, scale=SCALE)
        path = self._cache_path(session_cache_dir)
        assert path.exists()
        path.write_bytes(payload)
        profiles._MEMORY_CACHE.clear()
        with pytest.warns(UserWarning, match="corrupt profile cache"):
            rebuilt = build_profile(SPEC, scale=SCALE)
        assert rebuilt.n_anchors == good.n_anchors
        # The recompute rewrote a loadable cache entry.
        profiles._MEMORY_CACHE.clear()
        reloaded = build_profile(SPEC, scale=SCALE)
        assert reloaded.n_anchors == good.n_anchors

    def test_stale_schema_pickle_recovers(self, session_cache_dir):
        """An AttributeError during unpickling (renamed class/field) is
        treated exactly like corruption."""
        from repro.workloads import profiles

        build_profile(SPEC, scale=SCALE)
        path = self._cache_path(session_cache_dir)
        # A pickle whose GLOBAL opcode references a class that no longer
        # exists — what a schema rename leaves behind.
        stale = b"crepro.workloads.profiles\nNoSuchProfileClass\n."
        path.write_bytes(stale)
        profiles._MEMORY_CACHE.clear()
        with pytest.warns(UserWarning, match="corrupt profile cache"):
            rebuilt = build_profile(SPEC, scale=SCALE)
        assert rebuilt.n_anchors > 0
        assert path.read_bytes() != stale

    def test_cache_format_in_key(self, monkeypatch):
        """Bumping the format version changes every cache key."""
        from repro.workloads import profiles

        before = profiles._cache_key(SPEC, SCALE)
        monkeypatch.setattr(profiles, "_CACHE_FORMAT", profiles._CACHE_FORMAT + 1)
        assert profiles._cache_key(SPEC, SCALE) != before


class TestBenchDefaults:
    def test_bench_config_scaling(self):
        config = bench_config()
        assert config.scheme.ydrop == 2400
        assert config.scheme.gap_extend == 60
        assert config.diag_band > 0
        assert config.traceback is False

    def test_bench_options(self):
        assert BENCH_OPTIONS.bin_edges == (64, 256, 1024, 4096)
        assert BENCH_OPTIONS.eager_traceback

    def test_bench_calibration(self):
        calib = bench_calibration()
        assert calib.modeled_memory_bytes is not None


class TestProfileShape:
    def test_distribution_is_table2_like(self):
        p = build_profile(SPEC, scale=SCALE)
        counts = p.fastz.bin_counts()
        # Eager dominates; D1 has no bin-3/4 tail at this scale.
        assert counts[0] > counts[1] > counts[2]
        assert p.fastz.eager_fraction > 0.5


class TestCacheSizeCap:
    """REPRO_CACHE_MAX_MB bounds the on-disk cache, oldest-first."""

    def _fill(self, directory, sizes_kb):
        import os
        import time as time_module

        paths = []
        for idx, size in enumerate(sizes_kb):
            path = directory / f"profile-fake{idx}-{'0' * 24}.pkl"
            path.write_bytes(b"x" * (size * 1024))
            # Strictly increasing mtimes so "oldest" is unambiguous.
            stamp = time_module.time() - 1000 + idx
            os.utime(path, (stamp, stamp))
            paths.append(path)
        return paths

    def test_unset_means_unlimited(self, tmp_path, monkeypatch):
        from repro.workloads import profiles

        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        paths = self._fill(tmp_path, [512, 512, 512])
        profiles._enforce_cache_cap(tmp_path)
        assert all(p.exists() for p in paths)

    def test_oldest_evicted_first(self, tmp_path, monkeypatch):
        from repro.workloads import profiles

        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1")  # 1 MiB budget
        paths = self._fill(tmp_path, [512, 512, 512, 256])
        profiles._enforce_cache_cap(tmp_path)
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()

    def test_write_cache_applies_cap(self, tmp_path, monkeypatch):
        from repro.workloads import profiles

        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1")
        old = self._fill(tmp_path, [900])
        profiles._write_cache(tmp_path / "profile-new-000.pkl", b"y" * (400 * 1024))
        assert not old[0].exists()
        assert (tmp_path / "profile-new-000.pkl").exists()

    def test_bad_env_value_ignored(self, tmp_path, monkeypatch):
        from repro.workloads import profiles

        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "lots")
        paths = self._fill(tmp_path, [2048])
        profiles._enforce_cache_cap(tmp_path)
        assert paths[0].exists()


class TestStaleVersionEviction:
    """A version-stamp mismatch purges the whole cache directory eagerly."""

    def test_stale_stamp_purges(self, tmp_path):
        from repro.workloads import profiles

        (tmp_path / "profile-old-000.pkl").write_bytes(b"stale")
        (tmp_path / "sens-old-000.pkl").write_bytes(b"stale")
        (tmp_path / profiles._STAMP_NAME).write_text("0.0\n")
        profiles._evict_stale(tmp_path)
        assert not (tmp_path / "profile-old-000.pkl").exists()
        assert not (tmp_path / "sens-old-000.pkl").exists()
        assert (
            tmp_path / profiles._STAMP_NAME
        ).read_text().strip() == profiles._expected_stamp()

    def test_missing_stamp_preserves_files(self, tmp_path):
        """Pre-stamp caches (the shipped one) must survive and get stamped."""
        from repro.workloads import profiles

        (tmp_path / "profile-keep-000.pkl").write_bytes(b"current")
        profiles._evict_stale(tmp_path)
        assert (tmp_path / "profile-keep-000.pkl").exists()
        assert (tmp_path / profiles._STAMP_NAME).exists()

    def test_current_stamp_is_noop(self, tmp_path):
        from repro.workloads import profiles

        (tmp_path / "profile-keep-000.pkl").write_bytes(b"current")
        (tmp_path / profiles._STAMP_NAME).write_text(
            profiles._expected_stamp() + "\n"
        )
        profiles._evict_stale(tmp_path)
        assert (tmp_path / "profile-keep-000.pkl").exists()

    def test_cache_dir_checks_once(self, tmp_path, monkeypatch):
        from repro.workloads import profiles

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "profile-old-000.pkl").write_bytes(b"stale")
        (tmp_path / profiles._STAMP_NAME).write_text("0.0\n")
        monkeypatch.setattr(profiles, "_STALE_CHECKED", set())
        assert profiles._cache_dir() == tmp_path
        assert not (tmp_path / "profile-old-000.pkl").exists()
