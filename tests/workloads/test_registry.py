"""Unit tests for the benchmark registry."""

import pytest

from repro.workloads import (
    ALL_BENCHMARKS,
    CROSS_GENUS_BENCHMARKS,
    GENOMES,
    SAME_GENUS_BENCHMARKS,
    SENSITIVITY_BENCHMARK,
    bench_scale,
    build_benchmark_pair,
    get_benchmark,
)


class TestGenomeTable:
    def test_fifteen_chromosomes(self):
        assert len(GENOMES) == 15

    def test_paper_sizes(self):
        assert GENOMES["Ce1"].real_basepairs == 15_072_434
        assert GENOMES["Dp2"].real_basepairs == 30_794_189
        assert GENOMES["AgaX"].real_basepairs == 24_393_108

    def test_scaled_sizes(self):
        for g in GENOMES.values():
            assert g.scaled_basepairs == g.real_basepairs // 50

    def test_species_coverage(self):
        species = {g.species for g in GENOMES.values()}
        assert len(species) == 7  # two nematodes, two flies, three mosquitoes


class TestBenchmarkList:
    def test_nine_same_genus(self):
        assert len(SAME_GENUS_BENCHMARKS) == 9
        names = [b.name for b in SAME_GENUS_BENCHMARKS]
        for j in range(1, 6):
            assert f"C1_{j},{j}" in names
        assert "D1_2R,2" in names
        assert sum(1 for n in names if n.startswith("A")) == 3

    def test_six_cross_genus(self):
        assert len(CROSS_GENUS_BENCHMARKS) == 6
        assert all(b.cross_genus for b in CROSS_GENUS_BENCHMARKS)

    def test_cross_genus_has_no_top_bins(self):
        # Figure 10: "no alignment falls in the two largest size bins".
        for b in CROSS_GENUS_BENCHMARKS:
            assert b.bin3_lengths == ()
            assert b.bin4_lengths == ()

    def test_bin4_ordering_matches_table2(self):
        # C1_55 heaviest tail; D1 none.
        by_name = {b.name: b for b in SAME_GENUS_BENCHMARKS}
        assert len(by_name["C1_5,5"].bin4_lengths) >= 2
        assert by_name["D1_2R,2"].bin4_lengths == ()

    def test_lookup(self):
        assert get_benchmark("C1_1,1").target == "Ce1"
        with pytest.raises(KeyError):
            get_benchmark("nope")

    def test_sensitivity_has_gappy_class(self):
        assert SENSITIVITY_BENCHMARK.gappy_count > 0
        names = [c.name for c in SENSITIVITY_BENCHMARK.classes()]
        assert "gappy" in names


class TestClasses:
    def test_eager_dominates(self):
        for b in ALL_BENCHMARKS:
            classes = {c.name: c for c in b.classes()}
            assert classes["eager"].count > 10 * classes["bin1"].count

    def test_scale_shrinks_counts(self):
        b = get_benchmark("C1_1,1")
        full = {c.name: c.count for c in b.classes(1.0)}
        half = {c.name: c.count for c in b.classes(0.5)}
        assert half["eager"] == round(full["eager"] * 0.5)
        # bin3/4 singletons stay present at any scale.
        assert half["bin3-0"] == 1

    def test_segment_lengths_fit_scaled_bins(self):
        from repro.core.options import SCALED_BIN_EDGES

        for b in SAME_GENUS_BENCHMARKS:
            for c in b.classes():
                if c.name.startswith("bin4"):
                    assert SCALED_BIN_EDGES[2] < c.max_len <= SCALED_BIN_EDGES[3]
                if c.name.startswith("bin3"):
                    assert SCALED_BIN_EDGES[1] < c.max_len <= SCALED_BIN_EDGES[2]


class TestBuildPair:
    def test_small_scale_build(self):
        pair = build_benchmark_pair(get_benchmark("D1_2R,2"), scale=0.05)
        assert len(pair.target) > 10_000
        assert len(pair.query) > 10_000
        assert len(pair.segments) > 30

    def test_deterministic(self):
        spec = get_benchmark("A1_X,X")
        a = build_benchmark_pair(spec, scale=0.05)
        b = build_benchmark_pair(spec, scale=0.05)
        assert a.target == b.target and a.query == b.query


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0
        assert bench_scale(0.5) == 0.5

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert bench_scale() == 0.25

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()
