"""Integration: cross-genus (dissimilar) workloads have the Figure-10 shape."""

import pytest

from repro.workloads import CROSS_GENUS_BENCHMARKS, SAME_GENUS_BENCHMARKS, build_profile


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, session_cache_dir):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(session_cache_dir))


@pytest.fixture(scope="module")
def pair_of_profiles(session_cache_dir):
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CACHE_DIR", str(session_cache_dir))
    try:
        cross = build_profile(CROSS_GENUS_BENCHMARKS[0], scale=0.1)
        same = build_profile(SAME_GENUS_BENCHMARKS[0], scale=0.1)
        yield cross, same
    finally:
        mp.undo()


class TestDissimilarShape:
    def test_no_deep_bins(self, pair_of_profiles):
        cross, _ = pair_of_profiles
        counts = cross.fastz.bin_counts()
        # Figure 10: "no alignment falls in the two largest size bins".
        assert counts[3] == 0 and counts[4] == 0

    def test_same_genus_has_deep_bins(self, pair_of_profiles):
        _, same = pair_of_profiles
        counts = same.fastz.bin_counts()
        assert counts[3] + counts[4] > 0

    def test_more_eager_than_same_genus(self, pair_of_profiles):
        cross, same = pair_of_profiles
        # Dissimilar genomes: fewer/shorter high-scoring alignments, so a
        # larger share resolves in the inspector (the Figure-11 mechanism).
        assert cross.fastz.eager_fraction >= same.fastz.eager_fraction - 0.02

    def test_less_executor_work(self, pair_of_profiles):
        cross, same = pair_of_profiles
        cross_ratio = cross.arrays.exec_cells.sum() / cross.arrays.insp_cells.sum()
        same_ratio = same.arrays.exec_cells.sum() / same.arrays.insp_cells.sum()
        assert cross_ratio < same_ratio
