"""Unit tests for x-drop ungapped extension."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.align import ungapped_extend, ungapped_extend_one_sided
from repro.genome import encode, random_codes
from repro.scoring import unit_scheme

_codes = st.lists(st.integers(0, 3), min_size=0, max_size=60).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


def _reference_one_sided(t, q, scheme):
    """Scalar reference: walk until the x-drop, track the best prefix."""
    best = 0
    best_len = 0
    score = 0
    for k in range(min(len(t), len(q))):
        score += scheme.score_pair(int(t[k]), int(q[k]))
        if score < best - scheme.xdrop:
            break
        if score > best:
            best = score
            best_len = k + 1
    return best, best_len


class TestOneSided:
    def test_perfect_match(self):
        scheme = unit_scheme()
        t = encode("ACGTACGT")
        score, length = ungapped_extend_one_sided(t, t, scheme)
        assert score == 8 and length == 8

    def test_stops_at_xdrop(self):
        scheme = unit_scheme(xdrop=2)
        t = encode("AAAATTTTTTTTAA")
        q = encode("AAAACCCCCCCCAA")
        score, length = ungapped_extend_one_sided(t, q, scheme)
        assert score == 4 and length == 4

    def test_negative_start_yields_zero(self):
        scheme = unit_scheme()
        score, length = ungapped_extend_one_sided(encode("A"), encode("C"), scheme)
        assert (score, length) == (0, 0)

    def test_empty(self):
        scheme = unit_scheme()
        assert ungapped_extend_one_sided(encode(""), encode("A"), scheme) == (0, 0)

    def test_recovers_after_small_dip(self):
        scheme = unit_scheme(xdrop=5)
        t = encode("AAAATAAAA")
        q = encode("AAAACAAAA")
        score, length = ungapped_extend_one_sided(t, q, scheme)
        assert score == 7 and length == 9

    @settings(max_examples=150, deadline=None)
    @given(_codes, _codes)
    def test_matches_scalar_reference(self, t, q):
        scheme = unit_scheme(xdrop=3)
        assert ungapped_extend_one_sided(t, q, scheme) == _reference_one_sided(
            t, q, scheme
        )


class TestTwoSided:
    def test_anchor_in_middle(self, rng):
        scheme = unit_scheme(xdrop=3)
        core = random_codes(rng, 40)
        t = np.concatenate([random_codes(rng, 30), core, random_codes(rng, 30)])
        q = np.concatenate([random_codes(rng, 25), core, random_codes(rng, 25)])
        hsp = ungapped_extend(t, q, 30 + 20, 25 + 20, scheme)
        assert hsp.score >= 40 - 6  # nearly the whole core
        assert hsp.left >= 15 and hsp.right >= 15
        assert hsp.length == hsp.left + hsp.right

    def test_anchor_at_edges(self):
        scheme = unit_scheme()
        t = encode("ACGT")
        hsp0 = ungapped_extend(t, t, 0, 0, scheme)
        assert hsp0.left == 0 and hsp0.right == 4
        hsp4 = ungapped_extend(t, t, 4, 4, scheme)
        assert hsp4.left == 4 and hsp4.right == 0

    def test_anchor_out_of_bounds(self):
        scheme = unit_scheme()
        t = encode("ACGT")
        import pytest

        with pytest.raises(IndexError):
            ungapped_extend(t, t, 9, 0, scheme)
